//! Minimal SVG plotting — regenerates the paper's figures as actual
//! graphics, not just tables. Pure std: no plotting crate dependencies.
//!
//! Two chart types cover every figure in the paper: grouped bar charts
//! (Figs. 5–11) and multi-series line charts (Figs. 1, 2a). Output is
//! written alongside the CSVs in `target/paper-results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// One named series of y-values.
#[derive(Debug, Clone)]
pub struct Series {
    pub name: String,
    pub values: Vec<f64>,
}

impl Series {
    pub fn new(name: &str, values: Vec<f64>) -> Self {
        Self { name: name.to_string(), values }
    }
}

/// Chart-wide options.
#[derive(Debug, Clone)]
pub struct ChartOptions {
    pub title: String,
    pub y_label: String,
    /// Draw a horizontal reference line (e.g. speedup = 1.0).
    pub reference_line: Option<f64>,
    /// Use a log10 y-axis (Fig. 1).
    pub log_y: bool,
    pub width: u32,
    pub height: u32,
}

impl Default for ChartOptions {
    fn default() -> Self {
        Self {
            title: String::new(),
            y_label: String::new(),
            reference_line: None,
            log_y: false,
            width: 1100,
            height: 420,
        }
    }
}

const PALETTE: [&str; 6] = ["#4878a8", "#e1975c", "#6aa66a", "#c86464", "#8d7bb8", "#937860"];
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 96.0;

fn y_transform(v: f64, log_y: bool) -> f64 {
    if log_y {
        v.max(1e-12).log10()
    } else {
        v
    }
}

/// Escape a string for SVG text content.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Shared frame: axes, title, y-ticks. Returns (svg-so-far, map from data-y
/// to pixel-y, plot area rect).
struct Frame {
    svg: String,
    x0: f64,
    x1: f64,
    y_px: Box<dyn Fn(f64) -> f64>,
}

fn frame(opts: &ChartOptions, y_min: f64, y_max: f64) -> Frame {
    let w = opts.width as f64;
    let h = opts.height as f64;
    let (x0, x1) = (MARGIN_L, w - MARGIN_R);
    let (py0, py1) = (h - MARGIN_B, MARGIN_T);
    let (ty_min, ty_max) = (y_transform(y_min, opts.log_y), y_transform(y_max, opts.log_y));
    let span = (ty_max - ty_min).max(1e-12);
    let log_y = opts.log_y;
    let y_px = Box::new(move |v: f64| {
        let t = (y_transform(v, log_y) - ty_min) / span;
        py0 + (py1 - py0) * t
    });

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" font-family="Helvetica,Arial,sans-serif" font-size="12">"#
    );
    let _ = write!(svg, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    let _ = write!(
        svg,
        r#"<text x="{}" y="20" font-size="15" font-weight="bold">{}</text>"#,
        MARGIN_L,
        esc(&opts.title)
    );
    // y axis + ticks.
    let _ = write!(svg, r#"<line x1="{x0}" y1="{py0}" x2="{x0}" y2="{py1}" stroke='#333'/>"#);
    let _ = write!(svg, r#"<line x1="{x0}" y1="{py0}" x2="{x1}" y2="{py0}" stroke='#333'/>"#);
    let ticks = 5;
    for i in 0..=ticks {
        let v = if opts.log_y {
            10f64.powf(ty_min + (ty_max - ty_min) * i as f64 / ticks as f64)
        } else {
            y_min + (y_max - y_min) * i as f64 / ticks as f64
        };
        let y = y_px(v);
        let label = if v.abs() >= 100.0 { format!("{v:.0}") } else { format!("{v:.2}") };
        let _ = write!(
            svg,
            r#"<line x1="{}" y1="{y}" x2="{x1}" y2="{y}" stroke='#ddd'/><text x="{}" y="{}" text-anchor="end">{label}</text>"#,
            x0 - 4.0,
            x0 - 8.0,
            y + 4.0
        );
    }
    let _ = write!(
        svg,
        r#"<text x="14" y="{}" transform="rotate(-90 14 {})" text-anchor="middle">{}</text>"#,
        (py0 + py1) / 2.0,
        (py0 + py1) / 2.0,
        esc(&opts.y_label)
    );
    if let Some(r) = opts.reference_line {
        let y = y_px(r);
        let _ = write!(
            svg,
            r#"<line x1="{x0}" y1="{y}" x2="{x1}" y2="{y}" stroke='#888' stroke-dasharray="5,4"/>"#
        );
    }
    Frame { svg, x0, x1, y_px }
}

fn legend(svg: &mut String, series: &[Series], x: f64) {
    for (i, s) in series.iter().enumerate() {
        let lx = x + 130.0 * i as f64;
        let color = PALETTE[i % PALETTE.len()];
        let _ = write!(
            svg,
            r#"<rect x="{lx}" y="26" width="10" height="10" fill="{color}"/><text x="{}" y="35">{}</text>"#,
            lx + 14.0,
            esc(&s.name)
        );
    }
}

/// Render a grouped bar chart: one cluster per category, one bar per series.
pub fn bar_chart(categories: &[String], series: &[Series], opts: &ChartOptions) -> String {
    assert!(!categories.is_empty() && !series.is_empty());
    for s in series {
        assert_eq!(s.values.len(), categories.len(), "series '{}' arity", s.name);
    }
    let y_max = series
        .iter()
        .flat_map(|s| s.values.iter().copied())
        .fold(opts.reference_line.unwrap_or(0.0), f64::max)
        * 1.08;
    let y_min = if opts.log_y {
        series.iter().flat_map(|s| s.values.iter().copied()).fold(f64::INFINITY, f64::min) / 1.5
    } else {
        0.0
    };
    let mut f = frame(opts, y_min, y_max);
    let h = opts.height as f64;
    let py0 = h - MARGIN_B;
    let cluster_w = (f.x1 - f.x0) / categories.len() as f64;
    let bar_w = (cluster_w * 0.8) / series.len() as f64;
    for (ci, cat) in categories.iter().enumerate() {
        let cx = f.x0 + cluster_w * (ci as f64 + 0.5);
        for (si, s) in series.iter().enumerate() {
            let v = s.values[ci];
            let x = cx - cluster_w * 0.4 + bar_w * si as f64;
            let y = (f.y_px)(v);
            let color = PALETTE[si % PALETTE.len()];
            let _ = write!(
                f.svg,
                r#"<rect x="{x:.1}" y="{:.1}" width="{bar_w:.1}" height="{:.1}" fill="{color}"/>"#,
                y.min(py0),
                (py0 - y).abs()
            );
        }
        // Rotated category label.
        let _ = write!(
            f.svg,
            r#"<text x="{cx:.1}" y="{:.1}" transform="rotate(-45 {cx:.1} {:.1})" text-anchor="end" font-size="10">{}</text>"#,
            py0 + 14.0,
            py0 + 14.0,
            esc(cat)
        );
    }
    legend(&mut f.svg, series, f.x0);
    f.svg.push_str("</svg>");
    f.svg
}

/// Render a multi-series line chart over shared x-values.
pub fn line_chart(xs: &[f64], series: &[Series], opts: &ChartOptions) -> String {
    assert!(xs.len() >= 2 && !series.is_empty());
    for s in series {
        assert_eq!(s.values.len(), xs.len(), "series '{}' arity", s.name);
    }
    let y_max =
        series.iter().flat_map(|s| s.values.iter().copied()).fold(f64::NEG_INFINITY, f64::max)
            * 1.08;
    let y_min = if opts.log_y {
        series.iter().flat_map(|s| s.values.iter().copied()).fold(f64::INFINITY, f64::min) / 1.5
    } else {
        0.0
    };
    let mut f = frame(opts, y_min, y_max);
    let (x_lo, x_hi) = (xs[0], xs[xs.len() - 1]);
    let x_px = |x: f64| f.x0 + (f.x1 - f.x0) * (x - x_lo) / (x_hi - x_lo).max(1e-12);
    let h = opts.height as f64;
    let py0 = h - MARGIN_B;
    // x tick labels.
    for (i, &x) in xs.iter().enumerate() {
        if xs.len() > 10 && i % 2 == 1 {
            continue;
        }
        let px = x_px(x);
        let _ = write!(
            f.svg,
            r#"<text x="{px:.1}" y="{:.1}" text-anchor="middle" font-size="10">{x:.2}</text>"#,
            py0 + 16.0
        );
    }
    for (si, s) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        let pts: Vec<String> = xs
            .iter()
            .zip(&s.values)
            .map(|(&x, &v)| format!("{:.1},{:.1}", x_px(x), (f.y_px)(v)))
            .collect();
        let _ = write!(
            f.svg,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            pts.join(" ")
        );
        for p in &pts {
            let mut it = p.split(',');
            let (cx, cy) = (it.next().unwrap(), it.next().unwrap());
            let _ = write!(f.svg, r#"<circle cx="{cx}" cy="{cy}" r="2.5" fill="{color}"/>"#);
        }
    }
    legend(&mut f.svg, series, f.x0);
    f.svg.push_str("</svg>");
    f.svg
}

/// Write an SVG file under `target/paper-results/<name>.svg`.
pub fn write_svg(name: &str, svg: &str) {
    let dir = crate::results_dir();
    let _ = fs::create_dir_all(&dir);
    let path: PathBuf = dir.join(format!("{name}.svg"));
    match fs::write(&path, svg) {
        Ok(()) => println!("[svg written to {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {path:?}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cats(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("w{i}")).collect()
    }

    #[test]
    fn bar_chart_emits_expected_structure() {
        let svg = bar_chart(
            &cats(3),
            &[Series::new("a", vec![1.0, 2.0, 3.0]), Series::new("b", vec![0.5, 1.5, 2.5])],
            &ChartOptions { title: "test".into(), reference_line: Some(1.0), ..Default::default() },
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // 3 clusters × 2 series bars + background + legend swatches.
        let bars = svg.matches("<rect").count();
        assert!(bars > 3 * 2, "bars = {bars}");
        assert!(svg.contains("stroke-dasharray"), "reference line drawn");
    }

    #[test]
    fn line_chart_emits_one_polyline_per_series() {
        let xs = vec![0.0, 1.0, 2.0, 3.0];
        let svg = line_chart(
            &xs,
            &[
                Series::new("avg", vec![1.0, 2.0, 4.0, 9.0]),
                Series::new("p90", vec![2.0, 3.0, 8.0, 20.0]),
            ],
            &ChartOptions::default(),
        );
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 8);
    }

    #[test]
    fn log_axis_handles_wide_ranges() {
        let xs = vec![1.0, 2.0, 3.0];
        let svg = line_chart(
            &xs,
            &[Series::new("x", vec![0.02, 1.0, 32.0])],
            &ChartOptions { log_y: true, ..Default::default() },
        );
        assert!(svg.contains("<polyline"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn mismatched_series_length_panics() {
        let _ = bar_chart(&cats(3), &[Series::new("bad", vec![1.0])], &ChartOptions::default());
    }

    #[test]
    fn titles_are_escaped() {
        let svg = bar_chart(
            &cats(1),
            &[Series::new("a", vec![1.0])],
            &ChartOptions { title: "a<b&c".into(), ..Default::default() },
        );
        assert!(svg.contains("a&lt;b&amp;c"));
        assert!(!svg.contains("a<b&c"));
    }
}
