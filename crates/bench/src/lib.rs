//! Shared infrastructure for the paper-reproduction bench targets.
//!
//! Each bench target (`cargo bench -p coaxial-bench --bench <name>`)
//! regenerates one table or figure of the paper and prints it in a shape
//! directly comparable to the published one. Results are also written as
//! CSV under `target/paper-results/` so plots can be produced externally.
//!
//! Budgets: every bench honours `COAXIAL_INSTR` / `COAXIAL_WARMUP`
//! (instructions per core). The defaults are laptop-scale; raising
//! `COAXIAL_INSTR` toward the paper's 200 M tightens the numbers at
//! proportional cost.

// No unsafe anywhere in this crate (lint U01 audit); keep it that way.
#![forbid(unsafe_code)]

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

pub mod plot;

/// Column-aligned plain-text table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Print with per-column alignment.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    s.push_str(&format!("{:<width$}", c, width = widths[i]));
                } else {
                    s.push_str(&format!("  {:>width$}", c, width = widths[i]));
                }
            }
            s
        };
        println!("{}", line(&self.headers));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            println!("{}", line(row));
        }
    }

    /// Write the table as CSV under `target/paper-results/<name>.csv`.
    pub fn write_csv(&self, name: &str) {
        let dir = results_dir();
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("{name}.csv"));
        let mut f = match fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("warning: cannot write {path:?}: {e}");
                return;
            }
        };
        let esc = |s: &str| {
            if s.contains([',', '"']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ =
            writeln!(f, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(f, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        println!("\n[csv written to {}]", path.display());
    }
}

/// Directory that bench targets write CSV/SVG results into — anchored at
/// the workspace root regardless of the CWD cargo gives bench binaries.
pub fn results_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/paper-results"))
}

/// Print a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!("\n=== {id} — {caption} ===");
    println!("(paper: COAXIAL, SC 2024; reproduction values — shapes, not absolutes)\n");
}

/// Format helpers.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x".into(), "1.00".into()]);
        t.print(); // should not panic
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.41), "41%");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
