//! Tables I, II, and III: component areas, candidate server designs, and
//! the simulated system parameters.

use coaxial_bench::{banner, f2, Table};
use coaxial_system::area::{AreaModel, ServerDesign};
use coaxial_system::SystemConfig;

fn main() {
    banner("Table I", "Relative component area (units of 1 MB LLC)");
    let m = AreaModel::table_i();
    let mut t1 = Table::new(&["component", "relative area"]);
    t1.row(&["L3 cache (1 MB)".into(), f2(m.llc_1mb)]);
    t1.row(&["Zen 3 core (incl. 512 KB L2)".into(), f2(m.zen3_core)]);
    t1.row(&["x8 PCIe (PHY + ctrl)".into(), f2(m.pcie_x8)]);
    t1.row(&["DDR channel (PHY + ctrl)".into(), f2(m.ddr_channel)]);
    t1.print();
    t1.write_csv("table1_area");

    banner("Table II", "DDR-based versus alternative COAXIAL server configurations");
    let mut t2 = Table::new(&[
        "design",
        "cores",
        "LLC/core MB",
        "DDR ch",
        "CXL x8 ch",
        "rel. BW",
        "rel. area",
        "comment",
    ]);
    for d in ServerDesign::table_ii() {
        t2.row(&[
            d.name.to_string(),
            d.cores.to_string(),
            f2(d.llc_mb_per_core),
            d.ddr_channels.to_string(),
            d.cxl_x8_channels.to_string(),
            if d.relative_bandwidth.is_nan() {
                "asym R/W".into()
            } else {
                format!("{:.0}x", d.relative_bandwidth)
            },
            f2(d.relative_area(&m)),
            d.comment.to_string(),
        ]);
    }
    t2.print();
    t2.write_csv("table2_configs");

    banner("Table III", "Simulated system parameters (12-core slice)");
    let mut t3 = Table::new(&["config", "DDR channels", "LLC MB/core", "peak GB/s", "CALM"]);
    for cfg in [
        SystemConfig::ddr_baseline(),
        SystemConfig::coaxial_2x(),
        SystemConfig::coaxial_4x(),
        SystemConfig::coaxial_5x(),
        SystemConfig::coaxial_asym(),
    ] {
        t3.row(&[
            cfg.name.clone(),
            cfg.ddr_channels().to_string(),
            f2(cfg.functional.llc_mb_per_core),
            f2(cfg.peak_bandwidth_gbs()),
            cfg.timing.calm.label(),
        ]);
    }
    t3.print();
    t3.write_csv("table3_parameters");
    println!(
        "\nCPU: 12 OoO cores, 2.4 GHz, 4-wide, 256-entry ROB; L1 32 KB/8-way/4-cycle; \
         L2 512 KB/8-way/8-cycle; LLC 16-way/20-cycle; NoC 2D mesh, 3 cycles/hop."
    );
}
