//! Table IV: per-workload IPC and LLC MPKI on the DDR-based baseline,
//! printed alongside the paper's reference values.

use coaxial_bench::{banner, f2, Table};
use coaxial_system::experiments::{baseline_characterization, Budget};

fn main() {
    banner("Table IV", "Workload IPC and LLC MPKI on the DDR-based baseline");
    let rows = baseline_characterization(Budget::default());
    let mut t = Table::new(&["workload", "IPC", "MPKI", "paper IPC", "paper MPKI"]);
    for r in &rows {
        t.row(&[
            r.workload.clone(),
            f2(r.ipc),
            format!("{:.0}", r.mpki),
            f2(r.paper_ipc),
            r.paper_mpki.to_string(),
        ]);
    }
    t.print();
    t.write_csv("table4_workloads");

    // Rank-correlation of measured vs paper MPKI (shape check).
    let mut measured: Vec<(usize, f64)> = rows.iter().map(|r| r.mpki).enumerate().collect();
    let mut paper: Vec<(usize, f64)> =
        rows.iter().map(|r| r.paper_mpki as f64).enumerate().collect();
    measured.sort_by(|a, b| a.1.total_cmp(&b.1));
    paper.sort_by(|a, b| a.1.total_cmp(&b.1));
    let n = rows.len();
    let mut rank_m = vec![0usize; n];
    let mut rank_p = vec![0usize; n];
    for (rank, (i, _)) in measured.iter().enumerate() {
        rank_m[*i] = rank;
    }
    for (rank, (i, _)) in paper.iter().enumerate() {
        rank_p[*i] = rank;
    }
    let d2: f64 = (0..n).map(|i| ((rank_m[i] as f64) - (rank_p[i] as f64)).powi(2)).sum();
    let rho = 1.0 - 6.0 * d2 / (n as f64 * (n as f64 * n as f64 - 1.0));
    println!("\nSpearman rank correlation of MPKI vs paper: {rho:.2} (1.0 = identical ordering)");
}
