//! Fig. 11: COAXIAL's performance as a function of active cores (8%, 33%,
//! 66%, and 100% server utilization), normalized to the baseline at the
//! same number of active cores.

use coaxial_bench::plot::{bar_chart, write_svg, ChartOptions, Series};
use coaxial_bench::{banner, f2, Table};
use coaxial_system::experiments::{fig11_core_utilization, geomean, Budget};

const ACTIVE: [usize; 4] = [1, 4, 8, 12];

fn main() {
    banner("Figure 11", "Speedup vs active cores (1 / 4 / 8 / 12 of 12)");
    let rows = fig11_core_utilization(&ACTIVE, Budget::default());
    let mut t = Table::new(&["workload", "1 core", "4 cores", "8 cores", "12 cores"]);
    for r in &rows {
        let s: Vec<f64> = r.speedups.iter().map(|(_, v)| *v).collect();
        t.row(&[r.workload.clone(), f2(s[0]), f2(s[1]), f2(s[2]), f2(s[3])]);
    }
    t.print();
    t.write_csv("fig11_core_utilization");

    let cats: Vec<String> = rows.iter().map(|r| r.workload.clone()).collect();
    let series: Vec<Series> = ACTIVE
        .iter()
        .enumerate()
        .map(|(i, n)| {
            Series::new(&format!("{n} cores"), rows.iter().map(|r| r.speedups[i].1).collect())
        })
        .collect();
    let svg = bar_chart(
        &cats,
        &series,
        &ChartOptions {
            title: "Fig. 11: speedup vs active cores".into(),
            y_label: "speedup".into(),
            reference_line: Some(1.0),
            ..Default::default()
        },
    );
    write_svg("fig11_core_utilization", &svg);

    for (i, n) in ACTIVE.iter().enumerate() {
        let gm = geomean(rows.iter().map(|r| r.speedups[i].1));
        println!("{n:>2} active cores: geomean speedup {:.2}x", gm);
    }
    println!(
        "\npaper: 1 core -> 0.73x (27% slowdown); 8 cores (66% util, 8:1 core:MC) -> 1.17x; \
         12 cores -> 1.39x"
    );
}
