//! Fig. 2a: average and p90 memory access latency of one DDR5-4800 channel
//! under Poisson random traffic, at varying bandwidth utilization.

use coaxial_bench::plot::{line_chart, write_svg, ChartOptions, Series};
use coaxial_bench::{banner, f1, pct, Table};
use coaxial_system::experiments::fig2a_load_latency;

fn main() {
    banner("Figure 2a", "DDR5-4800 load-latency curve (avg and p90)");
    let utils: Vec<f64> = (1..=17).map(|i| i as f64 * 0.05).collect();
    let horizon =
        std::env::var("COAXIAL_F2A_CYCLES").ok().and_then(|v| v.parse().ok()).unwrap_or(600_000);
    let pts = fig2a_load_latency(&utils, horizon);
    let mut t = Table::new(&["target util", "achieved util", "avg ns", "p90 ns"]);
    let base = &pts[0];
    for p in &pts {
        t.row(&[
            pct(p.target_utilization),
            pct(p.achieved_utilization),
            f1(p.avg_ns),
            f1(p.p90_ns),
        ]);
        let _ = base;
    }
    t.print();
    t.write_csv("fig2a_load_latency");

    let xs: Vec<f64> = pts.iter().map(|p| p.target_utilization).collect();
    let svg = line_chart(
        &xs,
        &[
            Series::new("avg ns", pts.iter().map(|p| p.avg_ns).collect()),
            Series::new("p90 ns", pts.iter().map(|p| p.p90_ns).collect()),
        ],
        &ChartOptions {
            title: "Fig. 2a: DDR5-4800 load-latency curve".into(),
            y_label: "latency (ns)".into(),
            log_y: true,
            ..Default::default()
        },
    );
    write_svg("fig2a_load_latency", &svg);

    // Paper checkpoints: avg grows ~3x at 50% load and ~4x at 60%; p90
    // grows faster than avg.
    let at = |u: f64| {
        pts.iter().min_by_key(|p| coaxial_sim::trunc_u64((p.target_utilization - u).abs() * 1e6))
    };
    if let (Some(lo), Some(mid)) = (at(0.05), at(0.5)) {
        println!(
            "\navg growth at 50% load: {:.1}x (paper ~3x); p90 growth: {:.1}x (paper ~4.7x)",
            mid.avg_ns / lo.avg_ns,
            mid.p90_ns / lo.p90_ns
        );
    }
}
