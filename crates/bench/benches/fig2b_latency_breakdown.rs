//! Fig. 2b: baseline L2-miss latency breakdown (on-chip, DRAM service,
//! queuing) and memory bandwidth utilization across all 36 workloads.

use coaxial_bench::{banner, f1, pct, Table};
use coaxial_system::experiments::{baseline_characterization, Budget};

fn main() {
    banner("Figure 2b", "Baseline memory latency breakdown and bandwidth utilization per workload");
    let rows = baseline_characterization(Budget::default());
    let mut t = Table::new(&[
        "workload",
        "on-chip ns",
        "queuing ns",
        "DRAM ns",
        "L2-miss ns",
        "BW util",
        "queue share",
    ]);
    let mut q_share_sum = 0.0;
    for r in &rows {
        let (on, q, s, _) = r.breakdown_ns;
        let total = on + q + s;
        let share = if total > 0.0 { q / total } else { 0.0 };
        q_share_sum += share;
        t.row(&[
            r.workload.clone(),
            f1(on),
            f1(q),
            f1(s),
            f1(total),
            pct(r.utilization),
            pct(share),
        ]);
    }
    t.print();
    t.write_csv("fig2b_latency_breakdown");
    println!(
        "\naverage queuing share of L2-miss latency: {} (paper: ~60%)",
        coaxial_bench::pct(q_share_sum / rows.len() as f64)
    );
}
