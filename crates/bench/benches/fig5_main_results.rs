//! Fig. 5: COAXIAL-4x speedup over the DDR baseline (top), L2-miss latency
//! breakdown (middle), and memory bandwidth usage (bottom) for all 36
//! workloads.

use coaxial_bench::plot::{bar_chart, write_svg, ChartOptions, Series};
use coaxial_bench::{banner, f1, f2, pct, Table};
use coaxial_system::experiments::{fig5_main, geomean, geomean_speedup, Budget};

fn main() {
    banner("Figure 5", "COAXIAL-4x vs DDR baseline: speedup, latency breakdown, bandwidth");
    let rows = fig5_main(Budget::default());

    let mut t = Table::new(&[
        "workload",
        "speedup",
        "base lat ns (on+q+dram)",
        "coax lat ns (on+q+dram+cxl)",
        "base GB/s",
        "coax GB/s",
        "base util",
        "coax util",
    ]);
    for r in &rows {
        let (ob, qb, sb, _) = r.base.breakdown_ns;
        let (oc, qc, sc, xc) = r.coax.breakdown_ns;
        t.row(&[
            r.workload.clone(),
            f2(r.speedup),
            format!("{} ({}+{}+{})", f1(ob + qb + sb), f1(ob), f1(qb), f1(sb)),
            format!("{} ({}+{}+{}+{})", f1(oc + qc + sc + xc), f1(oc), f1(qc), f1(sc), f1(xc)),
            f1(r.base.bandwidth_gbs),
            f1(r.coax.bandwidth_gbs),
            pct(r.base.utilization),
            pct(r.coax.utilization),
        ]);
    }
    t.print();
    t.write_csv("fig5_main_results");

    let cats: Vec<String> = rows.iter().map(|r| r.workload.clone()).collect();
    let svg = bar_chart(
        &cats,
        &[Series::new("COAXIAL-4x speedup", rows.iter().map(|r| r.speedup).collect())],
        &ChartOptions {
            title: "Fig. 5 (top): COAXIAL-4x speedup over DDR baseline".into(),
            y_label: "speedup".into(),
            reference_line: Some(1.0),
            ..Default::default()
        },
    );
    write_svg("fig5_speedup", &svg);

    let n = rows.len() as f64;
    let base_util: f64 = rows.iter().map(|r| r.base.utilization).sum::<f64>() / n;
    let coax_util: f64 = rows.iter().map(|r| r.coax.utilization).sum::<f64>() / n;
    let losers = rows.iter().filter(|r| r.speedup < 1.0).count();
    let max = rows.iter().max_by(|a, b| a.speedup.total_cmp(&b.speedup)).unwrap();
    let lat_reduction =
        1.0 - geomean(rows.iter().map(|r| r.coax.l2_miss_latency_ns / r.base.l2_miss_latency_ns));
    println!("\ngeomean speedup: {:.2}x   (paper: 1.39x, up to 3x)", geomean_speedup(&rows));
    println!("max speedup:     {:.2}x on {}", max.speedup, max.workload);
    println!("workloads losing performance: {losers}   (paper: 7)");
    println!(
        "avg bandwidth utilization: {} -> {}   (paper: 54% -> 34%)",
        pct(base_util),
        pct(coax_util)
    );
    println!("geomean L2-miss latency reduction: {}   (paper: 29%)", pct(lat_reduction));
}
