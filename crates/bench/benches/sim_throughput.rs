//! Engine-throughput benchmark: wall-clock time for a dense multi-config
//! sweep, reported as runs/s and simulated instructions/s.
//!
//! The sweep is a 7-point CXL latency sensitivity study (a denser version
//! of Fig. 10) over all 36 workloads at the quick budget — 288 simulation
//! runs spanning both memory-system geometries. It exercises everything
//! the experiment engine does at scale: the job pool, the prefill
//! state/stream caches, and the per-run simulation loop.
//!
//! Honour `COAXIAL_JOBS` to pin the pool width (1 = serial); results are
//! bit-identical at any width. Wall-clock numbers for the seed-vs-current
//! comparison live in `BENCH_sim_throughput.json` at the repo root.

use std::time::Instant;

use coaxial_bench::banner;
use coaxial_system::experiments::{fig10_latency_sensitivity, geomean, Budget};
use coaxial_workloads::Workload;

/// The paper's 50/70 ns points and §VII's 10 ns projection, densified so
/// the sensitivity curve has no gaps coarser than 20 ns.
const LATENCIES: [f64; 7] = [10.0, 20.0, 30.0, 50.0, 60.0, 70.0, 90.0];

fn main() {
    banner("Engine throughput", "dense latency-sensitivity sweep, quick budget");
    let budget = Budget::quick();
    let workloads = Workload::all().len();
    let runs = workloads * (1 + LATENCIES.len());
    let cores = 12;

    let t0 = Instant::now();
    let rows = fig10_latency_sensitivity(&LATENCIES, budget);
    let wall = t0.elapsed().as_secs_f64();

    // Sanity: the sweep must have produced every row (and the work must not
    // have been elided).
    assert_eq!(rows.len(), workloads);
    let g50 = geomean(
        rows.iter().map(|r| r.speedups.iter().find(|(ns, _)| *ns == 50.0).expect("50 ns point").1),
    );

    let sim_instr = runs as u64 * (budget.instructions + budget.warmup) * cores;
    println!(
        "runs:               {runs} ({workloads} workloads x {} configs)",
        1 + LATENCIES.len()
    );
    println!("wall:               {wall:.2} s");
    println!("runs/s:             {:.2}", runs as f64 / wall);
    println!("sim instructions/s: {:.3} M", sim_instr as f64 / wall / 1e6);
    println!("geomean speedup @50ns (sanity): {g50:.3}");
}
