//! Fig. 7: sensitivity to the CALM mechanism. (a) speedup of each
//! mechanism relative to serial LLC/memory access, on both the baseline
//! and COAXIAL; (b) decision quality (false positives per memory access,
//! false negatives per LLC miss).
//!
//! The paper displays four workloads plus the 36-workload average; to
//! bound runtime we show the same four and average over a fixed
//! 12-workload sample (one per suite tier). `COAXIAL_F7_ALL=1` averages
//! over all 36 instead.

use coaxial_bench::{banner, f2, pct, Table};
use coaxial_system::experiments::{fig7_calm, geomean, Budget};

const SHOWN: [&str; 4] = ["gcc", "stream-copy", "lbm", "PageRank"];
const SAMPLE: [&str; 12] = [
    "lbm",
    "gcc",
    "mcf",
    "bwaves",
    "PageRank",
    "Components",
    "BFS",
    "stream-copy",
    "stream-triad",
    "streamcluster",
    "masstree",
    "kmeans",
];

fn main() {
    banner("Figure 7", "CALM mechanism sensitivity (speedup vs serial; decision quality)");
    let budget = Budget::default();

    let avg_set: Vec<&str> = if std::env::var("COAXIAL_F7_ALL").is_ok() {
        coaxial_workloads::Workload::all().iter().map(|w| w.name).collect()
    } else {
        SAMPLE.to_vec()
    };

    // Per-workload rows (Fig. 7a detail).
    let rows = fig7_calm(&SHOWN, budget);
    let mut t = Table::new(&[
        "workload",
        "system",
        "mechanism",
        "speedup vs serial",
        "FP/mem access",
        "FN/LLC miss",
    ]);
    for r in &rows {
        t.row(&[
            r.workload.clone(),
            r.system.clone(),
            r.mechanism.clone(),
            f2(r.speedup_vs_serial),
            pct(r.false_pos_per_mem_access),
            pct(r.false_neg_per_llc_miss),
        ]);
    }
    t.print();
    t.write_csv("fig7_calm");

    // Averages over the sample (Fig. 7a "avg" cluster).
    println!("\naverages over {} workloads:", avg_set.len());
    let avg_rows = fig7_calm(&avg_set, budget);
    let mut t2 = Table::new(&["system", "mechanism", "geomean speedup vs serial"]);
    for system in ["baseline", "COAXIAL"] {
        for mech in ["MAP-I", "CALM-50%", "CALM-60%", "CALM-70%", "ideal"] {
            let gm = geomean(
                avg_rows
                    .iter()
                    .filter(|r| r.system == system && r.mechanism == mech)
                    .map(|r| r.speedup_vs_serial),
            );
            t2.row(&[system.to_string(), mech.to_string(), f2(gm)]);
        }
    }
    t2.print();
    t2.write_csv("fig7_calm_avg");
    println!(
        "\npaper: CALM lifts COAXIAL from 1.28x to 1.39x over baseline; baseline's average \
         gain from CALM is negligible; CALM-70% FP ≈ 4% of memory accesses, FN ≈ 11% of LLC misses."
    );
}
