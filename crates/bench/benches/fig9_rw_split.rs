//! Fig. 9: read/write bandwidth usage in the baseline system.

use coaxial_bench::{banner, f1, f2, Table};
use coaxial_system::experiments::{baseline_characterization, Budget};

fn main() {
    banner("Figure 9", "Read vs write bandwidth on the DDR baseline");
    let rows = baseline_characterization(Budget::default());
    let mut t = Table::new(&["workload", "read GB/s", "write GB/s", "R:W ratio"]);
    let (mut rsum, mut wsum) = (0.0, 0.0);
    for r in &rows {
        rsum += r.read_gbs;
        wsum += r.write_gbs;
        t.row(&[
            r.workload.clone(),
            f1(r.read_gbs),
            f1(r.write_gbs),
            f2(r.read_gbs / r.write_gbs.max(1e-6)),
        ]);
    }
    t.print();
    t.write_csv("fig9_rw_split");
    println!("\naverage R:W ratio: {:.1}:1   (paper: 3.7:1)", rsum / wsum.max(1e-6));
}
