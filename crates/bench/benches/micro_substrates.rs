//! Microbenchmarks of the simulation substrates themselves: DRAM channel
//! scheduling throughput, cache-array lookups, CXL link transfer, and core
//! tick rate. These guard the simulator's own performance (one simulated
//! second of the 12-core system is millions of ticks) rather than
//! reproducing a paper figure.
//!
//! Self-timed with `std::time::Instant` (no external harness): each case
//! runs a warmup iteration, then `SAMPLES` timed iterations, and reports
//! min/mean wall-clock per iteration.

use std::hint::black_box;
use std::time::Instant;

use coaxial_cache::{CacheArray, CalmPolicy, Hierarchy, HierarchyConfig};
use coaxial_cpu::{Core, CoreParams, TraceOp, VecTrace};
use coaxial_cxl::{CxlChannel, CxlLinkConfig};
use coaxial_dram::{Channel, DramConfig, MemRequest, MemoryBackend, MultiChannel};
use coaxial_sim::SplitMix64;

const SAMPLES: u32 = 10;

fn bench<F: FnMut() -> u64>(name: &str, mut f: F) {
    black_box(f()); // warmup
    let mut total = 0.0f64;
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        best = best.min(dt);
    }
    let mean = total / SAMPLES as f64;
    println!("{name:<32} min {:>9.3} ms   mean {:>9.3} ms", best * 1e3, mean * 1e3);
}

fn bench_dram_channel() {
    bench("dram_channel_1k_random_reads", || {
        let mut ch = Channel::new(DramConfig::ddr5_4800());
        let mut rng = SplitMix64::new(1);
        let mut issued = 0u64;
        let mut done = 0u64;
        let mut now = 0u64;
        while done < 1000 {
            ch.tick(now);
            while issued < 1000 {
                let req = MemRequest::read(issued, rng.next_below(1 << 22), now);
                if ch.try_enqueue(req).is_err() {
                    break;
                }
                issued += 1;
            }
            while ch.pop_response(now).is_some() {
                done += 1;
            }
            now += 1;
        }
        now
    });
}

fn bench_cache_lookups() {
    let mut cache = CacheArray::new(2 * 1024 * 1024, 16);
    let mut rng = SplitMix64::new(2);
    for _ in 0..100_000 {
        cache.fill(rng.next_below(1 << 16), false);
    }
    bench("cache_array_100k_lookups", || {
        let mut rng = SplitMix64::new(3);
        let mut hits = 0u64;
        for _ in 0..100_000 {
            if cache.lookup(rng.next_below(1 << 16)) {
                hits += 1;
            }
        }
        hits
    });
}

fn bench_cxl_link() {
    bench("cxl_channel_500_reads", || {
        let mut ch = CxlChannel::new(CxlLinkConfig::x8_symmetric(), &DramConfig::ddr5_4800());
        let mut issued = 0u64;
        let mut done = 0;
        let mut now = 0u64;
        while done < 500 {
            ch.tick(now);
            while issued < 500 && ch.can_accept() {
                ch.try_enqueue(MemRequest::read(issued, issued * 577, now)).unwrap();
                issued += 1;
            }
            while ch.pop_response().is_some() {
                done += 1;
            }
            now += 1;
        }
        now
    });
}

fn bench_core_tick() {
    bench("core_20k_instructions", || {
        let ops: Vec<TraceOp> = (0..64).map(|i| TraceOp::load(15, i * 131, 1)).collect();
        let mut core = Core::new(0, CoreParams::default(), Box::new(VecTrace::new(ops)));
        let cfg = HierarchyConfig::table_iii(1, 1, 2.0, 38.4, CalmPolicy::Serial);
        let mut h = Hierarchy::new(cfg, MultiChannel::new(&DramConfig::ddr5_4800(), 1));
        let mut now = 0;
        while core.retired < 20_000 {
            h.tick(now);
            while let Some((_, id)) = h.pop_completion() {
                core.on_memory_complete(id);
            }
            core.tick(now, &mut h);
            now += 1;
        }
        now
    });
}

fn main() {
    coaxial_bench::banner("micro", "substrate microbenchmarks (self-timed)");
    bench_dram_channel();
    bench_cache_lookups();
    bench_cxl_link();
    bench_core_tick();
}
