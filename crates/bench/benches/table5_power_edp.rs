//! Table V: energy/power comparison for the 144-core server, fed by the
//! CPIs measured on the simulated 12-core slice.

use coaxial_bench::{banner, f2, Table};
use coaxial_system::experiments::{fig5_main, table5_inputs, Budget};
use coaxial_system::power::table5;

fn main() {
    banner("Table V", "Energy/power comparison for the 144-core server");
    let rows = fig5_main(Budget::default());
    let inputs = table5_inputs(&rows);
    let (base, coax) = table5(inputs.baseline_cpi, inputs.coaxial_cpi);

    let mut t = Table::new(&["component", "Baseline", "COAXIAL"]);
    let w = |x: f64| format!("{x:.0} W");
    t.row(&["Cores + L1 + L2".into(), w(base.core_w), w(coax.core_w)]);
    t.row(&["DDR5 MC & PHY".into(), w(base.ddr_mc_w), w(coax.ddr_mc_w)]);
    t.row(&["LLC (leakage+access)".into(), w(base.llc_w), w(coax.llc_w)]);
    t.row(&["CXL interface".into(), w(base.cxl_w), w(coax.cxl_w)]);
    t.row(&["DDR5 DIMMs".into(), w(base.dimm_w), w(coax.dimm_w)]);
    t.row(&["Total system power".into(), w(base.total_w), w(coax.total_w)]);
    t.row(&["Average CPI (measured)".into(), f2(base.cpi), f2(coax.cpi)]);
    t.row(&["Relative perf/W".into(), "1.00".into(), f2(coax.perf_per_watt / base.perf_per_watt)]);
    t.row(&[
        "EDP (lower=better)".into(),
        format!("{:.0}", base.edp),
        format!("{:.0} ({:.2}x)", coax.edp, coax.edp / base.edp),
    ]);
    t.row(&[
        "ED2P (lower=better)".into(),
        format!("{:.0}", base.ed2p),
        format!("{:.0} ({:.2}x)", coax.ed2p, coax.ed2p / base.ed2p),
    ]);
    t.print();
    t.write_csv("table5_power_edp");
    println!("\npaper: 646 W vs 931 W; CPI 2.05 vs 1.48; perf/W 0.96; EDP 0.75x; ED2P 0.53x");
}
