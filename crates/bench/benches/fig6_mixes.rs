//! Fig. 6: COAXIAL-4x speedup for ten random 12-workload mixes.

use coaxial_bench::{banner, f2, Table};
use coaxial_system::experiments::{fig6_mixes_full, geomean, Budget};

fn main() {
    banner("Figure 6", "Workload-mix speedups (COAXIAL-4x over DDR baseline)");
    let weighted = std::env::var("COAXIAL_F6_WEIGHTED").is_ok();
    let rows = fig6_mixes_full(10, Budget::default(), weighted);
    let mut t = Table::new(&["mix", "speedup", "weighted-speedup", "workloads"]);
    for r in &rows {
        t.row(&[
            format!("mix-{}", r.mix_id),
            f2(r.speedup),
            r.weighted_speedup_ratio.map(f2).unwrap_or_else(|| "-".into()),
            r.workloads.join("+"),
        ]);
    }
    t.print();
    t.write_csv("fig6_mixes");

    let min = rows.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);
    let max = rows.iter().map(|r| r.speedup).fold(0.0, f64::max);
    let gm = geomean(rows.iter().map(|r| r.speedup));
    println!(
        "\nmin/max/geomean mix speedup: {:.2}x / {:.2}x / {:.2}x   (paper: 1.5x / 1.9x / 1.7x)",
        min, max, gm
    );
    if !weighted {
        println!("(set COAXIAL_F6_WEIGHTED=1 for the weighted-speedup column)");
    }
}
