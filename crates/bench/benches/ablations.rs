//! Extension: ablation studies of design choices the paper fixes.
//!
//! 1. **DRAM page policy** — open vs open-adaptive vs closed rows;
//! 2. **FR-FCFS scheduling window** — how far the picker looks;
//! 3. **CALM_R monitoring epoch** — reactivity vs estimate noise;
//! 4. **L2 MSHR count** — per-core MLP ceiling;
//! 5. **L2 prefetching** — next-line and IP-stride on both systems,
//!    demonstrating the paper's bandwidth-funds-latency-tolerance thesis
//!    with a second mechanism beside CALM;
//! 6. **DRAM speed grade** — every DDR5 timing scaled together;
//! 7. **slice size** — core-count scaling of the COAXIAL win;
//! 8. **seed stability** — headline-number sensitivity to the RNG draw.
//!
//! Sections 5–8 run through the knob-coverage sweeps in
//! `coaxial_system::experiments`, so they parallelize over `COAXIAL_JOBS`
//! like every figure sweep.

use coaxial_bench::{banner, f2, Table};
use coaxial_cache::PrefetchPolicy;
use coaxial_dram::config::PagePolicy;
use coaxial_system::experiments::{
    core_scaling, dram_timing_scale, prefetch_sweep, seed_stability, Budget,
};
use coaxial_system::{Simulation, SystemConfig};
use coaxial_workloads::Workload;

fn budget() -> u64 {
    std::env::var("COAXIAL_INSTR").ok().and_then(|v| v.parse().ok()).unwrap_or(40_000)
}

fn sweep_budget() -> Budget {
    Budget { instructions: budget(), warmup: 0 }
}

const WORKLOADS: [&str; 6] = ["stream-triad", "lbm", "PageRank", "mcf", "masstree", "kmeans"];

fn ipc(cfg: SystemConfig, wl: &str) -> f64 {
    let w = Workload::by_name(wl).expect("workload");
    Simulation::new(cfg, w).instructions_per_core(budget()).run().ipc
}

fn geomean(vals: impl Iterator<Item = f64>) -> f64 {
    let (mut s, mut n) = (0.0, 0);
    for v in vals {
        s += v.ln();
        n += 1;
    }
    (s / n as f64).exp()
}

fn main() {
    banner("Ablations", "Design-choice sensitivity (extension; not a paper figure)");

    // ── 1. Page policy ────────────────────────────────────────────────
    println!("1) DRAM page policy (baseline IPC, relative to open-adaptive)\n");
    let mut t = Table::new(&["workload", "open-adaptive", "open", "closed"]);
    for wl in WORKLOADS {
        let adaptive = ipc(SystemConfig::ddr_baseline(), wl);
        let open = ipc(
            SystemConfig::ddr_baseline().with_dram(
                coaxial_dram::DramConfig::ddr5_4800().with_page_policy(PagePolicy::Open),
            ),
            wl,
        );
        let closed = ipc(
            SystemConfig::ddr_baseline().with_dram(
                coaxial_dram::DramConfig::ddr5_4800().with_page_policy(PagePolicy::Closed),
            ),
            wl,
        );
        t.row(&[wl.into(), "1.00".into(), f2(open / adaptive), f2(closed / adaptive)]);
    }
    t.print();
    t.write_csv("ablation_page_policy");

    // ── 2. Scheduler window ───────────────────────────────────────────
    println!("\n2) FR-FCFS scheduling window (baseline IPC relative to window=16)\n");
    let mut t = Table::new(&["workload", "w=1 (FCFS)", "w=4", "w=16", "w=48"]);
    for wl in WORKLOADS {
        let base = ipc(SystemConfig::ddr_baseline(), wl);
        let at = |w: usize| {
            ipc(
                SystemConfig::ddr_baseline()
                    .with_dram(coaxial_dram::DramConfig::ddr5_4800().with_sched_window(w)),
                wl,
            ) / base
        };
        t.row(&[wl.into(), f2(at(1)), f2(at(4)), "1.00".into(), f2(at(48))]);
    }
    t.print();
    t.write_csv("ablation_sched_window");

    // ── 3. CALM epoch ─────────────────────────────────────────────────
    println!("\n3) CALM_R epoch (COAXIAL-4x IPC relative to the 8192-cycle default)\n");
    let mut t = Table::new(&["workload", "1k", "8k (default)", "64k"]);
    for wl in WORKLOADS {
        let def = ipc(SystemConfig::coaxial_4x(), wl);
        let short = ipc(SystemConfig::coaxial_4x().with_calm_epoch(1024), wl);
        let long = ipc(SystemConfig::coaxial_4x().with_calm_epoch(65536), wl);
        t.row(&[wl.into(), f2(short / def), "1.00".into(), f2(long / def)]);
    }
    t.print();
    t.write_csv("ablation_calm_epoch");

    // ── 4. MSHR count ─────────────────────────────────────────────────
    println!("\n4) L2 MSHRs (COAXIAL-4x IPC relative to 16; MLP ceiling)\n");
    let mut t = Table::new(&["workload", "4", "8", "16 (default)", "32"]);
    for wl in WORKLOADS {
        let w = Workload::by_name(wl).unwrap();
        let at = |mshrs: usize| {
            // MSHR count lives in HierarchyConfig; thread it via a custom run.
            let cfg = SystemConfig::coaxial_4x();
            let mut hier = coaxial_cache::HierarchyConfig::table_iii(
                cfg.functional.cores,
                cfg.ddr_channels(),
                cfg.functional.llc_mb_per_core,
                cfg.peak_bandwidth_gbs(),
                cfg.timing.calm,
            );
            hier.l2_mshrs = mshrs;
            run_custom(&cfg, hier, w)
        };
        let base = at(16);
        t.row(&[wl.into(), f2(at(4) / base), f2(at(8) / base), "1.00".into(), f2(at(32) / base)]);
    }
    t.print();
    t.write_csv("ablation_mshrs");

    // ── 5. Prefetching ────────────────────────────────────────────────
    println!("\n5) L2 prefetching (IPC relative to no-prefetch, per system)\n");
    let mut t = Table::new(&[
        "workload",
        "base next-line",
        "base ip-stride",
        "coax next-line",
        "coax ip-stride",
    ]);
    let policies = [PrefetchPolicy::NextLine { degree: 2 }, PrefetchPolicy::IpStride { degree: 4 }];
    let rows = prefetch_sweep(&policies, &WORKLOADS, sweep_budget());
    let mut gains: [Vec<f64>; 4] = Default::default();
    for (wl, pair) in WORKLOADS.iter().zip(rows.chunks_exact(policies.len())) {
        let vals = [
            pair[0].base_rel_ipc,
            pair[1].base_rel_ipc,
            pair[0].coax_rel_ipc,
            pair[1].coax_rel_ipc,
        ];
        for (v, g) in vals.iter().zip(gains.iter_mut()) {
            g.push(*v);
        }
        t.row(&[(*wl).into(), f2(vals[0]), f2(vals[1]), f2(vals[2]), f2(vals[3])]);
    }
    t.row(&[
        "geomean".into(),
        f2(geomean(gains[0].iter().copied())),
        f2(geomean(gains[1].iter().copied())),
        f2(geomean(gains[2].iter().copied())),
        f2(geomean(gains[3].iter().copied())),
    ]);
    t.print();
    t.write_csv("ablation_prefetch");
    println!(
        "\nexpectation: prefetch gains should be larger (or losses smaller) on COAXIAL than \
         on the bandwidth-starved baseline — the same asymmetry the paper shows for CALM."
    );

    // ── 6. DRAM speed grade ───────────────────────────────────────────
    println!("\n6) DRAM speed grade (geomean IPC; every DDR5 timing scaled together)\n");
    let mut t = Table::new(&["timing scale", "baseline", "COAXIAL-4x"]);
    for r in dram_timing_scale(&[0.75, 1.0, 1.5], &WORKLOADS, sweep_budget()) {
        t.row(&[format!("{:.2}x", r.factor), f2(r.base_geomean_ipc), f2(r.coax_geomean_ipc)]);
    }
    t.print();
    t.write_csv("ablation_dram_speed_grade");

    // ── 7. Slice size ─────────────────────────────────────────────────
    println!("\n7) slice size (geomean IPC and COAXIAL speedup per core count)\n");
    let mut t = Table::new(&["cores", "baseline", "COAXIAL-4x", "speedup"]);
    for r in core_scaling(&[6, 12, 24], &WORKLOADS, sweep_budget()) {
        t.row(&[
            r.cores.to_string(),
            f2(r.base_geomean_ipc),
            f2(r.coax_geomean_ipc),
            f2(r.speedup),
        ]);
    }
    t.print();
    t.write_csv("ablation_core_scaling");

    // ── 8. Seed stability ─────────────────────────────────────────────
    println!("\n8) seed stability (COAXIAL-4x geomean IPC per RNG seed)\n");
    let mut t = Table::new(&["seed", "geomean IPC"]);
    for r in seed_stability(&[0xC0A51A1, 1, 2, 3], &WORKLOADS, sweep_budget()) {
        t.row(&[format!("{:#x}", r.seed), f2(r.geomean_ipc)]);
    }
    t.print();
    t.write_csv("ablation_seed_stability");
}

/// Run a simulation with a hand-built hierarchy config (for knobs that
/// `SystemConfig` does not expose directly).
fn run_custom(
    cfg: &SystemConfig,
    hier: coaxial_cache::HierarchyConfig,
    w: &'static Workload,
) -> f64 {
    use coaxial_cpu::{Core, CoreParams};
    use coaxial_dram::MemoryBackend;

    fn drive<B: MemoryBackend>(
        cfg: &SystemConfig,
        hier_cfg: coaxial_cache::HierarchyConfig,
        backend: B,
        w: &'static Workload,
        instructions: u64,
    ) -> f64 {
        let mut h = coaxial_cache::Hierarchy::new(hier_cfg, backend);
        let mut cores: Vec<Core> = (0..cfg.functional.cores)
            .map(|i| {
                Core::new(
                    coaxial_sim::small_u32(i),
                    CoreParams::default(),
                    w.trace(coaxial_sim::small_u32(i), cfg.functional.seed),
                )
            })
            .collect();
        let mut now = 0u64;
        loop {
            h.tick(now);
            while let Some((core, id)) = h.pop_completion() {
                cores[core as usize].on_memory_complete(id);
            }
            for c in cores.iter_mut() {
                c.tick(now, &mut h);
            }
            now += 1;
            if cores.iter().all(|c| c.retired >= instructions) || now > instructions * 150 {
                break;
            }
        }
        cores.iter().map(|c| c.ipc()).sum::<f64>() / cores.len() as f64
    }

    let instructions = budget();
    match &cfg.timing.memory {
        coaxial_system::MemorySystemKind::DirectDdr { channels } => {
            let b = coaxial_dram::MultiChannel::new(&cfg.timing.dram, *channels);
            drive(cfg, hier, b, w, instructions)
        }
        coaxial_system::MemorySystemKind::Cxl { link, channels } => {
            let b = coaxial_cxl::CxlMemory::new(link, &cfg.timing.dram, *channels);
            drive(cfg, hier, b, w, instructions)
        }
    }
}
