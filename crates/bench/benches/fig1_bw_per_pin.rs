//! Fig. 1: bandwidth per processor pin for DDR and PCIe generations,
//! normalized to PCIe 1.0 (log-scale series in the paper).

use coaxial_bench::plot::{line_chart, write_svg, ChartOptions, Series};
use coaxial_bench::{banner, f2, Table};
use coaxial_system::pinout;

fn main() {
    banner("Figure 1", "Bandwidth per processor pin, normalized to PCIe 1.0");
    let mut t = Table::new(&["interface", "family", "year", "GB/s", "pins", "GB/s/pin", "norm"]);
    let norm = pinout::normalized_to_pcie1();
    for (p, (_, n)) in pinout::bandwidth_per_pin_table().iter().zip(norm) {
        t.row(&[
            p.name.to_string(),
            p.family.to_string(),
            p.year.to_string(),
            f2(p.bandwidth_gbs),
            p.pins.to_string(),
            format!("{:.4}", p.bw_per_pin()),
            f2(n),
        ]);
    }
    t.print();
    t.write_csv("fig1_bw_per_pin");

    // Fig. 1 as a per-family time series, log-y like the paper.
    let table = pinout::bandwidth_per_pin_table();
    let pcie1 = 0.0625;
    for family in ["DDR", "PCIe"] {
        let pts: Vec<(f64, f64)> = table
            .iter()
            .filter(|p| p.family == family)
            .map(|p| (p.year as f64, p.bw_per_pin() / pcie1))
            .collect();
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let svg = line_chart(
            &xs,
            &[Series::new(family, pts.iter().map(|p| p.1).collect())],
            &ChartOptions {
                title: format!("Fig. 1: {family} bandwidth per pin (norm. to PCIe 1.0)"),
                y_label: "norm. GB/s per pin".into(),
                log_y: true,
                ..Default::default()
            },
        );
        write_svg(&format!("fig1_{}", family.to_lowercase()), &svg);
    }
    println!(
        "\nPCIe 5.0 vs DDR5-4800 bandwidth/pin: {:.2}x (paper: ~4x)",
        pinout::pcie5_vs_ddr5_ratio()
    );
}
