//! Fig. 10: COAXIAL's performance under different unloaded CXL latency
//! premiums (50 ns default, 70 ns pessimistic), plus §VII's 10 ns OMI-like
//! projection.

use coaxial_bench::plot::{bar_chart, write_svg, ChartOptions, Series};
use coaxial_bench::{banner, f2, Table};
use coaxial_system::experiments::{fig10_latency_sensitivity, geomean, Budget};

const LATENCIES: [f64; 3] = [50.0, 70.0, 10.0];

fn main() {
    banner("Figure 10 (+§VII)", "Sensitivity to the CXL latency premium");
    let rows = fig10_latency_sensitivity(&LATENCIES, Budget::default());
    let mut t = Table::new(&["workload", "50 ns", "70 ns", "10 ns (OMI-like)"]);
    for r in &rows {
        let s: Vec<f64> = r.speedups.iter().map(|(_, v)| *v).collect();
        t.row(&[r.workload.clone(), f2(s[0]), f2(s[1]), f2(s[2])]);
    }
    t.print();
    t.write_csv("fig10_latency_sensitivity");

    let cats: Vec<String> = rows.iter().map(|r| r.workload.clone()).collect();
    let series: Vec<Series> = LATENCIES
        .iter()
        .enumerate()
        .map(|(i, ns)| {
            Series::new(&format!("{ns:.0} ns"), rows.iter().map(|r| r.speedups[i].1).collect())
        })
        .collect();
    let svg = bar_chart(
        &cats,
        &series,
        &ChartOptions {
            title: "Fig. 10: sensitivity to the CXL latency premium".into(),
            y_label: "speedup".into(),
            reference_line: Some(1.0),
            ..Default::default()
        },
    );
    write_svg("fig10_latency_sensitivity", &svg);

    for (i, ns) in LATENCIES.iter().enumerate() {
        let gm = geomean(rows.iter().map(|r| r.speedups[i].1));
        let losers = rows.iter().filter(|r| r.speedups[i].1 < 1.0).count();
        println!("{ns:>5.0} ns: geomean {:.2}x, {losers} workloads lose", gm);
    }
    println!(
        "\npaper: 50 ns -> 1.39x (7 losers); 70 ns -> 1.26x (10 losers); \
         10 ns -> 1.71x (no loser with CALM)"
    );
}
