//! Fig. 8: performance of COAXIAL-2x, COAXIAL-4x, and COAXIAL-asym,
//! normalized to the DDR baseline.

use coaxial_bench::plot::{bar_chart, write_svg, ChartOptions, Series};
use coaxial_bench::{banner, f2, Table};
use coaxial_system::experiments::{fig8_variants, geomean, Budget};

fn main() {
    banner("Figure 8", "COAXIAL design variants vs DDR baseline");
    let rows = fig8_variants(Budget::default());
    let mut t = Table::new(&["workload", "COAXIAL-2x", "COAXIAL-4x", "COAXIAL-5x", "COAXIAL-asym"]);
    for r in &rows {
        t.row(&[
            r.workload.clone(),
            f2(r.coaxial_2x),
            f2(r.coaxial_4x),
            f2(r.coaxial_5x),
            f2(r.coaxial_asym),
        ]);
    }
    t.print();
    t.write_csv("fig8_variants");

    let cats: Vec<String> = rows.iter().map(|r| r.workload.clone()).collect();
    let svg = bar_chart(
        &cats,
        &[
            Series::new("2x", rows.iter().map(|r| r.coaxial_2x).collect()),
            Series::new("4x", rows.iter().map(|r| r.coaxial_4x).collect()),
            Series::new("asym", rows.iter().map(|r| r.coaxial_asym).collect()),
        ],
        &ChartOptions {
            title: "Fig. 8: COAXIAL variants vs DDR baseline".into(),
            y_label: "speedup".into(),
            reference_line: Some(1.0),
            ..Default::default()
        },
    );
    write_svg("fig8_variants", &svg);

    let gm2 = geomean(rows.iter().map(|r| r.coaxial_2x));
    let gm4 = geomean(rows.iter().map(|r| r.coaxial_4x));
    let gm5 = geomean(rows.iter().map(|r| r.coaxial_5x));
    let gma = geomean(rows.iter().map(|r| r.coaxial_asym));
    println!(
        "\ngeomean speedups: 2x = {:.2}, 4x = {:.2}, 5x = {:.2}, asym = {:.2}   \
         (paper: 1.17 / 1.39 / — / 1.52; asym beats 4x by ~13%; 5x is the iso-pin\n\
         Table II point the paper sizes but does not simulate)",
        gm2, gm4, gm5, gma
    );
    let asym_over_4x = gma / gm4;
    println!("asym over 4x: {:.1}%", (asym_over_4x - 1.0) * 100.0);
    let regressed = rows.iter().filter(|r| r.coaxial_asym < r.coaxial_4x * 0.97).count();
    println!("workloads hurt by asym's reduced write bandwidth: {regressed}   (paper: 0)");
}
