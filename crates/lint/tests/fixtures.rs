//! Fixture self-tests: every lint ID must fire on its seeded `_bad.rs`
//! fixture and stay silent on the `_good.rs` twin, so a regression in a
//! rule (or the lexer under it) is caught by `cargo test` rather than by
//! a violation silently sailing through the gate.

use coaxial_lint::rules::{self, FileCtx};
use coaxial_lint::Finding;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Run one rule on a fixture, pretending it lives on a model-crate path.
fn run(rule: fn(&FileCtx) -> Vec<Finding>, name: &str) -> Vec<Finding> {
    let src = fixture(name);
    let ctx = FileCtx::new("crates/cache/src/fixture.rs", &src);
    rule(&ctx)
}

fn assert_fires(id: &str, findings: &[Finding], at_least: usize) {
    assert!(
        findings.len() >= at_least && findings.iter().all(|f| f.id == id),
        "expected >= {at_least} {id} findings, got: {findings:#?}"
    );
}

#[test]
fn d01_bad_fires_good_is_clean() {
    // One HashMap `.iter()` and one `for … in &HashSet`.
    assert_fires("D01", &run(rules::check_d01, "d01_bad.rs"), 2);
    assert_eq!(run(rules::check_d01, "d01_good.rs"), vec![]);
}

#[test]
fn d02_bad_fires_good_is_clean() {
    // Instant (twice: import + use) and SystemTime.
    assert_fires("D02", &run(rules::check_d02, "d02_bad.rs"), 2);
    assert_eq!(run(rules::check_d02, "d02_good.rs"), vec![]);
}

#[test]
fn t01_bad_fires_good_is_clean() {
    // Both `total_cycles as u32` and `latency as u32`.
    assert_fires("T01", &run(rules::check_t01, "t01_bad.rs"), 2);
    // try_into and a non-timing `core_id as u8` are fine.
    assert_eq!(run(rules::check_t01, "t01_good.rs"), vec![]);
}

#[test]
fn t02_bad_fires_good_is_clean() {
    // Float storage (`total_latency_cycles: f64`) and float accumulation
    // (`+= latency as f64`).
    assert_fires("T02", &run(rules::check_t02, "t02_bad.rs"), 2);
    // Integer accumulators, a `mean_…_ns` report field, and a one-shot
    // report-boundary conversion are all fine.
    assert_eq!(run(rules::check_t02, "t02_good.rs"), vec![]);
}

#[test]
fn z01_bad_fires_good_is_clean() {
    let bad = run(rules::check_z01, "z01_bad.rs");
    assert_fires("Z01", &bad, 1);
    assert!(bad[0].ident == "on_miss", "the unguarded call is the on_miss: {bad:#?}");
    assert_eq!(run(rules::check_z01, "z01_good.rs"), vec![]);
}

#[test]
fn u01_bad_fires_good_is_clean() {
    assert_fires("U01", &run(rules::check_u01, "u01_bad.rs"), 1);
    // SAFETY directly above, and SAFETY above with an attribute between.
    assert_eq!(run(rules::check_u01, "u01_good.rs"), vec![]);
}

#[test]
fn c01_orphaned_timing_parameter_is_caught() {
    let config = fixture("c01/config_bad.rs");
    let constraints = fixture("c01/constraints.rs");
    let findings = rules::check_c01(
        "c01/config_bad.rs",
        &config,
        "FixtureTimings",
        &[("constraints.rs", &constraints)],
    );
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].id, "C01");
    assert_eq!(findings[0].ident, "t_orphan");
}

#[test]
fn c01_fully_enforced_config_is_clean() {
    let config = fixture("c01/config_good.rs");
    let constraints = fixture("c01/constraints.rs");
    let findings = rules::check_c01(
        "c01/config_good.rs",
        &config,
        "FixtureTimings",
        &[("constraints.rs", &constraints)],
    );
    assert_eq!(findings, vec![]);
}

/// C01 against the real tree: deliberately orphaning a DRAM timing
/// parameter must be caught. We simulate "deleting every read of t_faw"
/// by renaming the identifier in the constraint sources, which is
/// equivalent to the constraint code no longer reading it.
#[test]
fn c01_catches_orphaned_dram_timing_in_real_tree() {
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let read = |rel: &str| std::fs::read_to_string(format!("{root}/{rel}")).unwrap();
    let config = read("crates/dram/src/config.rs");
    let bank = read("crates/dram/src/bank.rs");
    let sub = read("crates/dram/src/subchannel.rs").replace("t_faw", "t_faw_unread");
    let chan = read("crates/dram/src/channel.rs").replace("t_faw", "t_faw_unread");
    let bank = bank.replace("t_faw", "t_faw_unread");
    let findings = rules::check_c01(
        "crates/dram/src/config.rs",
        &config,
        "DramTimings",
        &[("bank.rs", &bank), ("subchannel.rs", &sub), ("channel.rs", &chan)],
    );
    assert_eq!(findings.len(), 1, "only t_faw orphaned: {findings:#?}");
    assert_eq!(findings[0].ident, "t_faw");

    // And the untouched tree is fully enforced.
    let sub = read("crates/dram/src/subchannel.rs");
    let chan = read("crates/dram/src/channel.rs");
    let bank = read("crates/dram/src/bank.rs");
    let clean = rules::check_c01(
        "crates/dram/src/config.rs",
        &config,
        "DramTimings",
        &[("bank.rs", &bank), ("subchannel.rs", &sub), ("channel.rs", &chan)],
    );
    assert_eq!(clean, vec![], "every DramTimings field is read by the constraint code");
}

/// C01 against the real CXL tree: orphaning a link-transfer parameter
/// (same rename trick as the DRAM test above) must be caught.
#[test]
fn c01_catches_orphaned_cxl_link_parameter_in_real_tree() {
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let read = |rel: &str| std::fs::read_to_string(format!("{root}/{rel}")).unwrap();
    let config = read("crates/cxl/src/config.rs");
    let chan = read("crates/cxl/src/channel.rs").replace("port_latency", "port_latency_unread");
    let mem = read("crates/cxl/src/memory.rs").replace("port_latency", "port_latency_unread");
    let findings = rules::check_c01(
        "crates/cxl/src/config.rs",
        &config,
        "CxlLinkConfig",
        &[("channel.rs", &chan), ("memory.rs", &mem)],
    );
    let idents: Vec<&str> = findings.iter().map(|f| f.ident.as_str()).collect();
    assert!(idents.contains(&"port_latency"), "orphaned port_latency caught: {findings:#?}");

    // The untouched tree flags exactly the report-only `name` tag (the one
    // CxlLinkConfig field the link pipeline legitimately never reads),
    // which lint-allow.toml suppresses with that justification.
    let chan = read("crates/cxl/src/channel.rs");
    let mem = read("crates/cxl/src/memory.rs");
    let clean = rules::check_c01(
        "crates/cxl/src/config.rs",
        &config,
        "CxlLinkConfig",
        &[("channel.rs", &chan), ("memory.rs", &mem)],
    );
    let idents: Vec<&str> = clean.iter().map(|f| f.ident.as_str()).collect();
    assert_eq!(idents, vec!["name"], "every transfer-cost field is read: {clean:#?}");
}

#[test]
fn malformed_allow_entry_missing_reason_is_rejected() {
    let bad = r#"
[[allow]]
lint = "D01"
path = "crates/sim/src/lru.rs"
"#;
    let err = coaxial_lint::allow::parse(bad).unwrap_err();
    assert!(err.contains("reason"), "{err}");
}

#[test]
fn workspace_lint_allow_file_parses_and_every_entry_has_a_reason() {
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(format!("{root}/lint-allow.toml")).unwrap();
    let entries = coaxial_lint::allow::parse(&text).expect("checked-in lint-allow.toml is valid");
    for e in &entries {
        assert!(e.reason.trim().len() >= 10, "entry at line {} lacks a real reason", e.line);
    }
}
