//! Fixture self-tests: every lint ID must fire on its seeded `_bad.rs`
//! fixture and stay silent on the `_good.rs` twin, so a regression in a
//! rule (or the lexer/parser/symbol graph under it) is caught by
//! `cargo test` rather than by a violation silently sailing through the
//! gate. The cross-file rules additionally get real-tree mutation tests:
//! inject a violation into the actual workspace sources and assert the
//! rule catches exactly it.

use std::collections::BTreeSet;

use coaxial_lint::rules::{self, CoverageSpec, FileCtx, IsolationSpec, MetricSpec, SweepSpec};
use coaxial_lint::symbols::Workspace;
use coaxial_lint::Finding;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn repo_root() -> String {
    format!("{}/../..", env!("CARGO_MANIFEST_DIR"))
}

/// Run one rule on a fixture, pretending it lives on a model-crate path.
fn run(rule: impl Fn(&FileCtx) -> Vec<Finding>, name: &str) -> Vec<Finding> {
    let src = fixture(name);
    let ctx = FileCtx::new("crates/cache/src/fixture.rs", &src);
    rule(&ctx)
}

fn assert_fires(id: &str, findings: &[Finding], at_least: usize) {
    assert!(
        findings.len() >= at_least && findings.iter().all(|f| f.id == id),
        "expected >= {at_least} {id} findings, got: {findings:#?}"
    );
}

#[test]
fn d01_bad_fires_good_is_clean() {
    // `counts.iter()`, `for … in &HashSet`, and two fn-return cases: a
    // binding initialized from a hash-returning fn and a direct
    // `build_index().keys()` chain.
    let hash_fns = |src: &str| {
        Workspace::from_sources(&[("crates/cache/src/fixture.rs", src)]).hash_returning_fns()
    };
    let bad = fixture("d01_bad.rs");
    let ctx = FileCtx::new("crates/cache/src/fixture.rs", &bad);
    let findings = rules::check_d01(&ctx, &hash_fns(&bad));
    assert_fires("D01", &findings, 4);
    let idents: BTreeSet<&str> = findings.iter().map(|f| f.ident.as_str()).collect();
    assert!(idents.contains("idx"), "fn-return binding resolved: {findings:#?}");
    assert!(idents.contains("build_index"), "direct call chain resolved: {findings:#?}");

    let good = fixture("d01_good.rs");
    let ctx = FileCtx::new("crates/cache/src/fixture.rs", &good);
    assert_eq!(rules::check_d01(&ctx, &hash_fns(&good)), vec![]);
}

#[test]
fn d02_bad_fires_good_is_clean() {
    // Instant (twice: import + use) and SystemTime.
    assert_fires("D02", &run(rules::check_d02, "d02_bad.rs"), 2);
    assert_eq!(run(rules::check_d02, "d02_good.rs"), vec![]);
}

#[test]
fn t01_bad_fires_good_is_clean() {
    // Both `total_cycles as u32` and `latency as u32`.
    assert_fires("T01", &run(rules::check_t01, "t01_bad.rs"), 2);
    // try_into and a non-timing `core_id as u8` are fine.
    assert_eq!(run(rules::check_t01, "t01_good.rs"), vec![]);
}

#[test]
fn t02_bad_fires_good_is_clean() {
    // Float storage (`total_latency_cycles: f64`) and float accumulation
    // (`+= latency as f64`).
    assert_fires("T02", &run(rules::check_t02, "t02_bad.rs"), 2);
    // Integer accumulators, a `mean_…_ns` report field, and a one-shot
    // report-boundary conversion are all fine.
    assert_eq!(run(rules::check_t02, "t02_good.rs"), vec![]);
}

#[test]
fn z01_bad_fires_good_is_clean() {
    let sinks: Vec<String> =
        ["on_miss", "on_span", "on_reset"].iter().map(|s| (*s).to_string()).collect();
    let bad = run(|ctx| rules::check_z01(ctx, &sinks), "z01_bad.rs");
    assert_fires("Z01", &bad, 1);
    assert!(bad[0].ident == "on_miss", "the unguarded call is the on_miss: {bad:#?}");
    assert_eq!(run(|ctx| rules::check_z01(ctx, &sinks), "z01_good.rs"), vec![]);
}

#[test]
fn u01_bad_fires_good_is_clean() {
    assert_fires("U01", &run(rules::check_u01, "u01_bad.rs"), 1);
    // SAFETY directly above, and SAFETY above with an attribute between.
    assert_eq!(run(rules::check_u01, "u01_good.rs"), vec![]);
}

/// Run the unit dataflow rules on one fixture file as a tiny workspace.
fn run_units(name: &str) -> coaxial_lint::flow::UnitFindings {
    let src = fixture(name);
    let rel = "crates/cache/src/fixture.rs";
    let ws = Workspace::from_sources(&[(rel, &src)]);
    let ctxs = vec![FileCtx::new(rel, &src)];
    coaxial_lint::flow::check_units(&ctxs, &ws)
}

#[test]
fn q01_bad_fires_good_is_clean() {
    let bad = run_units("q01_bad.rs");
    assert_fires("Q01", &bad.q01, 3);
    let idents: BTreeSet<&str> = bad.q01.iter().map(|f| f.ident.as_str()).collect();
    assert!(idents.contains("deadline_ns"), "cross-unit let resolved: {:#?}", bad.q01);
    let good = run_units("q01_good.rs");
    assert_eq!(good.q01, vec![], "blessed conversions and ratio scaling are clean");
}

#[test]
fn q02_bad_fires_good_is_clean() {
    let bad = run_units("q02_bad.rs");
    assert_fires("Q02", &bad.q02, 2);
    let idents: BTreeSet<&str> = bad.q02.iter().map(|f| f.ident.as_str()).collect();
    assert!(idents.contains("2.4") && idents.contains("NS_PER_CYCLE"), "{:#?}", bad.q02);
    let good = run_units("q02_good.rs");
    assert_eq!(good.q02, vec![], "a non-adjacent 2.4 config value is not a conversion");
}

#[test]
fn q03_bad_fires_good_is_clean() {
    let bad = run_units("q03_bad.rs");
    assert_fires("Q03", &bad.q03, 1);
    assert_eq!(bad.q03[0].ident, "window_ns", "{:#?}", bad.q03);
    let good = run_units("q03_good.rs");
    assert_eq!(good.q03, vec![], "a converted write satisfies the name's claim");
}

#[test]
fn c01_orphaned_timing_parameter_is_caught() {
    let config = fixture("c01/config_bad.rs");
    let constraints = fixture("c01/constraints.rs");
    let findings = rules::check_c01(
        "c01/config_bad.rs",
        &config,
        "FixtureTimings",
        &[("constraints.rs", &constraints)],
    );
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].id, "C01");
    assert_eq!(findings[0].ident, "t_orphan");
}

#[test]
fn c01_fully_enforced_config_is_clean() {
    let config = fixture("c01/config_good.rs");
    let constraints = fixture("c01/constraints.rs");
    let findings = rules::check_c01(
        "c01/config_good.rs",
        &config,
        "FixtureTimings",
        &[("constraints.rs", &constraints)],
    );
    assert_eq!(findings, vec![]);
}

/// C01 against the real tree: deliberately orphaning a DRAM timing
/// parameter must be caught. We simulate "deleting every read of t_faw"
/// by renaming the identifier in the constraint sources, which is
/// equivalent to the constraint code no longer reading it.
#[test]
fn c01_catches_orphaned_dram_timing_in_real_tree() {
    let root = repo_root();
    let read = |rel: &str| std::fs::read_to_string(format!("{root}/{rel}")).unwrap();
    let config = read("crates/dram/src/config.rs");
    let bank = read("crates/dram/src/bank.rs");
    let sub = read("crates/dram/src/subchannel.rs").replace("t_faw", "t_faw_unread");
    let chan = read("crates/dram/src/channel.rs").replace("t_faw", "t_faw_unread");
    let bank = bank.replace("t_faw", "t_faw_unread");
    let findings = rules::check_c01(
        "crates/dram/src/config.rs",
        &config,
        "DramTimings",
        &[("bank.rs", &bank), ("subchannel.rs", &sub), ("channel.rs", &chan)],
    );
    assert_eq!(findings.len(), 1, "only t_faw orphaned: {findings:#?}");
    assert_eq!(findings[0].ident, "t_faw");

    // And the untouched tree is fully enforced.
    let sub = read("crates/dram/src/subchannel.rs");
    let chan = read("crates/dram/src/channel.rs");
    let bank = read("crates/dram/src/bank.rs");
    let clean = rules::check_c01(
        "crates/dram/src/config.rs",
        &config,
        "DramTimings",
        &[("bank.rs", &bank), ("subchannel.rs", &sub), ("channel.rs", &chan)],
    );
    assert_eq!(clean, vec![], "every DramTimings field is read by the constraint code");
}

/// C01 against the real CXL tree: orphaning a link-transfer parameter
/// (same rename trick as the DRAM test above) must be caught.
#[test]
fn c01_catches_orphaned_cxl_link_parameter_in_real_tree() {
    let root = repo_root();
    let read = |rel: &str| std::fs::read_to_string(format!("{root}/{rel}")).unwrap();
    let config = read("crates/cxl/src/config.rs");
    let chan = read("crates/cxl/src/channel.rs").replace("port_latency", "port_latency_unread");
    let mem = read("crates/cxl/src/memory.rs").replace("port_latency", "port_latency_unread");
    let findings = rules::check_c01(
        "crates/cxl/src/config.rs",
        &config,
        "CxlLinkConfig",
        &[("channel.rs", &chan), ("memory.rs", &mem)],
    );
    let idents: Vec<&str> = findings.iter().map(|f| f.ident.as_str()).collect();
    assert!(idents.contains(&"port_latency"), "orphaned port_latency caught: {findings:#?}");

    // The untouched tree flags exactly the report-only `name` tag (the one
    // CxlLinkConfig field the link pipeline legitimately never reads),
    // which lint-allow.toml suppresses with that justification.
    let chan = read("crates/cxl/src/channel.rs");
    let mem = read("crates/cxl/src/memory.rs");
    let clean = rules::check_c01(
        "crates/cxl/src/config.rs",
        &config,
        "CxlLinkConfig",
        &[("channel.rs", &chan), ("memory.rs", &mem)],
    );
    let idents: Vec<&str> = clean.iter().map(|f| f.ident.as_str()).collect();
    assert_eq!(idents, vec!["name"], "every transfer-cost field is read: {clean:#?}");
}

// ---------------------------------------------------------------------------
// E01 / E02 / M01 fixture workspaces
// ---------------------------------------------------------------------------

const E_SPEC: [CoverageSpec<'static>; 1] =
    [CoverageSpec { struct_name: "FixtureCfg", config_rel: "crates/dram/src/config.rs" }];

#[test]
fn e01_unread_knob_is_caught_full_coverage_is_clean() {
    let config = fixture("e01/config.rs");
    let bad = fixture("e01/model_bad.rs");
    let ws = Workspace::from_sources(&[
        ("crates/dram/src/config.rs", &config),
        ("crates/dram/src/model.rs", &bad),
    ]);
    let findings = rules::check_e01(&ws, &E_SPEC);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!((findings[0].id, findings[0].ident.as_str()), ("E01", "unread_knob"));

    let good = fixture("e01/model_good.rs");
    let ws = Workspace::from_sources(&[
        ("crates/dram/src/config.rs", &config),
        ("crates/dram/src/model.rs", &good),
    ]);
    assert_eq!(rules::check_e01(&ws, &E_SPEC), vec![]);
}

#[test]
fn e02_unswept_knobs_are_caught_swept_tree_is_clean() {
    let spec = SweepSpec {
        structs: &[CoverageSpec {
            struct_name: "SweepCfg",
            config_rel: "crates/system/src/config.rs",
        }],
        exercise_files: &["crates/system/src/experiments.rs"],
        layer_files: &["crates/system/src/config.rs"],
    };
    let config = fixture("e02/config.rs");
    let bad = fixture("e02/experiments_bad.rs");
    let ws = Workspace::from_sources(&[
        ("crates/system/src/config.rs", &config),
        ("crates/system/src/experiments.rs", &bad),
    ]);
    let findings = rules::check_e02(&ws, &spec);
    let idents: Vec<&str> = findings.iter().map(|f| f.ident.as_str()).collect();
    // knob_a is swept through its builder; knob_b has only the default
    // ctor as a reachable writer; knob_c's builder is never called.
    assert_eq!(idents, vec!["knob_b", "knob_c"], "{findings:#?}");
    assert!(findings.iter().all(|f| f.id == "E02"));

    let good = fixture("e02/experiments_good.rs");
    let ws = Workspace::from_sources(&[
        ("crates/system/src/config.rs", &config),
        ("crates/system/src/experiments.rs", &good),
    ]);
    assert_eq!(rules::check_e02(&ws, &spec), vec![]);
}

#[test]
fn e03_timing_reads_on_the_prefill_graph_are_caught_good_is_clean() {
    let spec = IsolationSpec {
        timing_struct: "TimingCfg",
        config_rel: "crates/system/src/config.rs",
        timing_field: "timing",
        entry_prefix: "prefill",
        traversal: &["crates/system/src/", "crates/cache/src/"],
    };
    let config = fixture("e03/config.rs");
    let bad = fixture("e03/prefill_bad.rs");
    let ws = Workspace::from_sources(&[
        ("crates/system/src/config.rs", &config),
        ("crates/cache/src/prefill.rs", &bad),
    ]);
    let findings = rules::check_e03(&ws, &spec);
    assert!(findings.iter().all(|f| f.id == "E03"));
    let hits: BTreeSet<(&str, &str)> = findings
        .iter()
        .map(|f| {
            let fn_name = f.message.split('`').nth(1).unwrap_or("");
            (fn_name, f.ident.as_str())
        })
        .collect();
    // Direct read in the entry point, and the smuggled read in the helper
    // (`lookahead` is only *reachable* from prefill_depth) — each site
    // flags both the parent `timing` hop and the leaf field.
    assert!(hits.contains(&("prefill_warm", "link_ns")), "{findings:#?}");
    assert!(hits.contains(&("prefill_warm", "timing")), "{findings:#?}");
    assert!(hits.contains(&("lookahead", "dram")), "{findings:#?}");
    assert_eq!(findings.len(), 4, "{findings:#?}");

    // The good twin: functional-only warm loop, a ctor consuming timing
    // behind the stop-set, and a timing read in an unreachable fn.
    let good = fixture("e03/prefill_good.rs");
    let ws = Workspace::from_sources(&[
        ("crates/system/src/config.rs", &config),
        ("crates/cache/src/prefill.rs", &good),
    ]);
    assert_eq!(rules::check_e03(&ws, &spec), vec![]);
}

#[test]
fn m01_bad_paths_and_unstamped_variant_are_caught_good_is_clean() {
    let spec = MetricSpec {
        component_enum: "Component",
        enum_rel: "crates/telemetry/src/attribution.rs",
        record_struct: "Rec",
    };
    let telemetry = fixture("m01/telemetry.rs");
    let model_bad = fixture("m01/model_bad.rs");
    let export_bad = fixture("m01/export_bad.rs");
    let ws = Workspace::from_sources(&[
        ("crates/telemetry/src/attribution.rs", &telemetry),
        ("crates/cache/src/model.rs", &model_bad),
        ("crates/cxl/src/export.rs", &export_bad),
    ]);
    let findings = rules::check_m01(&ws, &spec);
    assert!(findings.iter().all(|f| f.id == "M01"));
    let idents: BTreeSet<&str> = findings.iter().map(|f| f.ident.as_str()).collect();
    assert!(idents.contains("Bad.Path"), "mixed-case path flagged: {findings:#?}");
    assert!(idents.contains("dup.path"), "cross-file duplicate flagged: {findings:#?}");
    assert!(idents.contains("BetaGap"), "zero-stamped variant flagged: {findings:#?}");
    assert_eq!(findings.len(), 3, "{findings:#?}");

    let model_good = fixture("m01/model_good.rs");
    let ws = Workspace::from_sources(&[
        ("crates/telemetry/src/attribution.rs", &telemetry),
        ("crates/cache/src/model.rs", &model_good),
    ]);
    assert_eq!(rules::check_m01(&ws, &spec), vec![]);
}

// ---------------------------------------------------------------------------
// E01 / E02 / M01 against the real tree (mutation + clean)
// ---------------------------------------------------------------------------

/// A (relative path, source rewriter) pair for mutation tests.
type Mutation<'a> = (&'a str, &'a dyn Fn(&str) -> String);

/// Load every workspace source, optionally rewriting one file's text.
fn real_workspace(mutate: Option<Mutation>) -> Workspace {
    let root = repo_root();
    let mut sources =
        coaxial_lint::workspace_sources(std::path::Path::new(&root)).expect("readable tree");
    if let Some((rel, f)) = mutate {
        let entry = sources
            .iter_mut()
            .find(|(r, _)| r == rel)
            .unwrap_or_else(|| panic!("{rel} not in workspace"));
        entry.1 = f(&entry.1);
    }
    let pairs: Vec<(&str, &str)> = sources.iter().map(|(r, s)| (r.as_str(), s.as_str())).collect();
    Workspace::from_sources(&pairs)
}

/// Injecting a phantom pub field into DramTimings must be flagged by both
/// E01 (never read) and E02 (never swept); the untouched tree is clean.
#[test]
fn e01_e02_catch_phantom_config_field_in_real_tree() {
    let add_field = |src: &str| {
        src.replace("pub t_faw: Cycle,", "pub t_faw: Cycle,\n    pub t_phantom: Cycle,")
    };
    let ws = real_workspace(Some(("crates/dram/src/config.rs", &add_field)));
    let e01: Vec<String> =
        rules::check_e01(&ws, rules::E01_STRUCTS).into_iter().map(|f| f.ident).collect();
    assert!(e01.contains(&"t_phantom".to_string()), "E01 misses the phantom field: {e01:?}");
    let e02: Vec<String> =
        rules::check_e02(&ws, &rules::E02_SPEC).into_iter().map(|f| f.ident).collect();
    assert!(e02.contains(&"t_phantom".to_string()), "E02 misses the phantom field: {e02:?}");

    let ws = real_workspace(None);
    assert_eq!(rules::check_e01(&ws, rules::E01_STRUCTS), vec![], "real tree E01-clean");
    assert_eq!(rules::check_e02(&ws, &rules::E02_SPEC), vec![], "real tree E02-clean");
}

/// Injecting a timing-half read into the real prefill replay must be
/// flagged by E03; the untouched tree is clean. The mutation models the
/// exact bug the rule exists for: scaling the prefill depth by a timing
/// knob, which would warm different state for two configs sharing one
/// functional-slice checkpoint key.
#[test]
fn e03_catches_timing_read_in_real_prefill_path() {
    let inject = |src: &str| {
        src.replace(
            "let llc_lines_total =",
            "let _depth_scale = self.config.timing.calm_epoch;\n        let llc_lines_total =",
        )
    };
    let ws = real_workspace(Some(("crates/system/src/server.rs", &inject)));
    let findings = rules::check_e03(&ws, &rules::E03_SPEC);
    let idents: BTreeSet<&str> = findings.iter().map(|f| f.ident.as_str()).collect();
    assert!(
        idents.contains("calm_epoch") && idents.contains("timing"),
        "E03 misses the injected timing read: {findings:#?}"
    );
    assert!(findings.iter().all(|f| f.path == "crates/system/src/server.rs"), "{findings:#?}");

    let ws = real_workspace(None);
    assert_eq!(rules::check_e03(&ws, &rules::E03_SPEC), vec![], "real tree E03-clean");
}

/// Injecting a phantom latency-component variant must be flagged by M01
/// as having no stamp site; the untouched tree is clean.
#[test]
fn m01_catches_unstamped_component_in_real_tree() {
    let add_variant = |src: &str| src.replace("    Noc,", "    Noc,\n    PhantomStage,");
    let ws = real_workspace(Some(("crates/telemetry/src/attribution.rs", &add_variant)));
    let idents: Vec<String> =
        rules::check_m01(&ws, &rules::M01_SPEC).into_iter().map(|f| f.ident).collect();
    assert!(
        idents.contains(&"PhantomStage".to_string()),
        "M01 misses the unstamped variant: {idents:?}"
    );

    let ws = real_workspace(None);
    assert_eq!(rules::check_m01(&ws, &rules::M01_SPEC), vec![], "real tree M01-clean");
}

/// Run the unit dataflow battery over the real tree, optionally rewriting
/// one file, and return just the (id, path, ident) triples of Q findings.
fn real_tree_units(mutate: Option<Mutation>) -> Vec<(String, String, String)> {
    let root = repo_root();
    let mut sources =
        coaxial_lint::workspace_sources(std::path::Path::new(&root)).expect("readable tree");
    if let Some((rel, f)) = mutate {
        let entry = sources.iter_mut().find(|(r, _)| r == rel).expect("rewrite target");
        entry.1 = f(&entry.1);
    }
    let pairs: Vec<(&str, &str)> = sources.iter().map(|(r, s)| (r.as_str(), s.as_str())).collect();
    let ws = Workspace::from_sources(&pairs);
    let ctxs: Vec<FileCtx> = sources.iter().map(|(rel, src)| FileCtx::new(rel, src)).collect();
    let u = coaxial_lint::flow::check_units(&ctxs, &ws);
    u.q01
        .into_iter()
        .chain(u.q02)
        .chain(u.q03)
        .map(|f| (f.id.to_string(), f.path, f.ident))
        .collect()
}

/// Injecting the canonical mixed-unit statement into a model crate must be
/// flagged by Q01 at the injected site; the untouched tree is clean.
#[test]
fn q01_catches_injected_mixed_addition_in_real_tree() {
    let inject = |src: &str| {
        format!(
            "{src}
pub fn phantom_mix(y_cycles: u64, z_ns: f64) -> f64 {{
                 let x_ns = y_cycles as f64 + z_ns;
    x_ns
}}
"
        )
    };
    let findings = real_tree_units(Some(("crates/dram/src/channel.rs", &inject)));
    assert!(
        findings.iter().any(|(id, path, _)| id == "Q01" && path == "crates/dram/src/channel.rs"),
        "Q01 misses the injected `let x_ns = y_cycles + z_ns`: {findings:#?}"
    );

    assert_eq!(real_tree_units(None), vec![], "real tree must be Q-clean");
}

/// Injecting a bare `* 2.4` conversion into a model crate must be flagged
/// by Q02 at the injected site.
#[test]
fn q02_catches_injected_bare_factor_in_real_tree() {
    let inject = |src: &str| {
        format!(
            "{src}
pub fn phantom_convert(total_cycles: u64) -> f64 {{
                 total_cycles as f64 * 2.4
}}
"
        )
    };
    let findings = real_tree_units(Some(("crates/cache/src/hierarchy.rs", &inject)));
    assert!(
        findings.iter().any(|(id, path, ident)| id == "Q02"
            && path == "crates/cache/src/hierarchy.rs"
            && ident == "2.4"),
        "Q02 misses the injected bare factor: {findings:#?}"
    );
}

/// The full gate on the real tree: no findings, and — mirroring the C01
/// orphan-suppression contract — zero stale suppressions, so no
/// lint-allow.toml entry for the new E/M rules can outlive its reason.
#[test]
fn real_tree_full_scan_is_clean_with_no_orphan_suppressions() {
    let root = repo_root();
    let report = coaxial_lint::lint_workspace(std::path::Path::new(&root)).unwrap();
    assert!(
        report.findings.is_empty(),
        "unsuppressed findings on the real tree: {:#?}",
        report.findings
    );
    assert!(
        report.stale_suppressions.is_empty(),
        "stale (orphaned) suppressions: {:#?}",
        report
            .stale_suppressions
            .iter()
            .map(|s| format!("{} @ {} (line {})", s.lint, s.path, s.line))
            .collect::<Vec<_>>()
    );
}

#[test]
fn json_report_shape_is_stable() {
    let report = coaxial_lint::Report {
        findings: vec![coaxial_lint::Finding {
            id: "E01",
            path: "crates/x/src/lib.rs".to_string(),
            line: 7,
            ident: "knob".to_string(),
            message: "a \"quoted\" message".to_string(),
        }],
        stale_suppressions: vec![],
        suppressed: 2,
        files: 9,
        timings: vec![],
    };
    assert_eq!(
        report.to_json(),
        "{\"findings\":[{\"id\":\"E01\",\"path\":\"crates/x/src/lib.rs\",\"line\":7,\
         \"ident\":\"knob\",\"message\":\"a \\\"quoted\\\" message\"}],\
         \"stale_suppressions\":[],\"suppressed\":2,\"files\":9,\"clean\":false}"
    );
}

/// The SARIF log must be valid-shaped 2.1.0: pinned byte-exactly for the
/// results half (the rule table tracks CATALOG, so only its envelope and
/// one sampled entry are pinned — appending a rule must not break CI).
#[test]
fn sarif_report_shape_is_stable() {
    let report = coaxial_lint::Report {
        findings: vec![coaxial_lint::Finding {
            id: "Q01",
            path: "crates/x/src/lib.rs".to_string(),
            line: 7,
            ident: "window_ns".to_string(),
            message: "a \"quoted\" message".to_string(),
        }],
        stale_suppressions: vec![],
        suppressed: 0,
        files: 1,
        timings: vec![],
    };
    let sarif = report.to_sarif();
    assert!(sarif.starts_with(concat!(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",",
        "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{",
        "\"name\":\"coaxial-lint\",\"rules\":["
    )));
    assert!(sarif.ends_with(concat!(
        "\"results\":[{\"ruleId\":\"Q01\",\"level\":\"error\",",
        "\"message\":{\"text\":\"a \\\"quoted\\\" message\"},",
        "\"locations\":[{\"physicalLocation\":{\"artifactLocation\":",
        "{\"uri\":\"crates/x/src/lib.rs\"},\"region\":{\"startLine\":7}}}]}]}]}"
    )));
    // Every catalog rule appears exactly once in the driver rule table.
    for l in coaxial_lint::CATALOG {
        assert_eq!(
            sarif.matches(&format!("{{\"id\":\"{}\",", l.id)).count(),
            1,
            "rule {} missing or duplicated in the SARIF rule table",
            l.id
        );
    }
}

#[test]
fn malformed_allow_entry_missing_reason_is_rejected() {
    let bad = r#"
[[allow]]
lint = "D01"
path = "crates/sim/src/lru.rs"
"#;
    let err = coaxial_lint::allow::parse(bad).unwrap_err();
    assert!(err.contains("reason"), "{err}");
}

#[test]
fn workspace_lint_allow_file_parses_and_every_entry_has_a_reason() {
    let root = repo_root();
    let text = std::fs::read_to_string(format!("{root}/lint-allow.toml")).unwrap();
    let entries = coaxial_lint::allow::parse(&text).expect("checked-in lint-allow.toml is valid");
    for e in &entries {
        assert!(e.reason.trim().len() >= 10, "entry at line {} lacks a real reason", e.line);
    }
}

#[test]
fn e04_bad_fires_good_is_clean() {
    let spec = rules::CliSpec {
        bin_rel: "src/bin/fixtool.rs",
        env_prefix: "FIXTURE_",
        env_exclude: &["FIXTURE_TMP"],
        env_doc_rels: &["src/env.rs"],
    };
    let doc = fixture("e04/env_doc.rs");
    let bad = fixture("e04/bad_bin.rs");
    let sources =
        vec![("src/bin/fixtool.rs".to_string(), bad), ("src/env.rs".to_string(), doc.clone())];
    let findings = rules::check_e04(&sources, &spec);
    assert_fires("E04", &findings, 4);
    let idents: BTreeSet<&str> = findings.iter().map(|f| f.ident.as_str()).collect();
    for want in ["--ghost", "prune", "--level", "FIXTURE_SECRET"] {
        assert!(idents.contains(want), "missing {want}: {findings:#?}");
    }

    let good = fixture("e04/good_bin.rs");
    let sources = vec![("src/bin/fixtool.rs".to_string(), good), ("src/env.rs".to_string(), doc)];
    assert_eq!(rules::check_e04(&sources, &spec), vec![]);
}

#[test]
fn e04_real_tree_is_clean_and_catches_mutations() {
    let sources =
        coaxial_lint::workspace_sources(std::path::Path::new(&repo_root())).expect("readable tree");
    assert_eq!(rules::check_e04(&sources, &rules::E04_SPEC), vec![]);

    // Strip the `--json` usage-header line: the parse arm is still there,
    // so the option became undiscoverable — forward E04.
    let mut mutated = sources.clone();
    let bin = mutated.iter_mut().find(|(rel, _)| rel == "src/bin/coaxial.rs").unwrap();
    bin.1 = bin
        .1
        .lines()
        .filter(|l| !(l.starts_with("//!") && l.contains("--json")))
        .collect::<Vec<_>>()
        .join("\n");
    let findings = rules::check_e04(&mutated, &rules::E04_SPEC);
    assert!(
        findings.iter().any(|f| f.id == "E04" && f.ident == "--json"),
        "expected a forward finding for --json: {findings:#?}"
    );

    // An env knob read somewhere but documented nowhere — env E04. The
    // name is assembled at runtime so this test file itself (which the
    // full-tree scan covers) doesn't contain the undocumented literal.
    let knob = format!("{}{}", "COAXIAL_", "BOGUS_KNOB");
    let mut mutated = sources.clone();
    mutated.push((
        "crates/sim/src/fake.rs".to_string(),
        format!("fn f() -> Option<String> {{ std::env::var(\"{knob}\").ok() }}"),
    ));
    let findings = rules::check_e04(&mutated, &rules::E04_SPEC);
    assert!(
        findings.iter().any(|f| f.ident == knob),
        "expected an env-knob finding: {findings:#?}"
    );
}

// ---------------------------------------------------------------------------
// Resolver-era tests: renamed-import taint, L01/E05 self-tests, cross-link
// precision, and the ByName-vs-Resolved differential.
// ---------------------------------------------------------------------------

use coaxial_lint::resolve::Linkage;

/// D01 must see hash iteration through a `use … as` renamed import: the
/// alias `bi` is a hash-returning fn even though no fn of that *name*
/// exists anywhere. Bare-name linking cannot know that — the false
/// negative the resolver closes.
#[test]
fn d01_taint_flows_through_renamed_imports() {
    let index = "use std::collections::HashMap;\n\
                 pub fn build_index() -> HashMap<u64, u32> { HashMap::new() }\n";
    let user = "use crate::index::build_index as bi;\n\
                pub fn scan() -> Vec<u64> {\n    let m = bi();\n    m.keys().copied().collect()\n}\n";
    let sources = [
        ("crates/cache/src/lib.rs", "pub mod index;\npub mod user;\n"),
        ("crates/cache/src/index.rs", index),
        ("crates/cache/src/user.rs", user),
    ];
    let ctx = FileCtx::new("crates/cache/src/user.rs", user);

    let ws = Workspace::from_sources(&sources);
    let findings = rules::check_d01(&ctx, &ws.hash_fn_names_for("crates/cache/src/user.rs"));
    assert_fires("D01", &findings, 1);

    let old = Workspace::from_sources_linked(&sources, Linkage::ByName);
    assert_eq!(
        rules::check_d01(&ctx, &old.hash_fn_names_for("crates/cache/src/user.rs")),
        vec![],
        "name-based linking cannot see through the rename; if this starts firing, \
         the differential below needs updating"
    );
}

/// An alias that *shadows* a hash-fn name with a provably different,
/// non-hash target must be un-tainted — the precision half of the same
/// mechanism.
#[test]
fn d01_shadowing_alias_untaints() {
    let sources = [
        ("crates/cache/src/lib.rs", "pub mod index;\npub mod user;\n"),
        (
            "crates/cache/src/index.rs",
            "use std::collections::HashMap;\n\
             pub fn build_index() -> HashMap<u64, u32> { HashMap::new() }\n\
             pub fn build_list() -> Vec<u64> { Vec::new() }\n",
        ),
        (
            "crates/cache/src/user.rs",
            "use crate::index::build_list as build_index;\n\
             pub fn scan() -> Vec<u64> {\n    let m = build_index();\n    m.iter().copied().collect()\n}\n",
        ),
    ];
    let ws = Workspace::from_sources(&sources);
    let names = ws.hash_fn_names_for("crates/cache/src/user.rs");
    assert!(!names.contains("build_index"), "shadowed alias still tainted: {names:?}");
    let ctx = FileCtx::new("crates/cache/src/user.rs", sources[2].1);
    assert_eq!(rules::check_d01(&ctx, &names), vec![]);
}

/// L01 self-test on a synthetic gateway crate: heavy work reachable under
/// a live guard, interprocedural re-acquisition, intra-body
/// double-acquire, and an acquisition-order cycle all fire; the
/// collect-then-drop twin is clean.
#[test]
fn l01_lock_discipline_fires_on_fixture_and_good_twin_is_clean() {
    let spec = rules::LockSpec {
        guard_prefix: "coaxial_gw::",
        forbidden_fqs: &["coaxial_gw::heavy::run_sim"],
    };
    let heavy = "pub fn run_sim(n: u64) -> u64 { n * 2 }\n";
    let bad_state = r#"
use std::sync::Mutex;
pub struct Inner { pub jobs: u64 }
pub static STATE: Mutex<Inner> = Mutex::new(Inner { jobs: 0 });
pub static AUX: Mutex<u64> = Mutex::new(0);

pub fn heavy_under_lock(n: u64) -> u64 {
    let g = STATE.lock().unwrap();
    crate::heavy::run_sim(g.jobs + n)
}

fn relocks() -> u64 {
    let g = STATE.lock().unwrap();
    g.jobs
}

pub fn reacquires_via_callee() -> u64 {
    let g = STATE.lock().unwrap();
    relocks() + g.jobs
}

pub fn double_acquire() -> u64 {
    let a = STATE.lock().unwrap();
    let b = STATE.lock().unwrap();
    a.jobs + b.jobs
}

pub fn order_ab() -> u64 {
    let a = STATE.lock().unwrap();
    let b = AUX.lock().unwrap();
    a.jobs + *b
}

pub fn order_ba() -> u64 {
    let b = AUX.lock().unwrap();
    let a = STATE.lock().unwrap();
    a.jobs + *b
}
"#;
    let good_state = r#"
use std::sync::Mutex;
pub struct Inner { pub jobs: u64 }
pub static STATE: Mutex<Inner> = Mutex::new(Inner { jobs: 0 });
pub static AUX: Mutex<u64> = Mutex::new(0);

pub fn collect_then_run(n: u64) -> u64 {
    let jobs = {
        let g = STATE.lock().unwrap();
        g.jobs
    };
    crate::heavy::run_sim(jobs + n)
}

pub fn order_ab() -> u64 {
    let a = STATE.lock().unwrap();
    let b = AUX.lock().unwrap();
    a.jobs + *b
}

pub fn order_ab_again() -> u64 {
    let a = STATE.lock().unwrap();
    let b = AUX.lock().unwrap();
    a.jobs + *b
}
"#;
    let lib = "pub mod heavy;\npub mod state;\n";
    let ws = Workspace::from_sources(&[
        ("crates/gw/src/lib.rs", lib),
        ("crates/gw/src/heavy.rs", heavy),
        ("crates/gw/src/state.rs", bad_state),
    ]);
    let findings = rules::check_l01(&ws, &spec);
    let has = |frag: &str, ident: &str| {
        findings.iter().any(|f| f.ident == ident && f.message.contains(frag))
    };
    assert!(has("holds gateway lock", "heavy_under_lock"), "{findings:#?}");
    assert!(has("re-acquires", "reacquires_via_callee"), "{findings:#?}");
    assert!(has("already holding", "double_acquire"), "{findings:#?}");
    assert!(
        has("opposite order", "order_ab") || has("opposite order", "order_ba"),
        "{findings:#?}"
    );

    let ws = Workspace::from_sources(&[
        ("crates/gw/src/lib.rs", lib),
        ("crates/gw/src/heavy.rs", heavy),
        ("crates/gw/src/state.rs", good_state),
    ]);
    assert_eq!(rules::check_l01(&ws, &spec), vec![], "collect-then-drop twin must be clean");
}

/// E05 self-test on a synthetic binary: an arm wired to nothing, a
/// silent-alias arm pair, and an orphaned pub experiment all fire; the
/// fully wired twin is clean.
#[test]
fn e05_cli_reachability_fires_on_fixture_and_good_twin_is_clean() {
    let spec = rules::CliReachSpec {
        bin_rel: "src/bin/fixtool.rs",
        experiments_rel: "crates/fixlib/src/exp.rs",
    };
    let exp = r#"
pub fn alpha(n: u64) -> u64 { n + 1 }
pub fn beta() -> u64 { alpha(41) }
pub fn orphan() -> u64 { 7 }
"#;
    let bad_bin = r#"
use fixlib::exp::{alpha, beta};
fn main() {
    let a: Vec<String> = std::env::args().collect();
    match a[1].as_str() {
        "alpha" => { alpha(1); }
        "beta" | "b" => { beta(); }
        "dup" => { beta(); }
        "nothing" => { let x = 1 + 2; let _ = x; }
        _ => {}
    }
}
"#;
    let good_bin = r#"
use fixlib::exp::{alpha, beta, orphan};
fn main() {
    let a: Vec<String> = std::env::args().collect();
    match a[1].as_str() {
        "alpha" => { alpha(1); }
        "beta" | "b" => { beta(); }
        "orphan" => { orphan(); }
        _ => {}
    }
}
"#;
    let lib = "pub mod exp;\n";
    let run = |bin: &str| {
        let sources = [
            ("crates/fixlib/src/lib.rs", lib),
            ("crates/fixlib/src/exp.rs", exp),
            ("src/bin/fixtool.rs", bin),
        ];
        let ctxs: Vec<FileCtx> = sources.iter().map(|(rel, src)| FileCtx::new(rel, src)).collect();
        let ws = Workspace::from_sources(&sources);
        rules::check_e05(&ws, &ctxs, &spec)
    };
    let findings = run(bad_bin);
    let idents: BTreeSet<&str> = findings.iter().map(|f| f.ident.as_str()).collect();
    for want in ["nothing", "dup", "orphan"] {
        assert!(idents.contains(want), "missing E05 {want}: {findings:#?}");
    }
    assert!(findings.iter().all(|f| f.id == "E05"), "{findings:#?}");

    assert_eq!(run(good_bin), vec![], "fully wired twin must be clean");
}

/// Load the real tree, apply rewrites, append extra files, and build the
/// workspace under `linkage` (with matching `FileCtx`s for the rules that
/// want them).
fn real_tree_with(
    extra: &[(&str, &str)],
    rewrite: Option<Mutation>,
    linkage: Linkage,
) -> (Vec<(String, String)>, Workspace) {
    let root = repo_root();
    let mut sources =
        coaxial_lint::workspace_sources(std::path::Path::new(&root)).expect("readable tree");
    if let Some((rel, f)) = rewrite {
        let entry = sources.iter_mut().find(|(r, _)| r == rel).expect("rewrite target");
        entry.1 = f(&entry.1);
    }
    for (rel, src) in extra {
        sources.push(((*rel).to_string(), (*src).to_string()));
    }
    let pairs: Vec<(&str, &str)> = sources.iter().map(|(r, s)| (r.as_str(), s.as_str())).collect();
    let ws = Workspace::from_sources_linked(&pairs, linkage);
    (sources, ws)
}

/// A same-named `DramTimings` in a different crate whose own field is
/// read must NOT credit the real `DramTimings` field: E01 keeps flagging
/// the injected phantom under resolved linkage, while bare-name linkage
/// is fooled — the cross-link false negative the resolver removes.
#[test]
fn e01_does_not_cross_link_same_named_structs() {
    let decoy = "pub struct DramTimings { pub t_phantom: u64 }\n\
                 pub fn poke(t: &DramTimings) -> u64 { t.t_phantom }\n";
    let add_field = |src: &str| {
        src.replace("pub t_faw: Cycle,", "pub t_faw: Cycle,\n    pub t_phantom: Cycle,")
    };
    let run = |linkage| {
        let (_, ws) = real_tree_with(
            &[("crates/workloads/src/decoy_timings.rs", decoy)],
            Some(("crates/dram/src/config.rs", &add_field)),
            linkage,
        );
        let idents: Vec<String> =
            rules::check_e01(&ws, rules::E01_STRUCTS).into_iter().map(|f| f.ident).collect();
        idents
    };
    assert!(
        run(Linkage::Resolved).contains(&"t_phantom".to_string()),
        "resolved linkage let a decoy-crate read credit the real field"
    );
    assert!(
        !run(Linkage::ByName).contains(&"t_phantom".to_string()),
        "ByName is expected to be fooled by the decoy; if this starts failing the \
         differential premise changed"
    );
}

/// A local struct in the prefill path with a field *named like* a timing
/// knob must not trip E03: the typed read resolves to the decoy struct,
/// not the timing config. Bare-name linkage false-positives on it.
#[test]
fn e03_does_not_cross_link_same_named_fields() {
    let inject = |src: &str| {
        let s = src.replace(
            "let llc_lines_total =",
            "let decoy = PrefillDecoy { calm_epoch: 3 };\n        \
             let _decoy_read = decoy.calm_epoch;\n        let llc_lines_total =",
        );
        format!("{s}\nstruct PrefillDecoy {{ calm_epoch: u64 }}\n")
    };
    let run = |linkage| {
        let (_, ws) = real_tree_with(&[], Some(("crates/system/src/server.rs", &inject)), linkage);
        rules::check_e03(&ws, &rules::E03_SPEC)
    };
    assert_eq!(
        run(Linkage::Resolved),
        vec![],
        "a typed read of a non-timing struct must not be flagged"
    );
    assert!(
        run(Linkage::ByName).iter().any(|f| f.ident == "calm_epoch"),
        "ByName is expected to false-positive on the decoy field name"
    );
}

/// A different crate's own `TelemetrySink` trait (different methods) must
/// shadow the telemetry crate's for files in that module: a same-named
/// inherent method `.on_miss()` there is not a sink call. Bare-name
/// linkage falls back to the global trait and false-positives.
#[test]
fn z01_does_not_cross_link_same_named_traits() {
    let decoy = "pub trait TelemetrySink { fn frobnicate(&mut self); }\n\
                 pub struct Probe;\n\
                 impl Probe { pub fn on_miss(&mut self) {} }\n\
                 pub fn poke(p: &mut Probe) { p.on_miss(); }\n";
    let rel = "crates/workloads/src/decoy_sink.rs";
    let fallback = || ["on_miss", "on_span", "on_reset"].iter().map(|s| (*s).to_string()).collect();
    let run = |linkage| {
        let (_, ws) = real_tree_with(&[(rel, decoy)], None, linkage);
        let sinks = ws.trait_methods_for(rel, "TelemetrySink").unwrap_or_else(fallback);
        let ctx = FileCtx::new(rel, decoy);
        rules::check_z01(&ctx, &sinks)
    };
    assert_eq!(
        run(Linkage::Resolved),
        vec![],
        "the local trait (no on_miss) must shadow the telemetry crate's"
    );
    assert!(
        run(Linkage::ByName).iter().any(|f| f.ident == "on_miss"),
        "ByName is expected to false-positive via the global trait lookup"
    );
}

/// The acceptance differential: run the full rule battery under the old
/// bare-name linkage and the new resolved linkage over the real tree and
/// account for every finding-set delta. Resolved-only findings would be
/// regressions (the tree is kept clean); ByName-only findings must each
/// be an understood false positive of name-based linking.
#[test]
fn precision_differential_old_vs_new_linkage_is_fully_accounted() {
    let battery = |linkage| -> BTreeSet<(String, String, String)> {
        let (sources, ws) = real_tree_with(&[], None, linkage);
        let ctxs: Vec<FileCtx> = sources.iter().map(|(rel, src)| FileCtx::new(rel, src)).collect();
        let mut timings = std::collections::BTreeMap::new();
        let mut raw = Vec::new();
        for ctx in &ctxs {
            raw.extend(rules::lint_file_timed(ctx, &ws, &mut timings));
        }
        raw.extend(rules::lint_cross_file_timed(&ws, &ctxs, &mut timings));
        raw.into_iter().map(|f| (f.id.to_string(), f.path, f.ident)).collect()
    };
    let new = battery(Linkage::Resolved);
    let old = battery(Linkage::ByName);

    // No new findings appear under resolution: the tree is kept clean and
    // resolution only ever *narrows* what a reference can mean.
    let new_only: Vec<_> = new.difference(&old).collect();
    assert_eq!(new_only, Vec::<&(String, String, String)>::new());

    // ByName-only findings, each an understood bare-name false positive.
    // Under name linkage every unresolved `.parse()`/`.get()`/`.join()`
    // call links to every same-named fn workspace-wide, so distinct CLI
    // arms' library entry sets explode into near-identical unions and
    // E05's silent-alias check (b) misfires on the second arm of the
    // colliding pair (`compare`/`sweep-latency`). The `run`/`http` pair
    // used to collide the same way until the sampled-mode branch gave
    // `run` entry points (`run_sampled`, `sampled_report_to_json`) that
    // no bare name in `http`'s arm links to, so even the imprecise union
    // now tells them apart. The resolver keeps every pair distinct,
    // which is exactly the precision the rebase bought. Any NEW delta
    // beyond this one must be re-derived and documented here.
    let old_only: BTreeSet<_> = old.difference(&new).cloned().collect();
    let expected: BTreeSet<(String, String, String)> =
        [("E05".into(), "src/bin/coaxial.rs".into(), "sweep-latency".into())].into_iter().collect();
    assert_eq!(old_only, expected, "unaccounted linkage delta");

    // The unit dataflow rules (Q01–Q03) honor the precision contract under
    // both linkages: losing call resolution (ByName) turns summaries into
    // Unknown, and Unknown only *hides* findings — so on the Q-clean tree
    // the delta is pinned at exactly zero in both directions.
    let q = |set: &BTreeSet<(String, String, String)>| -> BTreeSet<_> {
        set.iter().filter(|(id, _, _)| id.starts_with('Q')).cloned().collect()
    };
    assert_eq!(q(&new), BTreeSet::new(), "resolved tree must be Q-clean");
    assert_eq!(q(&old), BTreeSet::new(), "ByName may only lose Q findings, never invent them");

    // C01's ident-credit scan is deliberately name-based (documented
    // imprecision): identical findings under both linkages.
    let c01 = |set: &BTreeSet<(String, String, String)>| -> BTreeSet<_> {
        set.iter().filter(|(id, _, _)| id == "C01").cloned().collect()
    };
    assert_eq!(c01(&new), c01(&old), "C01 must be linkage-independent");
}
