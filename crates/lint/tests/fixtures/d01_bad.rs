//! D01 bad: iterates a HashMap on a model path — including collections
//! that arrive through a function return rather than a local annotation.
use std::collections::{HashMap, HashSet};

struct Tracker {
    counts: HashMap<u64, u64>,
}

fn build_index() -> HashMap<u64, u64> {
    HashMap::new()
}

fn export(t: &Tracker) -> Vec<(u64, u64)> {
    let mut rows = Vec::new();
    for (k, v) in t.counts.iter() {
        rows.push((*k, *v));
    }
    let lines: HashSet<u64> = HashSet::new();
    for line in &lines {
        rows.push((*line, 0));
    }
    rows
}

fn from_fn_return() -> Vec<u64> {
    let idx = build_index();
    let mut out = Vec::new();
    for k in idx.keys() {
        out.push(*k);
    }
    out.extend(build_index().keys().copied());
    out
}
