//! D01 bad: iterates a HashMap on a model path.
use std::collections::{HashMap, HashSet};

struct Tracker {
    counts: HashMap<u64, u64>,
}

fn export(t: &Tracker) -> Vec<(u64, u64)> {
    let mut rows = Vec::new();
    for (k, v) in t.counts.iter() {
        rows.push((*k, *v));
    }
    let lines: HashSet<u64> = HashSet::new();
    for line in &lines {
        rows.push((*line, 0));
    }
    rows
}
