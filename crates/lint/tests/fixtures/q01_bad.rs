//! Q01 fixture: mixed-unit arithmetic, cross-unit let, mixed comparison.

pub fn mixes_add(start_cycles: u64, window_ns: f64) -> f64 {
    start_cycles as f64 + window_ns
}

pub fn cross_assign(total_cycles: u64) -> u64 {
    let deadline_ns = total_cycles;
    deadline_ns
}

pub fn mixed_compare(a_bytes: u64, b_instr: u64) -> bool {
    a_bytes > b_instr
}
