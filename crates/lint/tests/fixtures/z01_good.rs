//! Z01 good: every sink call dominated by an `if T::ENABLED` guard.
struct Hier<T: TelemetrySink> {
    tel: T,
}

impl<T: TelemetrySink> Hier<T> {
    fn complete(&mut self, rec: &MissRecord) {
        if T::ENABLED {
            self.tel.on_miss(rec);
            let ev = span(rec);
            self.tel.on_span(ev);
        }
    }

    fn reset(&mut self) {
        if T::ENABLED && self.deep {
            self.tel.on_reset();
        }
    }
}
