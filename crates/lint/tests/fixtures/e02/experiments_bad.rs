//! E02 bad experiments: only knob_a is swept. knob_b is written solely by
//! the default ctor (one reachable writer, not param-derived) and knob_c's
//! builder is never called, so both must be flagged.
pub fn sweep_alpha() -> Vec<SweepCfg> {
    vec![SweepCfg::base().with_knob_a(4), SweepCfg::base().with_knob_a(8)]
}
