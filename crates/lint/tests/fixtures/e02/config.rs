//! E02 fixture config layer: a default ctor, per-knob builders, and a
//! variant pair. Which knobs count as "exercised" depends on which of
//! these the experiment fixture actually calls.
pub struct SweepCfg {
    pub knob_a: u64,
    pub knob_b: u64,
    pub knob_c: u64,
}

impl SweepCfg {
    pub fn base() -> Self {
        Self { knob_a: 1, knob_b: 2, knob_c: 3 }
    }

    pub fn with_knob_a(mut self, v: u64) -> Self {
        self.knob_a = v;
        self
    }

    pub fn with_knob_c(mut self, v: u64) -> Self {
        self.knob_c = v;
        self
    }

    pub fn variant_x() -> Self {
        Self { knob_b: 8, ..Self::base() }
    }

    pub fn variant_y() -> Self {
        Self { knob_b: 16, ..Self::base() }
    }
}
