//! E02 good experiments: knob_a via a param-derived builder, knob_b via a
//! variant-pair comparison (two distinct reachable ctors write it), and
//! knob_c via an env-style override through its builder.
pub fn sweep_alpha() -> Vec<SweepCfg> {
    vec![SweepCfg::base().with_knob_a(4), SweepCfg::variant_x(), SweepCfg::variant_y()]
}

pub fn env_override(raw: u64) -> SweepCfg {
    SweepCfg::base().with_knob_c(raw)
}
