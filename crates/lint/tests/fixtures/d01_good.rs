//! D01 good: keyed lookup on a HashMap is fine; iteration uses BTreeMap,
//! including BTreeMaps that arrive through a function return.
use std::collections::{BTreeMap, HashMap};

struct Tracker {
    counts: HashMap<u64, u64>,
    ordered: BTreeMap<u64, u64>,
}

fn build_index() -> BTreeMap<u64, u64> {
    BTreeMap::new()
}

fn export(t: &Tracker) -> Vec<(u64, u64)> {
    let mut rows: Vec<(u64, u64)> = t.ordered.iter().map(|(k, v)| (*k, *v)).collect();
    if let Some(v) = t.counts.get(&7) {
        rows.push((7, *v));
    }
    let idx = build_index();
    for k in idx.keys() {
        rows.push((*k, 0));
    }
    rows
}
