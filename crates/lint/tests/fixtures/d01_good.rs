//! D01 good: keyed lookup on a HashMap is fine; iteration uses BTreeMap.
use std::collections::{BTreeMap, HashMap};

struct Tracker {
    counts: HashMap<u64, u64>,
    ordered: BTreeMap<u64, u64>,
}

fn export(t: &Tracker) -> Vec<(u64, u64)> {
    let mut rows: Vec<(u64, u64)> = t.ordered.iter().map(|(k, v)| (*k, *v)).collect();
    if let Some(v) = t.counts.get(&7) {
        rows.push((7, *v));
    }
    rows
}
