//! Q02 good twin: conversions routed through the blessed helpers. A 2.4
//! that is not adjacent to `*`/`/` (a config value) is not a conversion.

pub const DEFAULT_FREQ: f64 = 2.4;

pub fn routed(total_cycles: u64) -> f64 {
    coaxial_sim::cycles_to_ns(total_cycles)
}
