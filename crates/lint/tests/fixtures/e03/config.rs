//! E03 fixture config: a parent config split into a functional half (part
//! of the checkpoint key) and a timing half (off-limits to prefill).

pub struct FunctionalCfg {
    pub cores: usize,
    pub seed: u64,
}

pub struct TimingCfg {
    pub link_ns: u64,
    pub dram: u64,
}

pub struct Cfg {
    pub functional: FunctionalCfg,
    pub timing: TimingCfg,
}
