//! E03 good twin: the prefill call graph touches only the functional half.
//! Constructors may consume the timing half (stop-set), and timing reads in
//! fns *not* reachable from a prefill entry point are fine.

pub struct Hier {
    lat: u64,
    lines: u64,
}

impl Hier {
    /// Ctor legitimately reads the timing half — E03's walk stops here.
    pub fn new(t: &TimingCfg) -> Self {
        Self { lat: t.link_ns, lines: 0 }
    }

    pub fn touch(&mut self, line: u64) {
        self.lines = self.lines.wrapping_add(line);
    }
}

/// Entry point: warms the machine from the functional slice alone.
pub fn prefill_warm(cfg: &Cfg, h: &mut Hier) {
    for core in 0..cfg.functional.cores {
        warm_core(h, cfg.functional.seed, core);
    }
}

/// Entry point that *builds* via the ctor: `new` consumes timing, but the
/// walk does not enter ctors, so this stays clean.
pub fn prefill_build(t: &TimingCfg) -> Hier {
    Hier::new(t)
}

fn warm_core(h: &mut Hier, seed: u64, core: usize) {
    h.touch(seed ^ core as u64);
}

/// Not reachable from any prefill entry point: timing reads here are the
/// measured phase's business, not E03's.
pub fn run_measured(cfg: &Cfg) -> u64 {
    cfg.timing.link_ns + cfg.timing.dram
}
