//! E03 bad twin: one direct timing read in an entry point, one smuggled
//! through a helper the prefill path calls.

pub struct Hier {
    lines: u64,
}

impl Hier {
    pub fn touch(&mut self, line: u64) {
        self.lines = self.lines.wrapping_add(line);
    }
}

/// Direct violation: the warm loop's depth depends on the link latency, so
/// two timing siblings would warm different state under one checkpoint key.
pub fn prefill_warm(cfg: &Cfg, h: &mut Hier) {
    let depth = cfg.timing.link_ns;
    for core in 0..cfg.functional.cores {
        h.touch(depth ^ core as u64);
    }
}

/// Indirect violation: the entry point is clean, but a reachable helper
/// reads the DRAM half of the timing config.
pub fn prefill_depth(cfg: &Cfg) -> u64 {
    lookahead(cfg)
}

fn lookahead(cfg: &Cfg) -> u64 {
    cfg.timing.dram
}
