//! D02 bad: wall clock and ambient entropy in a model crate.
use std::time::{Instant, SystemTime};

fn stamp() -> u128 {
    let t0 = Instant::now();
    let _ = t0.elapsed();
    SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
}
