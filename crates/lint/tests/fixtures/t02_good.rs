//! T02 good: integer accumulation; floats only as derived report values.
struct Stats {
    total_latency_cycles: u64,
    samples: u64,
    mean_latency_ns: f64,
}

fn record(s: &mut Stats, latency: u64) {
    s.total_latency_cycles += latency;
    s.samples += 1;
}

fn report(s: &Stats, ns_per_cycle: f64) -> f64 {
    s.total_latency_cycles as f64 / s.samples as f64 * ns_per_cycle
}
