//! Q01 good twin: same shapes, units kept straight.

pub fn same_unit_math(start_cycles: u64, end_cycles: u64) -> u64 {
    end_cycles - start_cycles
}

pub fn blessed_conversion(total_cycles: u64) -> f64 {
    let window_ns = coaxial_sim::cycles_to_ns(total_cycles);
    window_ns
}

pub fn ratio_scaling(span_ns: f64, load_ratio: f64) -> f64 {
    span_ns * load_ratio
}

pub fn same_unit_compare(a_bytes: u64, b_bytes: u64) -> bool {
    a_bytes > b_bytes
}
