//! Q02 fixture: hand-rolled cycles↔ns conversions outside time.rs.

pub fn bare_factor(total_cycles: u64) -> f64 {
    total_cycles as f64 / 2.4
}

pub fn const_chain(window_cycles: u64) -> f64 {
    window_cycles as f64 * coaxial_sim::NS_PER_CYCLE
}
