//! Q03 fixture: a pub field whose name claims ns receives raw cycles.

pub struct WindowStats {
    pub window_ns: f64,
}

pub fn fill(total_cycles: u64) -> WindowStats {
    WindowStats { window_ns: total_cycles as f64 }
}
