//! Q03 good twin: the claimed field gets a genuinely converted value.

pub struct WindowStats {
    pub window_ns: f64,
}

pub fn fill(total_cycles: u64) -> WindowStats {
    WindowStats { window_ns: coaxial_sim::cycles_to_ns(total_cycles) }
}
