//! Env-knob documentation file for the E04 fixture tree.
//!
//! | Variable       | Meaning                          |
//! |----------------|----------------------------------|
//! | `FIXTURE_JOBS` | worker threads for the fixture   |

pub fn jobs() -> u64 {
    std::env::var("FIXTURE_JOBS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}
