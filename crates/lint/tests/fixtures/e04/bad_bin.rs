//! fixtool — the E04 fixture's tiny CLI (bad twin).
//!
//!   fixtool run <name> [--fast]
//!   fixtool list
//!   fixtool prune
//!
//! options:
//!   --fast          take the fast path
//!   --level <n>     verbosity level

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut fast = false;
    let mut ghost = false;
    let mut rest: Vec<&str> = Vec::new();
    for a in args.iter().skip(1).map(String::as_str) {
        match a {
            "--fast" => fast = true,
            // Accepted but absent from the header: forward E04.
            "--ghost" => ghost = true,
            other => rest.push(other),
        }
    }
    // `prune` is documented but has no arm; `--level` is documented but
    // never parsed: both are reverse E04 findings.
    match rest.first().copied().unwrap_or("") {
        "run" => run(fast, ghost),
        "list" => list(),
        _ => usage(),
    }
}

fn run(_fast: bool, _ghost: bool) {
    // Undocumented env knob: env E04.
    let _ = std::env::var("FIXTURE_SECRET");
}

fn list() {}

fn usage() {}
