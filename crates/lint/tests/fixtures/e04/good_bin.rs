//! fixtool — the E04 fixture's tiny CLI (good twin).
//!
//!   fixtool run <name> [--fast]
//!   fixtool list
//!
//! options:
//!   --fast          take the fast path
//!   --seed <n>      deterministic seed

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut fast = false;
    let mut seed = 0u64;
    let mut rest: Vec<&str> = Vec::new();
    for a in args.iter().skip(1).map(String::as_str) {
        match a {
            "--fast" => fast = true,
            "--seed" => seed = 1,
            other => rest.push(other),
        }
    }
    match rest.first().copied().unwrap_or("") {
        "run" => run(fast, seed),
        "list" => list(),
        _ => usage(),
    }
}

fn run(_fast: bool, _seed: u64) {
    // Documented knob plus an excluded test-scratch variable.
    let _ = std::env::var("FIXTURE_JOBS");
    let _ = std::env::var("FIXTURE_TMP_DIR");
}

fn list() {}

fn usage() {}
