//! E01 fixture config: three pub fidelity knobs; whether each is read is
//! decided by the model fixture paired with this file in the test.
pub struct FixtureCfg {
    pub t_alpha: u64,
    pub t_beta: u64,
    pub unread_knob: u64,
}
