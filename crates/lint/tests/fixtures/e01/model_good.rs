//! E01 good model: every pub knob of FixtureCfg has a read site.
pub fn latency(c: &FixtureCfg) -> u64 {
    c.t_alpha + c.t_beta + c.unread_knob
}
