//! E01 bad model: reads t_alpha and t_beta but never unread_knob.
pub fn latency(c: &FixtureCfg) -> u64 {
    c.t_alpha + c.t_beta
}
