//! T02 bad: float accumulation and float storage of raw cycle values.
struct Stats {
    total_latency_cycles: f64,
}

fn record(s: &mut Stats, latency: u64) {
    s.total_latency_cycles += latency as f64;
}
