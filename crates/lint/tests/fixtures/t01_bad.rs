//! T01 bad: lossy narrowing casts on cycle/latency-carrying values.
fn pack(total_cycles: u64, latency: u64) -> (u32, u32) {
    (total_cycles as u32, latency as u32)
}
