//! D02 good: all randomness comes from the seeded simulator RNG.
fn stamp(rng: &mut SplitMix64, now: u64) -> u64 {
    now ^ rng.next()
}

struct SplitMix64(u64);
impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        self.0
    }
}
