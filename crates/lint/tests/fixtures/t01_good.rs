//! T01 good: widths preserved, or narrowing is explicit and checked.
fn pack(total_cycles: u64, latency: u64, core_id: u64) -> (u64, u32, u8) {
    let lat32: u32 = latency.try_into().expect("latency fits u32");
    (total_cycles, lat32, core_id as u8)
}
