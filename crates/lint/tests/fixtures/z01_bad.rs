//! Z01 bad: sink call outside any `if T::ENABLED` guard.
struct Hier<T: TelemetrySink> {
    tel: T,
}

impl<T: TelemetrySink> Hier<T> {
    fn complete(&mut self, rec: &MissRecord) {
        self.tel.on_miss(rec);
        if T::ENABLED {
            self.tel.on_span(span(rec));
        }
    }
}
