//! U01 good: SAFETY comments immediately above each unsafe.
fn read_first(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees the slice is non-empty, so the
    // pointer read of element 0 is in bounds.
    unsafe { *v.as_ptr() }
}

fn hinted(p: *const i8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint and never dereferences.
    unsafe {
        let _ = p;
    }
}
