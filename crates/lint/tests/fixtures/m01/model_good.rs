//! M01 good model: lowercase constant and holey paths, no collisions,
//! and both Component variants get non-zero Rec stamps.
pub fn stamp(x: u64, reg: &mut Reg) {
    let r = Rec { alpha: x, beta_gap: x + 1 };
    reg.set_counter("model.alpha_total", r.alpha);
}

pub fn export(reg: &mut Reg, ch: usize) {
    reg.set_gauge(&format!("model.ch{ch}.beta"), 1.0);
}
