//! M01 fixture component enum + record struct (shared by bad and good).
pub enum Component {
    Alpha,
    BetaGap,
}

pub struct Rec {
    pub alpha: u64,
    pub beta_gap: u64,
}
