//! M01 bad model: a mixed-case metric path, a constant path also
//! registered by export_bad.rs, and a zero-literal beta_gap stamp (zero
//! stamps don't count, so Component::BetaGap has no stamp site).
pub fn stamp(x: u64, reg: &mut Reg) {
    let r = Rec { alpha: x, beta_gap: 0 };
    reg.set_counter("Bad.Path", r.alpha);
    reg.set_counter("dup.path", 1);
}
