//! M01 bad exporter: registers the same constant path as model_bad.rs.
pub fn export(reg: &mut Reg) {
    reg.set_counter("dup.path", 2);
}
