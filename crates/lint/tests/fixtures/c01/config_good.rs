//! C01 fixture config: every parameter is read by the constraint files.
pub struct FixtureTimings {
    pub cl: u64,
    pub t_rcd: u64,
}
