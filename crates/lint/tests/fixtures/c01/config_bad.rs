//! C01 fixture config: `t_orphan` is declared but never read by the
//! constraint files, `cl` and `t_rcd` are.
pub struct FixtureTimings {
    pub cl: u64,
    pub t_rcd: u64,
    pub t_orphan: u64,
}
