//! C01 fixture constraint code: reads `cl` and `t_rcd` only.
fn ready_at(t: &FixtureTimings, act_at: u64) -> u64 {
    act_at + t.t_rcd + t.cl
}
