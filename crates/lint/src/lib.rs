#![forbid(unsafe_code)]
//! `coaxial-lint` — project-specific static analysis for the COAXIAL
//! simulator workspace.
//!
//! The simulator's core guarantees are behavioral contracts that `rustc`
//! and clippy cannot see:
//!
//! * **determinism** — sweep outputs are bit-identical at any parallel
//!   runner width, so nothing on a model/report/export path may depend on
//!   hash-iteration order or ambient entropy;
//! * **timing arithmetic** — cycle counts are exact `u64`s; silently
//!   truncating casts and floating-point accumulation corrupt the latency
//!   ledger in ways no test that happens to use small numbers will catch;
//! * **zero-cost telemetry** — every telemetry stamping site must sit
//!   behind `if T::ENABLED` so the `NullTelemetry` monomorphization
//!   compiles back to the pre-telemetry hot path;
//! * **model fidelity** — a parameter declared in a fidelity-critical
//!   config struct (DDR5 timings, CXL link transfer costs) but never read
//!   by the enforcing code — or never varied by any experiment sweep — is
//!   a silent fidelity bug.
//!
//! This crate encodes those contracts as a catalog of lints (see
//! [`CATALOG`], or `docs/LINTS.md` for the long-form rule catalog) and
//! runs them over the workspace source. The build environment is offline
//! (no `syn`), so analysis is hand-rolled in three layers: an exact
//! lexer ([`lexer`]), a recursive-descent *item* parser over the token
//! stream ([`parser`]) producing per-file item trees, and a
//! workspace-wide symbol graph ([`symbols`]) recording definitions and
//! read/write/call references. A resolution pass ([`resolve`]) builds
//! the module tree from `mod` declarations and file layout, resolves
//! `use` imports (renames and nested groups included), qualified paths,
//! and method receivers via lightweight type binding, giving the graph
//! fully-qualified symbol IDs. Per-file rules run over tokens; the
//! cross-file rules (C01/E01/E02/E03/E04/E05/M01/L01) run over the
//! graph. Call and read edges are fq-exact where resolution succeeded
//! and fall back to name matching for the unresolved remainder, so the
//! residual imprecision can only hide violations on commonly-named
//! fields, never invent them — the right failure direction for a gate.
//! Residual false positives are handled by a checked-in suppression
//! file, `lint-allow.toml`, in which every entry must carry a reason
//! ([`allow`]).
//!
//! Run as `cargo run -p coaxial-lint --release` (wired into
//! `scripts/check.sh`); exits non-zero on any unsuppressed finding or any
//! stale suppression.

pub mod allow;
pub mod flow;
pub mod lexer;
pub mod parser;
pub mod resolve;
pub mod rules;
pub mod symbols;

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// A lint violation (or suppression-hygiene problem) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint ID, e.g. `"D01"`.
    pub id: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The identifier or construct the finding anchors on (matched against
    /// the optional `ident` key of suppressions).
    pub ident: String,
    /// Human explanation of what is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {} ({})", self.path, self.line, self.id, self.message, self.ident)
    }
}

/// One catalog entry: lint ID, one-line contract, rationale.
pub struct LintInfo {
    pub id: &'static str,
    pub summary: &'static str,
    pub rationale: &'static str,
}

/// The lint catalog. IDs are grouped by contract: D=determinism,
/// T=timing arithmetic, Z=zero-cost telemetry, U=unsafe hygiene,
/// C=config/constraint cross-reference, E=experiment/knob coverage,
/// M=metric hygiene.
pub const CATALOG: &[LintInfo] = &[
    LintInfo {
        id: "D01",
        summary: "no HashMap/HashSet iteration on model/report/export paths",
        rationale: "std hash iteration order is randomized per process; iterating one on any \
                    path that feeds simulated state or serialized output breaks bit-identical \
                    sweeps. Use BTreeMap/BTreeSet, or collect and sort explicitly. Keyed \
                    lookup (insert/get/remove/contains) is fine. Bindings are resolved \
                    through the workspace symbol graph, so collections that arrive via a \
                    function return or method chain are caught too.",
    },
    LintInfo {
        id: "D02",
        summary: "no wall-clock or ambient entropy in model crates",
        rationale: "SystemTime/Instant/rand/RandomState inside \
                    crates/{cpu,cache,dram,cxl,system,workloads} lets host timing or process \
                    entropy leak into simulation behavior. All model randomness must come \
                    from coaxial-sim's seeded SplitMix64.",
    },
    LintInfo {
        id: "T01",
        summary: "no lossy `as` casts on cycle/latency-carrying integers",
        rationale: "`u64 as u32` on a cycle count silently wraps after ~1.8 s of simulated \
                    time at 2.4 GHz. Use try_into() (loud at the boundary) or widen the \
                    destination.",
    },
    LintInfo {
        id: "T02",
        summary: "no floating-point accumulation in cycle math outside stats/report layers",
        rationale: "floats make cycle arithmetic order-dependent (a+b+c != c+a+b) and \
                    platform-dependent; the latency ledger conservation proof only holds in \
                    exact integers. Convert to f64 only at the reporting boundary.",
    },
    LintInfo {
        id: "Z01",
        summary: "telemetry sink calls must be dominated by an `if T::ENABLED` guard",
        rationale: "an unguarded sink call in TelemetrySink-generic code costs real work in \
                    the NullTelemetry monomorphization and breaks the zero-cost contract \
                    held by the telemetry-equivalence test and the sim_throughput bench. The \
                    sink method set is read from the TelemetrySink trait definition itself, \
                    not a hard-coded name list.",
    },
    LintInfo {
        id: "U01",
        summary: "every `unsafe` needs a `// SAFETY:` comment immediately above",
        rationale: "the workspace forbids unsafe except where a SAFETY comment states the \
                    invariant being relied on; unexplained unsafe is unreviewable.",
    },
    LintInfo {
        id: "C01",
        summary: "every declared fidelity parameter must be read by its enforcing code",
        rationale: "a field in a fidelity-critical config struct (DramTimings, CxlLinkConfig) \
                    that the scheduling/link-pipeline code never reads is a \
                    declared-but-unenforced parameter — the config claims a fidelity the \
                    simulator does not deliver.",
    },
    LintInfo {
        id: "E01",
        summary: "every pub config field must be read somewhere in model code",
        rationale: "CXL-memory characterization studies (CXL-DMSim, CXLMemSim) show that \
                    silently-unused fidelity knobs corrupt results: the config advertises a \
                    parameter the model ignores. Every pub field of DramTimings/DramConfig/\
                    CxlLinkConfig/SystemConfig must have a field-read site in non-test model \
                    code — wire the knob in or delete it.",
    },
    LintInfo {
        id: "E02",
        summary: "every pub config field must be exercised by a sweep or env override",
        rationale: "a knob that is read by the model but that no experiment in \
                    experiments.rs/env.rs ever varies is untested fidelity: nothing would \
                    notice if its wiring broke. A field counts as exercised when a \
                    config-layer fn reachable from the experiment entry points writes it \
                    from a parameter (a builder the sweeps vary) or from two distinct \
                    reachable constructors (a variant-pair comparison).",
    },
    LintInfo {
        id: "E03",
        summary: "timing-half config fields must not be readable from the prefill call graph",
        rationale: "post-prefill machine state is checkpointed in a content-addressed store \
                    keyed by the functional config slice alone (workloads, seed, cores, \
                    cache geometry), so every timing sibling — CXL latency, DRAM timings, \
                    CALM policy, prefetch degree — shares one warmed snapshot. That is \
                    sound only while nothing reachable from the prefill entry points reads \
                    a TimingConfig field; a single timing read silently makes restored runs \
                    diverge from cold ones. Constructor/builder callees (new/with_*/…) are \
                    exempt: they consume timing to build the machine, not to warm it.",
    },
    LintInfo {
        id: "E04",
        summary: "CLI surface closed under documentation: subcommands, flags, env knobs",
        rationale: "the binary's usage() prints its leading //! header verbatim, so a match \
                    arm with no header line is an undiscoverable feature and a header line \
                    with no match arm is vaporware; likewise every COAXIAL_* environment \
                    variable read anywhere in the workspace must appear in an env-doc file \
                    (crates/sim/src/env.rs or crates/gateway/src/lib.rs) or operators \
                    cannot find it.",
    },
    LintInfo {
        id: "E05",
        summary: "every CLI arm reaches a distinct library entry point; every experiment is wired",
        rationale: "the binary is a thin dispatcher: a match arm that reaches no library fn is \
                    a subcommand wired to nothing, two arms with identical entry sets mean one \
                    is a silent alias, and a pub experiment fn unreachable from every arm is \
                    an experiment nobody can run from the CLI. Reachability runs over the \
                    resolved call graph, so same-named fns in other modules don't count.",
    },
    LintInfo {
        id: "L01",
        summary: "no heavy simulation work under a gateway lock; consistent lock order",
        rationale: "the gateway serves concurrent connections around Mutex-guarded shared \
                    state: reaching RunSpec::run/parallel_map while a gateway MutexGuard is \
                    live starves every other connection for the length of a simulation, \
                    re-acquiring a held std::sync::Mutex self-deadlocks, and two code paths \
                    acquiring a pair of locks in opposite orders deadlock under load. Guard \
                    liveness is tracked through let-bound guards, drop() calls, and \
                    temporaries on the resolved symbol graph.",
    },
    LintInfo {
        id: "M01",
        summary: "metric paths are unique lowercase-dot-case; every latency component stamps",
        rationale: "the telemetry registry is stringly-keyed: two subsystems registering the \
                    same constant dot-path silently overwrite each other, mixed-case paths \
                    break downstream tooling, and a latency Component variant with no \
                    MissRecord stamp site reports misleading zeros in every breakdown.",
    },
    LintInfo {
        id: "Q01",
        summary: "no mixed-unit arithmetic, assignment, argument, or return",
        rationale: "the unit dataflow layer propagates a Cycles/Nanos/Bytes/Instructions/\
                    Ratio lattice through locals, fields, calls, and returns: adding or \
                    comparing two different known units, or storing one into a slot whose \
                    type (the Cycle alias) or let-binding claims another, is exactly the \
                    class of bug that corrupts every latency figure the reproduction \
                    reports. Unknown only ever hides findings, never invents them.",
    },
    LintInfo {
        id: "Q02",
        summary: "cycles\u{2194}ns conversion only through the blessed time.rs helpers",
        rationale: "a bare `* 2.4`, `/ CPU_FREQ_GHZ`, or hand-rolled `* NS_PER_CYCLE` \
                    outside time.rs re-derives the clock relationship in place; when the \
                    modeled frequency changes, every such site silently keeps the old \
                    clock. Route through cycles_to_ns/ns_to_cycles (sim) or the telemetry \
                    time module, which exist precisely so the factor lives in one file.",
    },
    LintInfo {
        id: "Q03",
        summary: "pub fields/params with a unit suffix must carry that unit at every write",
        rationale: "a field named `_ns` holding cycles is worse than an unnamed one: every \
                    reader trusts the name. The dataflow layer checks each write site \
                    (field assignment, struct literal, call argument) of every pub \
                    suffix-claimed slot against the abstract unit actually flowing in; \
                    renaming the identifier or converting the value are the two fixes.",
    },
];

pub fn catalog_entry(id: &str) -> Option<&'static LintInfo> {
    CATALOG.iter().find(|l| l.id == id)
}

/// Result of linting a tree: unsuppressed findings plus suppression
/// hygiene problems (stale entries).
pub struct Report {
    pub findings: Vec<Finding>,
    /// Suppressions that matched nothing (stale — must be removed).
    pub stale_suppressions: Vec<allow::AllowEntry>,
    /// Count of findings that were suppressed by lint-allow.toml.
    pub suppressed: usize,
    /// Files scanned.
    pub files: usize,
    /// Wall time per rule ID, sorted by ID. Empty for hand-built reports.
    pub timings: Vec<(&'static str, std::time::Duration)>,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.stale_suppressions.is_empty()
    }

    /// Machine-readable report (no serde_json in the offline container, so
    /// the encoder is hand-rolled; strings are escaped per RFC 8259).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"path\":{},\"line\":{},\"ident\":{},\"message\":{}}}",
                json_str(f.id),
                json_str(&f.path),
                f.line,
                json_str(&f.ident),
                json_str(&f.message)
            ));
        }
        out.push_str("],\"stale_suppressions\":[");
        for (i, s) in self.stale_suppressions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"lint\":{},\"path\":{},\"line\":{}}}",
                json_str(&s.lint),
                json_str(&s.path),
                s.line
            ));
        }
        out.push_str(&format!("],\"suppressed\":{},\"files\":{}", self.suppressed, self.files));
        if !self.timings.is_empty() {
            out.push_str(",\"timings_ms\":{");
            for (i, (id, d)) in self.timings.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{:.3}", json_str(id), d.as_secs_f64() * 1e3));
            }
            out.push('}');
        }
        out.push_str(&format!(",\"clean\":{}}}", self.clean()));
        out
    }

    /// SARIF 2.1.0 rendering (hand-rolled like [`Report::to_json`] — no
    /// serde in the offline container). One run, the full rule catalog as
    /// the driver's rule table, one `error`-level result per finding.
    /// `scripts/check.sh` writes this next to the JSON artifact so
    /// code-scanning UIs can ingest the findings; the shape is pinned by
    /// `sarif_report_shape_is_stable`.
    pub fn to_sarif(&self) -> String {
        let mut out = String::from(concat!(
            "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",",
            "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{",
            "\"name\":\"coaxial-lint\",\"rules\":["
        ));
        for (i, l) in CATALOG.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
                json_str(l.id),
                json_str(l.summary)
            ));
        }
        out.push_str("]}},\"results\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                concat!(
                    "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},",
                    "\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{}}},",
                    "\"region\":{{\"startLine\":{}}}}}}}]}}"
                ),
                json_str(f.id),
                json_str(&f.message),
                json_str(&f.path),
                f.line.max(1)
            ));
        }
        out.push_str("]}]}");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lint the workspace rooted at `root` using the suppression list in
/// `<root>/lint-allow.toml` (if present).
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    lint_workspace_scoped(root, None)
}

/// Like [`lint_workspace`], optionally scoped to a set of repo-relative
/// paths (`--changed-only`). The *analysis* always runs over the full
/// tree — cross-file rules need the whole graph, and a narrowed input
/// would invent E01/E02 "never read" findings — only the reported
/// findings are filtered. Scoped runs also skip stale-suppression
/// reporting, since an entry for an unchanged file legitimately matches
/// nothing in the filtered view.
pub fn lint_workspace_scoped(
    root: &Path,
    scope: Option<&BTreeSet<String>>,
) -> Result<Report, String> {
    let allow_path = root.join("lint-allow.toml");
    let allows = if allow_path.exists() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("{}: {e}", allow_path.display()))?;
        allow::parse(&text).map_err(|e| format!("lint-allow.toml: {e}"))?
    } else {
        Vec::new()
    };

    let sources = workspace_sources(root)?;
    let ctxs: Vec<rules::FileCtx> =
        sources.iter().map(|(rel, src)| rules::FileCtx::new(rel, src)).collect();
    let ws = symbols::Workspace::from_ctxs(&ctxs);

    let mut raw = Vec::new();
    let mut timing_map = std::collections::BTreeMap::new();
    for ctx in &ctxs {
        raw.extend(rules::lint_file_timed(ctx, &ws, &mut timing_map));
    }
    raw.extend(rules::lint_cross_file_timed(&ws, &ctxs, &mut timing_map));
    {
        let t0 = std::time::Instant::now();
        raw.extend(rules::check_e04(&sources, &rules::E04_SPEC));
        *timing_map.entry("E04").or_default() += t0.elapsed();
    }
    raw.sort_by(|a, b| (&a.path, a.line, a.id).cmp(&(&b.path, b.line, b.id)));

    let mut used = vec![false; allows.len()];
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        match allows.iter().position(|a| a.matches(&f)) {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => findings.push(f),
        }
    }
    if let Some(scope) = scope {
        findings.retain(|f| scope.contains(&f.path));
    }
    let stale_suppressions = if scope.is_some() {
        Vec::new()
    } else {
        allows.into_iter().zip(&used).filter(|(_, &u)| !u).map(|(a, _)| a).collect()
    };
    let timings = timing_map.into_iter().collect();
    Ok(Report { findings, stale_suppressions, suppressed, files: sources.len(), timings })
}

/// Every linted `.rs` file under `root` as `(repo-relative path, source)`
/// pairs, in sorted order. Public so the real-tree fixture tests can
/// build mutated workspaces (e.g. "what if this field lost its reads").
pub fn workspace_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let files = collect_rs_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        sources.push((rel, src));
    }
    Ok(sources)
}

/// All `.rs` files under `root` that the lint pass owns: workspace source,
/// tests, benches, and examples — excluding build output, vendored stand-ins,
/// version control, and the lint crate's own test fixtures (which contain
/// deliberate violations).
fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| e.to_string())?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(name.as_ref(), "target" | "vendor" | ".git" | "fixtures") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}
