#![forbid(unsafe_code)]
//! `coaxial-lint` — project-specific static analysis for the COAXIAL
//! simulator workspace.
//!
//! The simulator's core guarantees are behavioral contracts that `rustc`
//! and clippy cannot see:
//!
//! * **determinism** — sweep outputs are bit-identical at any parallel
//!   runner width, so nothing on a model/report/export path may depend on
//!   hash-iteration order or ambient entropy;
//! * **timing arithmetic** — cycle counts are exact `u64`s; silently
//!   truncating casts and floating-point accumulation corrupt the latency
//!   ledger in ways no test that happens to use small numbers will catch;
//! * **zero-cost telemetry** — every telemetry stamping site must sit
//!   behind `if T::ENABLED` so the `NullTelemetry` monomorphization
//!   compiles back to the pre-telemetry hot path;
//! * **model fidelity** — a parameter declared in a fidelity-critical
//!   config struct (DDR5 timings, CXL link transfer costs) but never read
//!   by the enforcing code is a silent fidelity bug.
//!
//! This crate encodes those contracts as a catalog of lints (see
//! [`CATALOG`]) and runs them over the workspace source. The build
//! environment is offline (no `syn`), so the rules run over a small
//! hand-rolled token stream ([`lexer`]) that is exact about comments,
//! strings, and lifetimes — the things that make text-level linting
//! unsound — and deliberately approximate about everything else. False
//! positives are expected occasionally and are handled by a checked-in
//! suppression file, `lint-allow.toml`, in which every entry must carry a
//! reason ([`allow`]).
//!
//! Run as `cargo run -p coaxial-lint --release` (wired into
//! `scripts/check.sh`); exits non-zero on any unsuppressed finding or any
//! stale suppression.

pub mod allow;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

/// A lint violation (or suppression-hygiene problem) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint ID, e.g. `"D01"`.
    pub id: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The identifier or construct the finding anchors on (matched against
    /// the optional `ident` key of suppressions).
    pub ident: String,
    /// Human explanation of what is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {} ({})", self.path, self.line, self.id, self.message, self.ident)
    }
}

/// One catalog entry: lint ID, one-line contract, rationale.
pub struct LintInfo {
    pub id: &'static str,
    pub summary: &'static str,
    pub rationale: &'static str,
}

/// The lint catalog. IDs are grouped by contract: D=determinism,
/// T=timing arithmetic, Z=zero-cost telemetry, U=unsafe hygiene,
/// C=config/constraint cross-reference.
pub const CATALOG: &[LintInfo] = &[
    LintInfo {
        id: "D01",
        summary: "no HashMap/HashSet iteration on model/report/export paths",
        rationale: "std hash iteration order is randomized per process; iterating one on any \
                    path that feeds simulated state or serialized output breaks bit-identical \
                    sweeps. Use BTreeMap/BTreeSet, or collect and sort explicitly. Keyed \
                    lookup (insert/get/remove/contains) is fine.",
    },
    LintInfo {
        id: "D02",
        summary: "no wall-clock or ambient entropy in model crates",
        rationale: "SystemTime/Instant/rand/RandomState inside \
                    crates/{cpu,cache,dram,cxl,system,workloads} lets host timing or process \
                    entropy leak into simulation behavior. All model randomness must come \
                    from coaxial-sim's seeded SplitMix64.",
    },
    LintInfo {
        id: "T01",
        summary: "no lossy `as` casts on cycle/latency-carrying integers",
        rationale: "`u64 as u32` on a cycle count silently wraps after ~1.8 s of simulated \
                    time at 2.4 GHz. Use try_into() (loud at the boundary) or widen the \
                    destination.",
    },
    LintInfo {
        id: "T02",
        summary: "no floating-point accumulation in cycle math outside stats/report layers",
        rationale: "floats make cycle arithmetic order-dependent (a+b+c != c+a+b) and \
                    platform-dependent; the latency ledger conservation proof only holds in \
                    exact integers. Convert to f64 only at the reporting boundary.",
    },
    LintInfo {
        id: "Z01",
        summary: "telemetry sink calls must be dominated by an `if T::ENABLED` guard",
        rationale: "an unguarded sink call in TelemetrySink-generic code costs real work in \
                    the NullTelemetry monomorphization and breaks the zero-cost contract \
                    held by the telemetry-equivalence test and the sim_throughput bench.",
    },
    LintInfo {
        id: "U01",
        summary: "every `unsafe` needs a `// SAFETY:` comment immediately above",
        rationale: "the workspace forbids unsafe except where a SAFETY comment states the \
                    invariant being relied on; unexplained unsafe is unreviewable.",
    },
    LintInfo {
        id: "C01",
        summary: "every declared fidelity parameter must be read by its enforcing code",
        rationale: "a field in a fidelity-critical config struct (DramTimings, CxlLinkConfig) \
                    that the scheduling/link-pipeline code never reads is a \
                    declared-but-unenforced parameter — the config claims a fidelity the \
                    simulator does not deliver.",
    },
];

pub fn catalog_entry(id: &str) -> Option<&'static LintInfo> {
    CATALOG.iter().find(|l| l.id == id)
}

/// Result of linting a tree: unsuppressed findings plus suppression
/// hygiene problems (stale entries).
pub struct Report {
    pub findings: Vec<Finding>,
    /// Suppressions that matched nothing (stale — must be removed).
    pub stale_suppressions: Vec<allow::AllowEntry>,
    /// Count of findings that were suppressed by lint-allow.toml.
    pub suppressed: usize,
    /// Files scanned.
    pub files: usize,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.stale_suppressions.is_empty()
    }
}

/// Lint the workspace rooted at `root` using the suppression list in
/// `<root>/lint-allow.toml` (if present).
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let allow_path = root.join("lint-allow.toml");
    let allows = if allow_path.exists() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("{}: {e}", allow_path.display()))?;
        allow::parse(&text).map_err(|e| format!("lint-allow.toml: {e}"))?
    } else {
        Vec::new()
    };

    let files = collect_rs_files(root)?;
    let mut raw = Vec::new();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        raw.extend(rules::lint_file(&rel, &src));
    }
    raw.extend(rules::lint_cross_reference(root)?);
    raw.sort_by(|a, b| (&a.path, a.line, a.id).cmp(&(&b.path, b.line, b.id)));

    let mut used = vec![false; allows.len()];
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        match allows.iter().position(|a| a.matches(&f)) {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => findings.push(f),
        }
    }
    let stale_suppressions =
        allows.into_iter().zip(&used).filter(|(_, &u)| !u).map(|(a, _)| a).collect();
    Ok(Report { findings, stale_suppressions, suppressed, files: files.len() })
}

/// All `.rs` files under `root` that the lint pass owns: workspace source,
/// tests, benches, and examples — excluding build output, vendored stand-ins,
/// version control, and the lint crate's own test fixtures (which contain
/// deliberate violations).
fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| e.to_string())?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(name.as_ref(), "target" | "vendor" | ".git" | "fixtures") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}
