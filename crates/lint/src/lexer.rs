//! A minimal Rust lexer.
//!
//! The container builds offline, so `syn` is not available; the lint rules
//! instead run over this hand-rolled token stream. It is not a full Rust
//! grammar — it only needs to be exact about the things that make naive
//! `grep`-style linting unsound: comments (including nested block
//! comments), string/char/byte literals (including raw strings with hash
//! fences), and lifetimes vs. char literals. Everything else is split into
//! identifiers, number literals, and single-character punctuation with
//! line numbers attached.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// Token text. For comments this includes the delimiters; for string
    /// literals it is the raw source slice.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `unsafe`, `as`, `r#match`).
    Ident,
    /// `'a` (not a char literal).
    Lifetime,
    /// String/char/byte-string literal, delimiters included.
    Str,
    /// Number literal (`0x1f`, `1_000u64`, `1.5e3`).
    Num,
    /// `// ...` or `/* ... */`, delimiters included.
    Comment,
    /// A single punctuation character (`.`, `:`, `{`, `&`, ...).
    Punct,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] as char == c
    }
}

/// Lex `src` into tokens. Never fails: malformed input degrades into
/// punctuation tokens rather than aborting the lint pass.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, toks: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let c = self.src[self.pos] as char;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                    self.push(TokKind::Comment, start, line);
                }
                '/' if self.peek(1) == Some('*') => {
                    self.block_comment();
                    self.push(TokKind::Comment, start, line);
                }
                '"' => {
                    self.string();
                    self.push(TokKind::Str, start, line);
                }
                'r' | 'b' if self.raw_or_byte_string() => {
                    self.push(TokKind::Str, start, line);
                }
                '\'' => {
                    if self.lifetime_ahead() {
                        self.bump(); // '
                        while self.ident_continues() {
                            self.pos += 1;
                        }
                        self.push(TokKind::Lifetime, start, line);
                    } else {
                        self.char_literal();
                        self.push(TokKind::Str, start, line);
                    }
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    self.pos += 1;
                    while self.ident_continues() {
                        self.pos += 1;
                    }
                    self.push(TokKind::Ident, start, line);
                }
                c if c.is_ascii_digit() => {
                    self.number();
                    self.push(TokKind::Num, start, line);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, start, line);
                }
            }
        }
        self.toks
    }

    fn peek(&self, off: usize) -> Option<char> {
        self.src.get(self.pos + off).map(|&b| b as char)
    }

    fn bump(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        // Keep `line` tracking exact for multi-line tokens consumed via
        // raw `pos += 1` loops (comments, strings count their own \n).
        let newlines = text.bytes().filter(|&b| b == b'\n').count();
        self.line = line + u32::try_from(newlines).unwrap_or(u32::MAX);
        self.toks.push(Tok { kind, text, line });
    }

    fn ident_continues(&self) -> bool {
        matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == '_')
    }

    fn block_comment(&mut self) {
        // Nested: /* /* */ */ is one comment.
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                self.pos += 2;
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
    }

    fn string(&mut self) {
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`. Returns false if
    /// the `r`/`b` at `pos` starts a plain identifier (caller lexes it).
    fn raw_or_byte_string(&mut self) -> bool {
        let mut p = self.pos;
        if self.src[p] == b'b' {
            p += 1;
        }
        let raw = self.src.get(p) == Some(&b'r');
        if raw {
            p += 1;
        }
        let mut hashes = 0usize;
        while self.src.get(p) == Some(&b'#') {
            hashes += 1;
            p += 1;
        }
        match self.src.get(p) {
            Some(&b'"') if raw => {
                p += 1;
                // Scan for `"` followed by `hashes` hashes; no escapes in raw.
                loop {
                    match self.src.get(p) {
                        None => break,
                        Some(&b'"')
                            if self.src[p + 1..]
                                .iter()
                                .take(hashes)
                                .filter(|&&b| b == b'#')
                                .count()
                                == hashes =>
                        {
                            p += 1 + hashes;
                            break;
                        }
                        Some(_) => p += 1,
                    }
                }
                self.pos = p;
                true
            }
            Some(&b'"') if !raw && hashes == 0 && self.src[self.pos] == b'b' => {
                self.pos = p;
                self.string_from_quote();
                true
            }
            Some(&b'\'') if !raw && hashes == 0 && self.src[self.pos] == b'b' => {
                self.pos = p;
                self.char_literal();
                true
            }
            _ => false,
        }
    }

    fn string_from_quote(&mut self) {
        self.string();
    }

    fn number(&mut self) {
        // Digits, underscores, type suffixes, hex/bin/oct prefixes, and
        // float forms (`1.5e-3`). Greedy and approximate: the rules only
        // care that the literal is not an identifier.
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                // Don't eat a method call on a literal (`1.max(x)`) or a
                // range (`0..n`).
                if c == '.' && !matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                    break;
                }
                self.pos += 1;
            } else if (c == '+' || c == '-')
                && matches!(self.src.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
            {
                self.pos += 1; // exponent sign
            } else {
                break;
            }
        }
    }

    fn char_literal(&mut self) {
        self.pos += 1; // opening '
        if self.peek(0) == Some('\\') {
            self.pos += 2;
            // \u{...}
            while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                self.pos += 1;
            }
            self.pos += 1;
        } else {
            self.pos += 1; // the char (ASCII assumption is fine: non-ASCII
                           // just consumes continuation bytes below)
            while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                self.pos += 1;
            }
            self.pos = (self.pos + 1).min(self.src.len());
        }
    }

    /// At a `'`: lifetime if followed by ident-start and NOT a char literal
    /// like `'a'`.
    fn lifetime_ahead(&self) -> bool {
        match (self.peek(1), self.peek(2)) {
            (Some(c), Some('\'')) if c.is_ascii_alphanumeric() => false, // 'a'
            (Some(c), _) if c.is_ascii_alphabetic() || c == '_' => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ts = kinds("let x: u32 = y.z();");
        assert_eq!(ts[0], (TokKind::Ident, "let".into()));
        assert!(ts.iter().any(|t| t.1 == "." && t.0 == TokKind::Punct));
    }

    #[test]
    fn comments_are_tokens_not_code() {
        let ts = kinds("a /* HashMap */ b // Instant\nc");
        let idents: Vec<_> =
            ts.iter().filter(|t| t.0 == TokKind::Ident).map(|t| t.1.clone()).collect();
        assert_eq!(idents, ["a", "b", "c"]);
        assert_eq!(ts.iter().filter(|t| t.0 == TokKind::Comment).count(), 2);
    }

    #[test]
    fn nested_block_comment() {
        let ts = kinds("/* outer /* inner */ still */ x");
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[1].1, "x");
    }

    #[test]
    fn strings_hide_their_contents() {
        let ts = kinds(r#"f("HashMap iter()", 'x', "esc \" quote")"#);
        assert!(ts.iter().all(|t| t.0 != TokKind::Ident || t.1 == "f"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let ts = kinds(r##"let s = r#"has "quotes" and HashMap"#; done"##);
        let idents: Vec<_> =
            ts.iter().filter(|t| t.0 == TokKind::Ident).map(|t| t.1.as_str()).collect();
        // The `r#"…"#` lexes as ONE Str token (prefix included), so no
        // ident leaks out of the raw string.
        assert_eq!(idents, ["let", "s", "done"].to_vec());
        assert!(ts.iter().any(|t| t.0 == TokKind::Str && t.1.contains("HashMap")));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ts = kinds("fn f<'a>(x: &'a u8) { let c = 'z'; let n = '\\n'; }");
        assert_eq!(ts.iter().filter(|t| t.0 == TokKind::Lifetime).count(), 2);
        assert_eq!(ts.iter().filter(|t| t.0 == TokKind::Str).count(), 2);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let ts = lex("a\nb\n/* c\nd */\ne");
        let e = ts.iter().find(|t| t.text == "e").unwrap();
        assert_eq!(e.line, 5);
    }

    #[test]
    fn byte_strings() {
        let ts = kinds(r#"let b = b"Instant"; let c = b'x';"#);
        assert!(ts.iter().filter(|t| t.0 == TokKind::Ident).all(|t| t.1 != "Instant"));
    }
}
