//! Workspace-wide symbol graph over the [`crate::parser`] item trees.
//!
//! For every file this records the definitions (structs + fields, enums +
//! variants, trait method sets) and, per function, the *references* the
//! cross-file rules need: call sites by name, field reads (`.f` in value
//! position), field writes (`.f = …` and struct-literal initializers,
//! with the initializing type when it is syntactically visible), and
//! string-literal metric paths passed to the registry methods.
//!
//! Resolution is deliberately name-based, not type-checked: a `.seed`
//! read anywhere counts as a read of every struct field named `seed`.
//! That over-approximation can only *hide* violations on fields with
//! common names (never invent false positives), which is the right
//! failure direction for a gate — and the config structs the rules watch
//! use distinctive `t_*`/`*_depth`-style names almost everywhere.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, TokKind};
use crate::parser::{self, Item, ItemKind};
use crate::rules::FileCtx;

/// Registry methods whose first string argument is a metric dot-path.
pub const METRIC_METHODS: &[&str] =
    &["set_counter", "add_counter", "set_gauge", "put_histogram", "export"];

/// One field write: plain assignment, compound assignment, or
/// struct-literal initializer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldWrite {
    /// Initializing type for struct literals (`Cfg { f: … }`, with `Self`
    /// resolved through the enclosing impl); `None` for dot-writes.
    pub type_name: Option<String>,
    pub field: String,
    /// The written value mentions a parameter of the enclosing fn — the
    /// signature of a builder/sweep actually varying the knob.
    pub param_derived: bool,
    /// The written value is the literal `0` (zero-stamps don't count as
    /// exercising a telemetry component).
    pub zero_literal: bool,
    pub line: u32,
}

/// One metric-path registration site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricReg {
    /// Normalized path pattern: format holes `{…}` collapse to `*`.
    pub pattern: String,
    /// No holes — the path is a compile-time constant.
    pub constant: bool,
    pub line: u32,
}

/// Everything the rules need to know about one function body.
#[derive(Debug, Clone)]
pub struct FnSym {
    pub name: String,
    /// `Self` type when defined inside an impl (or trait) block.
    pub owner: Option<String>,
    pub line: u32,
    pub in_test: bool,
    pub params: Vec<String>,
    /// Return type mentions `HashMap`/`HashSet` (feeds lint D01).
    pub returns_hash: bool,
    /// Free-fn and method call targets, by final name segment.
    pub calls: BTreeSet<String>,
    /// Fields read (`.f` not in assignment-target position).
    pub field_reads: BTreeSet<String>,
    pub writes: Vec<FieldWrite>,
    pub metric_regs: Vec<MetricReg>,
}

#[derive(Debug, Clone)]
pub struct StructSym {
    pub name: String,
    pub line: u32,
    pub fields: Vec<parser::FieldDef>,
}

#[derive(Debug, Clone)]
pub struct EnumSym {
    pub name: String,
    pub line: u32,
    pub variants: Vec<parser::VariantDef>,
}

/// Per-file slice of the symbol graph.
#[derive(Debug, Clone, Default)]
pub struct FileSyms {
    pub structs: Vec<StructSym>,
    pub enums: Vec<EnumSym>,
    /// Trait name → method names (e.g. `TelemetrySink` → sink hooks).
    pub trait_methods: BTreeMap<String, Vec<String>>,
    pub fns: Vec<FnSym>,
    /// Every identifier in the file (the C01 "is it read at all" set).
    pub idents: BTreeSet<String>,
}

/// The whole workspace, keyed by repo-relative path (BTreeMap: the lint's
/// own output must be deterministic).
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    pub files: BTreeMap<String, FileSyms>,
}

impl Workspace {
    /// Build the graph from already-lexed file contexts.
    pub fn from_ctxs(ctxs: &[FileCtx]) -> Self {
        let mut files = BTreeMap::new();
        for ctx in ctxs {
            files.insert(ctx.rel.to_string(), FileSyms::build(ctx));
        }
        Self { files }
    }

    /// Build the graph from `(rel, src)` pairs (fixture tests).
    pub fn from_sources(sources: &[(&str, &str)]) -> Self {
        let ctxs: Vec<FileCtx> = sources.iter().map(|(rel, src)| FileCtx::new(rel, src)).collect();
        Self::from_ctxs(&ctxs)
    }

    /// Names of fns (anywhere) whose return type is a hash collection.
    pub fn hash_returning_fns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for syms in self.files.values() {
            for f in &syms.fns {
                if f.returns_hash {
                    out.insert(f.name.clone());
                }
            }
        }
        out
    }

    /// Method names of the first trait definition called `name`.
    pub fn trait_method_names(&self, name: &str) -> Option<Vec<String>> {
        self.files.values().find_map(|s| s.trait_methods.get(name).cloned())
    }

    /// The struct `name` defined in file `rel`, if present.
    pub fn struct_def(&self, rel: &str, name: &str) -> Option<&StructSym> {
        self.files.get(rel)?.structs.iter().find(|s| s.name == name)
    }

    /// The enum `name` defined in file `rel`, if present.
    pub fn enum_def(&self, rel: &str, name: &str) -> Option<&EnumSym> {
        self.files.get(rel)?.enums.iter().find(|e| e.name == name)
    }
}

impl FileSyms {
    fn build(ctx: &FileCtx) -> Self {
        let idents =
            ctx.code.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone()).collect();
        let mut out = Self { idents, ..Self::default() };
        collect_items(&ctx.items, &ctx.code, None, false, &mut out);
        out
    }
}

fn collect_items(
    items: &[Item],
    code: &[Tok],
    owner: Option<&str>,
    in_test: bool,
    out: &mut FileSyms,
) {
    for item in items {
        match &item.kind {
            ItemKind::Struct { fields } => out.structs.push(StructSym {
                name: item.name.clone(),
                line: item.line,
                fields: fields.clone(),
            }),
            ItemKind::Enum { variants } => out.enums.push(EnumSym {
                name: item.name.clone(),
                line: item.line,
                variants: variants.clone(),
            }),
            ItemKind::Fn(def) => out.fns.push(analyze_fn(item, def, code, owner, in_test)),
            ItemKind::Impl { items: inner, .. } => {
                collect_items(inner, code, Some(&item.name), in_test, out);
            }
            ItemKind::Trait { items: inner } => {
                let methods: Vec<String> = inner
                    .iter()
                    .filter(|i| matches!(i.kind, ItemKind::Fn(_)))
                    .map(|i| i.name.clone())
                    .collect();
                out.trait_methods.insert(item.name.clone(), methods);
                collect_items(inner, code, Some(&item.name), in_test, out);
            }
            ItemKind::Mod { is_test, items: inner } => {
                collect_items(inner, code, owner, in_test || *is_test, out);
            }
            ItemKind::Const | ItemKind::Use => {}
        }
    }
}

fn analyze_fn(
    item: &Item,
    def: &parser::FnDef,
    code: &[Tok],
    owner: Option<&str>,
    in_test: bool,
) -> FnSym {
    let mut sym = FnSym {
        name: item.name.clone(),
        owner: owner.map(str::to_string),
        line: item.line,
        in_test,
        params: def.params.clone(),
        returns_hash: def.ret.contains("HashMap") || def.ret.contains("HashSet"),
        calls: BTreeSet::new(),
        field_reads: BTreeSet::new(),
        writes: Vec::new(),
        metric_regs: Vec::new(),
    };
    let Some((open, close)) = def.body else { return sym };
    let params: BTreeSet<&str> = def.params.iter().map(String::as_str).collect();

    let mut j = open + 1;
    while j < close {
        let t = &code[j];
        // Call site: `name (` — keywords and macro bangs excluded.
        if t.kind == TokKind::Ident
            && code.get(j + 1).is_some_and(|n| n.is_punct('('))
            && !parser::is_call_keyword(&t.text)
        {
            sym.calls.insert(t.text.clone());
            if METRIC_METHODS.contains(&t.text.as_str()) {
                if let Some(reg) = first_str_arg(code, j + 1, close) {
                    sym.metric_regs.push(reg);
                }
            }
        }
        // Field access: `.name` (a following `(` makes it a method call,
        // handled by the call branch when the walk reaches it).
        if t.is_punct('.')
            && code.get(j + 1).is_some_and(|n| n.kind == TokKind::Ident)
            && code.get(j + 2).is_none_or(|n| !n.is_punct('('))
            && !(j > 0 && code[j - 1].is_punct('.'))
        {
            let name = &code[j + 1];
            // Tuple-index access `.0` lexes as Num, so `name` is a real
            // field here. Classify write vs. read by the next token.
            let after = j + 2;
            let plain_assign = code.get(after).is_some_and(|n| n.is_punct('='))
                && code.get(after + 1).is_none_or(|n| !n.is_punct('='));
            let compound_assign = code.get(after).is_some_and(|n| {
                matches!(n.text.as_str(), "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^")
                    && n.kind == TokKind::Punct
            }) && code.get(after + 1).is_some_and(|n| n.is_punct('='))
                // `a.f < b` / `a.f >> 2` are reads, not `<<=`-style
                // compounds; require the `=` directly after one operator.
                && code.get(after + 2).is_none_or(|n| !n.is_punct('='));
            if plain_assign || compound_assign {
                let rhs_start = if plain_assign { after + 1 } else { after + 2 };
                let rhs = rhs_span(code, rhs_start, close);
                sym.writes.push(FieldWrite {
                    type_name: None,
                    field: name.text.clone(),
                    param_derived: mentions_any(&code[rhs_start..rhs], &params),
                    zero_literal: is_zero_literal(&code[rhs_start..rhs]),
                    line: name.line,
                });
                if compound_assign {
                    sym.field_reads.insert(name.text.clone());
                }
            } else {
                sym.field_reads.insert(name.text.clone());
            }
        }
        // Struct literal: `TypeName {` / `Self {` in expression position.
        if t.kind == TokKind::Ident
            && code.get(j + 1).is_some_and(|n| n.is_punct('{'))
            && is_type_like(&t.text)
            && !(j > 0 && struct_literal_blockers(&code[j - 1]))
        {
            let ty =
                if t.text == "Self" { owner.map(str::to_string) } else { Some(t.text.clone()) };
            if let Some(ty) = ty {
                let lit_close = matching(code, j + 1);
                collect_literal_inits(code, j + 2, lit_close, &ty, &params, &mut sym.writes);
            }
        }
        j += 1;
    }
    sym
}

/// `true` for idents that can head a struct literal (CamelCase or `Self`).
fn is_type_like(name: &str) -> bool {
    name == "Self" || name.chars().next().is_some_and(char::is_uppercase)
}

/// Keywords before `Ident {` that make it a block header, not a literal.
fn struct_literal_blockers(prev: &Tok) -> bool {
    prev.is_ident("impl")
        || prev.is_ident("for")
        || prev.is_ident("trait")
        || prev.is_ident("mod")
        || prev.is_ident("struct")
        || prev.is_ident("enum")
}

/// Field initializers at depth 1 of a struct literal. Nested literals are
/// collected when the outer walk reaches them, so only depth-1 fields are
/// taken here. A `..base` functional update ends the initializer list.
fn collect_literal_inits(
    code: &[Tok],
    start: usize,
    end: usize,
    ty: &str,
    params: &BTreeSet<&str>,
    writes: &mut Vec<FieldWrite>,
) {
    let mut j = start;
    while j < end {
        let t = &code[j];
        if t.is_punct('.') && code.get(j + 1).is_some_and(|n| n.is_punct('.')) {
            return; // ..rest
        }
        if t.is_punct('#') {
            j += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            if code.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && code.get(j + 2).is_none_or(|n| !n.is_punct(':'))
            {
                let value_end = rhs_span_until_comma(code, j + 2, end);
                writes.push(FieldWrite {
                    type_name: Some(ty.to_string()),
                    field: t.text.clone(),
                    param_derived: mentions_any(&code[j + 2..value_end], params),
                    zero_literal: is_zero_literal(&code[j + 2..value_end]),
                    line: t.line,
                });
                j = value_end + 1;
                continue;
            }
            if code.get(j + 1).is_none_or(|n| n.is_punct(',') || n.is_punct('}')) {
                // Shorthand `field,` — initialized from the binding of the
                // same name.
                writes.push(FieldWrite {
                    type_name: Some(ty.to_string()),
                    field: t.text.clone(),
                    param_derived: params.contains(t.text.as_str()),
                    zero_literal: false,
                    line: t.line,
                });
                j += 2;
                continue;
            }
        }
        j += 1;
    }
}

/// End of an assignment RHS: the `;` at depth 0, or `end`.
fn rhs_span(code: &[Tok], start: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = start;
    while j < end {
        let t = &code[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return j;
        }
        j += 1;
    }
    end
}

/// End of a struct-literal field value: the `,` at depth 0, or `end`.
fn rhs_span_until_comma(code: &[Tok], start: usize, end: usize) -> usize {
    let (mut par, mut ang, mut br) = (0i32, 0i32, 0i32);
    let mut j = start;
    while j < end {
        let t = &code[j];
        if t.is_punct(',') && par == 0 && ang <= 0 && br == 0 {
            return j;
        }
        if t.is_punct('(') || t.is_punct('[') {
            par += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            par -= 1;
        } else if t.is_punct('<') {
            ang += 1;
        } else if t.is_punct('>') && !(j > 0 && code[j - 1].is_punct('-')) {
            ang -= 1;
        } else if t.is_punct('{') {
            br += 1;
        } else if t.is_punct('}') {
            if br == 0 {
                return j;
            }
            br -= 1;
        }
        j += 1;
    }
    end
}

fn mentions_any(toks: &[Tok], names: &BTreeSet<&str>) -> bool {
    toks.iter().any(|t| t.kind == TokKind::Ident && names.contains(t.text.as_str()))
}

fn is_zero_literal(toks: &[Tok]) -> bool {
    toks.len() == 1 && toks[0].kind == TokKind::Num && toks[0].text == "0"
}

fn matching(code: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < code.len() {
        if code[j].is_punct('{') {
            depth += 1;
        } else if code[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    code.len().saturating_sub(1)
}

/// First string literal inside the argument list opening at `open`,
/// normalized into a [`MetricReg`].
fn first_str_arg(code: &[Tok], open: usize, limit: usize) -> Option<MetricReg> {
    let mut depth = 0i32;
    let mut j = open;
    while j < limit {
        let t = &code[j];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return None;
            }
        } else if t.kind == TokKind::Str {
            let raw = strip_quotes(&t.text);
            let constant = !raw.contains('{');
            return Some(MetricReg { pattern: normalize_pattern(&raw), constant, line: t.line });
        }
        j += 1;
    }
    None
}

/// Drop the quote fence of a string-literal token (plain and raw forms).
fn strip_quotes(text: &str) -> String {
    let first = text.find('"').map_or(0, |i| i + 1);
    let last = text.rfind('"').unwrap_or(text.len());
    if first <= last {
        text[first..last].to_string()
    } else {
        text.to_string()
    }
}

/// Collapse `{…}` format holes to `*`: `"{prefix}.ch{ch}.hits"` →
/// `"*.ch*.hits"`.
fn normalize_pattern(raw: &str) -> String {
    let mut out = String::new();
    let mut in_hole = false;
    for c in raw.chars() {
        match c {
            '{' if !in_hole => {
                in_hole = true;
                out.push('*');
            }
            '}' if in_hole => in_hole = false,
            _ if in_hole => {}
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_file(src: &str) -> FileSyms {
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", src)]);
        ws.files.values().next().unwrap().clone()
    }

    #[test]
    fn builder_writes_are_param_derived() {
        let syms = one_file(
            "impl Cfg { pub fn with_seed(mut self, seed: u64) -> Self { self.seed = seed; self } }",
        );
        let f = &syms.fns[0];
        assert_eq!(f.owner.as_deref(), Some("Cfg"));
        assert_eq!(f.writes.len(), 1);
        assert!(f.writes[0].param_derived);
        assert_eq!(f.writes[0].field, "seed");
        assert!(f.writes[0].type_name.is_none());
    }

    #[test]
    fn struct_literal_inits_resolve_self_and_shorthand() {
        let syms =
            one_file("impl Cfg { fn base(name: u64) -> Self { Self { name, cores: 12, z: 0 } } }");
        let w = &syms.fns[0].writes;
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].type_name.as_deref(), Some("Cfg"));
        assert!(w[0].param_derived, "shorthand from a param is param-derived");
        assert!(!w[1].param_derived);
        assert!(w[2].zero_literal);
    }

    #[test]
    fn reads_writes_and_compound_assignments() {
        let syms =
            one_file("fn f(r: &mut R, x: u64) { r.total += x; let y = r.count; r.max = 9; }");
        let f = &syms.fns[0];
        assert!(f.field_reads.contains("total"), "compound assign reads too");
        assert!(f.field_reads.contains("count"));
        assert!(!f.field_reads.contains("max"));
        let fields: Vec<&str> = f.writes.iter().map(|w| w.field.as_str()).collect();
        assert_eq!(fields, ["total", "max"]);
        assert!(f.writes[0].param_derived && !f.writes[1].param_derived);
    }

    #[test]
    fn metric_paths_normalize_holes() {
        let syms = one_file(
            r#"fn e(reg: &mut M, p: &str) {
                reg.set_counter("engine.skipped_cycles", 1);
                reg.set_gauge(&format!("{p}.ch{ch}.tx_utilization"), v);
            }"#,
        );
        let regs = &syms.fns[0].metric_regs;
        assert_eq!(regs.len(), 2);
        assert!(regs[0].constant && regs[0].pattern == "engine.skipped_cycles");
        assert!(!regs[1].constant);
        assert_eq!(regs[1].pattern, "*.ch*.tx_utilization");
    }

    #[test]
    fn hash_returning_fns_and_trait_methods() {
        let ws = Workspace::from_sources(&[(
            "crates/x/src/lib.rs",
            "pub trait TelemetrySink { fn on_miss(&mut self); fn on_reset(&mut self); }\n\
             fn build() -> HashMap<u64, u64> { HashMap::new() }",
        )]);
        assert!(ws.hash_returning_fns().contains("build"));
        let methods = ws.trait_method_names("TelemetrySink").unwrap();
        assert_eq!(methods, ["on_miss", "on_reset"]);
    }

    #[test]
    fn test_mods_mark_their_fns() {
        let syms = one_file("mod tests { fn helper() { x.seed = 1; } } fn live() {}");
        let helper = syms.fns.iter().find(|f| f.name == "helper").unwrap();
        let live = syms.fns.iter().find(|f| f.name == "live").unwrap();
        assert!(helper.in_test && !live.in_test);
    }
}
