//! Workspace-wide symbol graph over the [`crate::parser`] item trees.
//!
//! For every file this records the definitions (structs + fields, enums +
//! variants, trait method sets) and, per function, the *references* the
//! cross-file rules need: call sites by name, field reads (`.f` in value
//! position), field writes (`.f = …` and struct-literal initializers,
//! with the initializing type when it is syntactically visible), and
//! string-literal metric paths passed to the registry methods.
//!
//! The graph carries two linkage layers (see [`Linkage`]):
//!
//! - **Bare names** (`calls`, `field_reads`): a `.seed` read anywhere
//!   counts as a read of every struct field named `seed`. The historical
//!   over-approximation — it can only *hide* violations, never invent
//!   false positives.
//! - **Resolved paths** (`calls_fq`, `reads_typed`, lock regions): a
//!   [`crate::resolve::Resolver`] walk of the same body tracks a
//!   lightweight type for the expression chain under the cursor
//!   (parameter/let/struct-literal bindings, field types, method return
//!   types) and attributes each site to a fully-qualified symbol. A site
//!   the tracker cannot prove lands in `calls_unresolved` /
//!   `reads_unresolved` and falls back to bare-name linking — so the
//!   precise mode removes false cross-module links without ever losing a
//!   reference the name-based graph would have seen. In
//!   [`Linkage::ByName`] mode the fallback sets simply equal the bare
//!   sets, which makes the old semantics a special case of the new
//!   helpers.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, TokKind};
use crate::parser::{self, Item, ItemKind};
use crate::resolve::{Linkage, Res, Resolver, TyRes};
use crate::rules::FileCtx;

/// Registry methods whose first string argument is a metric dot-path.
pub const METRIC_METHODS: &[&str] =
    &["set_counter", "add_counter", "set_gauge", "put_histogram", "export"];

/// One field write: plain assignment, compound assignment, or
/// struct-literal initializer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldWrite {
    /// Initializing type for struct literals (`Cfg { f: … }`, with `Self`
    /// resolved through the enclosing impl); `None` for dot-writes.
    pub type_name: Option<String>,
    /// Resolved fq of the written-to struct when the resolver proved it
    /// (struct literals via the literal head, dot-writes via the receiver
    /// chain); `None` under bare-name linkage or on resolution failure.
    pub type_fq: Option<String>,
    pub field: String,
    /// The written value mentions a parameter of the enclosing fn — the
    /// signature of a builder/sweep actually varying the knob.
    pub param_derived: bool,
    /// The written value is the literal `0` (zero-stamps don't count as
    /// exercising a telemetry component).
    pub zero_literal: bool,
    pub line: u32,
}

/// One metric-path registration site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricReg {
    /// Normalized path pattern: format holes `{…}` collapse to `*`.
    pub pattern: String,
    /// No holes — the path is a compile-time constant.
    pub constant: bool,
    pub line: u32,
}

/// One call site, with its resolution when the semantic walk proved one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Index of the callee ident in the file's code-token vector.
    pub pos: usize,
    pub line: u32,
    pub name: String,
    /// Fully-qualified callee (`module::f` / `module::Type::m`).
    pub fq: Option<String>,
    /// The site is accounted for even without an `fq` edge (std methods,
    /// `MutexGuard` plumbing, `drop`); unresolved sites link by name.
    pub resolved: bool,
}

/// A span during which a recognized `Mutex` is held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockRegion {
    /// Mutex identity: `OwnerFq::field` for struct fields,
    /// `module::NAME` for statics.
    pub mutex: String,
    pub line: u32,
    /// Token span `[start, end)` in the file's code-token vector: from
    /// the `.lock()` call to the end of the enclosing block for let-bound
    /// guards (shortened by `drop(guard)`), or to the end of the
    /// statement for temporaries.
    pub start: usize,
    pub end: usize,
    /// Binding name for let-bound guards.
    pub guard: Option<String>,
}

/// `acquired` was locked while `held` was already live (same fn body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    pub held: String,
    pub acquired: String,
    pub line: u32,
}

/// Everything the rules need to know about one function body.
#[derive(Debug, Clone)]
pub struct FnSym {
    pub name: String,
    /// `Self` type when defined inside an impl (or trait) block.
    pub owner: Option<String>,
    /// Fully-qualified ID: `module::name` for free fns,
    /// `owner_fq::name` for methods (`?::`-prefixed when the impl's
    /// `Self` type did not resolve). Equals `name` under bare linkage.
    pub fq: String,
    pub line: u32,
    pub in_test: bool,
    pub is_pub: bool,
    /// Body token span in the file's code-token vector.
    pub body: Option<(usize, usize)>,
    pub params: Vec<String>,
    /// Return type mentions `HashMap`/`HashSet` (feeds lint D01).
    pub returns_hash: bool,
    /// Free-fn and method call targets, by final name segment.
    pub calls: BTreeSet<String>,
    /// Resolved call targets by fq (resolved linkage only).
    pub calls_fq: BTreeSet<String>,
    /// Call names with at least one unresolved site — these link by bare
    /// name. Equals `calls` under bare linkage.
    pub calls_unresolved: BTreeSet<String>,
    /// Fields read (`.f` not in assignment-target position).
    pub field_reads: BTreeSet<String>,
    /// Reads attributed to a specific struct: `(struct_fq, field)`.
    pub reads_typed: BTreeSet<(String, String)>,
    /// Field names with at least one unresolved read site — these link by
    /// bare name. Equals `field_reads` under bare linkage.
    pub reads_unresolved: BTreeSet<String>,
    pub writes: Vec<FieldWrite>,
    pub metric_regs: Vec<MetricReg>,
    /// Every call site in order (resolved linkage only).
    pub call_sites: Vec<CallSite>,
    /// Spans holding a recognized mutex (resolved linkage only).
    pub lock_regions: Vec<LockRegion>,
    /// Nested acquisitions observed in this body (resolved linkage only).
    pub lock_order: Vec<LockEdge>,
}

#[derive(Debug, Clone)]
pub struct StructSym {
    pub name: String,
    pub line: u32,
    pub fields: Vec<parser::FieldDef>,
}

#[derive(Debug, Clone)]
pub struct EnumSym {
    pub name: String,
    pub line: u32,
    pub variants: Vec<parser::VariantDef>,
}

/// Per-file slice of the symbol graph.
#[derive(Debug, Clone, Default)]
pub struct FileSyms {
    pub structs: Vec<StructSym>,
    pub enums: Vec<EnumSym>,
    /// Trait name → method names (e.g. `TelemetrySink` → sink hooks).
    pub trait_methods: BTreeMap<String, Vec<String>>,
    pub fns: Vec<FnSym>,
    /// Every identifier in the file (the C01 "is it read at all" set).
    pub idents: BTreeSet<String>,
}

/// The whole workspace, keyed by repo-relative path (BTreeMap: the lint's
/// own output must be deterministic).
#[derive(Debug, Clone)]
pub struct Workspace {
    pub files: BTreeMap<String, FileSyms>,
    pub linkage: Linkage,
    /// Present under [`Linkage::Resolved`].
    pub resolver: Option<Resolver>,
}

impl Default for Workspace {
    fn default() -> Self {
        Self { files: BTreeMap::new(), linkage: Linkage::Resolved, resolver: None }
    }
}

impl Workspace {
    /// Build the graph from already-lexed file contexts (resolved
    /// linkage — the default everywhere, fixtures included).
    pub fn from_ctxs(ctxs: &[FileCtx]) -> Self {
        Self::from_ctxs_linked(ctxs, Linkage::Resolved)
    }

    /// Build with an explicit linkage mode (the precision-differential
    /// test runs both over the same tree).
    pub fn from_ctxs_linked(ctxs: &[FileCtx], linkage: Linkage) -> Self {
        let resolver = match linkage {
            Linkage::ByName => None,
            Linkage::Resolved => {
                let files: Vec<(&str, &[Item])> =
                    ctxs.iter().map(|c| (c.rel, c.items.as_slice())).collect();
                Some(Resolver::build(&files))
            }
        };
        let mut files = BTreeMap::new();
        for ctx in ctxs {
            files.insert(ctx.rel.to_string(), FileSyms::build(ctx, resolver.as_ref()));
        }
        Self { files, linkage, resolver }
    }

    /// Build the graph from `(rel, src)` pairs (fixture tests).
    pub fn from_sources(sources: &[(&str, &str)]) -> Self {
        Self::from_sources_linked(sources, Linkage::Resolved)
    }

    pub fn from_sources_linked(sources: &[(&str, &str)], linkage: Linkage) -> Self {
        let ctxs: Vec<FileCtx> = sources.iter().map(|(rel, src)| FileCtx::new(rel, src)).collect();
        Self::from_ctxs_linked(&ctxs, linkage)
    }

    /// Names of fns (anywhere) whose return type is a hash collection.
    pub fn hash_returning_fns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for syms in self.files.values() {
            for f in &syms.fns {
                if f.returns_hash {
                    out.insert(f.name.clone());
                }
            }
        }
        out
    }

    /// The hash-returning fn names *visible in `rel`*: the global name
    /// set, plus import aliases that resolve to hash-returning fns
    /// (`use crate::index::build_index as bi` taints `bi`), minus names
    /// that resolve in this file to a specifically non-hash fn.
    pub fn hash_fn_names_for(&self, rel: &str) -> BTreeSet<String> {
        let mut out = self.hash_returning_fns();
        let Some(r) = &self.resolver else { return out };
        let hash_fqs = r.hash_returning_fqs();
        for (alias, res) in r.aliases_of(rel) {
            match res {
                Res::Fn(fq) if hash_fqs.contains(&fq) => {
                    out.insert(alias);
                }
                // An alias shadowing a global hash-fn name with a
                // provably different, non-hash target un-taints it.
                Res::Fn(fq) => {
                    out.remove(&alias);
                    let _ = fq;
                }
                _ => {}
            }
        }
        if let Some(module) = r.module_of(rel) {
            out.retain(|name| match r.resolve_path(module, &[name], 8) {
                Res::Fn(fq) => hash_fqs.contains(&fq),
                _ => true, // methods/unknowns keep the conservative taint
            });
        }
        out
    }

    /// Method names of the `TelemetrySink`-style trait as seen from
    /// `rel`: resolve the trait name in the file's module when possible,
    /// falling back to the first same-named trait definition anywhere.
    pub fn trait_methods_for(&self, rel: &str, trait_name: &str) -> Option<Vec<String>> {
        if let Some(r) = &self.resolver {
            if let Some(module) = r.module_of(rel) {
                if let Res::Type(fq) = r.resolve_path(module, &[trait_name], 8) {
                    if let Some(methods) = r.traits.get(&fq) {
                        return Some(methods.iter().cloned().collect());
                    }
                }
            }
        }
        self.trait_method_names(trait_name)
    }

    /// Method names of the first trait definition called `name`.
    pub fn trait_method_names(&self, name: &str) -> Option<Vec<String>> {
        self.files.values().find_map(|s| s.trait_methods.get(name).cloned())
    }

    /// The struct `name` defined in file `rel`, if present.
    pub fn struct_def(&self, rel: &str, name: &str) -> Option<&StructSym> {
        self.files.get(rel)?.structs.iter().find(|s| s.name == name)
    }

    /// The enum `name` defined in file `rel`, if present.
    pub fn enum_def(&self, rel: &str, name: &str) -> Option<&EnumSym> {
        self.files.get(rel)?.enums.iter().find(|e| e.name == name)
    }

    /// The fq of the struct `name` defined in file `rel` (where the rule
    /// specs point), when resolution is on.
    pub fn struct_fq(&self, rel: &str, name: &str) -> Option<String> {
        let r = self.resolver.as_ref()?;
        let module = r.module_of(rel)?;
        let fq = format!("{module}::{name}");
        r.struct_fields.contains_key(&fq).then_some(fq)
    }

    /// Does `f` read `field` of the struct `fq` under the graph's linkage?
    /// An unresolved read of the right name always counts (fallback); a
    /// typed read counts only against its own struct.
    pub fn reads_field(&self, f: &FnSym, fq: Option<&str>, field: &str) -> bool {
        if f.reads_unresolved.contains(field) {
            return true;
        }
        match fq {
            Some(fq) => f.reads_typed.contains(&(fq.to_string(), field.to_string())),
            // Spec struct itself unresolvable → full bare fallback.
            None => f.field_reads.contains(field),
        }
    }
}

impl FileSyms {
    fn build(ctx: &FileCtx, resolver: Option<&Resolver>) -> Self {
        let idents =
            ctx.code.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone()).collect();
        let mut out = Self { idents, ..Self::default() };
        let module = resolver.and_then(|r| r.module_of(ctx.rel)).map(str::to_string);
        let sem = match (resolver, module) {
            (Some(r), Some(m)) => Some((r, m)),
            _ => None,
        };
        collect_items(
            &ctx.items,
            &ctx.code,
            None,
            false,
            sem.as_ref().map(|(r, m)| (*r, m.as_str())),
            &mut out,
        );
        out
    }
}

fn collect_items(
    items: &[Item],
    code: &[Tok],
    owner: Option<(&str, &str)>, // (bare name, fq)
    in_test: bool,
    sem: Option<(&Resolver, &str)>, // (resolver, module)
    out: &mut FileSyms,
) {
    for item in items {
        match &item.kind {
            ItemKind::Struct { fields } => out.structs.push(StructSym {
                name: item.name.clone(),
                line: item.line,
                fields: fields.clone(),
            }),
            ItemKind::Enum { variants } => out.enums.push(EnumSym {
                name: item.name.clone(),
                line: item.line,
                variants: variants.clone(),
            }),
            ItemKind::Fn(def) => out.fns.push(analyze_fn(item, def, code, owner, in_test, sem)),
            ItemKind::Impl { items: inner, .. } => {
                let owner_fq = match sem {
                    Some((r, module)) => match r.resolve_path(module, &[&item.name], 16) {
                        Res::Type(fq) => fq,
                        _ => format!("?::{module}::{}", item.name),
                    },
                    None => item.name.clone(),
                };
                collect_items(inner, code, Some((&item.name, &owner_fq)), in_test, sem, out);
            }
            ItemKind::Trait { items: inner } => {
                let methods: Vec<String> = inner
                    .iter()
                    .filter(|i| matches!(i.kind, ItemKind::Fn(_)))
                    .map(|i| i.name.clone())
                    .collect();
                out.trait_methods.insert(item.name.clone(), methods);
                let owner_fq = match sem {
                    Some((_, module)) => format!("{module}::{}", item.name),
                    None => item.name.clone(),
                };
                collect_items(inner, code, Some((&item.name, &owner_fq)), in_test, sem, out);
            }
            ItemKind::Mod { is_test, items: inner } => {
                let sub = sem.map(|(_, m)| format!("{m}::{}", item.name));
                let sem_inner = match (&sem, &sub) {
                    (Some((r, _)), Some(s)) => Some((*r, s.as_str())),
                    _ => None,
                };
                collect_items(inner, code, owner, in_test || *is_test, sem_inner, out);
            }
            ItemKind::Const { .. } | ItemKind::Use { .. } => {}
        }
    }
}

/// The lightweight value the semantic walk tracks for the expression
/// chain under the cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Val {
    None,
    /// A value of the struct/enum `fq`.
    Typed(String),
    /// A recognized `Mutex` (`id` is the lock identity; `inner` its
    /// payload type when resolved).
    Mutex {
        id: String,
        inner: Option<String>,
    },
    /// A live `MutexGuard` over `id`, dereferencing to `inner`.
    Guard {
        id: String,
        inner: Option<String>,
    },
}

impl Val {
    fn type_fq(&self) -> Option<&str> {
        match self {
            Val::Typed(t) => Some(t),
            Val::Guard { inner: Some(t), .. } => Some(t),
            _ => None,
        }
    }
}

/// What to restore for `cur` when a paren/bracket group closes.
#[derive(Debug, Clone)]
enum Frame {
    /// Call arguments: restore the call's result value.
    Call(Val),
    /// Grouping parens: keep whatever the inside evaluated to.
    Keep,
    /// Indexing: element types are not tracked.
    Drop,
}

const DEPTH: usize = 16;

/// Per-body state of the resolved-path walk.
struct SemState<'a> {
    r: &'a Resolver,
    module: &'a str,
    owner_fq: Option<String>,
    scopes: Vec<BTreeMap<String, Val>>,
    /// Close index of each open `{}` block.
    blocks: Vec<usize>,
    frames: Vec<Frame>,
    cur: Val,
    /// Result value a just-classified call installs at its `(`.
    pending_call: Option<Val>,
    /// Simple `let [mut] name = …` binding awaiting its initializer value.
    pending_let: Option<String>,
    regions: Vec<LockRegion>,
}

impl<'a> SemState<'a> {
    fn resolve_here(&self, segs: &[&str]) -> Res {
        if segs.first() == Some(&"Self") {
            let Some(o) = &self.owner_fq else { return Res::Unknown };
            let mut cur = Res::Type(o.clone());
            for seg in &segs[1..] {
                cur = match cur {
                    Res::Type(t) => self.r.type_member(&t, seg),
                    _ => Res::Unknown,
                };
            }
            return cur;
        }
        self.r.resolve_path(self.module, segs, DEPTH)
    }

    fn bind(&mut self, name: &str, val: Val) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.insert(name.to_string(), val);
        }
    }

    fn lookup(&self, name: &str) -> Option<&Val> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn val_of_ty(&self, ty: &TyRes, mutex_id: Option<String>) -> Val {
        if ty.mutex {
            match mutex_id {
                Some(id) => Val::Mutex { id, inner: ty.ty.clone() },
                // A mutex we cannot name (local/parameter) is not tracked.
                None => Val::None,
            }
        } else {
            ty.ty.clone().map_or(Val::None, Val::Typed)
        }
    }

    fn head_val(&self, name: &str) -> Val {
        if name == "self" {
            return self.owner_fq.clone().map_or(Val::None, Val::Typed);
        }
        if let Some(v) = self.lookup(name) {
            return v.clone();
        }
        match self.resolve_here(&[name]) {
            Res::Const(fq) => {
                let ty = self.r.consts.get(&fq).cloned().unwrap_or_default();
                self.val_of_ty(&ty, Some(fq))
            }
            _ => Val::None,
        }
    }

    fn ret_val(&self, ret: &Option<String>) -> Val {
        ret.clone().map_or(Val::None, Val::Typed)
    }

    /// New mutex acquisition at token `j`: record order edges against the
    /// still-live regions, then open a region for it.
    fn lock_event(&mut self, code: &[Tok], j: usize, close: usize, id: String, sym: &mut FnSym) {
        let line = code[j].line;
        for reg in &self.regions {
            if reg.end > j {
                sym.lock_order.push(LockEdge {
                    held: reg.mutex.clone(),
                    acquired: id.clone(),
                    line,
                });
            }
        }
        let (end, guard) = match &self.pending_let {
            Some(name) => (self.blocks.last().copied().unwrap_or(close), Some(name.clone())),
            None => (rhs_span(code, j, close), None),
        };
        self.regions.push(LockRegion { mutex: id, line, start: j, end, guard });
    }

    /// Classify the call site `code[j] (`, which the bare walk already
    /// pushed onto `sym.call_sites`.
    fn on_call(&mut self, code: &[Tok], j: usize, close: usize, sym: &mut FnSym) {
        let name = code[j].text.clone();
        let prev_dot = j > 0 && code[j - 1].is_punct('.');
        let prev_colon = j > 0 && code[j - 1].is_punct(':');
        let mut fq: Option<String> = None;
        let mut resolved = false;
        let mut result = Val::None;
        if prev_dot {
            match (&self.cur.clone(), name.as_str()) {
                (Val::Mutex { id, inner }, "lock") => {
                    self.lock_event(code, j, close, id.clone(), sym);
                    result = Val::Guard { id: id.clone(), inner: inner.clone() };
                    resolved = true;
                }
                (g @ Val::Guard { .. }, "unwrap" | "expect") => {
                    result = (*g).clone();
                    resolved = true;
                }
                (v, "clone" | "to_owned" | "as_ref" | "borrow") => {
                    result = (*v).clone();
                    resolved = true;
                }
                (v, _) => {
                    if let Some(t) = v.type_fq().map(str::to_string) {
                        if let Some(info) = self.r.method(&t, &name) {
                            fq = Some(format!("{t}::{name}"));
                            resolved = true;
                            result = self.ret_val(&info.ret);
                        }
                    }
                }
            }
        } else if prev_colon {
            match self.resolve_here(&path_back(code, j)) {
                Res::Fn(f) => {
                    result = self.ret_val(&self.r.fns.get(&f).and_then(|i| i.ret.clone()));
                    fq = Some(f);
                    resolved = true;
                }
                Res::Method { owner, name: m } => {
                    let ret = self.r.method(&owner, &m).and_then(|i| i.ret.clone());
                    result = self.ret_val(&ret);
                    fq = Some(format!("{owner}::{m}"));
                    resolved = true;
                }
                // Tuple-variant / tuple-struct constructors yield the type.
                Res::Variant { owner, .. } | Res::Type(owner) => {
                    result = Val::Typed(owner);
                    resolved = true;
                }
                _ => {}
            }
        } else if name == "drop" {
            if let Some(arg) = code.get(j + 2).filter(|t| {
                t.kind == TokKind::Ident && code.get(j + 3).is_some_and(|n| n.is_punct(')'))
            }) {
                for reg in &mut self.regions {
                    if reg.guard.as_deref() == Some(arg.text.as_str()) && reg.end > j {
                        reg.end = j;
                    }
                }
            }
            resolved = true;
        } else {
            match self.resolve_here(&[&name]) {
                Res::Fn(f) => {
                    result = self.ret_val(&self.r.fns.get(&f).and_then(|i| i.ret.clone()));
                    fq = Some(f);
                    resolved = true;
                }
                Res::Type(t) => {
                    // Tuple-struct constructor.
                    result = Val::Typed(t);
                    resolved = true;
                }
                _ => {}
            }
        }
        if let Some(fq) = &fq {
            sym.calls_fq.insert(fq.clone());
        }
        if !resolved {
            sym.calls_unresolved.insert(name);
        }
        if let Some(site) = sym.call_sites.last_mut() {
            site.fq = fq;
            site.resolved = resolved;
        }
        self.pending_call = Some(result);
        self.cur = Val::None;
    }

    /// Classify the field site `. name` whose bare read/write the caller
    /// already recorded.
    fn on_field(&mut self, name: &str, is_write: bool, compound: bool, sym: &mut FnSym) {
        let recv = self.cur.type_fq().map(str::to_string);
        match recv {
            Some(t) if self.r.struct_has_field(&t, name) => {
                if is_write {
                    if let Some(w) = sym.writes.last_mut() {
                        w.type_fq = Some(t.clone());
                    }
                    if compound {
                        sym.reads_typed.insert((t, name.to_string()));
                    }
                    self.cur = Val::None;
                } else {
                    sym.reads_typed.insert((t.clone(), name.to_string()));
                    let ty = self.r.field_ty(&t, name).cloned().unwrap_or_default();
                    self.cur = self.val_of_ty(&ty, Some(format!("{t}::{name}")));
                }
            }
            _ => {
                if !is_write || compound {
                    sym.reads_unresolved.insert(name.to_string());
                }
                self.cur = Val::None;
            }
        }
    }

    /// The generic per-token step: scopes, frames, `let` headers, chain
    /// heads, and value resets. Call/field idents are skipped — their
    /// dedicated hooks already ran.
    fn on_token(&mut self, code: &[Tok], j: usize, close: usize, sym: &mut FnSym) {
        let t = &code[j];
        match t.kind {
            TokKind::Punct => {
                match t.text.chars().next().unwrap_or(' ') {
                    '{' => {
                        self.blocks.push(matching(code, j).min(close));
                        self.scopes.push(BTreeMap::new());
                        self.pending_let = None;
                        self.cur = Val::None;
                    }
                    '}' => {
                        self.blocks.pop();
                        self.scopes.pop();
                        self.cur = Val::None;
                    }
                    '(' => {
                        let f = match self.pending_call.take() {
                            Some(v) => Frame::Call(v),
                            None => Frame::Keep,
                        };
                        self.frames.push(f);
                        self.cur = Val::None;
                    }
                    ')' => match self.frames.pop() {
                        Some(Frame::Call(v)) => self.cur = v,
                        Some(Frame::Drop) => self.cur = Val::None,
                        Some(Frame::Keep) | None => {}
                    },
                    '[' => {
                        self.frames.push(Frame::Drop);
                        self.cur = Val::None;
                    }
                    ']' => {
                        self.frames.pop();
                        self.cur = Val::None;
                    }
                    ';' => {
                        if let Some(name) = self.pending_let.take() {
                            if self.cur != Val::None {
                                let v = self.cur.clone();
                                self.bind(&name, v);
                            }
                        }
                        self.cur = Val::None;
                    }
                    // `.`/`?` continue a chain; `:` appears inside paths;
                    // `&`/`*` are value-transparent enough (the next ident
                    // re-heads the chain anyway).
                    '.' | '?' | ':' | '&' | '*' => {}
                    _ => self.cur = Val::None,
                }
            }
            TokKind::Ident => {
                let next = code.get(j + 1);
                let is_call =
                    next.is_some_and(|n| n.is_punct('(')) && !parser::is_call_keyword(&t.text);
                let after_dot = j > 0 && code[j - 1].is_punct('.');
                if is_call || after_dot {
                    return; // handled by on_call / on_field
                }
                if t.text == "let" {
                    self.on_let(code, j, close);
                    return;
                }
                let mid_path = next.is_some_and(|n| n.is_punct(':'))
                    && code.get(j + 2).is_some_and(|n| n.is_punct(':'));
                if mid_path {
                    return; // the final segment classifies the path
                }
                let after_path = j > 1 && code[j - 1].is_punct(':') && code[j - 2].is_punct(':');
                if after_path {
                    // Path in value position: `Kind::Variant`, `m::CONST`.
                    self.cur = match self.resolve_here(&path_back(code, j)) {
                        Res::Variant { owner, .. } => Val::Typed(owner),
                        Res::Const(fq) => {
                            let ty = self.r.consts.get(&fq).cloned().unwrap_or_default();
                            self.val_of_ty(&ty, Some(fq))
                        }
                        _ => Val::None,
                    };
                    return;
                }
                if next.is_some_and(|n| n.is_punct('{'))
                    && is_type_like(&t.text)
                    && !(j > 0 && struct_literal_blockers(&code[j - 1]))
                {
                    // Struct literal head: bind a pending let to the type.
                    if let (Some(name), Res::Type(fq)) =
                        (self.pending_let.take(), self.resolve_here(&[&t.text]))
                    {
                        self.bind(&name, Val::Typed(fq));
                    }
                    self.cur = Val::None;
                    return;
                }
                let _ = sym;
                self.cur = self.head_val(&t.text);
            }
            _ => self.cur = Val::None,
        }
    }

    /// `let [mut] name [: Ty] = …` — bind annotated types immediately;
    /// otherwise remember the name so the initializer's value (or lock
    /// acquisition) can bind it. Pattern lets are not tracked.
    fn on_let(&mut self, code: &[Tok], j: usize, close: usize) {
        self.pending_let = None;
        let mut k = j + 1;
        if code.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        let Some(name_tok) = code.get(k).filter(|t| t.kind == TokKind::Ident) else { return };
        let name = name_tok.text.clone();
        // `if let Some(x)` / `let Foo { .. }` / `let Kind::V(..)` are
        // patterns, not bindings of the scrutinee value.
        let next = code.get(k + 1);
        if next.is_some_and(|t| t.is_punct('(') || t.is_punct('{'))
            || (next.is_some_and(|t| t.is_punct(':'))
                && code.get(k + 2).is_some_and(|t| t.is_punct(':')))
        {
            return;
        }
        let has_ty = code.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(k + 2).is_none_or(|t| !t.is_punct(':'));
        if has_ty {
            let mut ty_toks: Vec<&str> = Vec::new();
            let mut m = k + 2;
            let mut depth = 0i32;
            while m < close {
                let tt = &code[m];
                if depth == 0 && (tt.is_punct('=') || tt.is_punct(';')) {
                    break;
                }
                if tt.is_punct('<') {
                    depth += 1;
                } else if tt.is_punct('>') {
                    depth -= 1;
                }
                ty_toks.push(&tt.text);
                m += 1;
            }
            let ty = self.r.resolve_type_text(self.module, &ty_toks.join(" "));
            let v = self.val_of_ty(&ty, None);
            if v != Val::None {
                self.bind(&name, v);
            }
        } else {
            self.pending_let = Some(name);
        }
    }
}

/// Walk a `::`-separated path backwards from its final ident at `j`.
fn path_back(code: &[Tok], j: usize) -> Vec<&str> {
    let mut segs = vec![code[j].text.as_str()];
    let mut k = j;
    while k >= 3
        && code[k - 1].is_punct(':')
        && code[k - 2].is_punct(':')
        && code[k - 3].kind == TokKind::Ident
    {
        k -= 3;
        segs.insert(0, code[k].text.as_str());
    }
    segs
}

#[allow(clippy::too_many_lines)]
fn analyze_fn(
    item: &Item,
    def: &parser::FnDef,
    code: &[Tok],
    owner: Option<(&str, &str)>,
    in_test: bool,
    sem_ctx: Option<(&Resolver, &str)>,
) -> FnSym {
    let fq = match (sem_ctx, owner) {
        (Some(_), Some((_, owner_fq))) => format!("{owner_fq}::{}", item.name),
        (Some((_, module)), None) => format!("{module}::{}", item.name),
        (None, _) => item.name.clone(),
    };
    let mut sym = FnSym {
        name: item.name.clone(),
        owner: owner.map(|(o, _)| o.to_string()),
        fq,
        line: item.line,
        in_test,
        is_pub: item.is_pub,
        body: def.body,
        params: def.params.clone(),
        returns_hash: def.ret.contains("HashMap") || def.ret.contains("HashSet"),
        calls: BTreeSet::new(),
        calls_fq: BTreeSet::new(),
        calls_unresolved: BTreeSet::new(),
        field_reads: BTreeSet::new(),
        reads_typed: BTreeSet::new(),
        reads_unresolved: BTreeSet::new(),
        writes: Vec::new(),
        metric_regs: Vec::new(),
        call_sites: Vec::new(),
        lock_regions: Vec::new(),
        lock_order: Vec::new(),
    };
    let Some((open, close)) = def.body else { return sym };
    let params: BTreeSet<&str> = def.params.iter().map(String::as_str).collect();

    let mut sem = sem_ctx.map(|(r, module)| {
        let mut scope = BTreeMap::new();
        if let Some((_, owner_fq)) = owner {
            if !owner_fq.starts_with('?') {
                scope.insert("self".to_string(), Val::Typed(owner_fq.to_string()));
            }
        }
        for (p, ty) in def.params.iter().zip(&def.param_tys) {
            let resolved = r.resolve_type_text(module, ty);
            if let Some(fq) = resolved.ty {
                if !resolved.mutex {
                    scope.insert(p.clone(), Val::Typed(fq));
                }
            }
        }
        SemState {
            r,
            module,
            owner_fq: owner.map(|(_, f)| f.to_string()).filter(|f| !f.starts_with('?')),
            scopes: vec![scope],
            blocks: Vec::new(),
            frames: Vec::new(),
            cur: Val::None,
            pending_call: None,
            pending_let: None,
            regions: Vec::new(),
        }
    });

    let mut j = open + 1;
    while j < close {
        let t = &code[j];
        // Call site: `name (` — keywords and macro bangs excluded.
        if t.kind == TokKind::Ident
            && code.get(j + 1).is_some_and(|n| n.is_punct('('))
            && !parser::is_call_keyword(&t.text)
        {
            sym.calls.insert(t.text.clone());
            sym.call_sites.push(CallSite {
                pos: j,
                line: t.line,
                name: t.text.clone(),
                fq: None,
                resolved: false,
            });
            if METRIC_METHODS.contains(&t.text.as_str()) {
                if let Some(reg) = first_str_arg(code, j + 1, close) {
                    sym.metric_regs.push(reg);
                }
            }
            if let Some(s) = sem.as_mut() {
                s.on_call(code, j, close, &mut sym);
            }
        }
        // Field access: `.name` (a following `(` makes it a method call,
        // handled by the call branch when the walk reaches it).
        if t.is_punct('.')
            && code.get(j + 1).is_some_and(|n| n.kind == TokKind::Ident)
            && code.get(j + 2).is_none_or(|n| !n.is_punct('('))
            && !(j > 0 && code[j - 1].is_punct('.'))
        {
            let name = &code[j + 1];
            // Tuple-index access `.0` lexes as Num, so `name` is a real
            // field here. Classify write vs. read by the next token.
            let after = j + 2;
            let plain_assign = code.get(after).is_some_and(|n| n.is_punct('='))
                && code.get(after + 1).is_none_or(|n| !n.is_punct('='));
            let compound_assign = code.get(after).is_some_and(|n| {
                matches!(n.text.as_str(), "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^")
                    && n.kind == TokKind::Punct
            }) && code.get(after + 1).is_some_and(|n| n.is_punct('='))
                // `a.f < b` / `a.f >> 2` are reads, not `<<=`-style
                // compounds; require the `=` directly after one operator.
                && code.get(after + 2).is_none_or(|n| !n.is_punct('='));
            if plain_assign || compound_assign {
                let rhs_start = if plain_assign { after + 1 } else { after + 2 };
                let rhs = rhs_span(code, rhs_start, close);
                sym.writes.push(FieldWrite {
                    type_name: None,
                    type_fq: None,
                    field: name.text.clone(),
                    param_derived: mentions_any(&code[rhs_start..rhs], &params),
                    zero_literal: is_zero_literal(&code[rhs_start..rhs]),
                    line: name.line,
                });
                if compound_assign {
                    sym.field_reads.insert(name.text.clone());
                }
            } else {
                sym.field_reads.insert(name.text.clone());
            }
            if let Some(s) = sem.as_mut() {
                s.on_field(&name.text, plain_assign || compound_assign, compound_assign, &mut sym);
            }
        }
        // Struct literal: `TypeName {` / `Self {` in expression position.
        if t.kind == TokKind::Ident
            && code.get(j + 1).is_some_and(|n| n.is_punct('{'))
            && is_type_like(&t.text)
            && !(j > 0 && struct_literal_blockers(&code[j - 1]))
        {
            let ty = if t.text == "Self" {
                owner.map(|(o, _)| o.to_string())
            } else {
                Some(t.text.clone())
            };
            if let Some(ty) = ty {
                let type_fq = sem.as_ref().and_then(|s| {
                    let head = if t.text == "Self" { "Self" } else { ty.as_str() };
                    match s.resolve_here(&[head]) {
                        Res::Type(fq) => Some(fq),
                        _ => None,
                    }
                });
                let lit_close = matching(code, j + 1);
                collect_literal_inits(
                    code,
                    j + 2,
                    lit_close,
                    &ty,
                    type_fq.as_deref(),
                    &params,
                    &mut sym.writes,
                );
            }
        }
        if let Some(s) = sem.as_mut() {
            s.on_token(code, j, close, &mut sym);
        }
        j += 1;
    }
    if let Some(s) = sem {
        sym.lock_regions = s.regions;
    } else {
        // Bare linkage: the fallback sets equal the bare sets, so rules
        // written against the resolved helpers reproduce old behavior.
        sym.calls_unresolved = sym.calls.clone();
        sym.reads_unresolved = sym.field_reads.clone();
    }
    sym
}

/// `true` for idents that can head a struct literal (CamelCase or `Self`).
fn is_type_like(name: &str) -> bool {
    name == "Self" || name.chars().next().is_some_and(char::is_uppercase)
}

/// Keywords before `Ident {` that make it a block header, not a literal.
fn struct_literal_blockers(prev: &Tok) -> bool {
    prev.is_ident("impl")
        || prev.is_ident("for")
        || prev.is_ident("trait")
        || prev.is_ident("mod")
        || prev.is_ident("struct")
        || prev.is_ident("enum")
}

/// Field initializers at depth 1 of a struct literal. Nested literals are
/// collected when the outer walk reaches them, so only depth-1 fields are
/// taken here. A `..base` functional update ends the initializer list.
fn collect_literal_inits(
    code: &[Tok],
    start: usize,
    end: usize,
    ty: &str,
    type_fq: Option<&str>,
    params: &BTreeSet<&str>,
    writes: &mut Vec<FieldWrite>,
) {
    let mut j = start;
    while j < end {
        let t = &code[j];
        if t.is_punct('.') && code.get(j + 1).is_some_and(|n| n.is_punct('.')) {
            return; // ..rest
        }
        if t.is_punct('#') {
            j += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            if code.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && code.get(j + 2).is_none_or(|n| !n.is_punct(':'))
            {
                let value_end = rhs_span_until_comma(code, j + 2, end);
                writes.push(FieldWrite {
                    type_name: Some(ty.to_string()),
                    type_fq: type_fq.map(str::to_string),
                    field: t.text.clone(),
                    param_derived: mentions_any(&code[j + 2..value_end], params),
                    zero_literal: is_zero_literal(&code[j + 2..value_end]),
                    line: t.line,
                });
                j = value_end + 1;
                continue;
            }
            if code.get(j + 1).is_none_or(|n| n.is_punct(',') || n.is_punct('}')) {
                // Shorthand `field,` — initialized from the binding of the
                // same name.
                writes.push(FieldWrite {
                    type_name: Some(ty.to_string()),
                    type_fq: type_fq.map(str::to_string),
                    field: t.text.clone(),
                    param_derived: params.contains(t.text.as_str()),
                    zero_literal: false,
                    line: t.line,
                });
                j += 2;
                continue;
            }
        }
        j += 1;
    }
}

/// End of an assignment RHS: the `;` at depth 0, or `end`.
fn rhs_span(code: &[Tok], start: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = start;
    while j < end {
        let t = &code[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return j;
        }
        j += 1;
    }
    end
}

/// End of a struct-literal field value: the `,` at depth 0, or `end`.
fn rhs_span_until_comma(code: &[Tok], start: usize, end: usize) -> usize {
    let (mut par, mut ang, mut br) = (0i32, 0i32, 0i32);
    let mut j = start;
    while j < end {
        let t = &code[j];
        if t.is_punct(',') && par == 0 && ang <= 0 && br == 0 {
            return j;
        }
        if t.is_punct('(') || t.is_punct('[') {
            par += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            par -= 1;
        } else if t.is_punct('<') {
            ang += 1;
        } else if t.is_punct('>') && !(j > 0 && code[j - 1].is_punct('-')) {
            ang -= 1;
        } else if t.is_punct('{') {
            br += 1;
        } else if t.is_punct('}') {
            if br == 0 {
                return j;
            }
            br -= 1;
        }
        j += 1;
    }
    end
}

fn mentions_any(toks: &[Tok], names: &BTreeSet<&str>) -> bool {
    toks.iter().any(|t| t.kind == TokKind::Ident && names.contains(t.text.as_str()))
}

fn is_zero_literal(toks: &[Tok]) -> bool {
    toks.len() == 1 && toks[0].kind == TokKind::Num && toks[0].text == "0"
}

fn matching(code: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < code.len() {
        if code[j].is_punct('{') {
            depth += 1;
        } else if code[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    code.len().saturating_sub(1)
}

/// First string literal inside the argument list opening at `open`,
/// normalized into a [`MetricReg`].
fn first_str_arg(code: &[Tok], open: usize, limit: usize) -> Option<MetricReg> {
    let mut depth = 0i32;
    let mut j = open;
    while j < limit {
        let t = &code[j];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return None;
            }
        } else if t.kind == TokKind::Str {
            let raw = strip_quotes(&t.text);
            let constant = !raw.contains('{');
            return Some(MetricReg { pattern: normalize_pattern(&raw), constant, line: t.line });
        }
        j += 1;
    }
    None
}

/// Drop the quote fence of a string-literal token (plain and raw forms).
fn strip_quotes(text: &str) -> String {
    let first = text.find('"').map_or(0, |i| i + 1);
    let last = text.rfind('"').unwrap_or(text.len());
    if first <= last {
        text[first..last].to_string()
    } else {
        text.to_string()
    }
}

/// Collapse `{…}` format holes to `*`: `"{prefix}.ch{ch}.hits"` →
/// `"*.ch*.hits"`.
fn normalize_pattern(raw: &str) -> String {
    let mut out = String::new();
    let mut in_hole = false;
    for c in raw.chars() {
        match c {
            '{' if !in_hole => {
                in_hole = true;
                out.push('*');
            }
            '}' if in_hole => in_hole = false,
            _ if in_hole => {}
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_file(src: &str) -> FileSyms {
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", src)]);
        ws.files.values().next().unwrap().clone()
    }

    #[test]
    fn builder_writes_are_param_derived() {
        let syms = one_file(
            "impl Cfg { pub fn with_seed(mut self, seed: u64) -> Self { self.seed = seed; self } }",
        );
        let f = &syms.fns[0];
        assert_eq!(f.owner.as_deref(), Some("Cfg"));
        assert_eq!(f.writes.len(), 1);
        assert!(f.writes[0].param_derived);
        assert_eq!(f.writes[0].field, "seed");
        assert!(f.writes[0].type_name.is_none());
    }

    #[test]
    fn struct_literal_inits_resolve_self_and_shorthand() {
        let syms =
            one_file("impl Cfg { fn base(name: u64) -> Self { Self { name, cores: 12, z: 0 } } }");
        let w = &syms.fns[0].writes;
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].type_name.as_deref(), Some("Cfg"));
        assert!(w[0].param_derived, "shorthand from a param is param-derived");
        assert!(!w[1].param_derived);
        assert!(w[2].zero_literal);
    }

    #[test]
    fn reads_writes_and_compound_assignments() {
        let syms =
            one_file("fn f(r: &mut R, x: u64) { r.total += x; let y = r.count; r.max = 9; }");
        let f = &syms.fns[0];
        assert!(f.field_reads.contains("total"), "compound assign reads too");
        assert!(f.field_reads.contains("count"));
        assert!(!f.field_reads.contains("max"));
        let fields: Vec<&str> = f.writes.iter().map(|w| w.field.as_str()).collect();
        assert_eq!(fields, ["total", "max"]);
        assert!(f.writes[0].param_derived && !f.writes[1].param_derived);
    }

    #[test]
    fn metric_paths_normalize_holes() {
        let syms = one_file(
            r#"fn e(reg: &mut M, p: &str) {
                reg.set_counter("engine.skipped_cycles", 1);
                reg.set_gauge(&format!("{p}.ch{ch}.tx_utilization"), v);
            }"#,
        );
        let regs = &syms.fns[0].metric_regs;
        assert_eq!(regs.len(), 2);
        assert!(regs[0].constant && regs[0].pattern == "engine.skipped_cycles");
        assert!(!regs[1].constant);
        assert_eq!(regs[1].pattern, "*.ch*.tx_utilization");
    }

    #[test]
    fn hash_returning_fns_and_trait_methods() {
        let ws = Workspace::from_sources(&[(
            "crates/x/src/lib.rs",
            "pub trait TelemetrySink { fn on_miss(&mut self); fn on_reset(&mut self); }\n\
             fn build() -> HashMap<u64, u64> { HashMap::new() }",
        )]);
        assert!(ws.hash_returning_fns().contains("build"));
        let methods = ws.trait_method_names("TelemetrySink").unwrap();
        assert_eq!(methods, ["on_miss", "on_reset"]);
    }

    #[test]
    fn test_mods_mark_their_fns() {
        let syms = one_file("mod tests { fn helper() { x.seed = 1; } } fn live() {}");
        let helper = syms.fns.iter().find(|f| f.name == "helper").unwrap();
        let live = syms.fns.iter().find(|f| f.name == "live").unwrap();
        assert!(helper.in_test && !live.in_test);
    }

    #[test]
    fn typed_reads_attribute_to_the_receiver_struct() {
        let ws = Workspace::from_sources(&[
            ("crates/dram/src/config.rs", "pub struct Timings { pub t_faw: u64 }"),
            (
                "crates/dram/src/bank.rs",
                "use crate::config::Timings;\nfn check(t: &Timings) -> u64 { t.t_faw }",
            ),
        ]);
        let f = &ws.files["crates/dram/src/bank.rs"].fns[0];
        assert_eq!(f.fq, "coaxial_dram::bank::check");
        assert!(f
            .reads_typed
            .contains(&("coaxial_dram::config::Timings".to_string(), "t_faw".to_string())));
        assert!(!f.reads_unresolved.contains("t_faw"), "resolved sites do not fall back");
        assert!(f.field_reads.contains("t_faw"), "bare layer still records everything");
    }

    #[test]
    fn resolved_calls_get_fq_edges_and_let_bindings_chain() {
        let ws = Workspace::from_sources(&[(
            "crates/system/src/runner.rs",
            "pub struct Cfg { pub seed: u64 }\n\
             impl Cfg { pub fn base() -> Self { Cfg { seed: 1 } } }\n\
             pub fn go() -> u64 { let c = Cfg::base(); c.seed }",
        )]);
        let go =
            ws.files["crates/system/src/runner.rs"].fns.iter().find(|f| f.name == "go").unwrap();
        assert!(go.calls_fq.contains("coaxial_system::runner::Cfg::base"));
        assert!(!go.calls_unresolved.contains("base"));
        assert!(go
            .reads_typed
            .contains(&("coaxial_system::runner::Cfg".to_string(), "seed".to_string())));
    }

    #[test]
    fn lock_regions_track_guards_through_fields_and_statics() {
        let ws = Workspace::from_sources(&[(
            "crates/gateway/src/state.rs",
            "pub struct Inner { pub running: usize }\n\
             pub struct Gateway { pub inner: Mutex<Inner> }\n\
             static GLOBAL: LazyLock<Mutex<Inner>> = LazyLock::new(mk);\n\
             impl Gateway {\n\
               pub fn tick(&self) {\n\
                 let mut inner = self.inner.lock().expect(\"poisoned\");\n\
                 inner.running += 1;\n\
                 drop(inner);\n\
                 let g = GLOBAL.lock().unwrap();\n\
               }\n\
             }",
        )]);
        let tick =
            ws.files["crates/gateway/src/state.rs"].fns.iter().find(|f| f.name == "tick").unwrap();
        assert_eq!(tick.lock_regions.len(), 2);
        let field = &tick.lock_regions[0];
        assert_eq!(field.mutex, "coaxial_gateway::state::Gateway::inner");
        assert_eq!(field.guard.as_deref(), Some("inner"));
        let global = &tick.lock_regions[1];
        assert_eq!(global.mutex, "coaxial_gateway::state::GLOBAL");
        assert!(field.end < global.start, "drop(inner) closed the first region");
        assert!(
            tick.lock_order.is_empty(),
            "sequential (non-nested) acquisitions record no order edge"
        );
        assert!(tick
            .reads_typed
            .contains(&("coaxial_gateway::state::Inner".to_string(), "running".to_string())));
    }

    #[test]
    fn nested_lock_acquisitions_record_order_edges() {
        let ws = Workspace::from_sources(&[(
            "crates/system/src/server.rs",
            "pub struct S { pub n: u64 }\n\
             static A: LazyLock<Mutex<S>> = LazyLock::new(mk);\n\
             static B: LazyLock<Mutex<S>> = LazyLock::new(mk);\n\
             fn both() { let a = A.lock().unwrap(); let b = B.lock().unwrap(); }",
        )]);
        let both =
            ws.files["crates/system/src/server.rs"].fns.iter().find(|f| f.name == "both").unwrap();
        assert_eq!(both.lock_order.len(), 1);
        assert_eq!(both.lock_order[0].held, "coaxial_system::server::A");
        assert_eq!(both.lock_order[0].acquired, "coaxial_system::server::B");
    }

    #[test]
    fn byname_linkage_degenerates_to_bare_sets() {
        let ws = Workspace::from_sources_linked(
            &[("crates/dram/src/bank.rs", "fn check(t: &Timings) -> u64 { helper(); t.t_faw }")],
            Linkage::ByName,
        );
        let f = &ws.files["crates/dram/src/bank.rs"].fns[0];
        assert_eq!(f.calls_unresolved, f.calls);
        assert_eq!(f.reads_unresolved, f.field_reads);
        assert!(f.reads_typed.is_empty() && f.calls_fq.is_empty());
        assert_eq!(f.fq, "check");
    }
}
