//! Unit-of-measure dataflow: expression trees, a statement-level CFG, and
//! an abstract interpreter over a unit lattice.
//!
//! This is the last rung of the static-analysis ladder (lexer → item
//! parser → symbol graph → resolved paths → **dataflow**). Fn bodies that
//! [`crate::parser`] left as raw token spans are lowered here into
//! expression trees and a statement-level control-flow graph, and a
//! worklist fixpoint propagates an abstract *unit* per local through
//! arithmetic, field reads/writes, calls, and returns.
//!
//! ## The lattice
//!
//! ```text
//!            Unknown                (top: could be anything — HIDES findings)
//!   /    /     |      \       \
//! Cycles Nanos Bytes Instructions Ratio     (the five known units)
//!   \    \     |      /       /
//!             Lit               (bottom: a bare numeric literal adopts any unit)
//! ```
//!
//! `Unknown` obeys the established precision contract: it can only *hide*
//! findings, never invent them — every Q-rule check requires both sides to
//! be `Known` before it fires. `Lit` is the literal chameleon: `dur.max(1)`
//! keeps `dur`'s unit, `x_cycles + 3` is fine.
//!
//! ## Seeding (the ground truth)
//!
//! * the `Cycle` type alias (sim's and telemetry's) claims `Cycles`;
//! * `_ns`/`_nanos`, `_cycles`/`_cycle`, `_bytes`, `_instr`/`_instrs`/
//!   `_instructions`, and `_ratio` suffixes on fields, params, consts, and
//!   fn names claim their unit — **except** names containing a `per`
//!   segment (`bytes_per_cycle` is a rate, not bytes);
//! * `cycles_to_ns`/`ns_to_cycles` get their summaries from their own
//!   signatures (param types + name suffixes), so the blessed conversions
//!   are the only sanctioned unit boundary;
//! * `NS_PER_CYCLE`/`CPU_FREQ_GHZ` mentions evaluate to `Unknown` (Q02
//!   already flags them; evaluating them would only cascade Q01 noise).
//!
//! ## The rules
//!
//! * **Q01** — no mixed-unit `+`/`-`/`%`/comparison, and no cross-unit
//!   assignment, argument, or return against a *type- or let-claimed*
//!   slot without a blessed conversion.
//! * **Q02** — cycles↔ns conversion only through `time.rs`: a bare
//!   `* 2.4`, `/ CPU_FREQ_GHZ`, or hand-rolled `* NS_PER_CYCLE` outside a
//!   blessed file is a finding (token-level, so it also sees macro args).
//! * **Q03** — every `pub` field/param whose *name* claims a unit suffix
//!   must actually be written with that unit at every write site.
//!
//! Fixed-point function summaries run over the resolved call graph
//! ([`crate::resolve`]); under `Linkage::ByName` unresolved call sites
//! fall back to globally-unique fn names, so resolution only ever
//! *narrows* (same contract as E05).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, TokKind};
use crate::parser::{FnDef, Item, ItemKind};
use crate::rules::FileCtx;
use crate::symbols::Workspace;
use crate::Finding;

// ---------------------------------------------------------------------------
// Lattice
// ---------------------------------------------------------------------------

/// The five known units a value can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    Cycles,
    Nanos,
    Bytes,
    Instructions,
    Ratio,
}

impl Unit {
    pub fn name(self) -> &'static str {
        match self {
            Unit::Cycles => "cycles",
            Unit::Nanos => "ns",
            Unit::Bytes => "bytes",
            Unit::Instructions => "instructions",
            Unit::Ratio => "ratio",
        }
    }
}

/// Where a unit claim came from. Type-backed claims route violations to
/// Q01 (the slot's *type* demands the unit); suffix-backed claims route to
/// Q03 (the slot's *name* promises the unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prov {
    Type,
    Suffix,
}

/// Abstract value: bottom (`Lit`), one of five units, or top (`Unknown`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Abs {
    /// A bare numeric literal — adopts whatever unit it meets.
    Lit,
    Known(Unit),
    Unknown,
}

impl Abs {
    pub fn join(self, o: Abs) -> Abs {
        match (self, o) {
            (Abs::Lit, x) | (x, Abs::Lit) => x,
            (Abs::Known(a), Abs::Known(b)) if a == b => self,
            _ => Abs::Unknown,
        }
    }

    fn known(self) -> Option<Unit> {
        match self {
            Abs::Known(u) => Some(u),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Seeding
// ---------------------------------------------------------------------------

/// Unit claimed by an identifier's trailing `_`-segment (or whole name).
/// Names with a `per` segment are rates (`bytes_per_cycle`,
/// `NS_PER_CYCLE`) and claim nothing.
pub fn suffix_unit(name: &str) -> Option<Unit> {
    let lower = name.to_ascii_lowercase();
    let segs: Vec<&str> = lower.split('_').filter(|s| !s.is_empty()).collect();
    if segs.contains(&"per") {
        return None;
    }
    match *segs.last()? {
        "ns" | "nanos" => Some(Unit::Nanos),
        "cycles" | "cycle" => Some(Unit::Cycles),
        "bytes" => Some(Unit::Bytes),
        "instr" | "instrs" | "instructions" => Some(Unit::Instructions),
        "ratio" => Some(Unit::Ratio),
        _ => None,
    }
}

/// Unit claimed by a declared type (space-joined token text). The `Cycle`
/// alias — sim's or telemetry's — is the only type-level ground truth.
pub fn type_unit(ty: &str) -> Option<Unit> {
    if ty.split_whitespace().any(|t| t == "Cycle") {
        Some(Unit::Cycles)
    } else {
        None
    }
}

/// Claim for a slot: declared type first (stronger), then name suffix.
fn slot_claim(name: &str, ty: &str) -> Option<(Unit, Prov)> {
    if let Some(u) = type_unit(ty) {
        return Some((u, Prov::Type));
    }
    suffix_unit(name).map(|u| (u, Prov::Suffix))
}

/// Blessed conversion homes: only `time.rs` may spell out the cycle↔ns
/// relationship.
pub fn is_blessed(rel: &str) -> bool {
    rel.ends_with("/time.rs") || rel == "time.rs"
}

/// Unit rules run over library/binary sources, not tests, fixtures, or
/// examples — and never inside a blessed file.
pub fn in_unit_scope(rel: &str) -> bool {
    (rel.contains("/src/") || rel.starts_with("src/")) && !is_blessed(rel)
}

/// The conversion-factor idents whose raw mention is Q02's business.
const CONVERSION_CONSTS: &[&str] = &["NS_PER_CYCLE", "CPU_FREQ_GHZ"];

/// Methods that preserve the unit of their receiver (joined with any
/// unit-carrying arguments). Mixing units through these still fires Q01
/// (`a_cycles.max(b_ns)` is as mixed as `a_cycles + b_ns`).
const PRESERVE_METHODS: &[&str] = &[
    "clone",
    "copied",
    "cloned",
    "to_owned",
    "into",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "min",
    "max",
    "clamp",
    "abs",
    "saturating_add",
    "saturating_sub",
    "wrapping_add",
    "wrapping_sub",
    "checked_add",
    "checked_sub",
    "round",
    "floor",
    "ceil",
    "trunc",
];

// ---------------------------------------------------------------------------
// Expression trees
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    /// `<` `<=` `>` `>=` `==` `!=` — comparing mixed units is as wrong as
    /// adding them.
    Cmp,
    /// Shifts, bitops, `&&`/`||`, ranges — unit-destroying.
    Other,
}

impl BinOp {
    fn sym(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Cmp => "<cmp>",
            BinOp::Other => "<op>",
        }
    }
}

#[derive(Debug, Clone)]
enum Expr {
    /// Numeric literal — the lattice bottom.
    Lit,
    /// A (possibly `::`-qualified) path; `line` of its last segment.
    Path(Vec<String>, u32),
    Field(Box<Expr>, String, u32),
    Index(Box<Expr>),
    Call {
        /// Method receiver (`None` for free calls).
        recv: Option<Box<Expr>>,
        name: String,
        /// Code-token index of the callee ident — the resolver's
        /// `CallSite::pos` key.
        pos: usize,
        line: u32,
        args: Vec<Expr>,
    },
    /// `-x`, `&x`, `*x`, `x?` — unit-preserving.
    Unary(Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>, u32),
    Assign {
        target: Box<Expr>,
        /// `Some(op)` for compound (`+=` …) assignment.
        op: Option<BinOp>,
        value: Box<Expr>,
        line: u32,
    },
    /// `x as T` — numeric casts preserve the unit.
    Cast(Box<Expr>),
    StructLit {
        name: String,
        /// `(field, value, line)` per initializer; `..base` is dropped.
        inits: Vec<(String, Expr, u32)>,
    },
    Tuple(Vec<Expr>),
    If {
        cond: Box<Expr>,
        then_b: Block,
        else_b: Option<Box<Expr>>,
    },
    Match {
        scrutinee: Box<Expr>,
        /// `(bound idents, arm body)` — pattern binds go in Unknown.
        arms: Vec<(Vec<String>, Expr)>,
    },
    Loop(Block),
    While {
        cond: Box<Expr>,
        body: Block,
    },
    For {
        var: Vec<String>,
        iter: Box<Expr>,
        body: Block,
    },
    BlockE(Block),
    Closure {
        params: Vec<String>,
        body: Box<Expr>,
    },
    Ret(Option<Box<Expr>>, u32),
    Break,
    Continue,
    /// Anything we don't model (macros, parse bailouts, `[…]` literals,
    /// strings, bools). Evaluates to `Unknown` — hides, never invents.
    Opaque,
}

#[derive(Debug, Clone)]
struct Block {
    stmts: Vec<Stmt>,
    tail: Option<Box<Expr>>,
}

impl Block {
    fn empty() -> Self {
        Block { stmts: Vec::new(), tail: None }
    }
}

#[derive(Debug, Clone)]
enum Stmt {
    Let {
        /// Idents bound by the pattern.
        names: Vec<String>,
        /// Declared type text (space-joined), empty if none.
        ty: String,
        init: Option<Expr>,
        line: u32,
    },
    Expr(Expr),
}

// ---------------------------------------------------------------------------
// Expression parser (total: degrades to Opaque, never fails)
// ---------------------------------------------------------------------------

struct P<'a> {
    t: &'a [Tok],
    i: usize,
    end: usize,
    depth: u32,
}

const MAX_DEPTH: u32 = 64;

impl<'a> P<'a> {
    fn new(t: &'a [Tok], start: usize, end: usize) -> Self {
        P { t, i: start, end: end.min(t.len()), depth: 0 }
    }

    fn peek(&self, k: usize) -> Option<&Tok> {
        let j = self.i + k;
        if j < self.end {
            Some(&self.t[j])
        } else {
            None
        }
    }

    fn txt(&self, k: usize) -> &str {
        self.peek(k).map_or("", |t| t.text.as_str())
    }

    fn line(&self) -> u32 {
        self.peek(0).map_or(0, |t| t.line)
    }

    fn at(&self, s: &str) -> bool {
        self.txt(0) == s
    }

    fn at2(&self, a: &str, b: &str) -> bool {
        self.txt(0) == a && self.txt(1) == b
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.at(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn is_ident(&self, k: usize) -> bool {
        self.peek(k).is_some_and(|t| t.kind == TokKind::Ident)
    }

    /// Skip a balanced `(…)`/`{…}`/`[…]` group, cursor on the opener.
    fn skip_group(&mut self) {
        let (open, close) = match self.txt(0) {
            "(" => ("(", ")"),
            "{" => ("{", "}"),
            "[" => ("[", "]"),
            _ => {
                self.bump();
                return;
            }
        };
        let mut d = 0usize;
        while self.i < self.end {
            let s = self.txt(0);
            if s == open {
                d += 1;
            } else if s == close {
                d -= 1;
                self.bump();
                if d == 0 {
                    return;
                }
                continue;
            }
            self.bump();
        }
    }

    /// Skip a turbofish / generic argument list, cursor on `<`.
    fn skip_angles(&mut self) {
        let mut d = 0usize;
        while self.i < self.end {
            match self.txt(0) {
                "<" => d += 1,
                ">" => {
                    d = d.saturating_sub(1);
                    if d == 0 {
                        self.bump();
                        return;
                    }
                }
                "(" | "{" | "[" => {
                    self.skip_group();
                    continue;
                }
                ";" => return,
                _ => {}
            }
            self.bump();
        }
    }

    /// Consume a type: path segments, generics, refs, tuples, fn-pointers.
    /// Returns the space-joined text. Stops at `=`, `;`, `,`, `)`, `{` at
    /// depth 0 (and `>` closing an enclosing angle context).
    fn take_type(&mut self) -> String {
        let mut out = Vec::new();
        let mut angle = 0i32;
        let mut paren = 0i32;
        while self.i < self.end {
            let s = self.txt(0);
            match s {
                "<" => angle += 1,
                ">" => {
                    if angle == 0 {
                        break;
                    }
                    angle -= 1;
                }
                "(" | "[" => paren += 1,
                ")" | "]" => {
                    if paren == 0 {
                        break;
                    }
                    paren -= 1;
                }
                // `&` stays (reference types); `+`/`-`/`*`/`/`/`.`/`?`
                // never start a type's tail at depth 0, so they end the
                // type and hand control back to the expression grammar
                // (`x as f64 + y`). Trait-object bounds (`dyn A + B`) and
                // fn-pointer types lose their tail — harmlessly.
                "=" | ";" | "{" | "," | "+" | "-" | "*" | "/" | "%" | "." | "?" | "|"
                    if angle == 0 && paren == 0 =>
                {
                    break;
                }
                _ => {}
            }
            out.push(s.to_string());
            self.bump();
        }
        out.join(" ")
    }

    /// Collect idents bound by a pattern, consuming up to (not including)
    /// the first `:` `=` `;` or `in` at depth 0. `_`, `mut`, `ref`,
    /// path-case constructors (`Some`, `Op::Read`) are not binders.
    fn take_pattern(&mut self) -> Vec<String> {
        let mut names = Vec::new();
        let mut d = 0i32;
        while self.i < self.end {
            let s = self.txt(0);
            match s {
                "(" | "[" | "{" => d += 1,
                ")" | "]" | "}" => {
                    if d == 0 {
                        break;
                    }
                    d -= 1;
                }
                ":" if d == 0 && self.txt(1) != ":" => break,
                "=" if d == 0 => break,
                ";" if d == 0 => break,
                "in" if d == 0 => break,
                "else" if d == 0 => break,
                _ => {
                    if self.peek(0).is_some_and(|t| t.kind == TokKind::Ident)
                        && s.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                        && !matches!(s, "mut" | "ref" | "box" | "_")
                        && self.txt(1) != ":"
                    // not a path segment (`core::X`)
                    {
                        names.push(s.to_string());
                    }
                    if s == ":" && self.txt(1) == ":" {
                        self.bump(); // consume both colons of `::`
                    }
                }
            }
            self.bump();
        }
        names
    }
}

impl<'a> P<'a> {
    /// Parse the block whose `{` the cursor sits on. Always terminates:
    /// a malformed body degrades to Opaque statements, never a hang.
    fn block(&mut self) -> Block {
        let mut b = Block::empty();
        if !self.eat("{") {
            return b;
        }
        while self.i < self.end && !self.at("}") {
            let before = self.i;
            if self.eat(";") {
                continue;
            }
            match self.txt(0) {
                "let" => b.stmts.push(self.let_stmt()),
                "return" => {
                    self.bump();
                    let line = self.line();
                    let e = if self.at(";") || self.at("}") {
                        None
                    } else {
                        Some(Box::new(self.expr(true)))
                    };
                    b.stmts.push(Stmt::Expr(Expr::Ret(e, line)));
                    self.eat(";");
                }
                "break" => {
                    self.bump();
                    if !self.at(";") && !self.at("}") {
                        let _ = self.expr(true);
                    }
                    b.stmts.push(Stmt::Expr(Expr::Break));
                    self.eat(";");
                }
                "continue" => {
                    self.bump();
                    b.stmts.push(Stmt::Expr(Expr::Continue));
                    self.eat(";");
                }
                // Nested items: skip their tokens wholesale.
                "fn" | "struct" | "enum" | "impl" | "trait" | "mod" | "unsafe" => {
                    while self.i < self.end && !self.at("{") && !self.at(";") {
                        self.bump();
                    }
                    if self.at("{") {
                        self.skip_group();
                    } else {
                        self.eat(";");
                    }
                }
                "use" | "const" | "static" | "type" => {
                    while self.i < self.end && !self.at(";") {
                        if self.at("{") {
                            self.skip_group();
                            continue;
                        }
                        self.bump();
                    }
                    self.eat(";");
                }
                "#" => {
                    // attribute: `#` `[` … `]`
                    self.bump();
                    if self.at("[") {
                        self.skip_group();
                    }
                }
                _ => {
                    let e = self.expr(true);
                    if self.eat(";") {
                        b.stmts.push(Stmt::Expr(e));
                    } else if self.at("}") {
                        b.tail = Some(Box::new(e));
                    } else {
                        b.stmts.push(Stmt::Expr(e));
                    }
                }
            }
            if self.i == before {
                // No progress — drop the token, keep the pass total.
                self.bump();
            }
        }
        self.eat("}");
        b
    }

    fn let_stmt(&mut self) -> Stmt {
        let line = self.line();
        self.bump(); // `let`
        let names = self.take_pattern();
        let ty = if self.at(":") && self.txt(1) != ":" {
            self.bump();
            self.take_type()
        } else {
            String::new()
        };
        let init = if self.eat("=") { Some(self.expr(true)) } else { None };
        // let-else: parse (and discard) the diverging block.
        if self.at("else") {
            self.bump();
            if self.at("{") {
                let _ = self.block();
            }
        }
        self.eat(";");
        Stmt::Let { names, ty, init, line }
    }

    /// Full expression, lowest precedence (assignment / ranges).
    /// `allow_struct` is off inside `if`/`while`/`match`-head positions
    /// where `Foo {` would swallow the body.
    fn expr(&mut self, allow_struct: bool) -> Expr {
        if self.depth >= MAX_DEPTH {
            // Way past anything the tree contains; bail opaque.
            self.bump();
            return Expr::Opaque;
        }
        self.depth += 1;
        let e = self.assign_expr(allow_struct);
        self.depth -= 1;
        e
    }

    fn assign_expr(&mut self, allow_struct: bool) -> Expr {
        let lhs = self.range_expr(allow_struct);
        let line = self.line();
        // `=` (not `==` / `=>` / `<=`-style, those were consumed earlier)
        if self.at("=") && self.txt(1) != "=" && self.txt(1) != ">" {
            self.bump();
            let rhs = self.assign_expr(allow_struct);
            return Expr::Assign { target: Box::new(lhs), op: None, value: Box::new(rhs), line };
        }
        for (a, op) in [
            ("+", BinOp::Add),
            ("-", BinOp::Sub),
            ("*", BinOp::Mul),
            ("/", BinOp::Div),
            ("%", BinOp::Rem),
            ("|", BinOp::Other),
            ("&", BinOp::Other),
            ("^", BinOp::Other),
        ] {
            if self.at2(a, "=") && self.txt(2) != "=" {
                self.i += 2;
                let rhs = self.assign_expr(allow_struct);
                return Expr::Assign {
                    target: Box::new(lhs),
                    op: Some(op),
                    value: Box::new(rhs),
                    line,
                };
            }
        }
        lhs
    }

    fn range_expr(&mut self, allow_struct: bool) -> Expr {
        if self.at2(".", ".") {
            // prefix range `..n`
            self.i += 2;
            self.eat("=");
            if !self.at(")") && !self.at("]") && !self.at("{") && !self.at(",") {
                let _ = self.or_expr(allow_struct);
            }
            return Expr::Opaque;
        }
        let lhs = self.or_expr(allow_struct);
        if self.at2(".", ".") {
            self.i += 2;
            self.eat("=");
            if !self.at(")") && !self.at("]") && !self.at("{") && !self.at(",") && !self.at(";") {
                let _ = self.or_expr(allow_struct);
            }
            return Expr::Opaque;
        }
        lhs
    }

    fn or_expr(&mut self, allow_struct: bool) -> Expr {
        let mut lhs = self.and_expr(allow_struct);
        while self.at2("|", "|") && self.txt(2) != "=" {
            self.i += 2;
            let rhs = self.and_expr(allow_struct);
            lhs = Expr::Binary(BinOp::Other, Box::new(lhs), Box::new(rhs), self.line());
        }
        lhs
    }

    fn and_expr(&mut self, allow_struct: bool) -> Expr {
        let mut lhs = self.cmp_expr(allow_struct);
        while self.at2("&", "&") {
            self.i += 2;
            let rhs = self.cmp_expr(allow_struct);
            lhs = Expr::Binary(BinOp::Other, Box::new(lhs), Box::new(rhs), self.line());
        }
        lhs
    }

    /// Comparison (non-associative): `== != < <= > >=`.
    fn cmp_expr(&mut self, allow_struct: bool) -> Expr {
        let lhs = self.bitor_expr(allow_struct);
        let line = self.line();
        let is_cmp = (self.at2("=", "="))
            || (self.at2("!", "="))
            || (self.at("<") && self.txt(1) != "<")
            || (self.at(">") && self.txt(1) != ">");
        if is_cmp {
            if self.at2("=", "=") || self.at2("!", "=") {
                self.i += 2;
            } else {
                self.bump();
                self.eat("=");
            }
            let rhs = self.bitor_expr(allow_struct);
            return Expr::Binary(BinOp::Cmp, Box::new(lhs), Box::new(rhs), line);
        }
        lhs
    }

    fn bitor_expr(&mut self, allow_struct: bool) -> Expr {
        let mut lhs = self.addsub_expr(allow_struct);
        loop {
            let line = self.line();
            // single `|` `&` `^` and shifts — all unit-destroying
            if (self.at("|") && self.txt(1) != "|" && self.txt(1) != "=")
                || (self.at("&") && self.txt(1) != "&" && self.txt(1) != "=")
                || (self.at("^") && self.txt(1) != "=")
            {
                self.bump();
                let rhs = self.addsub_expr(allow_struct);
                lhs = Expr::Binary(BinOp::Other, Box::new(lhs), Box::new(rhs), line);
            } else if (self.at2("<", "<") || self.at2(">", ">")) && self.txt(2) != "=" {
                self.i += 2;
                let rhs = self.addsub_expr(allow_struct);
                lhs = Expr::Binary(BinOp::Other, Box::new(lhs), Box::new(rhs), line);
            } else {
                return lhs;
            }
        }
    }

    fn addsub_expr(&mut self, allow_struct: bool) -> Expr {
        let mut lhs = self.muldiv_expr(allow_struct);
        loop {
            let line = self.line();
            let op = if self.at("+") && self.txt(1) != "=" {
                BinOp::Add
            } else if self.at("-") && self.txt(1) != "=" && self.txt(1) != ">" {
                BinOp::Sub
            } else {
                return lhs;
            };
            self.bump();
            let rhs = self.muldiv_expr(allow_struct);
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), line);
        }
    }

    fn muldiv_expr(&mut self, allow_struct: bool) -> Expr {
        let mut lhs = self.cast_expr(allow_struct);
        loop {
            let line = self.line();
            let op = if self.at("*") && self.txt(1) != "=" {
                BinOp::Mul
            } else if self.at("/") && self.txt(1) != "=" {
                BinOp::Div
            } else if self.at("%") && self.txt(1) != "=" {
                BinOp::Rem
            } else {
                return lhs;
            };
            self.bump();
            let rhs = self.cast_expr(allow_struct);
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), line);
        }
    }

    fn cast_expr(&mut self, allow_struct: bool) -> Expr {
        let mut lhs = self.unary_expr(allow_struct);
        while self.at("as") {
            self.bump();
            let _ty = self.take_type();
            lhs = Expr::Cast(Box::new(lhs));
        }
        lhs
    }

    fn unary_expr(&mut self, allow_struct: bool) -> Expr {
        match self.txt(0) {
            "-" | "*" => {
                self.bump();
                Expr::Unary(Box::new(self.unary_expr(allow_struct)))
            }
            "&" => {
                self.bump();
                self.eat("&"); // `&&x` double-ref
                self.eat("mut");
                Expr::Unary(Box::new(self.unary_expr(allow_struct)))
            }
            "!" => {
                self.bump();
                let _ = self.unary_expr(allow_struct);
                Expr::Opaque // boolean
            }
            _ => self.postfix_expr(allow_struct),
        }
    }
}

impl<'a> P<'a> {
    fn postfix_expr(&mut self, allow_struct: bool) -> Expr {
        let mut e = self.primary_expr(allow_struct);
        loop {
            if self.at("?") {
                self.bump();
                e = Expr::Unary(Box::new(e));
            } else if self.at2(".", ".") {
                return e; // range — handled above us
            } else if self.at(".") {
                self.bump();
                if self.peek(0).is_some_and(|t| t.kind == TokKind::Num) {
                    // tuple index `.0`
                    self.bump();
                    e = Expr::Unary(Box::new(e));
                    continue;
                }
                let name = self.txt(0).to_string();
                let pos = self.i;
                let line = self.line();
                if !self.is_ident(0) {
                    continue;
                }
                self.bump();
                if self.at2(":", ":") {
                    // turbofish `.collect::<Vec<_>>()`
                    self.i += 2;
                    if self.at("<") {
                        self.skip_angles();
                    }
                }
                if self.at("(") {
                    let args = self.call_args();
                    e = Expr::Call { recv: Some(Box::new(e)), name, pos, line, args };
                } else {
                    e = Expr::Field(Box::new(e), name, line);
                }
            } else if self.at("(") {
                // call of a non-path callee (closure var, fn-typed field)
                let args = self.call_args();
                e = Expr::Call {
                    recv: Some(Box::new(e)),
                    name: String::new(),
                    pos: 0,
                    line: self.line(),
                    args,
                };
            } else if self.at("[") {
                let save_end = self.end;
                self.bump();
                // index expression runs to the matching `]`
                let _ = save_end;
                let idx_start = self.i;
                let mut d = 1usize;
                let mut j = self.i;
                while j < self.end && d > 0 {
                    match self.t[j].text.as_str() {
                        "[" => d += 1,
                        "]" => d -= 1,
                        _ => {}
                    }
                    if d == 0 {
                        break;
                    }
                    j += 1;
                }
                let mut inner = P { t: self.t, i: idx_start, end: j, depth: self.depth };
                let _ = inner.expr(true);
                self.i = j;
                self.eat("]");
                e = Expr::Index(Box::new(e));
            } else {
                return e;
            }
        }
    }

    /// Comma-separated argument list; cursor on `(`.
    fn call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat("(") {
            return args;
        }
        while self.i < self.end && !self.at(")") {
            let before = self.i;
            args.push(self.expr(true));
            if !self.eat(",") && !self.at(")") {
                // lost sync inside the arg list: skip to `,` or `)`
                while self.i < self.end {
                    match self.txt(0) {
                        "(" | "[" | "{" => {
                            self.skip_group();
                            continue;
                        }
                        ")" => break,
                        "," => {
                            self.bump();
                            break;
                        }
                        _ => self.bump(),
                    }
                }
            }
            if self.i == before {
                self.bump();
            }
        }
        self.eat(")");
        args
    }

    fn primary_expr(&mut self, allow_struct: bool) -> Expr {
        let Some(t) = self.peek(0) else { return Expr::Opaque };
        match t.kind {
            TokKind::Num => {
                self.bump();
                return Expr::Lit;
            }
            TokKind::Str | TokKind::Lifetime | TokKind::Comment => {
                self.bump();
                return Expr::Opaque;
            }
            _ => {}
        }
        match self.txt(0) {
            "(" => {
                self.bump();
                let mut items = Vec::new();
                while self.i < self.end && !self.at(")") {
                    let before = self.i;
                    items.push(self.expr(true));
                    self.eat(",");
                    if self.i == before {
                        self.bump();
                    }
                }
                self.eat(")");
                if items.len() == 1 {
                    items.pop().unwrap()
                } else {
                    Expr::Tuple(items)
                }
            }
            "[" => {
                self.skip_group();
                Expr::Opaque
            }
            "{" => Expr::BlockE(self.block()),
            "if" => self.if_expr(),
            "match" => self.match_expr(),
            "loop" => {
                self.bump();
                Expr::Loop(self.block())
            }
            "while" => {
                self.bump();
                let cond = if self.at("let") {
                    self.bump();
                    let _ = self.take_pattern();
                    self.eat("=");
                    let _ = self.expr(false);
                    Expr::Opaque
                } else {
                    self.expr(false)
                };
                Expr::While { cond: Box::new(cond), body: self.block() }
            }
            "for" => {
                self.bump();
                let var = self.take_pattern();
                self.eat("in");
                let iter = self.expr(false);
                Expr::For { var, iter: Box::new(iter), body: self.block() }
            }
            "return" => {
                self.bump();
                let line = self.line();
                let e = if self.at(";") || self.at("}") || self.at(")") || self.at(",") {
                    None
                } else {
                    Some(Box::new(self.expr(true)))
                };
                Expr::Ret(e, line)
            }
            "break" => {
                self.bump();
                if !self.at(";") && !self.at("}") && !self.at(")") {
                    let _ = self.expr(true);
                }
                Expr::Break
            }
            "continue" => {
                self.bump();
                Expr::Continue
            }
            "move" => {
                self.bump();
                self.closure_expr()
            }
            "|" => self.closure_expr(),
            "true" | "false" => {
                self.bump();
                Expr::Opaque
            }
            "self" => {
                let line = self.line();
                self.bump();
                Expr::Path(vec!["self".to_string()], line)
            }
            _ if t.kind == TokKind::Ident => self.path_expr(allow_struct),
            _ => {
                self.bump();
                Expr::Opaque
            }
        }
    }

    fn if_expr(&mut self) -> Expr {
        self.bump(); // `if`
        let cond = if self.at("let") {
            self.bump();
            let _binds = self.take_pattern();
            self.eat("=");
            let _ = self.expr(false);
            Expr::Opaque
        } else {
            self.expr(false)
        };
        let then_b = self.block();
        let else_b = if self.eat("else") {
            if self.at("if") {
                Some(Box::new(self.if_expr()))
            } else {
                Some(Box::new(Expr::BlockE(self.block())))
            }
        } else {
            None
        };
        Expr::If { cond: Box::new(cond), then_b, else_b }
    }

    fn match_expr(&mut self) -> Expr {
        self.bump(); // `match`
        let scrutinee = self.expr(false);
        let mut arms = Vec::new();
        if !self.eat("{") {
            return Expr::Match { scrutinee: Box::new(scrutinee), arms };
        }
        while self.i < self.end && !self.at("}") {
            let before = self.i;
            // pattern: everything to `=>` at depth 0 (guards included)
            let mut binds = Vec::new();
            let mut d = 0i32;
            while self.i < self.end {
                let s = self.txt(0);
                match s {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => d -= 1,
                    "=" if d == 0 && self.txt(1) == ">" => {
                        self.i += 2;
                        break;
                    }
                    _ => {
                        if self.peek(0).is_some_and(|t| t.kind == TokKind::Ident)
                            && s.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                            && !matches!(s, "mut" | "ref" | "box" | "_" | "if")
                            && self.txt(1) != ":"
                        {
                            binds.push(s.to_string());
                        }
                    }
                }
                self.bump();
            }
            let body = if self.at("{") { Expr::BlockE(self.block()) } else { self.expr(true) };
            arms.push((binds, body));
            self.eat(",");
            if self.i == before {
                self.bump();
            }
        }
        self.eat("}");
        Expr::Match { scrutinee: Box::new(scrutinee), arms }
    }

    fn closure_expr(&mut self) -> Expr {
        let mut params = Vec::new();
        if self.at2("|", "|") {
            self.i += 2;
        } else if self.eat("|") {
            while self.i < self.end && !self.at("|") {
                let before = self.i;
                params.extend(self.take_pattern());
                if self.at(":") && self.txt(1) != ":" {
                    self.bump();
                    let _ = self.take_type();
                }
                self.eat(",");
                if self.i == before {
                    self.bump();
                }
            }
            self.eat("|");
        }
        if self.at2("-", ">") {
            self.i += 2;
            let _ = self.take_type();
        }
        let body = if self.at("{") { Expr::BlockE(self.block()) } else { self.expr(true) };
        Expr::Closure { params, body: Box::new(body) }
    }

    /// A path expression (possibly a call or struct literal).
    fn path_expr(&mut self, allow_struct: bool) -> Expr {
        let mut segs = vec![self.txt(0).to_string()];
        let mut last_pos = self.i;
        let line = self.line();
        self.bump();
        // macro invocation: `name ! ( … )`
        if self.at("!") && (self.txt(1) == "(" || self.txt(1) == "[" || self.txt(1) == "{") {
            self.bump();
            self.skip_group();
            return Expr::Opaque;
        }
        loop {
            if self.at2(":", ":") {
                self.i += 2;
                if self.at("<") {
                    self.skip_angles(); // turbofish
                    continue;
                }
                if self.is_ident(0) {
                    segs.push(self.txt(0).to_string());
                    last_pos = self.i;
                    self.bump();
                    continue;
                }
            }
            break;
        }
        if self.at("(") {
            let args = self.call_args();
            let name = segs.last().cloned().unwrap_or_default();
            return Expr::Call { recv: None, name, pos: last_pos, line, args };
        }
        if self.at("{") && allow_struct && self.struct_lit_ahead() {
            return self.struct_lit(segs.last().cloned().unwrap_or_default());
        }
        Expr::Path(segs, line)
    }

    /// Lookahead: does the `{` under the cursor open a struct literal?
    /// Yes if the first tokens inside are `ident :` (not `::`), `..`, or
    /// an immediate `}` following a plausible path.
    fn struct_lit_ahead(&self) -> bool {
        if self.txt(1) == "}" {
            return true;
        }
        if self.txt(1) == "." && self.txt(2) == "." {
            return true;
        }
        self.peek(1).is_some_and(|t| t.kind == TokKind::Ident)
            && self.txt(2) == ":"
            && self.txt(3) != ":"
    }

    fn struct_lit(&mut self, name: String) -> Expr {
        let mut inits = Vec::new();
        self.eat("{");
        while self.i < self.end && !self.at("}") {
            let before = self.i;
            if self.at2(".", ".") {
                // `..base`
                self.i += 2;
                let _ = self.expr(true);
                break;
            }
            let fline = self.line();
            let fname = self.txt(0).to_string();
            if !self.is_ident(0) {
                self.bump();
                continue;
            }
            self.bump();
            let val = if self.at(":") && self.txt(1) != ":" {
                self.bump();
                self.expr(true)
            } else {
                // shorthand `Foo { bytes }`
                Expr::Path(vec![fname.clone()], fline)
            };
            inits.push((fname, val, fline));
            self.eat(",");
            if self.i == before {
                self.bump();
            }
        }
        self.eat("}");
        Expr::StructLit { name, inits }
    }
}

// ---------------------------------------------------------------------------
// Statement-level CFG
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CStmt {
    Let { names: Vec<String>, ty: String, init: Option<Expr>, line: u32 },
    Eval(Expr),
    Ret(Option<Expr>, u32),
}

#[derive(Debug, Default)]
struct CfgBlock {
    stmts: Vec<CStmt>,
    succs: Vec<usize>,
}

struct Cfg {
    blocks: Vec<CfgBlock>,
}

struct Builder {
    blocks: Vec<CfgBlock>,
    /// `(head, exit)` of each enclosing loop, for continue/break edges.
    loops: Vec<(usize, usize)>,
}

impl Builder {
    fn new_block(&mut self) -> usize {
        self.blocks.push(CfgBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn lower_stmts(&mut self, stmts: &[Stmt], mut cur: usize) -> usize {
        for s in stmts {
            cur = match s {
                Stmt::Let { names, ty, init, line } => {
                    self.blocks[cur].stmts.push(CStmt::Let {
                        names: names.clone(),
                        ty: ty.clone(),
                        init: init.clone(),
                        line: *line,
                    });
                    cur
                }
                Stmt::Expr(e) => self.lower_expr_stmt(e, cur),
            };
        }
        cur
    }

    /// Lower a nested statement-position block; its tail is a plain eval.
    fn lower_block(&mut self, b: &Block, cur: usize) -> usize {
        let cur = self.lower_stmts(&b.stmts, cur);
        if let Some(t) = &b.tail {
            self.lower_expr_stmt(t, cur)
        } else {
            cur
        }
    }

    /// Statement-position control flow becomes CFG structure; everything
    /// else is a single `Eval`.
    fn lower_expr_stmt(&mut self, e: &Expr, cur: usize) -> usize {
        match e {
            Expr::If { cond, then_b, else_b } => {
                self.blocks[cur].stmts.push(CStmt::Eval((**cond).clone()));
                let join = self.new_block();
                let te = self.new_block();
                self.edge(cur, te);
                let tx = self.lower_block(then_b, te);
                self.edge(tx, join);
                match else_b {
                    Some(eb) => {
                        let ee = self.new_block();
                        self.edge(cur, ee);
                        let ex = self.lower_expr_stmt(eb, ee);
                        self.edge(ex, join);
                    }
                    None => self.edge(cur, join),
                }
                join
            }
            Expr::BlockE(b) => self.lower_block(b, cur),
            Expr::While { cond, body } => {
                let head = self.new_block();
                self.edge(cur, head);
                self.blocks[head].stmts.push(CStmt::Eval((**cond).clone()));
                let exit = self.new_block();
                self.edge(head, exit);
                let be = self.new_block();
                self.edge(head, be);
                self.loops.push((head, exit));
                let bx = self.lower_block(body, be);
                self.loops.pop();
                self.edge(bx, head);
                exit
            }
            Expr::Loop(body) => {
                let head = self.new_block();
                self.edge(cur, head);
                let exit = self.new_block();
                self.loops.push((head, exit));
                let bx = self.lower_block(body, head);
                self.loops.pop();
                self.edge(bx, head);
                exit
            }
            Expr::For { var, iter, body } => {
                self.blocks[cur].stmts.push(CStmt::Eval((**iter).clone()));
                let head = self.new_block();
                self.edge(cur, head);
                let exit = self.new_block();
                self.edge(head, exit);
                let be = self.new_block();
                self.edge(head, be);
                // Bind the loop var to an element of the iterated value —
                // `Index` preserves the base unit, so iterating a
                // `Vec<Cycle>` binds Cycles.
                self.blocks[be].stmts.push(CStmt::Let {
                    names: var.clone(),
                    ty: String::new(),
                    init: Some(Expr::Index(iter.clone())),
                    line: 0,
                });
                self.loops.push((head, exit));
                let bx = self.lower_block(body, be);
                self.loops.pop();
                self.edge(bx, head);
                exit
            }
            Expr::Match { scrutinee, arms } => {
                self.blocks[cur].stmts.push(CStmt::Eval((**scrutinee).clone()));
                let join = self.new_block();
                if arms.is_empty() {
                    self.edge(cur, join);
                }
                for (binds, body) in arms {
                    let ae = self.new_block();
                    self.edge(cur, ae);
                    if !binds.is_empty() {
                        // pattern binds are Unknown (no init)
                        self.blocks[ae].stmts.push(CStmt::Let {
                            names: binds.clone(),
                            ty: String::new(),
                            init: None,
                            line: 0,
                        });
                    }
                    let ax = self.lower_expr_stmt(body, ae);
                    self.edge(ax, join);
                }
                join
            }
            Expr::Ret(v, line) => {
                self.blocks[cur].stmts.push(CStmt::Ret(v.as_deref().cloned(), *line));
                self.new_block() // unreachable continuation
            }
            Expr::Break => {
                if let Some(&(_, exit)) = self.loops.last() {
                    self.edge(cur, exit);
                }
                self.new_block()
            }
            Expr::Continue => {
                if let Some(&(head, _)) = self.loops.last() {
                    self.edge(cur, head);
                }
                self.new_block()
            }
            other => {
                self.blocks[cur].stmts.push(CStmt::Eval(other.clone()));
                cur
            }
        }
    }
}

/// Build the CFG of one fn body. The body's tail expression is the
/// implicit return.
fn build_cfg(body: &Block) -> Cfg {
    let mut b = Builder { blocks: vec![CfgBlock::default()], loops: Vec::new() };
    let end = b.lower_stmts(&body.stmts, 0);
    if let Some(t) = &body.tail {
        let line = expr_line(t);
        b.blocks[end].stmts.push(CStmt::Ret(Some((**t).clone()), line));
    }
    Cfg { blocks: b.blocks }
}

/// Best-effort source line of an expression, for finding anchors.
fn expr_line(e: &Expr) -> u32 {
    match e {
        Expr::Path(_, l) | Expr::Field(_, _, l) | Expr::Binary(_, _, _, l) => *l,
        Expr::Call { line, .. } | Expr::Assign { line, .. } => *line,
        Expr::Unary(i) | Expr::Cast(i) | Expr::Index(i) => expr_line(i),
        Expr::Ret(Some(i), l) => {
            let il = expr_line(i);
            if il != 0 {
                il
            } else {
                *l
            }
        }
        Expr::Ret(None, l) => *l,
        Expr::If { cond, .. } | Expr::While { cond, .. } => expr_line(cond),
        Expr::Match { scrutinee, .. } => expr_line(scrutinee),
        Expr::StructLit { inits, .. } => inits.first().map_or(0, |(_, _, l)| *l),
        Expr::Tuple(xs) => xs.first().map_or(0, expr_line),
        Expr::Closure { body, .. } => expr_line(body),
        Expr::BlockE(b) => b.tail.as_deref().map_or(0, expr_line),
        _ => 0,
    }
}

// ---------------------------------------------------------------------------
// Global unit index + function summaries
// ---------------------------------------------------------------------------

/// Workspace-wide claim for a field *name*: its unit-suffix claim, or the
/// consensus of every declaring struct's type (all must agree — a field
/// name typed `Cycle` in one struct and `usize` in another claims
/// nothing).
#[derive(Debug, Clone, Copy)]
struct FieldClaim {
    unit: Unit,
    prov: Prov,
    is_pub: bool,
}

/// Per-fn interface summary used at call sites.
#[derive(Debug, Clone)]
struct FnSummary {
    /// `(param name, claim)` per parameter, receiver excluded.
    params: Vec<(String, Option<(Unit, Prov)>)>,
    /// Abstract return value: the signature claim when there is one,
    /// otherwise inferred to a fixed point from the body.
    ret: Abs,
    is_pub: bool,
}

/// One analyzable fn body, pre-lowered.
struct FnUnit {
    ctx_idx: usize,
    name: String,
    fq: String,
    in_test: bool,
    cfg: Cfg,
    /// `CallSite::pos` → fully-qualified callee for this body.
    callmap: BTreeMap<usize, String>,
    /// Param claims seed the entry environment.
    params: Vec<(String, Option<(Unit, Prov)>)>,
    ret_claim: Option<(Unit, Prov)>,
}

struct UnitIndex {
    fields: BTreeMap<String, FieldClaim>,
    /// Fn name → unique fq (None when ambiguous): the ByName fallback.
    by_name: BTreeMap<String, Option<String>>,
}

fn is_const_ident(s: &str) -> bool {
    s.chars().any(|c| c.is_ascii_uppercase())
        && s.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Walk one file's item tree, pairing each parsed [`FnDef`] with its
/// [`crate::symbols::FnSym`] (matched on body start — both index the same
/// code-token vector) and lowering the body span to a CFG.
fn collect_fns(ctx_idx: usize, ctx: &FileCtx, ws: &Workspace, out: &mut Vec<FnUnit>) {
    let empty = Vec::new();
    let syms = ws.files.get(ctx.rel).map_or(&empty, |f| &f.fns);
    let by_pos: BTreeMap<usize, &crate::symbols::FnSym> =
        syms.iter().filter_map(|f| f.body.map(|b| (b.0, f))).collect();

    fn walk(
        items: &[Item],
        in_test: bool,
        ctx_idx: usize,
        ctx: &FileCtx,
        by_pos: &BTreeMap<usize, &crate::symbols::FnSym>,
        out: &mut Vec<FnUnit>,
    ) {
        for it in items {
            match &it.kind {
                ItemKind::Fn(fd) => {
                    if let Some(u) = lower_fn(it, fd, in_test, ctx_idx, ctx, by_pos) {
                        out.push(u);
                    }
                }
                ItemKind::Impl { items, .. } | ItemKind::Trait { items } => {
                    walk(items, in_test, ctx_idx, ctx, by_pos, out);
                }
                ItemKind::Mod { is_test, items } => {
                    walk(items, in_test || *is_test, ctx_idx, ctx, by_pos, out);
                }
                _ => {}
            }
        }
    }
    walk(&ctx.items, false, ctx_idx, ctx, &by_pos, out);
}

fn lower_fn(
    it: &Item,
    fd: &FnDef,
    in_test: bool,
    ctx_idx: usize,
    ctx: &FileCtx,
    by_pos: &BTreeMap<usize, &crate::symbols::FnSym>,
) -> Option<FnUnit> {
    let (open, close) = fd.body?;
    let sym = by_pos.get(&open);
    let mut p = P::new(&ctx.code, open, close + 1);
    let block = p.block();
    let cfg = build_cfg(&block);
    let params: Vec<(String, Option<(Unit, Prov)>)> = fd
        .params
        .iter()
        .zip(fd.param_tys.iter())
        .map(|(n, ty)| (n.clone(), slot_claim(n, ty)))
        .collect();
    let ret_claim = type_unit(&fd.ret)
        .map(|u| (u, Prov::Type))
        .or_else(|| suffix_unit(&it.name).map(|u| (u, Prov::Suffix)));
    let callmap = sym
        .map(|s| s.call_sites.iter().filter_map(|c| c.fq.clone().map(|fq| (c.pos, fq))).collect())
        .unwrap_or_default();
    Some(FnUnit {
        ctx_idx,
        name: it.name.clone(),
        fq: sym.map_or_else(|| it.name.clone(), |s| s.fq.clone()),
        in_test: in_test || sym.is_some_and(|s| s.in_test),
        cfg,
        callmap,
        params,
        ret_claim,
    })
}

/// Build the workspace unit model: field claims, lowered fns, and the
/// initial summary table (claimed returns `Known`, everything else `Lit`
/// pending inference).
fn build_index(
    ctxs: &[FileCtx],
    ws: &Workspace,
) -> (UnitIndex, Vec<FnUnit>, BTreeMap<String, FnSummary>) {
    // Field claims from every struct decl in the workspace.
    let mut decls: BTreeMap<String, (Vec<Option<Unit>>, bool)> = BTreeMap::new();
    for fs in ws.files.values() {
        for st in &fs.structs {
            for f in &st.fields {
                let e = decls.entry(f.name.clone()).or_default();
                e.0.push(type_unit(&f.ty));
                e.1 |= f.is_pub;
            }
        }
    }
    let mut fields = BTreeMap::new();
    for (name, (tys, is_pub)) in decls {
        if let Some(u) = suffix_unit(&name) {
            fields.insert(name, FieldClaim { unit: u, prov: Prov::Suffix, is_pub });
        } else if let Some(Some(u)) = tys.first().copied() {
            if tys.iter().all(|t| *t == Some(u)) {
                fields.insert(name, FieldClaim { unit: u, prov: Prov::Type, is_pub });
            }
        }
    }

    let mut fns = Vec::new();
    for (i, ctx) in ctxs.iter().enumerate() {
        collect_fns(i, ctx, ws, &mut fns);
    }

    let mut sums: BTreeMap<String, FnSummary> = BTreeMap::new();
    let mut by_name: BTreeMap<String, Option<String>> = BTreeMap::new();
    let empty = Vec::new();
    let mut pubness: BTreeMap<&str, bool> = BTreeMap::new();
    for fsy in ws.files.values().flat_map(|f| f.fns.iter()).chain(empty.iter()) {
        pubness.insert(fsy.fq.as_str(), fsy.is_pub);
    }
    for f in &fns {
        let is_pub = pubness.get(f.fq.as_str()).copied().unwrap_or(false);
        sums.insert(
            f.fq.clone(),
            FnSummary {
                params: f.params.clone(),
                ret: match f.ret_claim {
                    Some((u, _)) => Abs::Known(u),
                    None => Abs::Lit,
                },
                is_pub,
            },
        );
        by_name
            .entry(f.name.clone())
            .and_modify(|e| {
                if e.as_deref() != Some(f.fq.as_str()) {
                    *e = None;
                }
            })
            .or_insert_with(|| Some(f.fq.clone()));
    }

    (UnitIndex { fields, by_name }, fns, sums)
}

// ---------------------------------------------------------------------------
// Abstract interpreter
// ---------------------------------------------------------------------------

type Env = BTreeMap<String, Abs>;

fn join_env(a: &Env, b: &Env) -> Env {
    let mut out = a.clone();
    for (k, v) in b {
        out.entry(k.clone()).and_modify(|x| *x = x.join(*v)).or_insert(*v);
    }
    out
}

/// A raw emitted finding: `(rule, line, ident, message)` — deduped in a
/// set because the emit pass may visit an expression more than once
/// (loop-body re-evaluation).
type Raw = (&'static str, u32, String, String);

struct Interp<'x> {
    idx: &'x UnitIndex,
    sums: &'x BTreeMap<String, FnSummary>,
    callmap: &'x BTreeMap<usize, String>,
    /// Let/param claims of the current fn (flow-insensitive).
    claims: BTreeMap<String, (Unit, Prov)>,
    ret_claim: Option<(Unit, Prov)>,
    fn_name: String,
    emit: bool,
    out: BTreeSet<Raw>,
    /// Join of every returned value (feeds summary inference).
    ret_acc: Abs,
    /// Global work bound — belt and braces against a pathological body.
    fuel: u32,
}

impl<'x> Interp<'x> {
    fn push(&mut self, id: &'static str, line: u32, ident: &str, msg: String) {
        if self.emit {
            self.out.insert((id, line, ident.to_string(), msg));
        }
    }

    fn field_claim(&self, name: &str) -> Option<FieldClaim> {
        self.idx.fields.get(name).copied()
    }

    /// Value of a field read: the workspace-wide claim for that name.
    fn field_abs(&self, name: &str) -> Abs {
        match self.field_claim(name) {
            Some(c) => Abs::Known(c.unit),
            None => Abs::Unknown,
        }
    }

    fn eval_path(&mut self, segs: &[String], env: &Env) -> Abs {
        let Some(last) = segs.last() else { return Abs::Unknown };
        if CONVERSION_CONSTS.contains(&last.as_str()) {
            // Q02's business; evaluating the factor would cascade Q01s.
            return Abs::Unknown;
        }
        if segs.len() == 1 {
            if let Some(v) = env.get(last) {
                return *v;
            }
        }
        if is_const_ident(last) {
            return match suffix_unit(last) {
                Some(u) => Abs::Known(u),
                None => Abs::Unknown,
            };
        }
        Abs::Unknown
    }

    fn root_ident(e: &Expr) -> &str {
        match e {
            Expr::Path(segs, _) => segs.last().map_or("expr", |s| s.as_str()),
            Expr::Field(_, name, _) => name,
            Expr::Call { name, .. } => name,
            Expr::Unary(i) | Expr::Cast(i) | Expr::Index(i) => Self::root_ident(i),
            Expr::Binary(_, l, _, _) => Self::root_ident(l),
            _ => "expr",
        }
    }

    fn eval(&mut self, e: &Expr, env: &mut Env) -> Abs {
        if self.fuel == 0 {
            return Abs::Unknown;
        }
        self.fuel -= 1;
        match e {
            Expr::Lit => Abs::Lit,
            Expr::Opaque | Expr::Break | Expr::Continue => Abs::Unknown,
            Expr::Path(segs, _) => self.eval_path(segs, env),
            Expr::Field(base, name, _) => {
                let _ = self.eval(base, env);
                self.field_abs(name)
            }
            Expr::Index(b) | Expr::Unary(b) | Expr::Cast(b) => self.eval(b, env),
            Expr::Tuple(xs) => {
                for x in xs {
                    let _ = self.eval(x, env);
                }
                Abs::Unknown
            }
            Expr::Binary(op, l, r, line) => self.eval_binary(*op, l, r, *line, env),
            Expr::Assign { target, op, value, line } => {
                self.eval_assign(target, *op, value, *line, env);
                Abs::Unknown
            }
            Expr::Call { recv, name, pos, line, args } => {
                self.eval_call(recv.as_deref(), name, *pos, *line, args, env)
            }
            Expr::StructLit { name, inits } => {
                for (fname, v, line) in inits {
                    let va = self.eval(v, env);
                    self.check_slot_write(fname, va, *line, name);
                }
                Abs::Unknown
            }
            Expr::If { cond, then_b, else_b } => {
                let _ = self.eval(cond, env);
                let mut e1 = env.clone();
                let v1 = self.eval_block(then_b, &mut e1);
                match else_b {
                    Some(eb) => {
                        let mut e2 = env.clone();
                        let v2 = self.eval(eb, &mut e2);
                        *env = join_env(&e1, &e2);
                        v1.join(v2)
                    }
                    None => {
                        *env = join_env(env, &e1);
                        Abs::Unknown
                    }
                }
            }
            Expr::Match { scrutinee, arms } => {
                let _ = self.eval(scrutinee, env);
                let mut acc_env: Option<Env> = None;
                let mut acc_val = Abs::Lit;
                for (binds, body) in arms {
                    let mut ei = env.clone();
                    for b in binds {
                        ei.insert(b.clone(), Abs::Unknown);
                    }
                    let vi = self.eval(body, &mut ei);
                    acc_val = acc_val.join(vi);
                    acc_env = Some(match acc_env {
                        Some(a) => join_env(&a, &ei),
                        None => ei,
                    });
                }
                if let Some(a) = acc_env {
                    *env = a;
                    acc_val
                } else {
                    Abs::Unknown
                }
            }
            Expr::BlockE(b) => self.eval_block(b, env),
            Expr::Loop(b) | Expr::While { body: b, .. } | Expr::For { body: b, .. } => {
                // Expression-position loop: stabilize silently, then one
                // visible pass (the CFG handles statement-position loops).
                if let Expr::While { cond, .. } = e {
                    let _ = self.eval(cond, env);
                }
                if let Expr::For { var, iter, .. } = e {
                    let it = self.eval(iter, env);
                    for v in var {
                        env.insert(v.clone(), it);
                    }
                }
                let was = self.emit;
                self.emit = false;
                for _ in 0..2 {
                    let mut et = env.clone();
                    let _ = self.eval_block(b, &mut et);
                    *env = join_env(env, &et);
                }
                self.emit = was;
                let mut et = env.clone();
                let _ = self.eval_block(b, &mut et);
                *env = join_env(env, &et);
                Abs::Unknown
            }
            Expr::Closure { params, body } => {
                let mut ec = env.clone();
                for p in params {
                    let v = match suffix_unit(p) {
                        Some(u) => Abs::Known(u),
                        None => Abs::Unknown,
                    };
                    ec.insert(p.clone(), v);
                }
                let v = self.eval(body, &mut ec);
                // Effects on captured locals survive conservatively.
                *env = join_env(env, &ec);
                v
            }
            Expr::Ret(v, line) => {
                let a = match v {
                    Some(x) => self.eval(x, env),
                    None => Abs::Unknown,
                };
                self.check_return(v.as_deref(), a, *line);
                Abs::Unknown
            }
        }
    }

    fn eval_block(&mut self, b: &Block, env: &mut Env) -> Abs {
        for s in &b.stmts {
            match s {
                Stmt::Let { names, ty, init, line } => {
                    self.do_let(names, ty, init.as_ref(), *line, env)
                }
                Stmt::Expr(e) => {
                    let _ = self.eval(e, env);
                }
            }
        }
        match &b.tail {
            Some(t) => self.eval(t, env),
            None => Abs::Unknown,
        }
    }

    fn do_let(
        &mut self,
        names: &[String],
        ty: &str,
        init: Option<&Expr>,
        line: u32,
        env: &mut Env,
    ) {
        // Tuple destructuring with a literal tuple init binds pairwise.
        if names.len() > 1 {
            if let Some(Expr::Tuple(xs)) = init {
                if xs.len() == names.len() {
                    let xs = xs.clone();
                    for (n, x) in names.iter().zip(xs.iter()) {
                        let v = self.eval(x, env);
                        self.bind_one(n, "", Some(v), line, env);
                    }
                    return;
                }
            }
            if let Some(e) = init {
                let _ = self.eval(e, env);
            }
            for n in names {
                self.bind_one(n, "", None, line, env);
            }
            return;
        }
        let va = init.map(|e| self.eval(e, env));
        if let Some(n) = names.first() {
            self.bind_one(n, ty, va, line, env);
        }
    }

    /// Bind one pattern name: record its claim, check the initializer
    /// against it (Q01), and install the abstract value.
    fn bind_one(&mut self, name: &str, ty: &str, value: Option<Abs>, line: u32, env: &mut Env) {
        match slot_claim(name, ty) {
            Some((u, prov)) => {
                self.claims.insert(name.to_string(), (u, prov));
                if let Some(v) = value.and_then(Abs::known) {
                    if v != u {
                        self.push(
                            "Q01",
                            line,
                            name,
                            format!(
                                "assignment of {} to {}-claimed `{}`",
                                v.name(),
                                u.name(),
                                name
                            ),
                        );
                    }
                }
                env.insert(name.to_string(), Abs::Known(u));
            }
            None => {
                env.insert(name.to_string(), value.unwrap_or(Abs::Unknown));
            }
        }
    }

    fn eval_binary(&mut self, op: BinOp, l: &Expr, r: &Expr, line: u32, env: &mut Env) -> Abs {
        let la = self.eval(l, env);
        let ra = self.eval(r, env);
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Rem | BinOp::Cmp => {
                if let (Some(a), Some(b)) = (la.known(), ra.known()) {
                    if a != b {
                        self.push(
                            "Q01",
                            line,
                            Self::root_ident(l),
                            format!(
                                "mixed-unit arithmetic: {} {} {}",
                                a.name(),
                                op.sym(),
                                b.name()
                            ),
                        );
                    }
                }
                if op == BinOp::Cmp {
                    Abs::Unknown
                } else {
                    la.join(ra)
                }
            }
            BinOp::Mul => match (la, ra) {
                (Abs::Lit, x) | (x, Abs::Lit) => x,
                (Abs::Known(Unit::Ratio), x) | (x, Abs::Known(Unit::Ratio)) => x,
                _ => Abs::Unknown,
            },
            BinOp::Div => match (la, ra) {
                (x, Abs::Lit) => x,
                (Abs::Known(a), Abs::Known(b)) if a == b => Abs::Known(Unit::Ratio),
                (x, Abs::Known(Unit::Ratio)) => x,
                _ => Abs::Unknown,
            },
            BinOp::Other => Abs::Unknown,
        }
    }

    /// A write into a *named* slot (field assignment or struct-literal
    /// init): type-backed claims are Q01, pub suffix-backed claims Q03.
    fn check_slot_write(&mut self, fname: &str, value: Abs, line: u32, owner: &str) {
        let Some(c) = self.field_claim(fname) else { return };
        let Some(v) = value.known() else { return };
        if v == c.unit {
            return;
        }
        match c.prov {
            Prov::Type => self.push(
                "Q01",
                line,
                fname,
                format!(
                    "write of {} into {}-typed field `{}` (in `{}`)",
                    v.name(),
                    c.unit.name(),
                    fname,
                    owner
                ),
            ),
            Prov::Suffix if c.is_pub => self.push(
                "Q03",
                line,
                fname,
                format!(
                    "write of {} into `{}` — the name claims {}",
                    v.name(),
                    fname,
                    c.unit.name()
                ),
            ),
            Prov::Suffix => {}
        }
    }

    fn eval_assign(
        &mut self,
        target: &Expr,
        op: Option<BinOp>,
        value: &Expr,
        line: u32,
        env: &mut Env,
    ) {
        let va = self.eval(value, env);
        match target {
            Expr::Path(segs, _) if segs.len() == 1 => {
                let name = &segs[0];
                let cur = env.get(name).copied().unwrap_or(Abs::Unknown);
                if let Some(bop) = op {
                    // compound: desugars to `x = x op v`
                    if matches!(bop, BinOp::Add | BinOp::Sub | BinOp::Rem) {
                        if let (Some(a), Some(b)) = (cur.known(), va.known()) {
                            if a != b {
                                self.push(
                                    "Q01",
                                    line,
                                    name,
                                    format!(
                                        "mixed-unit arithmetic: {} {}= {}",
                                        a.name(),
                                        bop.sym(),
                                        b.name()
                                    ),
                                );
                            }
                        }
                    }
                    env.insert(name.clone(), cur.join(va));
                    return;
                }
                match self.claims.get(name.as_str()).copied() {
                    Some((u, _prov)) => {
                        if let Some(v) = va.known() {
                            if v != u {
                                self.push(
                                    "Q01",
                                    line,
                                    name,
                                    format!(
                                        "assignment of {} to {}-claimed `{}`",
                                        v.name(),
                                        u.name(),
                                        name
                                    ),
                                );
                            }
                        }
                        env.insert(name.clone(), Abs::Known(u));
                    }
                    None => {
                        env.insert(name.clone(), va);
                    }
                }
            }
            Expr::Field(base, fname, _) => {
                let _ = self.eval(base, env);
                if let Some(bop) = op {
                    if matches!(bop, BinOp::Add | BinOp::Sub | BinOp::Rem) {
                        let cur = self.field_abs(fname);
                        if let (Some(a), Some(b)) = (cur.known(), va.known()) {
                            if a != b {
                                self.push(
                                    "Q01",
                                    line,
                                    fname,
                                    format!(
                                        "mixed-unit arithmetic: {} {}= {}",
                                        a.name(),
                                        bop.sym(),
                                        b.name()
                                    ),
                                );
                            }
                        }
                    }
                    return;
                }
                self.check_slot_write(fname, va, line, "assignment");
            }
            other => {
                let _ = self.eval(other, env);
            }
        }
    }

    fn eval_call(
        &mut self,
        recv: Option<&Expr>,
        name: &str,
        pos: usize,
        line: u32,
        args: &[Expr],
        env: &mut Env,
    ) -> Abs {
        let ra = recv.map(|r| self.eval(r, env));
        let vals: Vec<Abs> = args.iter().map(|a| self.eval(a, env)).collect();

        // Resolve: the resolver's call-site edge first, then the
        // globally-unique-name fallback (ByName linkage).
        let fq = self
            .callmap
            .get(&pos)
            .cloned()
            .or_else(|| self.idx.by_name.get(name).cloned().flatten());
        if let Some(sum) = fq.as_deref().and_then(|f| self.sums.get(f)) {
            for (i, (pname, claim)) in sum.params.iter().enumerate() {
                let (Some((u, prov)), Some(v)) = (claim, vals.get(i).copied().and_then(Abs::known))
                else {
                    continue;
                };
                if v == *u {
                    continue;
                }
                match prov {
                    Prov::Type => self.push(
                        "Q01",
                        line,
                        name,
                        format!(
                            "argument `{}` of `{}` is {}-typed, got {}",
                            pname,
                            name,
                            u.name(),
                            v.name()
                        ),
                    ),
                    Prov::Suffix if sum.is_pub => self.push(
                        "Q03",
                        line,
                        name,
                        format!(
                            "argument `{}` of `{}` claims {}, got {}",
                            pname,
                            name,
                            u.name(),
                            v.name()
                        ),
                    ),
                    Prov::Suffix => {}
                }
            }
            return sum.ret;
        }

        // Unresolved method in the preserve set: unit flows through (and
        // mixing receiver/arg units is still Q01).
        if recv.is_some() && PRESERVE_METHODS.contains(&name) {
            let mut acc = ra.unwrap_or(Abs::Unknown);
            for v in &vals {
                if let (Some(a), Some(b)) = (acc.known(), v.known()) {
                    if a != b {
                        self.push(
                            "Q01",
                            line,
                            name,
                            format!("mixed-unit arithmetic: {} .{}() {}", a.name(), name, b.name()),
                        );
                    }
                }
                acc = acc.join(*v);
            }
            return acc;
        }

        // Externally-defined fn: its name suffix is still ground truth
        // (`Duration::as_nanos`).
        match suffix_unit(name) {
            Some(u) => Abs::Known(u),
            None => Abs::Unknown,
        }
    }

    fn check_return(&mut self, src: Option<&Expr>, value: Abs, line: u32) {
        self.ret_acc = self.ret_acc.join(value);
        let (Some((u, _prov)), Some(v)) = (self.ret_claim, value.known()) else { return };
        if v != u {
            let ident = src.map_or("return", Self::root_ident).to_string();
            let fname = self.fn_name.clone();
            self.push(
                "Q01",
                line,
                &ident,
                format!("`{}` returns {} but claims {}", fname, v.name(), u.name()),
            );
        }
    }

    /// Worklist fixpoint over the fn's CFG, then (when `emit_pass`) one
    /// visible pass over the stable entry environments — findings are
    /// only ever reported from stable states, so a transient `Known` in
    /// an unconverged loop can't invent one.
    fn run(&mut self, cfg: &Cfg, entry: Env, emit_pass: bool) {
        let n = cfg.blocks.len();
        let mut inenv: Vec<Option<Env>> = vec![None; n];
        inenv[0] = Some(entry);
        let mut work = vec![0usize];
        let mut steps = 0u32;
        self.emit = false;
        while let Some(b) = work.pop() {
            steps += 1;
            if steps > 4_000 {
                break;
            }
            let Some(mut env) = inenv[b].clone() else { continue };
            self.exec_block(&cfg.blocks[b], &mut env);
            for &s in &cfg.blocks[b].succs {
                let merged = match &inenv[s] {
                    Some(old) => join_env(old, &env),
                    None => env.clone(),
                };
                if inenv[s].as_ref() != Some(&merged) {
                    inenv[s] = Some(merged);
                    if !work.contains(&s) {
                        work.push(s);
                    }
                }
            }
        }
        if emit_pass {
            self.emit = true;
            for (b, entry_env) in inenv.iter().enumerate() {
                if let Some(env0) = entry_env {
                    let mut env = env0.clone();
                    self.exec_block(&cfg.blocks[b], &mut env);
                }
            }
            self.emit = false;
        }
    }

    fn exec_block(&mut self, b: &CfgBlock, env: &mut Env) {
        for s in &b.stmts {
            match s {
                CStmt::Let { names, ty, init, line } => {
                    self.do_let(names, ty, init.as_ref(), *line, env);
                }
                CStmt::Eval(e) => {
                    let _ = self.eval(e, env);
                }
                CStmt::Ret(v, line) => {
                    let a = match v {
                        Some(x) => self.eval(x, env),
                        None => Abs::Unknown,
                    };
                    self.check_return(v.as_ref(), a, *line);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Entry: Q01/Q02/Q03 over a workspace
// ---------------------------------------------------------------------------

/// The three unit rules' findings, split by rule.
#[derive(Debug, Default)]
pub struct UnitFindings {
    pub q01: Vec<Finding>,
    pub q02: Vec<Finding>,
    pub q03: Vec<Finding>,
}

fn entry_state(f: &FnUnit) -> (Env, BTreeMap<String, (Unit, Prov)>) {
    let mut env = Env::new();
    let mut claims = BTreeMap::new();
    for (name, claim) in &f.params {
        match claim {
            Some((u, prov)) => {
                claims.insert(name.clone(), (*u, *prov));
                env.insert(name.clone(), Abs::Known(*u));
            }
            None => {
                env.insert(name.clone(), Abs::Unknown);
            }
        }
    }
    (env, claims)
}

fn interp<'x>(
    idx: &'x UnitIndex,
    sums: &'x BTreeMap<String, FnSummary>,
    f: &'x FnUnit,
    claims: BTreeMap<String, (Unit, Prov)>,
) -> Interp<'x> {
    Interp {
        idx,
        sums,
        callmap: &f.callmap,
        claims,
        ret_claim: f.ret_claim,
        fn_name: f.name.clone(),
        emit: false,
        out: BTreeSet::new(),
        ret_acc: Abs::Lit,
        fuel: 200_000,
    }
}

/// Run the unit dataflow over the whole workspace and return every
/// Q01/Q02/Q03 finding (deduped, sorted by path/line/rule).
pub fn check_units(ctxs: &[FileCtx], ws: &Workspace) -> UnitFindings {
    let (idx, fns, mut sums) = build_index(ctxs, ws);

    // Fixed-point summary inference: un-claimed returns start at `Lit`
    // and only grow (old ⊔ computed), so four rounds over the call graph
    // suffice and termination is structural.
    for _round in 0..4 {
        let mut changed = false;
        let mut updates = Vec::new();
        for f in &fns {
            if f.ret_claim.is_some() {
                continue;
            }
            let (env, claims) = entry_state(f);
            let mut it = interp(&idx, &sums, f, claims);
            it.run(&f.cfg, env, false);
            let old = sums.get(&f.fq).map_or(Abs::Unknown, |s| s.ret);
            let new = old.join(it.ret_acc);
            if new != old {
                updates.push((f.fq.clone(), new));
                changed = true;
            }
        }
        for (fq, v) in updates {
            if let Some(s) = sums.get_mut(&fq) {
                s.ret = v;
            }
        }
        if !changed {
            break;
        }
    }

    // Emit pass: only in-scope, non-test bodies report.
    let mut all: Vec<Finding> = Vec::new();
    for f in &fns {
        let rel = ctxs[f.ctx_idx].rel;
        if f.in_test || !in_unit_scope(rel) {
            continue;
        }
        let (env, claims) = entry_state(f);
        let mut it = interp(&idx, &sums, f, claims);
        it.run(&f.cfg, env, true);
        for (id, line, ident, message) in it.out {
            all.push(Finding { id, path: rel.to_string(), line, ident, message });
        }
    }

    for ctx in ctxs {
        if in_unit_scope(ctx.rel) {
            all.extend(scan_q02(ctx, ws));
        }
    }

    all.sort_by(|a, b| {
        (&a.path, a.line, a.id, &a.ident, &a.message)
            .cmp(&(&b.path, b.line, b.id, &b.ident, &b.message))
    });
    all.dedup_by(|a, b| a.id == b.id && a.path == b.path && a.line == b.line && a.ident == b.ident);

    let mut out = UnitFindings::default();
    for f in all {
        match f.id {
            "Q01" => out.q01.push(f),
            "Q02" => out.q02.push(f),
            _ => out.q03.push(f),
        }
    }
    out
}

/// Q02 — token-level scan: any mention of a conversion const, or a bare
/// `2.4` literal adjacent to `*`/`/`, outside `time.rs` and outside test
/// fns / `use` lines. Token-level deliberately: it sees macro arguments
/// and const initializers the expression layer skips.
fn scan_q02(ctx: &FileCtx, ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    let test_spans: Vec<(usize, usize)> = ws
        .files
        .get(ctx.rel)
        .map(|f| f.fns.iter().filter(|s| s.in_test).filter_map(|s| s.body).collect())
        .unwrap_or_default();
    let in_test = |i: usize| test_spans.iter().any(|&(s, e)| i >= s && i <= e);

    let mut in_use = false;
    for (i, t) in ctx.code.iter().enumerate() {
        if t.text == "use" && t.kind == TokKind::Ident {
            in_use = true;
        } else if in_use {
            if t.text == ";" {
                in_use = false;
            }
            continue;
        }
        if in_test(i) {
            continue;
        }
        match t.kind {
            TokKind::Ident if CONVERSION_CONSTS.contains(&t.text.as_str()) => {
                out.push(Finding {
                    id: "Q02",
                    path: ctx.rel.to_string(),
                    line: t.line,
                    ident: t.text.clone(),
                    message: format!(
                        "cycles↔ns conversion outside time.rs: `{}` — use cycles_to_ns/ns_to_cycles",
                        t.text
                    ),
                });
            }
            TokKind::Num => {
                let lit = t.text.trim_end_matches("f64").trim_end_matches("f32").replace('_', "");
                if lit.parse::<f64>() == Ok(2.4) {
                    let prev = i.checked_sub(1).map(|j| ctx.code[j].text.as_str());
                    let next = ctx.code.get(i + 1).map(|t| t.text.as_str());
                    let adj = |s: Option<&str>| matches!(s, Some("*") | Some("/"));
                    if adj(prev) || adj(next) {
                        out.push(Finding {
                            id: "Q02",
                            path: ctx.rel.to_string(),
                            line: t.line,
                            ident: "2.4".to_string(),
                            message: "bare 2.4 cycles↔ns factor — use cycles_to_ns/ns_to_cycles"
                                .to_string(),
                        });
                    }
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileCtx;

    fn run_units(src: &str) -> UnitFindings {
        let ctxs = vec![FileCtx::new("crates/x/src/a.rs", src)];
        let ws = Workspace::from_ctxs(&ctxs);
        check_units(&ctxs, &ws)
    }

    #[test]
    fn lattice_join_is_commutative_with_lit_bottom_unknown_top() {
        let c = Abs::Known(Unit::Cycles);
        let n = Abs::Known(Unit::Nanos);
        assert_eq!(Abs::Lit.join(c), c);
        assert_eq!(c.join(Abs::Lit), c);
        assert_eq!(c.join(c), c);
        assert_eq!(c.join(n), Abs::Unknown);
        assert_eq!(Abs::Unknown.join(c), Abs::Unknown);
    }

    #[test]
    fn suffix_seeding_rejects_per_rates() {
        assert_eq!(suffix_unit("lat_ns"), Some(Unit::Nanos));
        assert_eq!(suffix_unit("elapsed_cycles"), Some(Unit::Cycles));
        assert_eq!(suffix_unit("cycles"), Some(Unit::Cycles));
        assert_eq!(suffix_unit("line_bytes"), Some(Unit::Bytes));
        assert_eq!(suffix_unit("retired_instrs"), Some(Unit::Instructions));
        assert_eq!(suffix_unit("hit_ratio"), Some(Unit::Ratio));
        assert_eq!(suffix_unit("bytes_per_cycle"), None);
        assert_eq!(suffix_unit("NS_PER_CYCLE"), None);
        assert_eq!(suffix_unit("latency"), None);
    }

    #[test]
    fn q01_fires_on_mixed_addition() {
        let u = run_units(
            "pub fn f(a_cycles: u64, b_ns: f64) -> f64 {\n    let total_ns = a_cycles as f64 + b_ns;\n    total_ns\n}\n",
        );
        assert_eq!(u.q01.len(), 1, "{:?}", u.q01);
        assert!(u.q01[0].message.contains("cycles + ns"), "{}", u.q01[0].message);
    }

    #[test]
    fn q01_fires_on_cross_unit_return_and_let() {
        let u =
            run_units("pub fn busy_ns(c: Cycle) -> f64 {\n    let v_ns = c as f64;\n    v_ns\n}\n");
        // `let v_ns = c` is the one mix; the return then carries the
        // claimed (not actual) unit, so it reports once, at the source.
        assert_eq!(u.q01.len(), 1, "{:?}", u.q01);
        assert!(u.q01[0].message.contains("assignment of cycles"), "{}", u.q01[0].message);
    }

    #[test]
    fn q02_fires_on_bare_factor_and_const_mention() {
        let u = run_units(
            "pub fn f(c: u64) -> f64 { c as f64 * 2.4 }\npub fn g(c: u64) -> f64 { c as f64 * NS_PER_CYCLE }\n",
        );
        assert_eq!(u.q02.len(), 2, "{:?}", u.q02);
    }

    #[test]
    fn q02_is_silent_in_time_rs_and_tests() {
        let src = "pub fn f(c: u64) -> f64 { c as f64 * 2.4 }\n";
        let ctxs = vec![FileCtx::new("crates/sim/src/time.rs", src)];
        let ws = Workspace::from_ctxs(&ctxs);
        let u = check_units(&ctxs, &ws);
        assert!(u.q02.is_empty());
        let test_src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = 3.0 * 2.4; }\n}\n";
        let u2 = run_units(test_src);
        assert!(u2.q02.is_empty(), "{:?}", u2.q02);
    }

    #[test]
    fn q03_fires_on_lying_pub_field_write() {
        let u = run_units(
            "pub struct S {\n    pub lat_ns: f64,\n}\npub fn f(s: &mut S, c_cycles: u64) {\n    s.lat_ns = c_cycles as f64;\n}\n",
        );
        assert_eq!(u.q03.len(), 1, "{:?}", u.q03);
        assert!(u.q03[0].message.contains("claims ns"), "{}", u.q03[0].message);
    }

    #[test]
    fn unknown_hides_not_invents() {
        let u = run_units(
            "pub fn f(a_cycles: u64) -> u64 {\n    let x = mystery();\n    x + a_cycles\n}\n",
        );
        assert!(u.q01.is_empty() && u.q03.is_empty(), "{:?} {:?}", u.q01, u.q03);
    }

    #[test]
    fn literals_are_chameleons() {
        let u = run_units(
            "pub fn f(dur_cycles: u64) -> u64 {\n    let d = dur_cycles.max(1);\n    d + 3\n}\n",
        );
        assert!(u.q01.is_empty(), "{:?}", u.q01);
    }

    #[test]
    fn summaries_flow_units_across_calls() {
        let u = run_units(
            "fn total_cycles(a: u64) -> u64 { a }\npub fn f(b_ns: f64) -> f64 {\n    b_ns + total_cycles(3) as f64\n}\n",
        );
        assert_eq!(u.q01.len(), 1, "{:?}", u.q01);
        assert!(u.q01[0].message.contains("ns + cycles"), "{}", u.q01[0].message);
    }

    #[test]
    fn blessed_conversion_launders_units() {
        let u = run_units(
            "pub fn f(c_cycles: u64) -> f64 {\n    let v_ns = cycles_to_ns(c_cycles);\n    v_ns\n}\nfn cycles_to_ns(cycles: u64) -> f64 { cycles as f64 }\n",
        );
        assert!(u.q01.is_empty(), "{:?}", u.q01);
    }

    #[test]
    fn loop_carried_state_converges_without_inventing() {
        let u = run_units(
            "pub fn f(n: u64, step_cycles: u64) -> u64 {\n    let mut acc = 0;\n    let mut i = 0;\n    while i < n {\n        acc += step_cycles;\n        i += 1;\n    }\n    acc\n}\n",
        );
        assert!(u.q01.is_empty(), "{:?}", u.q01);
    }

    #[test]
    fn q01_fires_on_mixed_comparison() {
        let u = run_units(
            "pub fn f(a_cycles: u64, deadline_ns: u64) -> bool {\n    a_cycles > deadline_ns\n}\n",
        );
        assert_eq!(u.q01.len(), 1, "{:?}", u.q01);
    }
}
