//! The lint rules. See [`crate::CATALOG`] for the contract each encodes.
//!
//! Each rule is a pure function over a lexed file (plus, for C01, a small
//! cross-file pass), so the fixture tests in `tests/fixtures.rs` can drive
//! them directly on seeded good/bad sources without touching the
//! workspace-walk driver.

use crate::lexer::{lex, Tok, TokKind};
use crate::Finding;
use std::path::Path;

/// Crates whose `src/` trees hold simulated state and timing arithmetic.
const MODEL_CRATES: &[&str] = &["cpu", "cache", "dram", "cxl", "system", "workloads"];

/// Iteration methods on hash collections whose visit order is randomized.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Idents that smuggle ambient nondeterminism into a model crate.
const ENTROPY_IDENTS: &[&str] = &[
    "SystemTime",
    "Instant",
    "RandomState",
    "DefaultHasher",
    "thread_rng",
    "from_entropy",
    "getrandom",
];

/// Cast targets that can silently truncate a `u64`/`usize` cycle value.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Snake-case segments that mark an identifier as cycle/latency-carrying.
const TIMING_SEGMENTS: &[&str] = &[
    "cycle",
    "cycles",
    "cyc",
    "latency",
    "latencies",
    "lat",
    "tick",
    "ticks",
    "deadline",
    "timestamp",
    "time",
    "at",
    "now",
    "due",
    "until",
    "when",
    "cl",
    "cwl",
];

/// A lexed file plus its path, shared by all per-file rules.
pub struct FileCtx<'a> {
    pub rel: &'a str,
    pub src: &'a str,
    pub toks: Vec<Tok>,
}

impl<'a> FileCtx<'a> {
    pub fn new(rel: &'a str, src: &'a str) -> Self {
        Self { rel, src, toks: lex(src) }
    }

    fn finding(&self, id: &'static str, line: u32, ident: &str, message: String) -> Finding {
        Finding { id, path: self.rel.to_string(), line, ident: ident.to_string(), message }
    }
}

fn in_model_src(rel: &str) -> bool {
    MODEL_CRATES.iter().any(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

/// D01 scope: anything that feeds simulated state or serialized output —
/// model crates, the sim substrate, telemetry export, and the CLI.
fn in_determinism_scope(rel: &str) -> bool {
    in_model_src(rel)
        || rel.starts_with("crates/sim/src/")
        || rel.starts_with("crates/telemetry/src/")
        || rel.starts_with("src/")
}

fn in_timing_scope(rel: &str) -> bool {
    in_model_src(rel) || rel.starts_with("crates/sim/src/")
}

/// The stats/report layer is allowed to use floats: means, ratios, and
/// bandwidth figures are reporting artifacts, not simulated time.
fn in_stats_layer(rel: &str) -> bool {
    rel.ends_with("stats.rs") || rel.ends_with("power.rs") || rel.contains("report")
}

/// `true` for identifiers that plausibly carry cycle/latency values.
fn is_timing_ident(ident: &str) -> bool {
    if ident.starts_with("t_") && ident.len() > 2 {
        return true;
    }
    ident.split('_').any(|seg| TIMING_SEGMENTS.contains(&seg.to_ascii_lowercase().as_str()))
}

/// Run every per-file rule that applies to `rel`.
pub fn lint_file(rel: &str, src: &str) -> Vec<Finding> {
    let ctx = FileCtx::new(rel, src);
    let mut out = Vec::new();
    if in_determinism_scope(rel) {
        out.extend(check_d01(&ctx));
    }
    if in_model_src(rel) {
        out.extend(check_d02(&ctx));
    }
    if in_timing_scope(rel) {
        out.extend(check_t01(&ctx));
        if !in_stats_layer(rel) {
            out.extend(check_t02(&ctx));
        }
    }
    if in_model_src(rel) && src.contains("TelemetrySink") {
        out.extend(check_z01(&ctx));
    }
    out.extend(check_u01(&ctx));
    out
}

/// Code-token view: indices into `toks` with comments skipped.
fn code(toks: &[Tok]) -> Vec<&Tok> {
    toks.iter().filter(|t| t.kind != TokKind::Comment).collect()
}

// ---------------------------------------------------------------------------
// D01 — HashMap/HashSet iteration
// ---------------------------------------------------------------------------

/// Names bound to `HashMap`/`HashSet` in this file: struct fields and
/// `let` bindings, via either a type annotation or a `Hash*::new()`-style
/// initializer.
fn hash_bound_names(code: &[&Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..code.len() {
        if !(code[i].is_ident("HashMap") || code[i].is_ident("HashSet")) {
            continue;
        }
        // `name: [std::collections::] HashMap<...>` — walk back over the
        // path to the annotated name.
        let mut j = i;
        while j > 0
            && (code[j - 1].is_punct(':')
                || code[j - 1].is_ident("std")
                || code[j - 1].is_ident("collections"))
        {
            j -= 1;
        }
        if j < i && j > 0 && code[j - 1].kind == TokKind::Ident {
            names.push(code[j - 1].text.clone());
            continue;
        }
        // `let [mut] name = [...] HashMap::new()` — walk back to the `let`.
        let mut k = i;
        let floor = i.saturating_sub(24);
        while k > floor
            && !code[k - 1].is_ident("let")
            && !code[k - 1].is_punct(';')
            && !code[k - 1].is_punct('{')
            && !code[k - 1].is_punct('}')
        {
            k -= 1;
        }
        if k > 0 && code[k - 1].is_ident("let") {
            let name = if code[k].is_ident("mut") { code.get(k + 1) } else { Some(&code[k]) };
            if let Some(t) = name {
                if t.kind == TokKind::Ident {
                    names.push(t.text.clone());
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

pub fn check_d01(ctx: &FileCtx) -> Vec<Finding> {
    let code = code(&ctx.toks);
    let names = hash_bound_names(&code);
    if names.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident || !names.contains(&t.text) {
            continue;
        }
        // `name.iter()` / `name.keys()` / ...
        if i + 2 < code.len()
            && code[i + 1].is_punct('.')
            && ITER_METHODS.iter().any(|m| code[i + 2].is_ident(m))
            && code.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            out.push(ctx.finding(
                "D01",
                t.line,
                &t.text,
                format!(
                    "`{}.{}()` iterates a hash collection; visit order is randomized per \
                     process — use BTreeMap/BTreeSet or collect-and-sort",
                    t.text,
                    code[i + 2].text
                ),
            ));
        }
        // `for x in [&[mut]] name {`
        let mut j = i;
        while j > 0 && (code[j - 1].is_punct('&') || code[j - 1].is_ident("mut")) {
            j -= 1;
        }
        if j > 0 && code[j - 1].is_ident("in") && code.get(i + 1).is_some_and(|t| t.is_punct('{')) {
            out.push(ctx.finding(
                "D01",
                t.line,
                &t.text,
                format!(
                    "`for … in {}` iterates a hash collection; visit order is randomized per \
                     process — use BTreeMap/BTreeSet or collect-and-sort",
                    t.text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// D02 — ambient nondeterminism
// ---------------------------------------------------------------------------

pub fn check_d02(ctx: &FileCtx) -> Vec<Finding> {
    let code = code(&ctx.toks);
    let mut out = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = ENTROPY_IDENTS.contains(&t.text.as_str())
            || (t.is_ident("rand") && code.get(i + 1).is_some_and(|n| n.is_punct(':')));
        if hit {
            out.push(ctx.finding(
                "D02",
                t.line,
                &t.text,
                format!(
                    "`{}` injects wall-clock time or process entropy into a model crate; \
                     model randomness must come from the seeded coaxial-sim RNG",
                    t.text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// T01 / T02 — timing arithmetic
// ---------------------------------------------------------------------------

/// Idents reachable walking left from position `i` (exclusive) through a
/// postfix chain: `self.cfg.timings.t_faw`, `queue.head().deadline()`, …
fn chain_idents<'t>(code: &[&'t Tok], i: usize) -> Vec<&'t str> {
    let mut idents = Vec::new();
    let mut j = i;
    let mut parens = 0usize;
    let floor = i.saturating_sub(16);
    while j > floor {
        let t = code[j - 1];
        match () {
            _ if t.is_punct(')') => parens += 1,
            _ if t.is_punct('(') => {
                if parens == 0 {
                    break;
                }
                parens -= 1;
            }
            _ if parens > 0 => {} // skip call arguments
            _ if t.kind == TokKind::Ident => idents.push(t.text.as_str()),
            _ if t.is_punct('.') || t.is_punct(':') => {}
            _ => break,
        }
        j -= 1;
    }
    idents
}

pub fn check_t01(ctx: &FileCtx) -> Vec<Finding> {
    cast_rule(ctx, "T01", NARROW_INTS, |src, dst| {
        format!(
            "`{src} as {dst}` can silently truncate a cycle/latency value (u64 wraps after \
             ~1.8 s of simulated time); use try_into() or widen the destination"
        )
    })
}

/// Segments marking an identifier as a *raw* cycle/tick quantity (for
/// T02's float-storage check — narrower than [`is_timing_ident`]).
const CYCLE_SEGMENTS: &[&str] =
    &["cycle", "cycles", "cyc", "tick", "ticks", "latency", "lat", "deadline"];

/// Segments that mark a float as a legitimate *derived* report quantity
/// (a mean, a rate, or a wall-time unit) rather than simulated time.
const REPORT_MARKERS: &[&str] =
    &["mean", "avg", "ns", "us", "ms", "ratio", "rate", "per", "frac", "pct", "mhz", "ghz"];

fn is_cycle_storage_ident(ident: &str) -> bool {
    let segs: Vec<String> = ident.split('_').map(|s| s.to_ascii_lowercase()).collect();
    segs.iter().any(|s| CYCLE_SEGMENTS.contains(&s.as_str()))
        && !segs.iter().any(|s| REPORT_MARKERS.contains(&s.as_str()))
}

pub fn check_t02(ctx: &FileCtx) -> Vec<Finding> {
    let code = code(&ctx.toks);
    let mut out = Vec::new();
    // Accumulating casts: `acc += cycles as f64`. A one-shot conversion at
    // a reporting boundary (`sum as f64 / n as f64`) is legitimate; what
    // T02 forbids is *accumulation* of simulated time in floating point,
    // where the running sum loses exactness and order-independence.
    let mut stmt_start = 0usize;
    for i in 0..code.len() {
        let t = code[i];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            stmt_start = i + 1;
            continue;
        }
        if !t.is_ident("as")
            || !code.get(i + 1).is_some_and(|n| n.is_ident("f64") || n.is_ident("f32"))
        {
            continue;
        }
        let accumulating = code[stmt_start..i]
            .windows(2)
            .any(|w| (w[0].is_punct('+') || w[0].is_punct('-')) && w[1].is_punct('='));
        if !accumulating {
            continue;
        }
        if let Some(src) = chain_idents(&code, i).iter().find(|id| is_timing_ident(id)) {
            out.push(ctx.finding(
                "T02",
                t.line,
                src,
                format!(
                    "`{src} as {}` accumulates cycle math in floating point outside the \
                     stats/report layer; the latency-ledger conservation proof only holds \
                     in exact integers — accumulate in u64, convert at the report boundary",
                    code[i + 1].text
                ),
            ));
        }
    }
    // `latency_cycles: f64` — float *storage* of a raw cycle quantity.
    // Derived report quantities (`mean_queue_cycles`, `latency_ns`,
    // `bytes_per_cycle`) are exempt via REPORT_MARKERS.
    for i in 0..code.len().saturating_sub(2) {
        if code[i].kind == TokKind::Ident
            && is_cycle_storage_ident(&code[i].text)
            && code[i + 1].is_punct(':')
            && !code[i + 2].is_punct(':')
            && (code[i + 2].is_ident("f64") || code[i + 2].is_ident("f32"))
        {
            out.push(ctx.finding(
                "T02",
                code[i].line,
                &code[i].text,
                format!(
                    "`{}: {}` stores a raw cycle/latency quantity in floating point outside \
                     the stats/report layer; keep simulated time in integer cycles (derived \
                     report values should say so in their name: _mean/_ns/_per/…)",
                    code[i].text,
                    code[i + 2].text
                ),
            ));
        }
    }
    out
}

fn cast_rule(
    ctx: &FileCtx,
    id: &'static str,
    targets: &[&str],
    msg: impl Fn(&str, &str) -> String,
) -> Vec<Finding> {
    let code = code(&ctx.toks);
    let mut out = Vec::new();
    for i in 0..code.len() {
        if !code[i].is_ident("as") || i + 1 >= code.len() {
            continue;
        }
        let dst = &code[i + 1];
        if !targets.iter().any(|t| dst.is_ident(t)) {
            continue;
        }
        let chain = chain_idents(&code, i);
        if let Some(src) = chain.iter().find(|id| is_timing_ident(id)) {
            out.push(ctx.finding(id, code[i].line, src, msg(src, &dst.text)));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Z01 — telemetry guard domination
// ---------------------------------------------------------------------------

/// Sink hook names (kept in sync with `coaxial_telemetry::TelemetrySink`).
const SINK_METHODS: &[&str] = &["on_miss", "on_span", "on_reset"];

pub fn check_z01(ctx: &FileCtx) -> Vec<Finding> {
    let code = code(&ctx.toks);
    let mut out = Vec::new();
    // guard[d] = "some enclosing block at depth <= d is `if …::ENABLED`".
    let mut guard = vec![false];
    // Start-of-header marker: tokens since the last `{`, `}`, or `;`.
    let mut header_start = 0usize;
    for i in 0..code.len() {
        let t = code[i];
        if t.is_punct('{') {
            let header = &code[header_start..i];
            let is_guard = header.iter().any(|t| t.is_ident("if"))
                && header.iter().any(|t| t.is_ident("ENABLED"));
            let inherited = *guard.last().unwrap();
            guard.push(inherited || is_guard);
            header_start = i + 1;
        } else if t.is_punct('}') {
            if guard.len() > 1 {
                guard.pop();
            }
            header_start = i + 1;
        } else if t.is_punct(';') {
            header_start = i + 1;
        }
        if t.kind == TokKind::Ident
            && SINK_METHODS.contains(&t.text.as_str())
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !*guard.last().unwrap()
        {
            out.push(ctx.finding(
                "Z01",
                t.line,
                &t.text,
                format!(
                    "telemetry sink call `.{}(…)` is not dominated by an `if T::ENABLED` \
                     guard; the NullTelemetry monomorphization would pay for it",
                    t.text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// U01 — SAFETY comments on unsafe
// ---------------------------------------------------------------------------

pub fn check_u01(ctx: &FileCtx) -> Vec<Finding> {
    let lines: Vec<&str> = ctx.src.lines().collect();
    let mut out = Vec::new();
    for t in &ctx.toks {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let line_idx = (t.line as usize).saturating_sub(1);
        // Trailing comment on the same line counts.
        let mut ok = lines.get(line_idx).is_some_and(|l| l.contains("SAFETY:"));
        // Otherwise scan the contiguous comment/attribute block above.
        let mut i = line_idx;
        while !ok && i > 0 {
            i -= 1;
            let l = lines[i].trim();
            if l.starts_with("//") || l.starts_with("*") || l.ends_with("*/") {
                ok = l.contains("SAFETY:");
                if ok {
                    break;
                }
            } else if l.starts_with("#[") || l.is_empty() {
                continue;
            } else {
                break;
            }
        }
        if !ok {
            out.push(
                ctx.finding(
                    "U01",
                    t.line,
                    "unsafe",
                    "`unsafe` without a `// SAFETY:` comment stating the invariant relied on"
                        .to_string(),
                ),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// C01 — declared-but-unenforced fidelity parameters (DDR5 timings, CXL link)
// ---------------------------------------------------------------------------

/// Field names (with lines) of `struct <name> { … }` in `src`.
pub fn struct_fields(src: &str, name: &str) -> Vec<(String, u32)> {
    let toks = lex(src);
    let code = code(&toks);
    let mut fields = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].is_ident("struct") && code.get(i + 1).is_some_and(|t| t.is_ident(name)) {
            // Seek the opening brace, then collect `ident :` pairs at depth 1.
            let mut j = i + 2;
            while j < code.len() && !code[j].is_punct('{') {
                j += 1;
            }
            let mut depth = 0i32;
            while j < code.len() {
                let t = code[j];
                if t.is_punct('{') || t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth == 1
                    && t.kind == TokKind::Ident
                    && code.get(j + 1).is_some_and(|n| n.is_punct(':'))
                    && code.get(j + 2).is_none_or(|n| !n.is_punct(':'))
                    && !code[j - 1].is_punct(':')
                {
                    fields.push((t.text.clone(), t.line));
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    fields
}

/// C01 core: every field of `struct_name` (declared in `config_src`) must
/// appear as an identifier in at least one of `enforce_srcs`.
pub fn check_c01(
    config_rel: &str,
    config_src: &str,
    struct_name: &str,
    enforce_srcs: &[(&str, &str)],
) -> Vec<Finding> {
    let fields = struct_fields(config_src, struct_name);
    let mut used: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (_, src) in enforce_srcs {
        for t in lex(src) {
            if t.kind == TokKind::Ident {
                used.insert(t.text);
            }
        }
    }
    let files: Vec<&str> = enforce_srcs.iter().map(|(n, _)| *n).collect();
    fields
        .into_iter()
        .filter(|(f, _)| !used.contains(f))
        .map(|(f, line)| Finding {
            id: "C01",
            path: config_rel.to_string(),
            line,
            ident: f.clone(),
            message: format!(
                "fidelity parameter `{struct_name}.{f}` is declared but never read by the \
                 enforcing code ({}) — a declared-but-unenforced parameter is a silent \
                 fidelity bug",
                files.join(", ")
            ),
        })
        .collect()
}

/// Workspace C01 invocations: each fidelity-critical config struct against
/// the code that must enforce it — `DramTimings` vs. the DRAM scheduling
/// files, `CxlLinkConfig` vs. the CXL link pipeline.
pub fn lint_cross_reference(root: &Path) -> Result<Vec<Finding>, String> {
    let read =
        |rel: &str| std::fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"));
    let mut out = Vec::new();

    let dram_rel = "crates/dram/src/config.rs";
    let dram_cfg = read(dram_rel)?;
    let bank = read("crates/dram/src/bank.rs")?;
    let sub = read("crates/dram/src/subchannel.rs")?;
    let chan = read("crates/dram/src/channel.rs")?;
    out.extend(check_c01(
        dram_rel,
        &dram_cfg,
        "DramTimings",
        &[("bank.rs", &bank), ("subchannel.rs", &sub), ("channel.rs", &chan)],
    ));

    let cxl_rel = "crates/cxl/src/config.rs";
    let cxl_cfg = read(cxl_rel)?;
    let cxl_chan = read("crates/cxl/src/channel.rs")?;
    let cxl_mem = read("crates/cxl/src/memory.rs")?;
    out.extend(check_c01(
        cxl_rel,
        &cxl_cfg,
        "CxlLinkConfig",
        &[("channel.rs", &cxl_chan), ("memory.rs", &cxl_mem)],
    ));

    Ok(out)
}
