//! The lint rules. See [`crate::CATALOG`] for the contract each encodes.
//!
//! Per-file rules are pure functions over a lexed file ([`FileCtx`]);
//! cross-file rules (C01/E01/E02/E03/M01) run over the workspace symbol graph
//! ([`Workspace`]). Both layers are driven directly by the fixture tests
//! in `tests/fixtures.rs` on seeded good/bad sources, with rule *specs*
//! (which structs, which files) passed as parameters so the fixtures can
//! substitute tiny synthetic workspaces for the real tree.

use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};
use crate::parser::{self, Item};
use crate::symbols::{FnSym, MetricReg, Workspace};
use crate::Finding;

/// Crates whose `src/` trees hold simulated state and timing arithmetic.
const MODEL_CRATES: &[&str] = &["cpu", "cache", "dram", "cxl", "system", "workloads"];

/// Iteration methods on hash collections whose visit order is randomized.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Idents that smuggle ambient nondeterminism into a model crate.
const ENTROPY_IDENTS: &[&str] = &[
    "SystemTime",
    "Instant",
    "RandomState",
    "DefaultHasher",
    "thread_rng",
    "from_entropy",
    "getrandom",
];

/// Cast targets that can silently truncate a `u64`/`usize` cycle value.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Snake-case segments that mark an identifier as cycle/latency-carrying.
const TIMING_SEGMENTS: &[&str] = &[
    "cycle",
    "cycles",
    "cyc",
    "latency",
    "latencies",
    "lat",
    "tick",
    "ticks",
    "deadline",
    "timestamp",
    "time",
    "at",
    "now",
    "due",
    "until",
    "when",
    "cl",
    "cwl",
];

/// A lexed + item-parsed file, shared by all per-file rules.
pub struct FileCtx<'a> {
    pub rel: &'a str,
    pub src: &'a str,
    /// Raw tokens including comments (U01 needs them).
    pub toks: Vec<Tok>,
    /// Comment-stripped tokens — the index space of `items` body spans.
    pub code: Vec<Tok>,
    /// Parsed item tree (see [`crate::parser`]).
    pub items: Vec<Item>,
}

impl<'a> FileCtx<'a> {
    pub fn new(rel: &'a str, src: &'a str) -> Self {
        let toks = crate::lexer::lex(src);
        let code: Vec<Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).cloned().collect();
        let items = parser::parse_items(&code);
        Self { rel, src, toks, code, items }
    }

    fn finding(&self, id: &'static str, line: u32, ident: &str, message: String) -> Finding {
        Finding { id, path: self.rel.to_string(), line, ident: ident.to_string(), message }
    }
}

pub fn in_model_src(rel: &str) -> bool {
    MODEL_CRATES.iter().any(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

/// D01 scope: anything that feeds simulated state or serialized output —
/// model crates, the sim substrate, telemetry export, and the CLI.
fn in_determinism_scope(rel: &str) -> bool {
    in_model_src(rel)
        || rel.starts_with("crates/sim/src/")
        || rel.starts_with("crates/telemetry/src/")
        || rel.starts_with("src/")
}

fn in_timing_scope(rel: &str) -> bool {
    in_model_src(rel) || rel.starts_with("crates/sim/src/")
}

/// The stats/report layer is allowed to use floats: means, ratios, and
/// bandwidth figures are reporting artifacts, not simulated time.
fn in_stats_layer(rel: &str) -> bool {
    rel.ends_with("stats.rs") || rel.ends_with("power.rs") || rel.contains("report")
}

/// `true` for identifiers that plausibly carry cycle/latency values.
fn is_timing_ident(ident: &str) -> bool {
    if ident.starts_with("t_") && ident.len() > 2 {
        return true;
    }
    ident.split('_').any(|seg| TIMING_SEGMENTS.contains(&seg.to_ascii_lowercase().as_str()))
}

/// Run every per-file rule that applies to `ctx.rel`. The workspace graph
/// supplies the cross-file facts the ported rules resolve through: fns
/// returning hash collections (D01) and the real sink trait's method set
/// (Z01).
pub fn lint_file(ctx: &FileCtx, ws: &Workspace) -> Vec<Finding> {
    let mut timings = std::collections::BTreeMap::new();
    lint_file_timed(ctx, ws, &mut timings)
}

/// Per-file rules, accumulating wall time per rule ID into `timings`.
pub fn lint_file_timed(
    ctx: &FileCtx,
    ws: &Workspace,
    timings: &mut std::collections::BTreeMap<&'static str, std::time::Duration>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut timed = |id: &'static str, f: &mut dyn FnMut() -> Vec<Finding>| {
        let t0 = std::time::Instant::now();
        let fs = f();
        *timings.entry(id).or_default() += t0.elapsed();
        fs
    };
    if in_determinism_scope(ctx.rel) {
        // Resolved linkage: the visible-name set includes `use … as`
        // rename aliases of hash-returning fns and drops names shadowed
        // by provably non-hash locals.
        out.extend(timed("D01", &mut || check_d01(ctx, &ws.hash_fn_names_for(ctx.rel))));
    }
    if in_model_src(ctx.rel) {
        out.extend(timed("D02", &mut || check_d02(ctx)));
    }
    if in_timing_scope(ctx.rel) {
        out.extend(timed("T01", &mut || check_t01(ctx)));
        if !in_stats_layer(ctx.rel) {
            out.extend(timed("T02", &mut || check_t02(ctx)));
        }
    }
    if in_model_src(ctx.rel) && ctx.src.contains("TelemetrySink") {
        let sinks = ws
            .trait_methods_for(ctx.rel, "TelemetrySink")
            .unwrap_or_else(|| SINK_METHODS.iter().map(|s| (*s).to_string()).collect());
        out.extend(timed("Z01", &mut || check_z01(ctx, &sinks)));
    }
    out.extend(timed("U01", &mut || check_u01(ctx)));
    out
}

/// Run every cross-file rule with the real-tree specs.
pub fn lint_cross_file(ws: &Workspace, ctxs: &[FileCtx]) -> Vec<Finding> {
    let mut timings = std::collections::BTreeMap::new();
    lint_cross_file_timed(ws, ctxs, &mut timings)
}

/// Cross-file rules, accumulating wall time per rule ID into `timings`.
pub fn lint_cross_file_timed(
    ws: &Workspace,
    ctxs: &[FileCtx],
    timings: &mut std::collections::BTreeMap<&'static str, std::time::Duration>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut timed = |id: &'static str, f: &mut dyn FnMut() -> Vec<Finding>| {
        let t0 = std::time::Instant::now();
        let fs = f();
        *timings.entry(id).or_default() += t0.elapsed();
        fs
    };
    out.extend(timed("C01", &mut || lint_cross_reference(ws)));
    out.extend(timed("E01", &mut || check_e01(ws, E01_STRUCTS)));
    out.extend(timed("E02", &mut || check_e02(ws, &E02_SPEC)));
    out.extend(timed("E03", &mut || check_e03(ws, &E03_SPEC)));
    out.extend(timed("M01", &mut || check_m01(ws, &M01_SPEC)));
    out.extend(timed("L01", &mut || check_l01(ws, &L01_SPEC)));
    out.extend(timed("E05", &mut || check_e05(ws, ctxs, &E05_SPEC)));
    // The unit dataflow (Q01/Q02/Q03) runs once; the shared analysis is
    // billed to Q01, the split-out findings to their own IDs.
    let mut units = None;
    out.extend(timed("Q01", &mut || {
        let u = crate::flow::check_units(ctxs, ws);
        let q01 = u.q01.clone();
        units = Some(u);
        q01
    }));
    let units = units.unwrap_or_default();
    out.extend(timed("Q02", &mut || units.q02.clone()));
    out.extend(timed("Q03", &mut || units.q03.clone()));
    out
}

// ---------------------------------------------------------------------------
// D01 — HashMap/HashSet iteration
// ---------------------------------------------------------------------------

/// Names bound to `HashMap`/`HashSet` in this file: struct fields and
/// `let` bindings, via a type annotation, a `Hash*::new()`-style
/// initializer, or (through the symbol table) an initializer that calls a
/// function whose return type is a hash collection.
fn hash_bound_names(code: &[Tok], hash_fns: &BTreeSet<String>) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..code.len() {
        if !(code[i].is_ident("HashMap") || code[i].is_ident("HashSet")) {
            continue;
        }
        // `name: [std::collections::] HashMap<...>` — walk back over the
        // path to the annotated name.
        let mut j = i;
        while j > 0
            && (code[j - 1].is_punct(':')
                || code[j - 1].is_ident("std")
                || code[j - 1].is_ident("collections"))
        {
            j -= 1;
        }
        if j < i && j > 0 && code[j - 1].kind == TokKind::Ident {
            names.push(code[j - 1].text.clone());
            continue;
        }
        // `let [mut] name = [...] HashMap::new()` — walk back to the `let`.
        let mut k = i;
        let floor = i.saturating_sub(24);
        while k > floor
            && !code[k - 1].is_ident("let")
            && !code[k - 1].is_punct(';')
            && !code[k - 1].is_punct('{')
            && !code[k - 1].is_punct('}')
        {
            k -= 1;
        }
        if k > 0 && code[k - 1].is_ident("let") {
            let name = if code[k].is_ident("mut") { code.get(k + 1) } else { Some(&code[k]) };
            if let Some(t) = name {
                if t.kind == TokKind::Ident {
                    names.push(t.text.clone());
                }
            }
        }
    }
    // `let [mut] name = … hash_returning_fn(…) …;` — a binding whose
    // initializer goes through a function/method that returns a hash
    // collection (the false negative the per-file heuristic used to have).
    for i in 0..code.len() {
        if !code[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if code.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = code.get(j).filter(|t| t.kind == TokKind::Ident) else { continue };
        // Find the `=` of the binding (skipping a `: Type` annotation),
        // then scan the initializer up to the statement's `;`.
        let mut k = j + 1;
        let mut depth = 0i32;
        while k < code.len() && !(depth == 0 && (code[k].is_punct('=') || code[k].is_punct(';'))) {
            bracket_depth(&code[k], &mut depth);
            k += 1;
        }
        if !code.get(k).is_some_and(|t| t.is_punct('=')) {
            continue;
        }
        let mut m = k + 1;
        depth = 0;
        let mut calls_hash_fn = false;
        while m < code.len() && !(depth == 0 && code[m].is_punct(';')) {
            if code[m].kind == TokKind::Ident
                && code.get(m + 1).is_some_and(|n| n.is_punct('('))
                && hash_fns.contains(&code[m].text)
            {
                calls_hash_fn = true;
            }
            bracket_depth(&code[m], &mut depth);
            m += 1;
        }
        if calls_hash_fn {
            names.push(name.text.clone());
        }
    }
    names.sort();
    names.dedup();
    names
}

fn bracket_depth(t: &Tok, depth: &mut i32) {
    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
        *depth += 1;
    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
        *depth -= 1;
    }
}

/// Index of the `(` opening the call whose `)` sits at `close`.
fn open_paren_of(code: &[Tok], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        if code[j].is_punct(')') {
            depth += 1;
        } else if code[j].is_punct('(') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
}

pub fn check_d01(ctx: &FileCtx, hash_fns: &BTreeSet<String>) -> Vec<Finding> {
    let code = &ctx.code;
    let names = hash_bound_names(code, hash_fns);
    let mut out = Vec::new();
    for i in 0..code.len() {
        let t = &code[i];
        // Direct iteration of a hash-returning call's result:
        // `build_map(…).iter()` never names a binding, so resolve the
        // receiver through the symbol table.
        if t.is_punct('.')
            && ITER_METHODS.iter().any(|m| code.get(i + 1).is_some_and(|n| n.is_ident(m)))
            && code.get(i + 2).is_some_and(|n| n.is_punct('('))
            && i > 0
            && code[i - 1].is_punct(')')
        {
            if let Some(open) = open_paren_of(code, i - 1) {
                if open > 0
                    && code[open - 1].kind == TokKind::Ident
                    && hash_fns.contains(&code[open - 1].text)
                {
                    out.push(ctx.finding(
                        "D01",
                        code[open - 1].line,
                        &code[open - 1].text,
                        format!(
                            "`{}(…).{}()` iterates the hash collection returned by `{}`; visit \
                             order is randomized per process — use BTreeMap/BTreeSet or \
                             collect-and-sort",
                            code[open - 1].text,
                            code[i + 1].text,
                            code[open - 1].text
                        ),
                    ));
                }
            }
        }
        if t.kind != TokKind::Ident || !names.contains(&t.text) {
            continue;
        }
        // `name.iter()` / `name.keys()` / ...
        if i + 2 < code.len()
            && code[i + 1].is_punct('.')
            && ITER_METHODS.iter().any(|m| code[i + 2].is_ident(m))
            && code.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            out.push(ctx.finding(
                "D01",
                t.line,
                &t.text,
                format!(
                    "`{}.{}()` iterates a hash collection; visit order is randomized per \
                     process — use BTreeMap/BTreeSet or collect-and-sort",
                    t.text,
                    code[i + 2].text
                ),
            ));
        }
        // `for x in [&[mut]] name {`
        let mut j = i;
        while j > 0 && (code[j - 1].is_punct('&') || code[j - 1].is_ident("mut")) {
            j -= 1;
        }
        if j > 0 && code[j - 1].is_ident("in") && code.get(i + 1).is_some_and(|t| t.is_punct('{')) {
            out.push(ctx.finding(
                "D01",
                t.line,
                &t.text,
                format!(
                    "`for … in {}` iterates a hash collection; visit order is randomized per \
                     process — use BTreeMap/BTreeSet or collect-and-sort",
                    t.text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// D02 — ambient nondeterminism
// ---------------------------------------------------------------------------

pub fn check_d02(ctx: &FileCtx) -> Vec<Finding> {
    let code = &ctx.code;
    let mut out = Vec::new();
    for i in 0..code.len() {
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = ENTROPY_IDENTS.contains(&t.text.as_str())
            || (t.is_ident("rand") && code.get(i + 1).is_some_and(|n| n.is_punct(':')));
        if hit {
            out.push(ctx.finding(
                "D02",
                t.line,
                &t.text,
                format!(
                    "`{}` injects wall-clock time or process entropy into a model crate; \
                     model randomness must come from the seeded coaxial-sim RNG",
                    t.text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// T01 / T02 — timing arithmetic
// ---------------------------------------------------------------------------

/// Idents reachable walking left from position `i` (exclusive) through a
/// postfix chain: `self.cfg.timings.t_faw`, `queue.head().deadline()`, …
fn chain_idents(code: &[Tok], i: usize) -> Vec<&str> {
    let mut idents = Vec::new();
    let mut j = i;
    let mut parens = 0usize;
    let floor = i.saturating_sub(16);
    while j > floor {
        let t = &code[j - 1];
        match () {
            _ if t.is_punct(')') => parens += 1,
            _ if t.is_punct('(') => {
                if parens == 0 {
                    break;
                }
                parens -= 1;
            }
            _ if parens > 0 => {} // skip call arguments
            _ if t.kind == TokKind::Ident => idents.push(t.text.as_str()),
            _ if t.is_punct('.') || t.is_punct(':') => {}
            _ => break,
        }
        j -= 1;
    }
    idents
}

pub fn check_t01(ctx: &FileCtx) -> Vec<Finding> {
    cast_rule(ctx, "T01", NARROW_INTS, |src, dst| {
        format!(
            "`{src} as {dst}` can silently truncate a cycle/latency value (u64 wraps after \
             ~1.8 s of simulated time); use try_into() or widen the destination"
        )
    })
}

/// Segments marking an identifier as a *raw* cycle/tick quantity (for
/// T02's float-storage check — narrower than [`is_timing_ident`]).
const CYCLE_SEGMENTS: &[&str] =
    &["cycle", "cycles", "cyc", "tick", "ticks", "latency", "lat", "deadline"];

/// Segments that mark a float as a legitimate *derived* report quantity
/// (a mean, a rate, or a wall-time unit) rather than simulated time.
const REPORT_MARKERS: &[&str] =
    &["mean", "avg", "ns", "us", "ms", "ratio", "rate", "per", "frac", "pct", "mhz", "ghz"];

fn is_cycle_storage_ident(ident: &str) -> bool {
    let segs: Vec<String> = ident.split('_').map(|s| s.to_ascii_lowercase()).collect();
    segs.iter().any(|s| CYCLE_SEGMENTS.contains(&s.as_str()))
        && !segs.iter().any(|s| REPORT_MARKERS.contains(&s.as_str()))
}

pub fn check_t02(ctx: &FileCtx) -> Vec<Finding> {
    let code = &ctx.code;
    let mut out = Vec::new();
    // Accumulating casts: `acc += cycles as f64`. A one-shot conversion at
    // a reporting boundary (`sum as f64 / n as f64`) is legitimate; what
    // T02 forbids is *accumulation* of simulated time in floating point,
    // where the running sum loses exactness and order-independence.
    let mut stmt_start = 0usize;
    for i in 0..code.len() {
        let t = &code[i];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            stmt_start = i + 1;
            continue;
        }
        if !t.is_ident("as")
            || !code.get(i + 1).is_some_and(|n| n.is_ident("f64") || n.is_ident("f32"))
        {
            continue;
        }
        let accumulating = code[stmt_start..i]
            .windows(2)
            .any(|w| (w[0].is_punct('+') || w[0].is_punct('-')) && w[1].is_punct('='));
        if !accumulating {
            continue;
        }
        if let Some(src) = chain_idents(code, i).iter().find(|id| is_timing_ident(id)) {
            out.push(ctx.finding(
                "T02",
                t.line,
                src,
                format!(
                    "`{src} as {}` accumulates cycle math in floating point outside the \
                     stats/report layer; the latency-ledger conservation proof only holds \
                     in exact integers — accumulate in u64, convert at the report boundary",
                    code[i + 1].text
                ),
            ));
        }
    }
    // `latency_cycles: f64` — float *storage* of a raw cycle quantity.
    // Derived report quantities (`mean_queue_cycles`, `latency_ns`,
    // `bytes_per_cycle`) are exempt via REPORT_MARKERS.
    for i in 0..code.len().saturating_sub(2) {
        if code[i].kind == TokKind::Ident
            && is_cycle_storage_ident(&code[i].text)
            && code[i + 1].is_punct(':')
            && !code[i + 2].is_punct(':')
            && (code[i + 2].is_ident("f64") || code[i + 2].is_ident("f32"))
        {
            out.push(ctx.finding(
                "T02",
                code[i].line,
                &code[i].text,
                format!(
                    "`{}: {}` stores a raw cycle/latency quantity in floating point outside \
                     the stats/report layer; keep simulated time in integer cycles (derived \
                     report values should say so in their name: _mean/_ns/_per/…)",
                    code[i].text,
                    code[i + 2].text
                ),
            ));
        }
    }
    out
}

fn cast_rule(
    ctx: &FileCtx,
    id: &'static str,
    targets: &[&str],
    msg: impl Fn(&str, &str) -> String,
) -> Vec<Finding> {
    let code = &ctx.code;
    let mut out = Vec::new();
    for i in 0..code.len() {
        if !code[i].is_ident("as") || i + 1 >= code.len() {
            continue;
        }
        let dst = &code[i + 1];
        if !targets.iter().any(|t| dst.is_ident(t)) {
            continue;
        }
        let chain = chain_idents(code, i);
        if let Some(src) = chain.iter().find(|id| is_timing_ident(id)) {
            out.push(ctx.finding(id, code[i].line, src, msg(src, &dst.text)));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Z01 — telemetry guard domination
// ---------------------------------------------------------------------------

/// Fallback sink hook names, used only when the workspace does not define
/// a `TelemetrySink` trait to read the real method set from (fixtures).
const SINK_METHODS: &[&str] = &["on_miss", "on_span", "on_reset"];

pub fn check_z01(ctx: &FileCtx, sink_methods: &[String]) -> Vec<Finding> {
    let code = &ctx.code;
    let mut out = Vec::new();
    // guard[d] = "some enclosing block at depth <= d is `if …::ENABLED`".
    let mut guard = vec![false];
    // Start-of-header marker: tokens since the last `{`, `}`, or `;`.
    let mut header_start = 0usize;
    for i in 0..code.len() {
        let t = &code[i];
        if t.is_punct('{') {
            let header = &code[header_start..i];
            let is_guard = header.iter().any(|t| t.is_ident("if"))
                && header.iter().any(|t| t.is_ident("ENABLED"));
            let inherited = *guard.last().unwrap();
            guard.push(inherited || is_guard);
            header_start = i + 1;
        } else if t.is_punct('}') {
            if guard.len() > 1 {
                guard.pop();
            }
            header_start = i + 1;
        } else if t.is_punct(';') {
            header_start = i + 1;
        }
        if t.kind == TokKind::Ident
            && sink_methods.iter().any(|m| m == &t.text)
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !*guard.last().unwrap()
        {
            out.push(ctx.finding(
                "Z01",
                t.line,
                &t.text,
                format!(
                    "telemetry sink call `.{}(…)` is not dominated by an `if T::ENABLED` \
                     guard; the NullTelemetry monomorphization would pay for it",
                    t.text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// U01 — SAFETY comments on unsafe
// ---------------------------------------------------------------------------

pub fn check_u01(ctx: &FileCtx) -> Vec<Finding> {
    let lines: Vec<&str> = ctx.src.lines().collect();
    let mut out = Vec::new();
    for t in &ctx.toks {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let line_idx = (t.line as usize).saturating_sub(1);
        // Trailing comment on the same line counts.
        let mut ok = lines.get(line_idx).is_some_and(|l| l.contains("SAFETY:"));
        // Otherwise scan the contiguous comment/attribute block above.
        let mut i = line_idx;
        while !ok && i > 0 {
            i -= 1;
            let l = lines[i].trim();
            if l.starts_with("//") || l.starts_with("*") || l.ends_with("*/") {
                ok = l.contains("SAFETY:");
                if ok {
                    break;
                }
            } else if l.starts_with("#[") || l.is_empty() {
                continue;
            } else {
                break;
            }
        }
        if !ok {
            out.push(
                ctx.finding(
                    "U01",
                    t.line,
                    "unsafe",
                    "`unsafe` without a `// SAFETY:` comment stating the invariant relied on"
                        .to_string(),
                ),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// C01 — declared-but-unenforced fidelity parameters (DDR5 timings, CXL link)
// ---------------------------------------------------------------------------

/// Field names (with lines) of `struct <name> { … }` in `src` — legacy
/// token-level helper kept for the direct [`check_c01`] entry point.
pub fn struct_fields(src: &str, name: &str) -> Vec<(String, u32)> {
    let code = parser::code_toks(src);
    let items = parser::parse_items(&code);
    fn find(items: &[Item], name: &str) -> Vec<(String, u32)> {
        for item in items {
            match &item.kind {
                parser::ItemKind::Struct { fields } if item.name == name => {
                    return fields.iter().map(|f| (f.name.clone(), f.line)).collect();
                }
                parser::ItemKind::Impl { items: inner, .. }
                | parser::ItemKind::Trait { items: inner }
                | parser::ItemKind::Mod { items: inner, .. } => {
                    let found = find(inner, name);
                    if !found.is_empty() {
                        return found;
                    }
                }
                _ => {}
            }
        }
        Vec::new()
    }
    find(&items, name)
}

/// C01 core: every field of `struct_name` (declared in `config_src`) must
/// appear as an identifier in at least one of `enforce_srcs`.
pub fn check_c01(
    config_rel: &str,
    config_src: &str,
    struct_name: &str,
    enforce_srcs: &[(&str, &str)],
) -> Vec<Finding> {
    let fields = struct_fields(config_src, struct_name);
    let mut used: BTreeSet<String> = BTreeSet::new();
    for (_, src) in enforce_srcs {
        for t in parser::code_toks(src) {
            if t.kind == TokKind::Ident {
                used.insert(t.text);
            }
        }
    }
    let files: Vec<&str> = enforce_srcs.iter().map(|(n, _)| *n).collect();
    c01_findings(config_rel, struct_name, &fields, &used, &files.join(", "))
}

fn c01_findings(
    config_rel: &str,
    struct_name: &str,
    fields: &[(String, u32)],
    used: &BTreeSet<String>,
    files_label: &str,
) -> Vec<Finding> {
    fields
        .iter()
        .filter(|(f, _)| !used.contains(f))
        .map(|(f, line)| Finding {
            id: "C01",
            path: config_rel.to_string(),
            line: *line,
            ident: f.clone(),
            message: format!(
                "fidelity parameter `{struct_name}.{f}` is declared but never read by the \
                 enforcing code ({files_label}) — a declared-but-unenforced parameter is a \
                 silent fidelity bug"
            ),
        })
        .collect()
}

/// C01 pairs: each fidelity-critical config struct against the code that
/// must enforce it, resolved through the workspace symbol graph.
const C01_PAIRS: &[(&str, &str, &[&str])] = &[
    (
        "DramTimings",
        "crates/dram/src/config.rs",
        &["crates/dram/src/bank.rs", "crates/dram/src/subchannel.rs", "crates/dram/src/channel.rs"],
    ),
    (
        "CxlLinkConfig",
        "crates/cxl/src/config.rs",
        &["crates/cxl/src/channel.rs", "crates/cxl/src/memory.rs"],
    ),
];

/// Workspace C01: run every configured pair over the symbol graph.
pub fn lint_cross_reference(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for (struct_name, config_rel, enforce) in C01_PAIRS {
        let Some(def) = ws.struct_def(config_rel, struct_name) else { continue };
        let mut used: BTreeSet<String> = BTreeSet::new();
        for rel in *enforce {
            if let Some(syms) = ws.files.get(*rel) {
                used.extend(syms.idents.iter().cloned());
            }
        }
        let fields: Vec<(String, u32)> =
            def.fields.iter().map(|f| (f.name.clone(), f.line)).collect();
        let label: Vec<&str> = enforce.iter().map(|r| r.rsplit('/').next().unwrap_or(r)).collect();
        out.extend(c01_findings(config_rel, struct_name, &fields, &used, &label.join(", ")));
    }
    out
}

// ---------------------------------------------------------------------------
// E01 — every pub config field is read by model code
// ---------------------------------------------------------------------------

/// One fidelity-critical config struct and the file defining it.
pub struct CoverageSpec<'a> {
    pub struct_name: &'a str,
    pub config_rel: &'a str,
}

/// The real tree's E01 struct set.
pub const E01_STRUCTS: &[CoverageSpec<'static>] = &[
    CoverageSpec { struct_name: "DramTimings", config_rel: "crates/dram/src/config.rs" },
    CoverageSpec { struct_name: "DramConfig", config_rel: "crates/dram/src/config.rs" },
    CoverageSpec { struct_name: "CxlLinkConfig", config_rel: "crates/cxl/src/config.rs" },
    CoverageSpec { struct_name: "SystemConfig", config_rel: "crates/system/src/config.rs" },
    CoverageSpec { struct_name: "FunctionalConfig", config_rel: "crates/system/src/config.rs" },
    CoverageSpec { struct_name: "TimingConfig", config_rel: "crates/system/src/config.rs" },
];

/// E01: every `pub` field of each spec struct has at least one field-read
/// site in non-test model code. Under resolved linkage a typed read only
/// credits its own struct; unresolved reads fall back to name matching
/// (see `crate::symbols` docs).
pub fn check_e01(ws: &Workspace, specs: &[CoverageSpec]) -> Vec<Finding> {
    let mut model_fns: Vec<&FnSym> = Vec::new();
    for (rel, syms) in &ws.files {
        if !in_model_src(rel) {
            continue;
        }
        model_fns.extend(syms.fns.iter().filter(|f| !f.in_test));
    }
    let mut out = Vec::new();
    for spec in specs {
        let Some(def) = ws.struct_def(spec.config_rel, spec.struct_name) else { continue };
        let fq = ws.struct_fq(spec.config_rel, spec.struct_name);
        for field in def.fields.iter().filter(|f| f.is_pub) {
            if !model_fns.iter().any(|f| ws.reads_field(f, fq.as_deref(), &field.name)) {
                out.push(Finding {
                    id: "E01",
                    path: spec.config_rel.to_string(),
                    line: field.line,
                    ident: field.name.clone(),
                    message: format!(
                        "pub config field `{}.{}` is never read by model code — a fidelity \
                         knob nothing reads silently claims a fidelity the simulator does \
                         not deliver; wire it into the model or delete it",
                        spec.struct_name, field.name
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// E02 — every pub config field is exercised by a sweep or env override
// ---------------------------------------------------------------------------

/// E02 rule spec: which structs must be swept, which files host the
/// experiment/env entry points, and which config-layer files the
/// reachability walk may traverse between them.
pub struct SweepSpec<'a> {
    pub structs: &'a [CoverageSpec<'a>],
    /// Entry points: every non-test fn here is a sweep/override root.
    pub exercise_files: &'a [&'a str],
    /// Builder/ctor layer the walk may pass through (config files).
    pub layer_files: &'a [&'a str],
}

/// The real tree's E02 spec (the structs the ISSUE/ROADMAP name).
pub const E02_SPEC: SweepSpec<'static> = SweepSpec {
    structs: &[
        CoverageSpec { struct_name: "DramTimings", config_rel: "crates/dram/src/config.rs" },
        CoverageSpec { struct_name: "CxlLinkConfig", config_rel: "crates/cxl/src/config.rs" },
        CoverageSpec { struct_name: "SystemConfig", config_rel: "crates/system/src/config.rs" },
        CoverageSpec { struct_name: "FunctionalConfig", config_rel: "crates/system/src/config.rs" },
        CoverageSpec { struct_name: "TimingConfig", config_rel: "crates/system/src/config.rs" },
    ],
    exercise_files: &["crates/system/src/experiments.rs", "crates/sim/src/env.rs"],
    layer_files: &[
        "crates/system/src/config.rs",
        "crates/dram/src/config.rs",
        "crates/cxl/src/config.rs",
    ],
};

/// Call-graph view over a subset of the workspace's non-test fns.
///
/// Edges are fq-exact for resolved call sites and name-matched for
/// unresolved ones — under bare linkage `calls_unresolved == calls`, so
/// the graph degenerates to the historical name-based BFS.
struct CallGraph<'w> {
    nodes: Vec<(&'w str, &'w FnSym)>,
    by_fq: std::collections::BTreeMap<&'w str, Vec<usize>>,
    by_name: std::collections::BTreeMap<&'w str, Vec<usize>>,
    /// When set, name-fallback edges stay within the caller's crate (fq
    /// edges still cross crates freely). Rules whose findings come from
    /// *reachability* (L01) use this: a workspace-global name match on
    /// `new`/`get`/`insert` would connect nearly everything to nearly
    /// everything, and cross-crate calls go through imports the resolver
    /// does handle. Coverage-credit rules (E02/E03) keep global name
    /// edges so imprecision can only hide findings, never invent them.
    crate_scoped_names: bool,
}

/// The crate a repo-relative path belongs to, for name-edge scoping.
fn crate_of(rel: &str) -> &str {
    let mut it = rel.split('/');
    match (it.next(), it.next()) {
        (Some("crates"), Some(c)) => c,
        _ => "#root",
    }
}

impl<'w> CallGraph<'w> {
    fn build(ws: &'w Workspace, keep: impl Fn(&str) -> bool) -> Self {
        let mut g = Self {
            nodes: Vec::new(),
            by_fq: Default::default(),
            by_name: Default::default(),
            crate_scoped_names: false,
        };
        for (rel, syms) in &ws.files {
            if !keep(rel) {
                continue;
            }
            for f in syms.fns.iter().filter(|f| !f.in_test) {
                let i = g.nodes.len();
                g.nodes.push((rel.as_str(), f));
                g.by_fq.entry(f.fq.as_str()).or_default().push(i);
                g.by_name.entry(f.name.as_str()).or_default().push(i);
            }
        }
        g
    }

    fn with_crate_scoped_names(mut self) -> Self {
        self.crate_scoped_names = true;
        self
    }

    fn name_targets(&self, from_rel: &str, name: &str) -> Vec<usize> {
        let mut out: Vec<usize> = self.by_name.get(name).into_iter().flatten().copied().collect();
        if self.crate_scoped_names {
            out.retain(|&i| crate_of(self.nodes[i].0) == crate_of(from_rel));
        }
        out
    }

    /// Successor nodes of node `i`, optionally skipping callee names
    /// (E03's ctor stop-set).
    fn succs(&self, i: usize, skip: impl Fn(&str) -> bool) -> Vec<usize> {
        let (rel, f) = self.nodes[i];
        let mut out = Vec::new();
        for fq in &f.calls_fq {
            let name = fq.rsplit("::").next().unwrap_or(fq);
            if skip(name) {
                continue;
            }
            out.extend(self.by_fq.get(fq.as_str()).into_iter().flatten().copied());
        }
        for name in &f.calls_unresolved {
            if skip(name) {
                continue;
            }
            out.extend(self.name_targets(rel, name));
        }
        out
    }

    /// Nodes a single call site in `from_rel` can dispatch to.
    fn site_targets(&self, from_rel: &str, site: &crate::symbols::CallSite) -> Vec<usize> {
        if let Some(fq) = &site.fq {
            return self.by_fq.get(fq.as_str()).into_iter().flatten().copied().collect();
        }
        if site.resolved {
            return Vec::new(); // std/guard plumbing — accounted, no edge
        }
        self.name_targets(from_rel, &site.name)
    }

    /// Transitive closure from `seeds` (indices), following `succs`.
    fn reach(&self, seeds: Vec<usize>, skip: impl Fn(&str) -> bool) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue = seeds;
        while let Some(i) = queue.pop() {
            if !seen.insert(i) {
                continue;
            }
            queue.extend(self.succs(i, &skip));
        }
        seen
    }
}

/// E02: a field counts as *exercised* when some config-layer fn reachable
/// from the experiment/env entry points writes it, and the write either
/// derives from a fn parameter (a builder the sweep actually varies) or
/// the field is written by two distinct reachable constructors (a
/// variant-pair sweep like `x8_symmetric` vs. `x8_asymmetric`). A single
/// default constructor writing every field does not count — that is
/// exactly the "declared but never swept" case the rule exists to catch.
pub fn check_e02(ws: &Workspace, spec: &SweepSpec) -> Vec<Finding> {
    let traversable: BTreeSet<&str> =
        spec.exercise_files.iter().chain(spec.layer_files).copied().collect();

    // BFS from the exercise-file entry points; edges are fq-exact where
    // resolved, name-matched for the unresolved remainder.
    let g = CallGraph::build(ws, |rel| traversable.contains(rel));
    let seeds: Vec<usize> = g
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, (rel, _))| spec.exercise_files.contains(rel))
        .map(|(i, _)| i)
        .collect();
    let reachable = g.reach(seeds, |_| false);

    let mut out = Vec::new();
    for cs in spec.structs {
        let Some(def) = ws.struct_def(cs.config_rel, cs.struct_name) else { continue };
        let struct_fq = ws.struct_fq(cs.config_rel, cs.struct_name);
        for field in def.fields.iter().filter(|f| f.is_pub) {
            let mut writer_fns: BTreeSet<(&str, u32)> = BTreeSet::new();
            let mut param_derived = false;
            for &i in &reachable {
                let (rel, f) = g.nodes[i];
                for w in &f.writes {
                    // Prefer the resolved struct identity when both sides
                    // carry one — a same-named struct in another module no
                    // longer credits this spec's field.
                    let type_ok = match (&w.type_fq, &struct_fq) {
                        (Some(wfq), Some(sfq)) => wfq == sfq,
                        _ => w.type_name.as_deref().is_none_or(|t| t == cs.struct_name),
                    };
                    if w.field == field.name && type_ok && !w.zero_literal {
                        writer_fns.insert((rel, f.line));
                        param_derived |= w.param_derived;
                    }
                }
            }
            if !(param_derived || writer_fns.len() >= 2) {
                out.push(Finding {
                    id: "E02",
                    path: cs.config_rel.to_string(),
                    line: field.line,
                    ident: field.name.clone(),
                    message: format!(
                        "pub config field `{}.{}` is never exercised by an experiment sweep \
                         or env override ({}) — add a sweep that varies it (or a builder the \
                         sweeps call), or drop the knob",
                        cs.struct_name,
                        field.name,
                        spec.exercise_files.join(", ")
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// E03 — timing-half isolation of the prefill call graph
// ---------------------------------------------------------------------------

/// E03 rule spec: the timing-half config struct, the parent-config field
/// holding it, the entry-point name prefix, and the source tree the
/// reachability walk may traverse.
pub struct IsolationSpec<'a> {
    /// The timing-half struct whose fields are off-limits.
    pub timing_struct: &'a str,
    /// File defining `timing_struct`.
    pub config_rel: &'a str,
    /// Parent-config field holding the timing half (`SystemConfig.timing`);
    /// reading it at all from the prefill call graph is a violation.
    pub timing_field: &'a str,
    /// Non-test fns whose names start with this prefix are the roots.
    pub entry_prefix: &'a str,
    /// Repo-relative path prefixes the BFS may traverse.
    pub traversal: &'a [&'a str],
}

/// The real tree's E03 spec. The prefill checkpoint store
/// (`crates/system/src/server.rs`) keys warmed machine state by the
/// functional config slice alone, so every timing sibling of a functional
/// config shares one checkpoint — sound only while nothing on the prefill
/// call graph can observe the timing half.
pub const E03_SPEC: IsolationSpec<'static> = IsolationSpec {
    timing_struct: "TimingConfig",
    config_rel: "crates/system/src/config.rs",
    timing_field: "timing",
    entry_prefix: "prefill",
    traversal: &[
        "crates/system/src/",
        "crates/cache/src/",
        "crates/cpu/src/",
        "crates/workloads/src/",
        "crates/sim/src/",
    ],
};

/// Constructor-shaped callee names the E03 walk does not enter: ctors and
/// builders legitimately consume the timing half to *build* the machine
/// (a `Hierarchy::new` takes DRAM timings); E03 polices the prefill replay
/// that runs over the already-built machine.
const E03_CTOR_NAMES: &[&str] = &["new", "default", "table_iii"];
const E03_CTOR_PREFIXES: &[&str] = &["with_", "from_"];

fn e03_is_ctor(name: &str) -> bool {
    E03_CTOR_NAMES.contains(&name) || E03_CTOR_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// E03: no fn reachable from the prefill entry points may read a
/// timing-half field. Reachability uses the resolved call graph (fq-exact
/// edges, name-matched for the unresolved remainder); the remaining
/// over-approximation can only widen the guarded graph, never shrink it —
/// the right failure direction for an isolation proof. Reads attribute
/// the same way: a typed read flags only when the receiver resolves to
/// the timing struct (or holds it in the parent `timing` field); an
/// unresolved read keeps the old name-match over-approximation.
pub fn check_e03(ws: &Workspace, spec: &IsolationSpec) -> Vec<Finding> {
    let Some(def) = ws.struct_def(spec.config_rel, spec.timing_struct) else {
        return Vec::new();
    };
    let mut timing_fields: BTreeSet<&str> = def.fields.iter().map(|f| f.name.as_str()).collect();
    timing_fields.insert(spec.timing_field);
    let timing_fq = ws.struct_fq(spec.config_rel, spec.timing_struct);

    let in_walk = |rel: &str| spec.traversal.iter().any(|p| rel.starts_with(p));
    let g = CallGraph::build(ws, in_walk);
    let seeds: Vec<usize> = g
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, (_, f))| f.name.starts_with(spec.entry_prefix))
        .map(|(i, _)| i)
        .collect();
    let reachable = g.reach(seeds, e03_is_ctor);

    let mut out = Vec::new();
    for &i in &reachable {
        let (rel, f) = g.nodes[i];
        let mut flagged: BTreeSet<&str> = BTreeSet::new();
        for field in f.reads_unresolved.iter().filter(|r| timing_fields.contains(r.as_str())) {
            flagged.insert(field.as_str());
        }
        for (ty_fq, field) in &f.reads_typed {
            let on_timing_struct = timing_fq.as_deref() == Some(ty_fq.as_str())
                && timing_fields.contains(field.as_str());
            // `cfg.timing` on any struct whose `timing` field holds the
            // timing half is a read of the half itself.
            let holds_timing_half = field == spec.timing_field
                && ws.resolver.as_ref().is_some_and(|r| {
                    r.field_ty(ty_fq, spec.timing_field)
                        .and_then(|t| t.ty.as_deref())
                        .is_some_and(|t| timing_fq.as_deref() == Some(t))
                });
            if on_timing_struct || holds_timing_half {
                flagged.insert(field.as_str());
            }
        }
        for field in flagged {
            out.push(Finding {
                id: "E03",
                path: rel.to_string(),
                line: f.line,
                ident: field.to_string(),
                message: format!(
                    "`{}` is reachable from the prefill entry points but reads \
                     timing-half field `{field}` — post-prefill checkpoints are keyed \
                     by the functional config slice alone, so a {} read on the \
                     prefill call graph silently invalidates every shared checkpoint; \
                     move the read out of the prefill path or promote the knob into \
                     the functional half and the key",
                    f.name, spec.timing_struct
                ),
            });
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, &a.ident).cmp(&(&b.path, b.line, &b.ident)));
    out
}

// ---------------------------------------------------------------------------
// M01 — metric path hygiene + component stamp coverage
// ---------------------------------------------------------------------------

/// M01 rule spec: the latency-component enum, its defining file, and the
/// record struct whose inits are the stamp sites.
pub struct MetricSpec<'a> {
    pub component_enum: &'a str,
    pub enum_rel: &'a str,
    pub record_struct: &'a str,
}

/// The real tree's M01 spec.
pub const M01_SPEC: MetricSpec<'static> = MetricSpec {
    component_enum: "Component",
    enum_rel: "crates/telemetry/src/attribution.rs",
    record_struct: "MissRecord",
};

/// Scope for metric-path checks: crate sources (not tests/, benches/).
fn in_metric_scope(rel: &str) -> bool {
    rel.contains("/src/") || rel.starts_with("src/")
}

/// Convert a CamelCase variant name to the snake_case field/label form
/// (`IssueWait` → `issue_wait`).
fn camel_to_snake(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// One metric path segment: lowercase snake (with `*` where format holes
/// collapsed).
fn valid_segment(seg: &str) -> bool {
    !seg.is_empty()
        && seg.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '*')
}

pub fn check_m01(ws: &Workspace, spec: &MetricSpec) -> Vec<Finding> {
    let mut out = Vec::new();

    // (1) Path shape + (2) constant-path collisions across files.
    let mut constant_sites: std::collections::BTreeMap<&str, Vec<(&str, u32)>> = Default::default();
    for (rel, syms) in &ws.files {
        if !in_metric_scope(rel) {
            continue;
        }
        for f in syms.fns.iter().filter(|f| !f.in_test) {
            for reg in &f.metric_regs {
                if !reg.pattern.split('.').all(valid_segment) {
                    out.push(Finding {
                        id: "M01",
                        path: rel.clone(),
                        line: reg.line,
                        ident: reg.pattern.clone(),
                        message: format!(
                            "metric path `{}` is not lowercase-dot-case — registry dot-paths \
                             must be machine-parseable ([a-z0-9_] segments joined by `.`)",
                            reg.pattern
                        ),
                    });
                }
                if reg.constant {
                    constant_sites.entry(reg.pattern.as_str()).or_default().push((rel, reg.line));
                }
            }
        }
    }
    for (pattern, sites) in &constant_sites {
        let files: BTreeSet<&str> = sites.iter().map(|(rel, _)| *rel).collect();
        if files.len() > 1 {
            let (first_rel, first_line) = sites[0];
            for (rel, line) in &sites[1..] {
                if *rel == first_rel {
                    continue;
                }
                out.push(Finding {
                    id: "M01",
                    path: (*rel).to_string(),
                    line: *line,
                    ident: (*pattern).to_string(),
                    message: format!(
                        "metric path `{pattern}` is also registered at \
                         {first_rel}:{first_line} — two subsystems writing one path silently \
                         overwrite each other's values; prefix one of them"
                    ),
                });
            }
        }
    }

    // (3) Every component variant has a stamp site: a non-zero
    // `RecordStruct { variant_snake: … }` init in non-test model code, or
    // a derived accessor method of that name on the record struct.
    let Some(en) = ws.enum_def(spec.enum_rel, spec.component_enum) else { return out };
    let record_fq = ws.struct_fq(spec.enum_rel, spec.record_struct);
    let mut stamped: BTreeSet<String> = BTreeSet::new();
    let mut derived: BTreeSet<String> = BTreeSet::new();
    for (rel, syms) in &ws.files {
        for f in &syms.fns {
            if f.owner.as_deref() == Some(spec.record_struct) {
                // With the resolver active, only methods on *the* record
                // struct count — a same-named struct elsewhere no longer
                // contributes accessors. Unresolved (`?::…`) owners keep
                // the name-match credit so imprecision cannot flag.
                let owner_ok = match &record_fq {
                    Some(rfq) => f.fq.starts_with('?') || f.fq == format!("{rfq}::{}", f.name),
                    None => true,
                };
                if owner_ok {
                    derived.insert(f.name.clone());
                }
            }
            if f.in_test || !in_model_src(rel) {
                continue;
            }
            for w in &f.writes {
                let type_ok = match (&w.type_fq, &record_fq) {
                    (Some(wfq), Some(rfq)) => wfq == rfq,
                    _ => w.type_name.as_deref() == Some(spec.record_struct),
                };
                if type_ok && !w.zero_literal {
                    stamped.insert(w.field.clone());
                }
            }
        }
    }
    for v in &en.variants {
        let snake = camel_to_snake(&v.name);
        if !stamped.contains(&snake) && !derived.contains(&snake) {
            out.push(Finding {
                id: "M01",
                path: spec.enum_rel.to_string(),
                line: v.line,
                ident: v.name.clone(),
                message: format!(
                    "latency component `{}::{}` has no stamp site: no non-zero \
                     `{} {{ {snake}: … }}` init in model code and no `{}::{snake}()` \
                     accessor — an unstamped component reports misleading zeros in every \
                     breakdown",
                    spec.component_enum, v.name, spec.record_struct, spec.record_struct
                ),
            });
        }
    }
    out
}

/// One metric registration, exposed for the fixture tests.
pub fn metric_regs_of<'w>(ws: &'w Workspace, rel: &str) -> Vec<&'w MetricReg> {
    ws.files
        .get(rel)
        .map(|s| s.fns.iter().flat_map(|f| f.metric_regs.iter()).collect())
        .unwrap_or_default()
}

// ---------------------------------------------------------------------------
// E04 — CLI surface reachability
// ---------------------------------------------------------------------------

/// E04 rule spec: where the CLI surface lives and which files' text counts
/// as documentation for environment knobs.
pub struct CliSpec<'a> {
    /// Repo-relative path of the CLI binary. Its leading `//!` header is
    /// the usage text (`usage()` prints it verbatim), and its string
    /// match arms are the accepted subcommands and flags.
    pub bin_rel: &'a str,
    /// Environment-variable prefix that marks a knob as ours.
    pub env_prefix: &'a str,
    /// Name prefixes exempt from the documentation requirement
    /// (test-scratch variables).
    pub env_exclude: &'a [&'a str],
    /// Files whose full text (doc tables included) counts as env-knob
    /// documentation.
    pub env_doc_rels: &'a [&'a str],
}

/// The real tree's E04 spec.
pub const E04_SPEC: CliSpec<'static> = CliSpec {
    bin_rel: "src/bin/coaxial.rs",
    env_prefix: "COAXIAL_",
    env_exclude: &["COAXIAL_TEST"],
    env_doc_rels: &["crates/sim/src/env.rs", "crates/gateway/src/lib.rs"],
};

/// Leading `//!` doc block of a file as `(line, text-after-marker)` rows.
fn inner_doc_header(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("//!") {
            let line = u32::try_from(i).unwrap_or(u32::MAX - 1) + 1;
            out.push((line, rest.trim_start_matches(' ').to_string()));
        } else if !t.is_empty() {
            break;
        }
    }
    out
}

/// String literals that form match-arm patterns (`"a" | "b" => …`),
/// with the line of each literal.
fn string_match_arms(code: &[Tok]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for i in 1..code.len() {
        if !(code[i - 1].is_punct('=') && code[i].is_punct('>')) {
            continue;
        }
        // Walk backward over `Str (| Str)*` ending right before the `=>`.
        let mut j = i - 1;
        while j > 0 && code[j - 1].kind == TokKind::Str {
            let t = &code[j - 1];
            out.push((t.text.trim_matches('"').to_string(), t.line));
            j -= 1;
            if j > 0 && code[j - 1].is_punct('|') {
                j -= 1;
            } else {
                break;
            }
        }
    }
    out
}

/// Strip the usage markup around a header token (`[--ops` → `--ops`).
fn trim_markup(tok: &str) -> &str {
    tok.trim_matches(|c: char| matches!(c, '[' | ']' | '(' | ')' | ',' | '.' | '`' | '#'))
}

/// E04: the CLI surface must be closed under documentation.
///
/// Forward: every subcommand / `--flag` string match arm in the binary
/// must appear in its usage header. Reverse: every `coaxial <sub>` line
/// and every line-leading `--flag` in the header must have a match arm.
/// Env: every `{prefix}*` name in a string literal anywhere in the
/// workspace must appear in one of the env-doc files.
pub fn check_e04(sources: &[(String, String)], spec: &CliSpec) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some((bin_rel, bin_src)) = sources.iter().find(|(rel, _)| rel == spec.bin_rel) else {
        return out; // synthetic fixture tree without the binary
    };
    let bin_name = spec.bin_rel.rsplit('/').next().unwrap_or(spec.bin_rel).trim_end_matches(".rs");
    let header = inner_doc_header(bin_src);
    let code: Vec<Tok> =
        crate::lexer::lex(bin_src).into_iter().filter(|t| t.kind != TokKind::Comment).collect();

    // -- the accepted surface: string match arms, classified ---------------
    let mut arm_subs: BTreeSet<String> = BTreeSet::new();
    let mut arm_flags: BTreeSet<String> = BTreeSet::new();
    let mut arm_sites: Vec<(String, u32, bool)> = Vec::new(); // (name, line, is_flag)
    for (text, line) in string_match_arms(&code) {
        if text.starts_with("--") && text.len() > 2 {
            arm_flags.insert(text.clone());
            arm_sites.push((text, line, true));
        } else if !text.is_empty()
            && text.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            && text.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        {
            arm_subs.insert(text.clone());
            arm_sites.push((text, line, false));
        }
    }

    // -- the documented surface: header lines ------------------------------
    let mut doc_subs: BTreeSet<&str> = BTreeSet::new();
    let mut doc_flags: BTreeSet<&str> = BTreeSet::new();
    let mut doc_sub_sites: Vec<(&str, u32)> = Vec::new();
    let mut doc_flag_sites: Vec<(&str, u32)> = Vec::new();
    for (line_no, text) in &header {
        let mut toks = text.split_whitespace().map(trim_markup);
        let first = toks.next().unwrap_or("");
        if first == bin_name {
            // Only identifier-shaped words are subcommands; the title line
            // ("coaxial — a …") and prose mentions are skipped.
            if let Some(sub) = toks.next().filter(|s| {
                s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                    && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
            }) {
                doc_subs.insert(sub);
                doc_sub_sites.push((sub, *line_no));
            }
        } else if first.starts_with("--") {
            doc_flags.insert(first);
            doc_flag_sites.push((first, *line_no));
        }
        // Flags documented mid-line ("[--ops N]", "--trace-end <c>") count
        // as documented, but only line-leading ones are reverse-checked.
        for tok in text.split_whitespace().map(trim_markup) {
            if tok.starts_with("--") && tok.len() > 2 {
                doc_flags.insert(tok);
            }
        }
    }

    // Forward: accepted but undocumented.
    for (name, line, is_flag) in &arm_sites {
        let documented = if *is_flag {
            doc_flags.contains(name.as_str())
        } else {
            doc_subs.contains(name.as_str())
        };
        if !documented {
            out.push(Finding {
                id: "E04",
                path: bin_rel.clone(),
                line: *line,
                ident: name.clone(),
                message: format!(
                    "CLI {} `{name}` is accepted by a match arm but missing from the \
                     usage header — users cannot discover it (usage() prints the header \
                     verbatim)",
                    if *is_flag { "option" } else { "subcommand" }
                ),
            });
        }
    }
    // Reverse: documented but not accepted.
    for (sub, line) in doc_sub_sites {
        if !arm_subs.contains(sub) {
            out.push(Finding {
                id: "E04",
                path: bin_rel.clone(),
                line,
                ident: sub.to_string(),
                message: format!(
                    "usage header documents subcommand `{sub}` but no string match arm \
                     in the binary handles it — the documented surface is unreachable"
                ),
            });
        }
    }
    for (flag, line) in doc_flag_sites {
        if !arm_flags.contains(flag) {
            out.push(Finding {
                id: "E04",
                path: bin_rel.clone(),
                line,
                ident: flag.to_string(),
                message: format!(
                    "usage header documents option `{flag}` but no string match arm in \
                     the binary parses it — the documented surface is unreachable"
                ),
            });
        }
    }

    // -- env knobs: every used name must be documented ----------------------
    let mut doc_text = String::new();
    for rel in spec.env_doc_rels {
        if let Some((_, src)) = sources.iter().find(|(r, _)| r == rel) {
            doc_text.push_str(src);
            doc_text.push('\n');
        }
    }
    for (rel, src) in sources {
        for t in crate::lexer::lex(src) {
            if t.kind != TokKind::Str {
                continue;
            }
            for name in env_names_in(&t.text, spec.env_prefix) {
                if spec.env_exclude.iter().any(|p| name.starts_with(p)) {
                    continue;
                }
                if !doc_text.contains(&name) {
                    out.push(Finding {
                        id: "E04",
                        path: rel.clone(),
                        line: t.line,
                        ident: name.clone(),
                        message: format!(
                            "environment knob `{name}` is read here but documented in none \
                             of {:?} — undocumented env vars are an unreachable surface",
                            spec.env_doc_rels
                        ),
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, &a.ident).cmp(&(&b.path, b.line, &b.ident)));
    out.dedup_by(|a, b| (&a.path, a.line, &a.ident) == (&b.path, b.line, &b.ident));
    out
}

/// `{prefix}[A-Z0-9_]+` names inside a string literal's source slice.
/// Names that stop at the prefix (dynamic `format!` stems) are skipped.
fn env_names_in(literal: &str, prefix: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = literal;
    while let Some(pos) = rest.find(prefix) {
        let tail = &rest[pos..];
        let len = tail
            .char_indices()
            .take_while(|(_, c)| c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_')
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        let name = &tail[..len];
        if name.len() > prefix.len() && !name.ends_with('_') {
            out.push(name.to_string());
        }
        rest = &rest[pos + prefix.len()..];
    }
    out
}

// ---------------------------------------------------------------------------
// L01 — gateway lock discipline
// ---------------------------------------------------------------------------

/// L01 rule spec: which mutexes are the gateway state locks and which
/// call-graph nodes count as heavy simulation work.
pub struct LockSpec<'a> {
    /// Mutex-identity prefix (fq of the static or `Struct::field` path)
    /// marking a lock as gateway state.
    pub guard_prefix: &'a str,
    /// Heavy entry points (fq) that must never be reachable while a
    /// gateway guard is live — simulation runs block for seconds, and a
    /// request thread holding the state lock through one starves every
    /// other connection.
    pub forbidden_fqs: &'a [&'a str],
}

/// The real tree's L01 spec.
pub const L01_SPEC: LockSpec<'static> = LockSpec {
    guard_prefix: "coaxial_gateway::",
    forbidden_fqs: &[
        "coaxial_system::runner::RunSpec::run",
        "coaxial_system::runner::parallel_map",
        "coaxial_system::runner::parallel_map_jobs",
        "coaxial_system::runner::run_all",
        "coaxial_system::runner::run_all_jobs",
    ],
};

/// L01: lock discipline over the resolved call graph.
///
/// (1) No heavy entry point may be reachable from a call site inside a
/// live gateway-guard region. (2) No fn reachable from inside a region
/// may re-acquire the same mutex (self-deadlock). (3) A body must not
/// acquire a mutex it already holds. (4) Every pair of mutexes must be
/// acquired in one consistent order workspace-wide.
pub fn check_l01(ws: &Workspace, spec: &LockSpec) -> Vec<Finding> {
    let mut out = Vec::new();
    let g = CallGraph::build(ws, |_| true).with_crate_scoped_names();
    let forbidden: BTreeSet<&str> = spec.forbidden_fqs.iter().copied().collect();

    for (rel, syms) in &ws.files {
        for f in syms.fns.iter().filter(|f| !f.in_test) {
            // (3) double-acquisition in one scope.
            for e in &f.lock_order {
                if e.held == e.acquired {
                    out.push(Finding {
                        id: "L01",
                        path: rel.clone(),
                        line: e.line,
                        ident: f.name.clone(),
                        message: format!(
                            "`{}` acquires `{}` while already holding it — a std::sync::Mutex \
                             is not reentrant, so this self-deadlocks at runtime",
                            f.name, e.acquired
                        ),
                    });
                }
            }
            for region in &f.lock_regions {
                let gateway = region.mutex.starts_with(spec.guard_prefix);
                // Seeds: call sites textually inside the guard region.
                let seeds: Vec<usize> = f
                    .call_sites
                    .iter()
                    .filter(|cs| cs.pos >= region.start && cs.pos < region.end)
                    .flat_map(|cs| g.site_targets(rel, cs))
                    .collect();
                if seeds.is_empty() {
                    continue;
                }
                let reach = g.reach(seeds, |_| false);
                for &i in &reach {
                    let (_, callee) = g.nodes[i];
                    // (1) heavy work under a gateway guard.
                    if gateway && forbidden.contains(callee.fq.as_str()) {
                        out.push(Finding {
                            id: "L01",
                            path: rel.clone(),
                            line: region.line,
                            ident: f.name.clone(),
                            message: format!(
                                "`{}` holds gateway lock `{}` while `{}` is reachable — \
                                 simulation runs block for seconds and would starve every \
                                 other connection; collect inputs under the lock, drop the \
                                 guard, then execute",
                                f.name, region.mutex, callee.fq
                            ),
                        });
                    }
                    // (2) interprocedural re-acquisition of a held mutex.
                    if callee.lock_regions.iter().any(|r2| r2.mutex == region.mutex) {
                        out.push(Finding {
                            id: "L01",
                            path: rel.clone(),
                            line: region.line,
                            ident: f.name.clone(),
                            message: format!(
                                "`{}` holds `{}` while `{}` (which re-acquires it) is \
                                 reachable — a std::sync::Mutex is not reentrant, so this \
                                 path self-deadlocks",
                                f.name, region.mutex, callee.name
                            ),
                        });
                    }
                }
            }
        }
    }

    // (4) workspace-wide acquisition-order consistency: the directed graph
    // `held → acquired` over mutex identities must be acyclic.
    let mut edges: std::collections::BTreeMap<&str, BTreeSet<&str>> = Default::default();
    let mut site: std::collections::BTreeMap<(&str, &str), (&str, u32, &str)> = Default::default();
    for (rel, syms) in &ws.files {
        for f in syms.fns.iter().filter(|f| !f.in_test) {
            for e in &f.lock_order {
                if e.held == e.acquired {
                    continue; // reported above
                }
                edges.entry(&e.held).or_default().insert(&e.acquired);
                site.entry((&e.held, &e.acquired)).or_insert((rel, e.line, &f.name));
            }
        }
    }
    // DFS with colors; report one finding per back edge found.
    let mut color: std::collections::BTreeMap<&str, u8> = Default::default();
    let nodes: Vec<&str> = edges.keys().copied().collect();
    fn dfs<'a>(
        n: &'a str,
        edges: &std::collections::BTreeMap<&'a str, BTreeSet<&'a str>>,
        color: &mut std::collections::BTreeMap<&'a str, u8>,
        back: &mut Vec<(&'a str, &'a str)>,
    ) {
        color.insert(n, 1);
        for &m in edges.get(n).into_iter().flatten() {
            match color.get(m).copied().unwrap_or(0) {
                0 => dfs(m, edges, color, back),
                1 => back.push((n, m)),
                _ => {}
            }
        }
        color.insert(n, 2);
    }
    let mut back = Vec::new();
    for n in nodes {
        if color.get(n).copied().unwrap_or(0) == 0 {
            dfs(n, &edges, &mut color, &mut back);
        }
    }
    for (held, acquired) in back {
        let (rel, line, fn_name) = site[&(held, acquired)];
        out.push(Finding {
            id: "L01",
            path: rel.to_string(),
            line,
            ident: fn_name.to_string(),
            message: format!(
                "inconsistent lock order: `{fn_name}` acquires `{acquired}` while holding \
                 `{held}`, but another path acquires them in the opposite order — pick one \
                 workspace-wide order or merge the locks"
            ),
        });
    }

    out.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    out.dedup_by(|a, b| (&a.path, a.line, &a.message) == (&b.path, b.line, &b.message));
    out
}

// ---------------------------------------------------------------------------
// E05 — CLI-flag reachability
// ---------------------------------------------------------------------------

/// E05 rule spec: the CLI binary whose dispatch `match` is audited and
/// the experiments module whose pub fns must all be wired to some arm.
pub struct CliReachSpec<'a> {
    pub bin_rel: &'a str,
    pub experiments_rel: &'a str,
}

/// The real tree's E05 spec.
pub const E05_SPEC: CliReachSpec<'static> = CliReachSpec {
    bin_rel: "src/bin/coaxial.rs",
    experiments_rel: "crates/system/src/experiments.rs",
};

/// A parsed dispatch arm: its pattern strings and body token span.
struct CliArm {
    names: Vec<String>,
    line: u32,
    start: usize,
    end: usize,
}

/// Parse the first `match` in `main`'s body into string-pattern arms.
fn cli_arms(code: &[Tok], body: (usize, usize)) -> Vec<CliArm> {
    let (open, close) = body;
    let mut i = open;
    while i < close && !code[i].is_ident("match") {
        i += 1;
    }
    // The `{` opening the match body: first `{` at bracket/paren depth 0
    // after the scrutinee expression.
    let mut depth = 0i32;
    while i < close {
        match code[i].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    if i >= close {
        return Vec::new();
    }
    let match_open = i;
    // Matching close brace.
    let mut brace = 0i32;
    let mut match_close = close;
    for (j, tok) in code.iter().enumerate().take(close).skip(match_open) {
        match tok.text.as_str() {
            "{" => brace += 1,
            "}" => {
                brace -= 1;
                if brace == 0 {
                    match_close = j;
                    break;
                }
            }
            _ => {}
        }
    }
    // Arms: `Str (| Str)* [guard] => body` at depth 1.
    let mut arms = Vec::new();
    let mut j = match_open + 1;
    while j < match_close {
        // Collect leading string patterns.
        let mut names = Vec::new();
        let line = code[j].line;
        while j < match_close && code[j].kind == TokKind::Str {
            names.push(code[j].text.trim_matches('"').to_string());
            j += 1;
            if j < match_close && code[j].is_punct('|') {
                j += 1;
            } else {
                break;
            }
        }
        // Skip to `=>` at depth 0 relative to the arm.
        let mut d = 0i32;
        while j < match_close {
            let t = &code[j];
            match t.text.as_str() {
                "(" | "[" | "{" => d += 1,
                ")" | "]" | "}" => d -= 1,
                "=" if d == 0 && code.get(j + 1).is_some_and(|n| n.is_punct('>')) => break,
                _ => {}
            }
            j += 1;
        }
        if j >= match_close {
            break;
        }
        j += 2; // past `=>`
        let body_start = j;
        // Arm body: a block, or an expression up to `,` at depth 0.
        let mut d = 0i32;
        while j < match_close {
            let t = &code[j];
            match t.text.as_str() {
                "(" | "[" | "{" => d += 1,
                ")" | "]" | "}" => {
                    d -= 1;
                    if d == 0 && code[body_start].is_punct('{') {
                        j += 1;
                        break;
                    }
                }
                "," if d == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let body_end = j;
        if j < match_close && code[j].is_punct(',') {
            j += 1;
        }
        if !names.is_empty() {
            arms.push(CliArm { names, line, start: body_start, end: body_end });
        }
    }
    arms
}

/// `true` when `rel` is library code (not the audited binary, not tests).
fn is_lib_rel(bin_rel: &str, rel: &str) -> bool {
    if rel == bin_rel || rel.starts_with("src/bin/") {
        return false;
    }
    (rel.starts_with("crates/") && rel.contains("/src/"))
        || rel == "src/lib.rs"
        || rel.starts_with("src/")
}

/// E05: CLI dispatch must be wired, distinct, and complete.
///
/// (a) Every string match arm in the binary's dispatch must reach at
/// least one library fn. (b) No two arms may dispatch to an identical
/// library entry set — duplicate wiring means one subcommand is a silent
/// alias. (c) Every pub experiment fn must be reachable from some arm.
pub fn check_e05(ws: &Workspace, ctxs: &[FileCtx], spec: &CliReachSpec) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(ctx) = ctxs.iter().find(|c| c.rel == spec.bin_rel) else {
        return out; // synthetic fixture tree without the binary
    };
    let Some(bin) = ws.files.get(spec.bin_rel) else { return out };
    let Some(main) = bin.fns.iter().find(|f| f.name == "main" && f.owner.is_none()) else {
        return out;
    };
    let Some(body) = main.body else { return out };

    let g = CallGraph::build(ws, |_| true);
    let arms = cli_arms(&ctx.code, body);

    // Per arm: frontier-crossing entry set (first lib node on each path
    // out of the binary) and the full reachable set.
    let mut arm_entries: Vec<(String, u32, BTreeSet<String>)> = Vec::new();
    let mut reach_union: BTreeSet<String> = BTreeSet::new();
    for arm in &arms {
        let seeds: Vec<usize> = main
            .call_sites
            .iter()
            .filter(|cs| cs.pos >= arm.start && cs.pos < arm.end)
            .flat_map(|cs| g.site_targets(spec.bin_rel, cs))
            .collect();
        let mut entries: BTreeSet<String> = BTreeSet::new();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue = seeds;
        while let Some(i) = queue.pop() {
            if !seen.insert(i) {
                continue;
            }
            let (rel, f) = g.nodes[i];
            if is_lib_rel(spec.bin_rel, rel) {
                entries.insert(f.fq.clone());
            }
            reach_union.insert(f.fq.clone());
            queue.extend(g.succs(i, |_| false));
        }
        let label = arm.names.join("|");
        if entries.is_empty() {
            out.push(Finding {
                id: "E05",
                path: spec.bin_rel.to_string(),
                line: arm.line,
                ident: label.clone(),
                message: format!(
                    "CLI arm `{label}` reaches no library entry point — the subcommand is \
                     accepted but wired to nothing; route it into a pub library fn so the \
                     behavior is testable outside the binary"
                ),
            });
        }
        arm_entries.push((label, arm.line, entries));
    }

    // (b) pairwise-distinct entry sets.
    for i in 0..arm_entries.len() {
        for j in i + 1..arm_entries.len() {
            let (a, _, ea) = &arm_entries[i];
            let (b, line, eb) = &arm_entries[j];
            if !ea.is_empty() && ea == eb {
                out.push(Finding {
                    id: "E05",
                    path: spec.bin_rel.to_string(),
                    line: *line,
                    ident: b.clone(),
                    message: format!(
                        "CLI arms `{a}` and `{b}` dispatch to identical library entry \
                         points ({}) — one of them is a silent alias; give each arm a \
                         distinct entry point or merge the arms",
                        ea.iter().cloned().collect::<Vec<_>>().join(", ")
                    ),
                });
            }
        }
    }

    // (c) every pub experiment fn is reachable from some arm.
    if let Some(exp) = ws.files.get(spec.experiments_rel) {
        for f in exp.fns.iter().filter(|f| !f.in_test && f.is_pub && f.owner.is_none()) {
            if !reach_union.contains(&f.fq) {
                out.push(Finding {
                    id: "E05",
                    path: spec.experiments_rel.to_string(),
                    line: f.line,
                    ident: f.name.clone(),
                    message: format!(
                        "pub experiment fn `{}` is not reachable from any CLI arm — every \
                         experiment must be runnable from the binary (wire it into a \
                         subcommand or the `exp` dispatcher) or made private",
                        f.name
                    ),
                });
            }
        }
    }
    out
}
