#![forbid(unsafe_code)]
//! `coaxial-lint` CLI. Usage:
//!
//! ```text
//! coaxial-lint [--root <dir>] [--format text|json|sarif] [--changed-only]
//!              [--list] [--explain <ID>]
//! ```
//!
//! With no flags: lint the workspace, print findings as
//! `path:line: [ID] message`, and exit 1 on any unsuppressed finding or
//! stale suppression (so `scripts/check.sh` and CI can gate on it).
//!
//! `--format json` emits one machine-readable report object (consumed by
//! the GitHub Actions problem matcher pipeline and editor integrations);
//! `--format sarif` emits the same findings as a SARIF 2.1.0 log for
//! code-scanning UIs (uploaded as a CI artifact next to the JSON one).
//! `--changed-only` restricts *reported* findings to files changed per
//! git (staged + unstaged + untracked vs. HEAD) for fast local iteration;
//! the analysis itself still runs over the full tree so cross-file rules
//! see the whole graph. CI always runs the full scan.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    enum Format {
        Text,
        Json,
        Sarif,
    }
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut changed_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some("text") => format = Format::Text,
                _ => return usage("--format needs `text`, `json`, or `sarif`"),
            },
            "--changed-only" => changed_only = true,
            "--list" => {
                for l in coaxial_lint::CATALOG {
                    println!("{}  {}", l.id, l.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(id) = args.next() else { return usage("--explain needs a lint ID") };
                return match coaxial_lint::catalog_entry(&id) {
                    Some(l) => {
                        println!("{}: {}\n\n{}", l.id, l.summary, l.rationale);
                        ExitCode::SUCCESS
                    }
                    None => usage(&format!("unknown lint ID `{id}`")),
                };
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Default root: the workspace containing this crate (CARGO_MANIFEST_DIR
    // is crates/lint), falling back to the current directory for a copied
    // binary.
    let root = root.unwrap_or_else(|| {
        option_env!("CARGO_MANIFEST_DIR")
            .map(|m| PathBuf::from(m).join("../.."))
            .filter(|p| p.join("Cargo.toml").exists())
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let scope = if changed_only { changed_files(&root) } else { None };
    if changed_only && scope.is_none() {
        eprintln!("coaxial-lint: --changed-only could not read git state; running full scan");
    }

    let report = match coaxial_lint::lint_workspace_scoped(&root, scope.as_ref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("coaxial-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    match format {
        Format::Json => println!("{}", report.to_json()),
        Format::Sarif => println!("{}", report.to_sarif()),
        Format::Text => {
            for f in &report.findings {
                println!("{f}");
            }
            for s in &report.stale_suppressions {
                println!(
                    "lint-allow.toml:{}: stale suppression ({} @ {}) matches no finding — remove it",
                    s.line, s.lint, s.path
                );
            }
        }
    }
    let status = if report.clean() { "clean" } else { "FAILED" };
    let scope_note = if scope.is_some() { " (changed-only)" } else { "" };
    eprintln!(
        "coaxial-lint: {} files, {} findings, {} suppressed, {} stale suppressions — \
         {status}{scope_note}",
        report.files,
        report.findings.len(),
        report.suppressed,
        report.stale_suppressions.len(),
    );
    if !report.timings.is_empty() {
        // Slowest first, so the rule to optimize when the check.sh wall-time
        // budget trips is the first thing printed.
        let mut by_cost: Vec<_> = report.timings.iter().collect();
        by_cost.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
        let total: std::time::Duration = by_cost.iter().map(|(_, d)| *d).sum();
        let cols: Vec<String> =
            by_cost.iter().map(|(id, d)| format!("{id} {:.1}ms", d.as_secs_f64() * 1e3)).collect();
        eprintln!(
            "coaxial-lint: rule wall time {:.1}ms — {}",
            total.as_secs_f64() * 1e3,
            cols.join(", ")
        );
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Repo-relative paths changed vs. HEAD (tracked modifications, staged or
/// not) plus untracked files. `None` when git is unavailable or errors —
/// the caller falls back to a full scan rather than silently passing.
fn changed_files(root: &Path) -> Option<BTreeSet<String>> {
    let mut out = BTreeSet::new();
    for extra in
        [&["diff", "--name-only", "HEAD"][..], &["ls-files", "--others", "--exclude-standard"][..]]
    {
        let output =
            std::process::Command::new("git").arg("-C").arg(root).args(extra).output().ok()?;
        if !output.status.success() {
            return None;
        }
        for line in String::from_utf8_lossy(&output.stdout).lines() {
            let line = line.trim();
            if !line.is_empty() {
                out.insert(line.to_string());
            }
        }
    }
    Some(out)
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "coaxial-lint: {err}\nusage: coaxial-lint [--root <dir>] [--format text|json|sarif] \
         [--changed-only] [--list] [--explain <ID>]"
    );
    ExitCode::FAILURE
}
