#![forbid(unsafe_code)]
//! `coaxial-lint` CLI. Usage:
//!
//! ```text
//! coaxial-lint [--root <dir>] [--list] [--explain <ID>]
//! ```
//!
//! With no flags: lint the workspace, print findings as
//! `path:line: [ID] message`, and exit 1 on any unsuppressed finding or
//! stale suppression (so `scripts/check.sh` and CI can gate on it).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--list" => {
                for l in coaxial_lint::CATALOG {
                    println!("{}  {}", l.id, l.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(id) = args.next() else { return usage("--explain needs a lint ID") };
                return match coaxial_lint::catalog_entry(&id) {
                    Some(l) => {
                        println!("{}: {}\n\n{}", l.id, l.summary, l.rationale);
                        ExitCode::SUCCESS
                    }
                    None => usage(&format!("unknown lint ID `{id}`")),
                };
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Default root: the workspace containing this crate (CARGO_MANIFEST_DIR
    // is crates/lint), falling back to the current directory for a copied
    // binary.
    let root = root.unwrap_or_else(|| {
        option_env!("CARGO_MANIFEST_DIR")
            .map(|m| PathBuf::from(m).join("../.."))
            .filter(|p| p.join("Cargo.toml").exists())
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let report = match coaxial_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("coaxial-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    for f in &report.findings {
        println!("{f}");
    }
    for s in &report.stale_suppressions {
        println!(
            "lint-allow.toml:{}: stale suppression ({} @ {}) matches no finding — remove it",
            s.line, s.lint, s.path
        );
    }
    let status = if report.clean() { "clean" } else { "FAILED" };
    eprintln!(
        "coaxial-lint: {} files, {} findings, {} suppressed, {} stale suppressions — {status}",
        report.files,
        report.findings.len(),
        report.suppressed,
        report.stale_suppressions.len(),
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("coaxial-lint: {err}\nusage: coaxial-lint [--root <dir>] [--list] [--explain <ID>]");
    ExitCode::FAILURE
}
