//! A recursive-descent *item* parser over the [`crate::lexer`] stream.
//!
//! The container builds offline (no `syn`), so the workspace semantic
//! model is built from this hand-rolled parser instead. It recognizes the
//! item grammar the lint rules need — structs with fields, enums with
//! variants, fns with parameter names / return types / body spans, impl
//! blocks (so methods know their `Self` type), traits, consts, and `use`
//! paths — and deliberately skips everything else (expressions inside
//! bodies stay raw token ranges; [`crate::symbols`] walks those).
//!
//! Like the lexer, it never fails: malformed or exotic syntax degrades
//! into skipped tokens, not a parse abort, because a lint pass that dies
//! on one weird file checks nothing at all.

use crate::lexer::{lex, Tok, TokKind};

/// Lex `src` and drop comment tokens — the token space every rule and the
/// parser index into (body spans are indices into this vector).
pub fn code_toks(src: &str) -> Vec<Tok> {
    lex(src).into_iter().filter(|t| t.kind != TokKind::Comment).collect()
}

/// One field of a struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    pub name: String,
    /// Type text, tokens joined with spaces (`Vec < u64 >`). Used for
    /// contains-checks (`HashMap`), not re-parsed.
    pub ty: String,
    pub is_pub: bool,
    pub line: u32,
}

/// One variant of an enum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantDef {
    pub name: String,
    pub line: u32,
}

/// A parsed `fn` signature plus the token span of its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Binding names of the parameters, receiver (`self`) excluded.
    pub params: Vec<String>,
    /// Declared type text per entry of `params` (same length; tokens
    /// joined with spaces, `& mut Cfg`). Pattern parameters share their
    /// chunk's type text. Feeds the resolver's type binding.
    pub param_tys: Vec<String>,
    /// Return-type text up to any `where` clause (`-> Self`, empty if
    /// none). Used for contains-checks only.
    pub ret: String,
    /// `(open_brace, close_brace)` indices into the code-token vector the
    /// parser ran over; `None` for bodyless trait methods.
    pub body: Option<(usize, usize)>,
}

/// One leaf of a `use` tree: the full path plus the local binding name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// Path segments, leading `crate`/`super`/`self` kept verbatim
    /// (`["std", "collections", "HashMap"]`).
    pub path: Vec<String>,
    /// Name the import binds locally: the last segment, or the `as`
    /// rename. Empty for glob imports.
    pub alias: String,
    /// `use path::*` — `path` names the module being flattened in.
    pub glob: bool,
}

/// One parsed item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Struct/enum/fn/trait/mod name; the `Self` type for impls; the
    /// path for `use`.
    pub name: String,
    pub line: u32,
    pub is_pub: bool,
    pub kind: ItemKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    Struct {
        fields: Vec<FieldDef>,
    },
    Enum {
        variants: Vec<VariantDef>,
    },
    Fn(FnDef),
    Impl {
        trait_name: Option<String>,
        items: Vec<Item>,
    },
    Trait {
        items: Vec<Item>,
    },
    Mod {
        is_test: bool,
        items: Vec<Item>,
    },
    /// `const`/`static`; `ty` is the declared type text (space-joined),
    /// so the resolver can recognize `static X: Mutex<…>` lock roots.
    Const {
        ty: String,
    },
    Use {
        imports: Vec<UseImport>,
    },
}

/// Parse the item tree of a comment-stripped token stream (see
/// [`code_toks`]).
pub fn parse_items(code: &[Tok]) -> Vec<Item> {
    Parser { t: code, i: 0 }.items(code.len())
}

struct Parser<'a> {
    t: &'a [Tok],
    i: usize,
}

/// Keywords that look like `ident (` call sites but are not.
const STMT_KEYWORDS: &[&str] = &["if", "while", "match", "for", "return", "in", "let", "else"];

impl<'a> Parser<'a> {
    fn at(&self, j: usize) -> Option<&'a Tok> {
        self.t.get(j)
    }

    /// Index of the bracket matching the opener at `open` (`{`/`(`/`[`),
    /// or the last scanned index if unbalanced.
    fn matching(&self, open: usize) -> usize {
        let (o, c) = match self.t[open].text.as_str() {
            "(" => ('(', ')'),
            "[" => ('[', ']'),
            _ => ('{', '}'),
        };
        let mut depth = 0usize;
        let mut j = open;
        while j < self.t.len() {
            if self.t[j].is_punct(o) {
                depth += 1;
            } else if self.t[j].is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        self.t.len().saturating_sub(1)
    }

    /// Skip an attribute starting at index `j` (`#` or `#!`), returning
    /// the index after `]` and whether it mentions `cfg(… test …)`.
    fn attr_end(&self, j: usize) -> (usize, bool) {
        let mut k = j + 1;
        if self.at(k).is_some_and(|t| t.is_punct('!')) {
            k += 1;
        }
        if !self.at(k).is_some_and(|t| t.is_punct('[')) {
            return (k, false);
        }
        let close = self.matching(k);
        let body = &self.t[k..=close.min(self.t.len() - 1)];
        let cfg_test =
            body.iter().any(|t| t.is_ident("cfg")) && body.iter().any(|t| t.is_ident("test"));
        (close + 1, cfg_test)
    }

    /// If positioned at `<`, skip the balanced generic parameter list
    /// (`->` never closes one; `>>` is two closers).
    fn skip_generics(&mut self) {
        if !self.at(self.i).is_some_and(|t| t.is_punct('<')) {
            return;
        }
        let mut depth = 0i32;
        while self.i < self.t.len() {
            let t = &self.t[self.i];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !(self.i > 0 && self.t[self.i - 1].is_punct('-')) {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Advance past a `;` at bracket depth 0 (handles `[0u64; 4]` and
    /// initializer blocks).
    fn skip_to_semi(&mut self) {
        let mut depth = 0i32;
        while self.i < self.t.len() {
            let t = &self.t[self.i];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(';') && depth <= 0 {
                self.i += 1;
                return;
            }
            self.i += 1;
        }
    }

    fn ident_text(&mut self) -> String {
        match self.at(self.i) {
            Some(t) if t.kind == TokKind::Ident => {
                self.i += 1;
                t.text.clone()
            }
            _ => String::new(),
        }
    }

    /// Parse items until index `end` (exclusive).
    fn items(&mut self, end: usize) -> Vec<Item> {
        let mut out = Vec::new();
        let mut is_pub = false;
        let mut cfg_test = false;
        while self.i < end.min(self.t.len()) {
            let t = &self.t[self.i];
            let line = t.line;
            if t.is_punct('#') {
                let (next, test) = self.attr_end(self.i);
                cfg_test |= test;
                self.i = next;
            } else if t.is_ident("pub") {
                is_pub = true;
                self.i += 1;
                // pub(crate) / pub(in path)
                if self.at(self.i).is_some_and(|t| t.is_punct('(')) {
                    self.i = self.matching(self.i) + 1;
                }
            } else if t.is_ident("unsafe") || t.is_ident("async") || t.is_ident("default") {
                self.i += 1; // modifier; keep pub/cfg flags
            } else if t.is_ident("struct") || t.is_ident("union") {
                out.push(self.struct_item(is_pub, line));
                (is_pub, cfg_test) = (false, false);
            } else if t.is_ident("enum") {
                out.push(self.enum_item(is_pub, line));
                (is_pub, cfg_test) = (false, false);
            } else if t.is_ident("fn") {
                out.push(self.fn_item(is_pub, line));
                (is_pub, cfg_test) = (false, false);
            } else if t.is_ident("impl") {
                out.push(self.impl_item(line));
                (is_pub, cfg_test) = (false, false);
            } else if t.is_ident("trait") {
                out.push(self.trait_item(is_pub, line));
                (is_pub, cfg_test) = (false, false);
            } else if t.is_ident("mod") {
                out.push(self.mod_item(is_pub, cfg_test, line));
                (is_pub, cfg_test) = (false, false);
            } else if t.is_ident("const") || t.is_ident("static") {
                // `const NAME: Ty = expr;` — but `const fn` is a modifier.
                if self.at(self.i + 1).is_some_and(|n| n.is_ident("fn") || n.is_ident("unsafe")) {
                    self.i += 1;
                    continue;
                }
                self.i += 1;
                let name = self.ident_text();
                // Declared type: between the `:` and the `=` (or `;`).
                let ty_start = if self.at(self.i).is_some_and(|t| t.is_punct(':')) {
                    self.i + 1
                } else {
                    self.i
                };
                let mut ty_end = ty_start;
                while self.at(ty_end).is_some_and(|t| !t.is_punct('=') && !t.is_punct(';')) {
                    ty_end += 1;
                }
                let ty = join(&self.t[ty_start.min(self.t.len())..ty_end.min(self.t.len())]);
                self.skip_to_semi();
                out.push(Item { name, line, is_pub, kind: ItemKind::Const { ty } });
                (is_pub, cfg_test) = (false, false);
            } else if t.is_ident("use") || t.is_ident("type") || t.is_ident("extern") {
                let is_use = t.is_ident("use");
                self.i += 1;
                let start = self.i;
                self.skip_to_semi();
                if is_use {
                    let end = self.i.saturating_sub(1).min(self.t.len());
                    let name: String = self.t[start..end].iter().map(|t| t.text.as_str()).collect();
                    let mut imports = Vec::new();
                    use_tree(&self.t[start..end], &mut Vec::new(), &mut imports);
                    out.push(Item { name, line, is_pub, kind: ItemKind::Use { imports } });
                }
                (is_pub, cfg_test) = (false, false);
            } else if t.is_ident("macro_rules") {
                // `macro_rules! name { … }`
                self.i += 1;
                while self.i < self.t.len() && !self.t[self.i].is_punct('{') {
                    self.i += 1;
                }
                if self.i < self.t.len() {
                    self.i = self.matching(self.i) + 1;
                }
                (is_pub, cfg_test) = (false, false);
            } else if t.is_punct('{') {
                self.i = self.matching(self.i) + 1;
                (is_pub, cfg_test) = (false, false);
            } else {
                self.i += 1;
                (is_pub, cfg_test) = (false, false);
            }
        }
        out
    }

    fn struct_item(&mut self, is_pub: bool, line: u32) -> Item {
        self.i += 1; // struct
        let name = self.ident_text();
        self.skip_generics();
        // Skip a where clause: anything up to `{`, `(`, or `;`.
        while self
            .at(self.i)
            .is_some_and(|t| !t.is_punct('{') && !t.is_punct('(') && !t.is_punct(';'))
        {
            self.i += 1;
        }
        let mut fields = Vec::new();
        match self.at(self.i) {
            Some(t) if t.is_punct('{') => {
                let close = self.matching(self.i);
                fields = self.fields_in(self.i + 1, close);
                self.i = close + 1;
            }
            Some(t) if t.is_punct('(') => {
                // Tuple struct: unnamed fields carry nothing the rules use.
                self.i = self.matching(self.i) + 1;
                self.skip_to_semi();
            }
            _ => self.skip_to_semi(), // unit struct
        }
        Item { name, line, is_pub, kind: ItemKind::Struct { fields } }
    }

    /// `name: Ty` pairs at brace depth 1 of a struct body.
    fn fields_in(&self, start: usize, end: usize) -> Vec<FieldDef> {
        let mut out = Vec::new();
        let mut j = start;
        let mut is_pub = false;
        while j < end {
            let t = &self.t[j];
            if t.is_punct('#') {
                let (next, _) = self.attr_end(j);
                j = next;
            } else if t.is_ident("pub") {
                is_pub = true;
                j += 1;
                if self.at(j).is_some_and(|t| t.is_punct('(')) {
                    j = self.matching(j) + 1;
                }
            } else if t.kind == TokKind::Ident
                && self.at(j + 1).is_some_and(|n| n.is_punct(':'))
                && self.at(j + 2).is_none_or(|n| !n.is_punct(':'))
            {
                let (name, fline) = (t.text.clone(), t.line);
                // Type runs to the next comma at depth 0 (generics,
                // tuples, and fn-pointer types all nest).
                let mut k = j + 2;
                let (mut par, mut ang, mut br) = (0i32, 0i32, 0i32);
                while k < end {
                    let u = &self.t[k];
                    if u.is_punct(',') && par == 0 && ang == 0 && br == 0 {
                        break;
                    }
                    if u.is_punct('(') || u.is_punct('[') {
                        par += 1;
                    } else if u.is_punct(')') || u.is_punct(']') {
                        par -= 1;
                    } else if u.is_punct('<') {
                        ang += 1;
                    } else if u.is_punct('>') && !self.t[k - 1].is_punct('-') {
                        ang -= 1;
                    } else if u.is_punct('{') {
                        br += 1;
                    } else if u.is_punct('}') {
                        br -= 1;
                    }
                    k += 1;
                }
                let ty = join(&self.t[(j + 2).min(k)..k]);
                out.push(FieldDef { name, ty, is_pub, line: fline });
                is_pub = false;
                j = k + 1;
            } else {
                j += 1;
            }
        }
        out
    }

    fn enum_item(&mut self, is_pub: bool, line: u32) -> Item {
        self.i += 1; // enum
        let name = self.ident_text();
        self.skip_generics();
        while self.at(self.i).is_some_and(|t| !t.is_punct('{') && !t.is_punct(';')) {
            self.i += 1;
        }
        let mut variants = Vec::new();
        if self.at(self.i).is_some_and(|t| t.is_punct('{')) {
            let close = self.matching(self.i);
            let mut j = self.i + 1;
            while j < close {
                let t = &self.t[j];
                if t.is_punct('#') {
                    let (next, _) = self.attr_end(j);
                    j = next;
                } else if t.kind == TokKind::Ident {
                    variants.push(VariantDef { name: t.text.clone(), line: t.line });
                    j += 1;
                    // Payload: tuple or struct variant.
                    if self.at(j).is_some_and(|n| n.is_punct('(') || n.is_punct('{')) {
                        j = self.matching(j) + 1;
                    }
                    // Discriminant: `= expr` up to the comma.
                    if self.at(j).is_some_and(|n| n.is_punct('=')) {
                        while j < close && !self.t[j].is_punct(',') {
                            j += 1;
                        }
                    }
                } else {
                    j += 1;
                }
            }
            self.i = close + 1;
        } else {
            self.skip_to_semi();
        }
        Item { name, line, is_pub, kind: ItemKind::Enum { variants } }
    }

    fn fn_item(&mut self, is_pub: bool, line: u32) -> Item {
        self.i += 1; // fn
        let name = self.ident_text();
        self.skip_generics();
        let (mut params, mut param_tys) = (Vec::new(), Vec::new());
        if self.at(self.i).is_some_and(|t| t.is_punct('(')) {
            let close = self.matching(self.i);
            (params, param_tys) = self.params_in(self.i + 1, close);
            self.i = close + 1;
        }
        // Return type (cut at `where`: bounds are not a return type).
        let ret_start = self.i;
        let mut ret_end = self.i;
        while self
            .at(self.i)
            .is_some_and(|t| !t.is_punct('{') && !t.is_punct(';') && !t.is_ident("where"))
        {
            self.i += 1;
            ret_end = self.i;
        }
        while self.at(self.i).is_some_and(|t| !t.is_punct('{') && !t.is_punct(';')) {
            self.i += 1; // where clause
        }
        let ret = join(&self.t[ret_start..ret_end]);
        let body = match self.at(self.i) {
            Some(t) if t.is_punct('{') => {
                let close = self.matching(self.i);
                let span = (self.i, close);
                self.i = close + 1;
                Some(span)
            }
            _ => {
                self.i = (self.i + 1).min(self.t.len()); // the `;`
                None
            }
        };
        Item { name, line, is_pub, kind: ItemKind::Fn(FnDef { params, param_tys, ret, body }) }
    }

    /// Parameter binding names plus their declared type text: idents
    /// before the first `:` of each top-level-comma chunk (skipping
    /// receivers and `mut`/`ref`/`_`), paired with the tokens after that
    /// `:`. Pattern params share their chunk's type.
    fn params_in(&self, start: usize, end: usize) -> (Vec<String>, Vec<String>) {
        let mut out = Vec::new();
        let mut tys = Vec::new();
        let mut chunk: Vec<usize> = Vec::new();
        let (mut par, mut ang, mut br) = (0i32, 0i32, 0i32);
        for j in start..=end {
            let terminal = j == end || (self.t[j].is_punct(',') && par == 0 && ang == 0 && br == 0);
            if terminal {
                if !chunk.iter().any(|&k| self.t[k].is_ident("self")) {
                    let colon = chunk.iter().position(|&k| self.t[k].is_punct(':'));
                    let ty = colon.map_or(String::new(), |c| {
                        chunk[c + 1..]
                            .iter()
                            .map(|&k| self.t[k].text.as_str())
                            .collect::<Vec<_>>()
                            .join(" ")
                    });
                    for &k in &chunk {
                        let t = &self.t[k];
                        if t.is_punct(':') {
                            break;
                        }
                        if t.kind == TokKind::Ident
                            && !matches!(t.text.as_str(), "mut" | "ref" | "_")
                        {
                            out.push(t.text.clone());
                            tys.push(ty.clone());
                        }
                    }
                }
                chunk.clear();
                continue;
            }
            let u = &self.t[j];
            if u.is_punct('(') || u.is_punct('[') {
                par += 1;
            } else if u.is_punct(')') || u.is_punct(']') {
                par -= 1;
            } else if u.is_punct('<') {
                ang += 1;
            } else if u.is_punct('>') && !self.t[j - 1].is_punct('-') {
                ang -= 1;
            } else if u.is_punct('{') {
                br += 1;
            } else if u.is_punct('}') {
                br -= 1;
            }
            chunk.push(j);
        }
        (out, tys)
    }

    fn impl_item(&mut self, line: u32) -> Item {
        self.i += 1; // impl
        self.skip_generics();
        let mut before_for: Vec<String> = Vec::new();
        let mut after_for: Vec<String> = Vec::new();
        let mut saw_for = false;
        while self.i < self.t.len() && !self.t[self.i].is_punct('{') {
            let t = &self.t[self.i];
            if t.is_ident("for") {
                saw_for = true;
                self.i += 1;
            } else if t.is_ident("where") {
                while self.i < self.t.len() && !self.t[self.i].is_punct('{') {
                    self.i += 1;
                }
            } else if t.is_punct('<') {
                self.skip_generics();
            } else {
                if t.kind == TokKind::Ident {
                    let bucket = if saw_for { &mut after_for } else { &mut before_for };
                    bucket.push(t.text.clone());
                }
                self.i += 1;
            }
        }
        let (trait_name, self_ty) = if saw_for {
            (before_for.last().cloned(), after_for.last().cloned().unwrap_or_default())
        } else {
            (None, before_for.last().cloned().unwrap_or_default())
        };
        let mut items = Vec::new();
        if self.at(self.i).is_some_and(|t| t.is_punct('{')) {
            let close = self.matching(self.i);
            self.i += 1;
            items = self.items(close);
            self.i = close + 1;
        }
        Item { name: self_ty, line, is_pub: false, kind: ItemKind::Impl { trait_name, items } }
    }

    fn trait_item(&mut self, is_pub: bool, line: u32) -> Item {
        self.i += 1; // trait
        let name = self.ident_text();
        self.skip_generics();
        while self.at(self.i).is_some_and(|t| !t.is_punct('{') && !t.is_punct(';')) {
            self.i += 1; // supertrait bounds / where clause
        }
        let mut items = Vec::new();
        if self.at(self.i).is_some_and(|t| t.is_punct('{')) {
            let close = self.matching(self.i);
            self.i += 1;
            items = self.items(close);
            self.i = close + 1;
        }
        Item { name, line, is_pub, kind: ItemKind::Trait { items } }
    }

    fn mod_item(&mut self, is_pub: bool, cfg_test: bool, line: u32) -> Item {
        self.i += 1; // mod
        let name = self.ident_text();
        let is_test = cfg_test || name == "tests" || name == "test";
        let mut items = Vec::new();
        match self.at(self.i) {
            Some(t) if t.is_punct('{') => {
                let close = self.matching(self.i);
                self.i += 1;
                items = self.items(close);
                self.i = close + 1;
            }
            _ => self.skip_to_semi(), // `mod name;`
        }
        Item { name, line, is_pub, kind: ItemKind::Mod { is_test, items } }
    }
}

/// `ident (` is a call unless the ident is a statement keyword.
pub fn is_call_keyword(name: &str) -> bool {
    STMT_KEYWORDS.contains(&name)
}

/// Flatten one `use` tree (the tokens between `use` and `;`) into leaf
/// imports. Handles `::`-separated paths, nested `{…}` groups, `as`
/// renames, `*` globs, and group-inner `self` (`use m::{self, x}`).
fn use_tree(toks: &[Tok], prefix: &mut Vec<String>, out: &mut Vec<UseImport>) {
    let base_len = prefix.len();
    let mut j = 0;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Ident && !t.is_ident("as") {
            if t.is_ident("self") && !prefix.is_empty() && j + 1 >= toks.len() {
                // `use m::{self}` — binds the module itself.
                out.push(UseImport {
                    path: prefix.clone(),
                    alias: prefix.last().cloned().unwrap_or_default(),
                    glob: false,
                });
                prefix.truncate(base_len);
                return;
            }
            prefix.push(t.text.clone());
            j += 1;
        } else if t.is_punct(':') {
            j += 1; // `::` lexes as two `:` puncts
        } else if t.is_punct('{') {
            // Nested group: split by top-level commas and recurse.
            let mut depth = 0usize;
            let mut close = j;
            while close < toks.len() {
                if toks[close].is_punct('{') {
                    depth += 1;
                } else if toks[close].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                close += 1;
            }
            let inner = &toks[j + 1..close.min(toks.len())];
            let mut start = 0;
            let mut depth = 0i32;
            for (k, u) in inner.iter().enumerate() {
                if u.is_punct('{') {
                    depth += 1;
                } else if u.is_punct('}') {
                    depth -= 1;
                } else if u.is_punct(',') && depth == 0 {
                    use_tree(&inner[start..k], prefix, out);
                    start = k + 1;
                }
            }
            if start < inner.len() {
                use_tree(&inner[start..], prefix, out);
            }
            prefix.truncate(base_len);
            return;
        } else if t.is_punct('*') {
            out.push(UseImport { path: prefix.clone(), alias: String::new(), glob: true });
            prefix.truncate(base_len);
            return;
        } else if t.is_ident("as") {
            let alias = toks.get(j + 1).map(|t| t.text.clone()).unwrap_or_default();
            out.push(UseImport { path: prefix.clone(), alias, glob: false });
            prefix.truncate(base_len);
            return;
        } else {
            j += 1;
        }
    }
    if prefix.len() > base_len {
        out.push(UseImport {
            path: prefix.clone(),
            alias: prefix.last().cloned().unwrap_or_default(),
            glob: false,
        });
    }
    prefix.truncate(base_len);
}

fn join(toks: &[Tok]) -> String {
    toks.iter().map(|t| t.text.as_str()).collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Vec<Item> {
        parse_items(&code_toks(src))
    }

    #[test]
    fn struct_fields_with_generics_and_vis() {
        let items = parse(
            "pub struct Cfg { pub a: u64, b: Vec<(u32, u32)>, pub(crate) m: HashMap<K, V>, }",
        );
        let ItemKind::Struct { fields } = &items[0].kind else { panic!("{items:?}") };
        assert_eq!(items[0].name, "Cfg");
        assert!(items[0].is_pub);
        let names: Vec<_> = fields.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(names, [("a", true), ("b", false), ("m", true)]);
        assert!(fields[2].ty.contains("HashMap"));
    }

    #[test]
    fn enum_variants_with_payloads() {
        let items = parse("enum E { A, B(u64), C { x: u64 }, D = 4, }");
        let ItemKind::Enum { variants } = &items[0].kind else { panic!("{items:?}") };
        let names: Vec<_> = variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["A", "B", "C", "D"]);
    }

    #[test]
    fn fn_params_ret_and_body_span() {
        let code = code_toks("fn scale(mut self, factor: f64) -> Self { self.x = factor; self }");
        let items = parse_items(&code);
        let ItemKind::Fn(f) = &items[0].kind else { panic!("{items:?}") };
        assert_eq!(f.params, ["factor"]);
        assert_eq!(f.ret, "- > Self");
        let (open, close) = f.body.unwrap();
        assert!(code[open].is_punct('{') && code[close].is_punct('}'));
    }

    #[test]
    fn impl_blocks_carry_self_type_and_methods() {
        let items = parse(
            "impl<T: Sink> Hierarchy<B, T> { fn tick(&mut self) {} }\n\
             impl fmt::Display for Latency { fn fmt(&self, f: &mut F) -> R { write(f) } }",
        );
        let ItemKind::Impl { trait_name, items: m } = &items[0].kind else { panic!() };
        assert_eq!(items[0].name, "Hierarchy");
        assert!(trait_name.is_none());
        assert_eq!(m[0].name, "tick");
        let ItemKind::Impl { trait_name, .. } = &items[1].kind else { panic!() };
        assert_eq!(items[1].name, "Latency");
        assert_eq!(trait_name.as_deref(), Some("Display"));
    }

    #[test]
    fn cfg_test_and_named_test_mods_are_marked() {
        let items = parse("#[cfg(test)] mod tests { fn helper() {} } mod real { fn live() {} }");
        let ItemKind::Mod { is_test, .. } = &items[0].kind else { panic!() };
        assert!(is_test);
        let ItemKind::Mod { is_test, .. } = &items[1].kind else { panic!() };
        assert!(!is_test);
    }

    #[test]
    fn consts_with_array_semicolons_do_not_derail() {
        let items = parse("const TABLE: [u64; 4] = [0; 4]; pub fn after() {}");
        assert_eq!(items[0].name, "TABLE");
        assert!(matches!(items[0].kind, ItemKind::Const { .. }));
        assert_eq!(items[1].name, "after");
    }

    #[test]
    fn statics_capture_their_declared_type() {
        let items = parse("static STATE: LazyLock<Mutex<BTreeMap<u64, u64>>> = LazyLock::new(f);");
        let ItemKind::Const { ty } = &items[0].kind else { panic!("{items:?}") };
        assert!(ty.contains("Mutex"), "{ty}");
        assert!(!ty.contains("LazyLock :: new"), "initializer excluded: {ty}");
    }

    #[test]
    fn fn_param_types_are_captured_per_binding() {
        let items = parse("fn f(cfg: &SystemConfig, n: u64, (a, b): (u32, u32)) {}");
        let ItemKind::Fn(f) = &items[0].kind else { panic!() };
        assert_eq!(f.params, ["cfg", "n", "a", "b"]);
        assert_eq!(f.param_tys[0], "& SystemConfig");
        assert_eq!(f.param_tys[1], "u64");
        assert_eq!(f.param_tys[2], f.param_tys[3], "pattern params share the chunk type");
    }

    #[test]
    fn use_trees_resolve_groups_renames_and_globs() {
        let items = parse(
            "use std::collections::{BTreeMap, HashMap as Fast};\n\
             use crate::index::build_index as bi;\n\
             use coaxial_sim::env::*;\n\
             use super::state::{self, Gateway};",
        );
        let imports: Vec<&UseImport> = items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Use { imports } => Some(imports.iter()),
                _ => None,
            })
            .flatten()
            .collect();
        let leaf = |alias: &str| imports.iter().find(|u| u.alias == alias).unwrap();
        assert_eq!(leaf("BTreeMap").path, ["std", "collections", "BTreeMap"]);
        assert_eq!(leaf("Fast").path, ["std", "collections", "HashMap"]);
        assert_eq!(leaf("bi").path, ["crate", "index", "build_index"]);
        let glob = imports.iter().find(|u| u.glob).unwrap();
        assert_eq!(glob.path, ["coaxial_sim", "env"]);
        assert_eq!(leaf("state").path, ["super", "state"], "group-inner self binds the module");
        assert_eq!(leaf("Gateway").path, ["super", "state", "Gateway"]);
    }

    #[test]
    fn trait_methods_with_and_without_bodies() {
        let items = parse(
            "pub trait TelemetrySink { const ENABLED: bool; fn on_miss(&mut self, r: R); \
             fn on_reset(&mut self) {} }",
        );
        let ItemKind::Trait { items: m } = &items[0].kind else { panic!() };
        let fns: Vec<_> = m
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Fn(f) => Some((i.name.as_str(), f.body.is_some())),
                _ => None,
            })
            .collect();
        assert_eq!(fns, [("on_miss", false), ("on_reset", true)]);
    }

    #[test]
    fn fn_return_type_survives_where_clause() {
        let items = parse("fn make<K>() -> HashMap<K, u64> where K: Ord { todo() }");
        let ItemKind::Fn(f) = &items[0].kind else { panic!() };
        assert!(f.ret.contains("HashMap"));
        assert!(!f.ret.contains("Ord"));
    }
}
