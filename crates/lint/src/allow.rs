//! The `lint-allow.toml` suppression list.
//!
//! Every suppression is explicit and carries a reason — the point of the
//! file is that `git log -p lint-allow.toml` reads as a review trail of
//! every exception ever granted to the determinism/timing/telemetry
//! contracts. Format (parsed by hand; the build is offline so there is no
//! `toml` crate):
//!
//! ```toml
//! [[allow]]
//! lint = "D02"                      # required: a catalog lint ID
//! path = "crates/system/src/server.rs"  # required: repo-relative path
//! ident = "Instant"                 # optional: anchor identifier
//! reason = "wall-clock only feeds a debug eprintln, never simulated state"
//! ```
//!
//! `path` must match the finding's path exactly, or — when it ends with
//! `/*` — be a directory prefix. `ident`, when present, must equal the
//! finding's anchor identifier. Entries that match no finding are *stale*
//! and fail the lint pass: suppressions must never outlive the code they
//! excuse.

use crate::Finding;

/// One parsed `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub lint: String,
    pub path: String,
    pub ident: Option<String>,
    pub reason: String,
    /// 1-based line of the `[[allow]]` header (for error messages).
    pub line: u32,
}

impl AllowEntry {
    pub fn matches(&self, f: &Finding) -> bool {
        if self.lint != f.id {
            return false;
        }
        let path_ok = if let Some(prefix) = self.path.strip_suffix("/*") {
            f.path.starts_with(prefix)
        } else {
            self.path == f.path
        };
        path_ok && self.ident.as_ref().is_none_or(|i| *i == f.ident)
    }
}

/// Parse the suppression file. Errors on: unknown keys, missing `lint`/
/// `path`/`reason`, an empty or placeholder reason, or an unknown lint ID —
/// a malformed suppression must fail loudly, not silently suppress nothing.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<AllowEntry> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = u32::try_from(idx).unwrap_or(u32::MAX) + 1;
        let line = raw.split_once('#').map_or(raw, |(before, _)| before).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(e) = current.take() {
                finish(&mut entries, e)?;
            }
            current = Some(AllowEntry {
                lint: String::new(),
                path: String::new(),
                ident: None,
                reason: String::new(),
                line: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = \"value\"`, got `{line}`"));
        };
        let entry = current.as_mut().ok_or_else(|| {
            format!("line {lineno}: `{}` outside any [[allow]] entry", key.trim())
        })?;
        let value = unquote(value.trim())
            .ok_or_else(|| format!("line {lineno}: value must be a double-quoted string"))?;
        match key.trim() {
            "lint" => entry.lint = value,
            "path" => entry.path = value,
            "ident" => entry.ident = Some(value),
            "reason" => entry.reason = value,
            other => return Err(format!("line {lineno}: unknown key `{other}`")),
        }
    }
    if let Some(e) = current.take() {
        finish(&mut entries, e)?;
    }
    Ok(entries)
}

fn finish(entries: &mut Vec<AllowEntry>, e: AllowEntry) -> Result<(), String> {
    let at = format!("[[allow]] at line {}", e.line);
    if e.lint.is_empty() {
        return Err(format!("{at}: missing `lint`"));
    }
    if crate::catalog_entry(&e.lint).is_none() {
        return Err(format!("{at}: unknown lint ID `{}`", e.lint));
    }
    if e.path.is_empty() {
        return Err(format!("{at}: missing `path`"));
    }
    // A suppression without a real reason is indistinguishable from a
    // rubber stamp; require a sentence, not a token.
    if e.reason.trim().len() < 10 {
        return Err(format!("{at}: missing or too-short `reason` (say *why* this is sound)"));
    }
    entries.push(e);
    Ok(())
}

fn unquote(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    if inner.contains('"') {
        return None;
    }
    Some(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# trailing comments are fine
[[allow]]
lint = "D02"  # wall clock
path = "crates/system/src/server.rs"
ident = "Instant"
reason = "debug timer feeding eprintln only, never simulated state"
"#;

    #[test]
    fn parses_a_valid_entry() {
        let es = parse(GOOD).unwrap();
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].lint, "D02");
        assert_eq!(es[0].ident.as_deref(), Some("Instant"));
    }

    #[test]
    fn missing_reason_is_rejected() {
        let bad = "[[allow]]\nlint = \"D01\"\npath = \"x.rs\"\n";
        let err = parse(bad).unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn short_reason_is_rejected() {
        let bad = "[[allow]]\nlint = \"D01\"\npath = \"x.rs\"\nreason = \"ok\"\n";
        assert!(parse(bad).unwrap_err().contains("reason"));
    }

    #[test]
    fn unknown_lint_id_is_rejected() {
        let bad = "[[allow]]\nlint = \"D99\"\npath = \"x.rs\"\nreason = \"long enough reason\"\n";
        assert!(parse(bad).unwrap_err().contains("unknown lint ID"));
    }

    #[test]
    fn unknown_key_is_rejected() {
        let bad = "[[allow]]\nlint = \"D01\"\npath = \"x.rs\"\nreasn = \"typo key here\"\n";
        assert!(parse(bad).unwrap_err().contains("unknown key"));
    }

    #[test]
    fn prefix_and_ident_matching() {
        let e = AllowEntry {
            lint: "D01".into(),
            path: "crates/sim/*".into(),
            ident: Some("map".into()),
            reason: "r".into(),
            line: 1,
        };
        let f = Finding {
            id: "D01",
            path: "crates/sim/src/lru.rs".into(),
            line: 10,
            ident: "map".into(),
            message: String::new(),
        };
        assert!(e.matches(&f));
        assert!(!e.matches(&Finding { ident: "other".into(), ..f.clone() }));
        assert!(!e.matches(&Finding { id: "D02", ..f }));
    }
}
