//! Resolved-path semantic model: the module tree, import resolution, and
//! fully-qualified symbol IDs the precise linkage mode is built on.
//!
//! The [`crate::symbols`] graph historically linked references by bare
//! name — a `.seed` read anywhere credited every struct field named
//! `seed`. This pass replaces that with real resolution:
//!
//! 1. **Module tree** from file layout plus inline `mod` items:
//!    `crates/sim/src/env.rs` is module `coaxial_sim::env`, the root
//!    `src/lib.rs` is crate `coaxial`, and every bin/test/bench/example
//!    file is its own crate root (named `#bin:…`/`#t:…` so synthetic
//!    roots can never collide with identifier paths).
//! 2. **Imports**: `use` trees (nested groups, `as` renames, globs,
//!    `crate::`/`super::`/`self::` prefixes) become per-module alias
//!    tables, resolved recursively — so the root façade's
//!    `pub use coaxial_system as system;` makes
//!    `coaxial::system::experiments::f` resolve through two crates.
//! 3. **Definitions**: structs (with per-field resolved types), enums,
//!    traits, free fns, methods (impl blocks resolved to their `Self`
//!    type), and consts/statics (with `Mutex` detection for the lock
//!    rules) are indexed by fully-qualified ID.
//!
//! Resolution is deliberately *partial*: anything it cannot prove (std
//! types, generics, trait objects, macro output) reports
//! [`Res::Unknown`], and the symbol graph falls back to the old bare-name
//! linking for exactly those sites. Precision therefore only ever
//! *removes* false cross-module links; it cannot lose a reference that
//! the name-based graph would have seen. The remaining imprecision is
//! documented in DESIGN.md §5e.

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::{FieldDef, Item, ItemKind};

/// How the symbol graph links references across files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Historical behavior: references link to every same-named symbol.
    ByName,
    /// Resolve through the module tree; bare-name fallback only where
    /// resolution fails.
    Resolved,
}

/// What a path resolved to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Res {
    Module(String),
    /// Struct, enum, or trait — a type usable as a path prefix.
    Type(String),
    Fn(String),
    Const(String),
    Method {
        owner: String,
        name: String,
    },
    Variant {
        owner: String,
        name: String,
    },
    Unknown,
}

/// A resolved field/const type: the target struct/enum fq (through
/// `&`/`Box`/`Arc`/`Rc` and, for statics, `LazyLock`/`OnceLock`), plus
/// whether a `Mutex` wrapper was crossed on the way.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TyRes {
    pub ty: Option<String>,
    pub mutex: bool,
}

/// Signature facts for one fn or method.
#[derive(Debug, Clone, Default)]
pub struct FnInfo {
    /// Return type text as written (space-joined tokens).
    pub ret_raw: String,
    /// Resolved return type, `Self` mapped to the owner.
    pub ret: Option<String>,
}

#[derive(Debug, Clone, Default)]
struct Module {
    root: String,
    children: BTreeSet<String>,
    types: BTreeSet<String>,
    fn_names: BTreeSet<String>,
    const_names: BTreeSet<String>,
    /// Local alias → raw path (leading `crate`/`super`/`self` kept).
    imports: BTreeMap<String, Vec<String>>,
    globs: Vec<Vec<String>>,
}

/// Deferred-resolution records captured during registration.
#[derive(Debug, Clone)]
struct RawImpl {
    module: String,
    owner: String,
    methods: Vec<(String, String)>, // (name, ret_raw)
}

#[derive(Debug, Clone)]
struct RawStruct {
    module: String,
    fq: String,
    fields: Vec<FieldDef>,
}

/// The workspace-wide resolver. Built once from every file's item tree;
/// queried by the symbol graph while it analyzes fn bodies.
#[derive(Debug, Clone, Default)]
pub struct Resolver {
    modules: BTreeMap<String, Module>,
    roots: BTreeSet<String>,
    module_by_rel: BTreeMap<String, String>,
    /// Struct fq → field name → resolved type.
    pub struct_fields: BTreeMap<String, BTreeMap<String, TyRes>>,
    pub enums: BTreeMap<String, BTreeSet<String>>,
    pub traits: BTreeMap<String, BTreeSet<String>>,
    /// Free fn fq → signature info (multiple cfg-gated defs collapse to
    /// the last one; they share a name and almost always a shape).
    pub fns: BTreeMap<String, FnInfo>,
    /// Type fq → method name → signature info.
    pub methods: BTreeMap<String, BTreeMap<String, FnInfo>>,
    /// Const/static fq → declared type.
    pub consts: BTreeMap<String, TyRes>,
}

const RESOLVE_DEPTH: usize = 24;

/// Deref-transparent wrappers: `W<T>` is navigated as `T`.
const TRANSPARENT: &[&str] = &["Box", "Arc", "Rc", "LazyLock", "OnceLock"];

impl Resolver {
    /// Build the resolver from every file's parsed item tree.
    pub fn build(files: &[(&str, &[Item])]) -> Self {
        let mut r = Self::default();
        let mut raw_impls: Vec<RawImpl> = Vec::new();
        let mut raw_structs: Vec<RawStruct> = Vec::new();
        let mut raw_consts: Vec<(String, String, String)> = Vec::new(); // (module, name, ty)
        let mut raw_fns: Vec<(String, String, String)> = Vec::new(); // (fq, ret_raw, module)

        for (rel, items) in files {
            let module = module_for_rel(rel);
            r.module_by_rel.insert((*rel).to_string(), module.clone());
            r.register_module_chain(&module);
            r.register_items(
                &module,
                items,
                &mut raw_impls,
                &mut raw_structs,
                &mut raw_consts,
                &mut raw_fns,
            );
        }

        // Phase 2: impl owners (types may live in sibling files/modules).
        let mut raw_methods: Vec<(String, String, String, String)> = Vec::new();
        for ri in &raw_impls {
            let owner_fq = match r.resolve_path(&ri.module, &[ri.owner.as_str()], RESOLVE_DEPTH) {
                Res::Type(fq) => fq,
                // Unresolvable `Self` type (generic alias, macro output):
                // park the methods under a `?::`-prefixed pseudo-fq that no
                // resolved path can produce, so they are only reachable via
                // the bare-name fallback.
                _ => format!("?::{}::{}", ri.module, ri.owner),
            };
            for (name, ret_raw) in &ri.methods {
                raw_methods.push((
                    owner_fq.clone(),
                    name.clone(),
                    ret_raw.clone(),
                    ri.module.clone(),
                ));
            }
        }
        for (owner, name, ret_raw, _) in &raw_methods {
            r.methods
                .entry(owner.clone())
                .or_default()
                .insert(name.clone(), FnInfo { ret_raw: ret_raw.clone(), ret: None });
        }

        // Phase 3: resolve declared types now that every def is indexed.
        for rs in &raw_structs {
            let fields = rs
                .fields
                .iter()
                .map(|f| (f.name.clone(), r.resolve_type_text(&rs.module, &f.ty)))
                .collect();
            r.struct_fields.insert(rs.fq.clone(), fields);
        }
        for (module, name, ty) in &raw_consts {
            let res = r.resolve_type_text(module, ty);
            r.consts.insert(format!("{module}::{name}"), res);
        }
        for (fq, ret_raw, module) in &raw_fns {
            let ret = r.resolve_ret(module, None, ret_raw);
            r.fns.insert(fq.clone(), FnInfo { ret_raw: ret_raw.clone(), ret });
        }
        let resolved_rets: Vec<(String, String, Option<String>)> = raw_methods
            .iter()
            .map(|(owner, name, ret_raw, module)| {
                (owner.clone(), name.clone(), r.resolve_ret(module, Some(owner), ret_raw))
            })
            .collect();
        for (owner, name, ret) in resolved_rets {
            if let Some(info) = r.methods.get_mut(&owner).and_then(|m| m.get_mut(&name)) {
                info.ret = ret;
            }
        }
        r
    }

    fn register_module_chain(&mut self, module: &str) {
        let segs: Vec<&str> = module.split("::").collect();
        let root = segs[0].to_string();
        self.roots.insert(root.clone());
        for i in 1..=segs.len() {
            let path = segs[..i].join("::");
            let m = self.modules.entry(path).or_default();
            m.root = root.clone();
            if i < segs.len() {
                m.children.insert(segs[i].to_string());
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn register_items(
        &mut self,
        module: &str,
        items: &[Item],
        raw_impls: &mut Vec<RawImpl>,
        raw_structs: &mut Vec<RawStruct>,
        raw_consts: &mut Vec<(String, String, String)>,
        raw_fns: &mut Vec<(String, String, String)>,
    ) {
        for item in items {
            match &item.kind {
                ItemKind::Struct { fields } => {
                    self.modules.get_mut(module).unwrap().types.insert(item.name.clone());
                    raw_structs.push(RawStruct {
                        module: module.to_string(),
                        fq: format!("{module}::{}", item.name),
                        fields: fields.clone(),
                    });
                }
                ItemKind::Enum { variants } => {
                    self.modules.get_mut(module).unwrap().types.insert(item.name.clone());
                    self.enums.insert(
                        format!("{module}::{}", item.name),
                        variants.iter().map(|v| v.name.clone()).collect(),
                    );
                }
                ItemKind::Trait { items: inner } => {
                    self.modules.get_mut(module).unwrap().types.insert(item.name.clone());
                    let trait_fq = format!("{module}::{}", item.name);
                    let mut methods = BTreeSet::new();
                    let mut raw = RawImpl {
                        module: module.to_string(),
                        owner: item.name.clone(),
                        methods: Vec::new(),
                    };
                    for it in inner {
                        if let ItemKind::Fn(def) = &it.kind {
                            methods.insert(it.name.clone());
                            raw.methods.push((it.name.clone(), def.ret.clone()));
                        }
                    }
                    self.traits.insert(trait_fq, methods);
                    raw_impls.push(raw);
                }
                ItemKind::Fn(def) => {
                    self.modules.get_mut(module).unwrap().fn_names.insert(item.name.clone());
                    raw_fns.push((
                        format!("{module}::{}", item.name),
                        def.ret.clone(),
                        module.to_string(),
                    ));
                }
                ItemKind::Impl { items: inner, .. } => {
                    let mut raw = RawImpl {
                        module: module.to_string(),
                        owner: item.name.clone(),
                        methods: Vec::new(),
                    };
                    for it in inner {
                        if let ItemKind::Fn(def) = &it.kind {
                            raw.methods.push((it.name.clone(), def.ret.clone()));
                        }
                    }
                    raw_impls.push(raw);
                }
                ItemKind::Mod { items: inner, .. } => {
                    let sub = format!("{module}::{}", item.name);
                    self.modules.get_mut(module).unwrap().children.insert(item.name.clone());
                    let root = self.modules[module].root.clone();
                    self.modules.entry(sub.clone()).or_default().root = root;
                    self.register_items(&sub, inner, raw_impls, raw_structs, raw_consts, raw_fns);
                }
                ItemKind::Const { ty } => {
                    self.modules.get_mut(module).unwrap().const_names.insert(item.name.clone());
                    raw_consts.push((module.to_string(), item.name.clone(), ty.clone()));
                }
                ItemKind::Use { imports } => {
                    let m = self.modules.get_mut(module).unwrap();
                    for u in imports {
                        if u.glob {
                            m.globs.push(u.path.clone());
                        } else if !u.alias.is_empty() {
                            m.imports.insert(u.alias.clone(), u.path.clone());
                        }
                    }
                }
            }
        }
    }

    /// The module a repo-relative file maps to, if it was registered.
    pub fn module_of(&self, rel: &str) -> Option<&str> {
        self.module_by_rel.get(rel).map(String::as_str)
    }

    /// Resolve `segs` as a path written inside `module`.
    pub fn resolve_path(&self, module: &str, segs: &[&str], depth: usize) -> Res {
        if segs.is_empty() || depth == 0 {
            return Res::Unknown;
        }
        let mut idx = 1;
        let mut cur = match segs[0] {
            "crate" => {
                let root = self.modules.get(module).map_or(module, |m| m.root.as_str());
                Res::Module(root.to_string())
            }
            "self" => Res::Module(module.to_string()),
            "super" => match module.rsplit_once("::") {
                Some((parent, _)) => Res::Module(parent.to_string()),
                None => return Res::Unknown,
            },
            s if self.roots.contains(s) => Res::Module(s.to_string()),
            s => self.lookup(module, s, depth),
        };
        while idx < segs.len() {
            let seg = segs[idx];
            cur = match cur {
                Res::Module(ref m) => {
                    if seg == "super" {
                        match m.rsplit_once("::") {
                            Some((parent, _)) => Res::Module(parent.to_string()),
                            None => Res::Unknown,
                        }
                    } else if seg == "self" {
                        cur.clone()
                    } else {
                        self.lookup(m, seg, depth)
                    }
                }
                Res::Type(ref t) => self.type_member(t, seg),
                _ => Res::Unknown,
            };
            if cur == Res::Unknown {
                return Res::Unknown;
            }
            idx += 1;
        }
        cur
    }

    /// A member of type `t`: method (inherent or trait-default) or enum
    /// variant.
    pub fn type_member(&self, t: &str, seg: &str) -> Res {
        if self.methods.get(t).is_some_and(|ms| ms.contains_key(seg))
            || self.traits.get(t).is_some_and(|ms| ms.contains(seg))
        {
            Res::Method { owner: t.to_string(), name: seg.to_string() }
        } else if self.enums.get(t).is_some_and(|vs| vs.contains(seg)) {
            Res::Variant { owner: t.to_string(), name: seg.to_string() }
        } else {
            Res::Unknown
        }
    }

    /// One name inside one module: child module, local definition, import
    /// alias, then glob imports (direct definitions only — glob chains do
    /// not recurse; documented imprecision).
    fn lookup(&self, module: &str, name: &str, depth: usize) -> Res {
        let Some(m) = self.modules.get(module) else { return Res::Unknown };
        if let Some(res) = self.lookup_defs(module, m, name) {
            return res;
        }
        if let Some(path) = m.imports.get(name) {
            let segs: Vec<&str> = path.iter().map(String::as_str).collect();
            return self.resolve_import(module, &segs, depth - 1);
        }
        for glob in &m.globs {
            let segs: Vec<&str> = glob.iter().map(String::as_str).collect();
            if let Res::Module(g) = self.resolve_import(module, &segs, depth - 1) {
                if let Some(gm) = self.modules.get(&g) {
                    if let Some(res) = self.lookup_defs(&g, gm, name) {
                        return res;
                    }
                }
            }
        }
        Res::Unknown
    }

    fn lookup_defs(&self, module: &str, m: &Module, name: &str) -> Option<Res> {
        if m.children.contains(name) {
            return Some(Res::Module(format!("{module}::{name}")));
        }
        if m.types.contains(name) {
            return Some(Res::Type(format!("{module}::{name}")));
        }
        if m.fn_names.contains(name) {
            return Some(Res::Fn(format!("{module}::{name}")));
        }
        if m.const_names.contains(name) {
            return Some(Res::Const(format!("{module}::{name}")));
        }
        None
    }

    /// A `use`-style path. 2018-edition uniform paths make the leading
    /// segment resolve like any in-scope name — a crate root, a
    /// `crate`/`super`/`self` keyword, or a sibling module/import of the
    /// using module (`pub use checkpoint::CheckpointStore` in a lib root).
    /// External crates (std, core) stay unresolvable.
    fn resolve_import(&self, module: &str, segs: &[&str], depth: usize) -> Res {
        if segs.is_empty() || depth == 0 {
            return Res::Unknown;
        }
        self.resolve_path(module, segs, depth)
    }

    /// Resolve a declared-type text (space-joined tokens, e.g.
    /// `& mut Vec < u64 >` or `LazyLock < Mutex < Store > >`).
    pub fn resolve_type_text(&self, module: &str, ty: &str) -> TyRes {
        let toks: Vec<&str> = ty.split_whitespace().collect();
        self.resolve_type_toks(module, &toks)
    }

    fn resolve_type_toks(&self, module: &str, toks: &[&str]) -> TyRes {
        let mut i = 0;
        // Strip references, mutability, lifetimes.
        while i < toks.len() && (toks[i] == "&" || toks[i] == "mut" || toks[i].starts_with('\'')) {
            i += 1;
        }
        // Leading path: idents separated by `:` tokens.
        let mut segs: Vec<&str> = Vec::new();
        while i < toks.len() {
            let t = toks[i];
            if t == ":" {
                i += 1;
            } else if t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') {
                if !segs.is_empty() && i > 0 && toks[i - 1] != ":" {
                    break; // two idents with no `::` — not one path
                }
                segs.push(t);
                i += 1;
            } else {
                break;
            }
        }
        let Some(&head) = segs.last() else { return TyRes::default() };
        if TRANSPARENT.contains(&head) || head == "Mutex" {
            // Unwrap one generic level and recurse into the payload.
            if i < toks.len() && toks[i] == "<" {
                let inner = generic_payload(&toks[i..]);
                let mut res = self.resolve_type_toks(module, inner);
                if head == "Mutex" {
                    res.mutex = true;
                }
                return res;
            }
            return TyRes::default();
        }
        match self.resolve_path(module, &segs, RESOLVE_DEPTH) {
            Res::Type(fq) => TyRes { ty: Some(fq), mutex: false },
            _ => TyRes::default(),
        }
    }

    /// Resolve a fn return-type text (`- > Self`, `- > Simulation < T >`)
    /// in its defining module; `Self` maps to `owner`.
    fn resolve_ret(&self, module: &str, owner: Option<&str>, ret_raw: &str) -> Option<String> {
        let text = ret_raw.trim_start_matches(['-', '>', ' ']);
        if text.is_empty() {
            return None;
        }
        if text.split_whitespace().next() == Some("Self") {
            return owner.map(str::to_string);
        }
        self.resolve_type_text(module, text).ty
    }

    /// Does `fq` name a struct with field `name`? (The validation guard:
    /// a typed read only counts when the resolved struct really declares
    /// the field — otherwise the site falls back to bare-name linking.)
    pub fn struct_has_field(&self, fq: &str, name: &str) -> bool {
        self.struct_fields.get(fq).is_some_and(|fs| fs.contains_key(name))
    }

    pub fn field_ty(&self, fq: &str, name: &str) -> Option<&TyRes> {
        self.struct_fields.get(fq)?.get(name)
    }

    pub fn method(&self, owner: &str, name: &str) -> Option<&FnInfo> {
        self.methods.get(owner)?.get(name)
    }

    /// Fns and methods whose declared return type is a hash collection.
    pub fn hash_returning_fqs(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for (fq, info) in &self.fns {
            if info.ret_raw.contains("HashMap") || info.ret_raw.contains("HashSet") {
                out.insert(fq.clone());
            }
        }
        for (owner, ms) in &self.methods {
            for (name, info) in ms {
                if info.ret_raw.contains("HashMap") || info.ret_raw.contains("HashSet") {
                    out.insert(format!("{owner}::{name}"));
                }
            }
        }
        out
    }

    /// The import aliases of the module owning `rel`, with each alias's
    /// resolution — the D01 rename-taint and Z01 per-file trait lookups.
    pub fn aliases_of(&self, rel: &str) -> Vec<(String, Res)> {
        let Some(module) = self.module_of(rel) else { return Vec::new() };
        let Some(m) = self.modules.get(module) else { return Vec::new() };
        m.imports
            .iter()
            .map(|(alias, path)| {
                let segs: Vec<&str> = path.iter().map(String::as_str).collect();
                (alias.clone(), self.resolve_import(module, &segs, RESOLVE_DEPTH))
            })
            .collect()
    }
}

/// The inner token slice of a leading `< … >` group (`toks[0] == "<"`).
fn generic_payload<'a>(toks: &'a [&'a str]) -> &'a [&'a str] {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate() {
        match *t {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return &toks[1..k];
                }
            }
            _ => {}
        }
    }
    &toks[1..]
}

/// Map a repo-relative path to its module path. Library files join their
/// crate's tree; bins/tests/benches/examples become isolated roots.
fn module_for_rel(rel: &str) -> String {
    let crate_lib = |dir: &str| format!("coaxial_{}", dir.replace('-', "_"));
    let stem = |name: &str| name.trim_end_matches(".rs").to_string();
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["src", "lib.rs"] => "coaxial".to_string(),
        ["src", "bin", b] => format!("#bin:{}", stem(b)),
        ["src", m] => format!("coaxial::{}", stem(m)),
        ["crates", c, "src", "lib.rs"] => crate_lib(c),
        ["crates", c, "src", "main.rs"] => format!("#bin:{c}:main"),
        ["crates", c, "src", "bin", b] => format!("#bin:{c}:{}", stem(b)),
        ["crates", c, "src", m] => format!("{}::{}", crate_lib(c), stem(m)),
        ["crates", c, kind @ ("tests" | "benches" | "examples"), t] => {
            format!("#t:{c}:{kind}:{}", stem(t))
        }
        [kind @ ("tests" | "benches" | "examples"), t] => format!("#t::{kind}:{}", stem(t)),
        _ => format!("#x:{rel}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{code_toks, parse_items};

    fn build(files: &[(&str, &str)]) -> Resolver {
        let parsed: Vec<(String, Vec<Item>)> = files
            .iter()
            .map(|(rel, src)| ((*rel).to_string(), parse_items(&code_toks(src))))
            .collect();
        let refs: Vec<(&str, &[Item])> =
            parsed.iter().map(|(rel, items)| (rel.as_str(), items.as_slice())).collect();
        Resolver::build(&refs)
    }

    #[test]
    fn file_layout_maps_to_module_paths() {
        assert_eq!(module_for_rel("src/lib.rs"), "coaxial");
        assert_eq!(module_for_rel("crates/sim/src/lib.rs"), "coaxial_sim");
        assert_eq!(module_for_rel("crates/sim/src/env.rs"), "coaxial_sim::env");
        assert_eq!(module_for_rel("src/bin/coaxial.rs"), "#bin:coaxial");
        assert_eq!(module_for_rel("crates/system/tests/loopback.rs"), "#t:system:tests:loopback");
    }

    #[test]
    fn imports_and_renames_resolve_across_crates() {
        let r = build(&[
            ("crates/sim/src/lib.rs", "pub mod env;"),
            ("crates/sim/src/env.rs", "pub fn jobs() -> usize { 1 }"),
            (
                "crates/system/src/runner.rs",
                "use coaxial_sim::env::jobs as worker_count;\npub fn go() {}",
            ),
        ]);
        let m = r.module_of("crates/system/src/runner.rs").unwrap();
        assert_eq!(
            r.resolve_path(m, &["worker_count"], RESOLVE_DEPTH),
            Res::Fn("coaxial_sim::env::jobs".to_string())
        );
        assert_eq!(
            r.resolve_path(m, &["coaxial_sim", "env", "jobs"], RESOLVE_DEPTH),
            Res::Fn("coaxial_sim::env::jobs".to_string())
        );
    }

    #[test]
    fn facade_reexports_resolve_through_two_crates() {
        let r = build(&[
            ("src/lib.rs", "pub use coaxial_system as system;"),
            ("crates/system/src/lib.rs", "pub mod experiments;"),
            ("crates/system/src/experiments.rs", "pub fn fig5_main() {}"),
            ("src/bin/coaxial.rs", "use coaxial::system::experiments;\nfn main() {}"),
        ]);
        let m = r.module_of("src/bin/coaxial.rs").unwrap();
        assert_eq!(
            r.resolve_path(m, &["experiments", "fig5_main"], RESOLVE_DEPTH),
            Res::Fn("coaxial_system::experiments::fig5_main".to_string())
        );
    }

    #[test]
    fn same_named_symbols_in_different_modules_stay_distinct() {
        let r = build(&[
            ("crates/dram/src/config.rs", "pub struct Timings { pub t_faw: u64 }"),
            ("crates/cxl/src/config.rs", "pub struct Timings { pub port_latency: u64 }"),
            ("crates/dram/src/bank.rs", "use crate::config::Timings;\nfn check(t: &Timings) {}"),
        ]);
        let m = r.module_of("crates/dram/src/bank.rs").unwrap();
        let Res::Type(fq) = r.resolve_path(m, &["Timings"], RESOLVE_DEPTH) else { panic!() };
        assert_eq!(fq, "coaxial_dram::config::Timings");
        assert!(r.struct_has_field(&fq, "t_faw"));
        assert!(!r.struct_has_field(&fq, "port_latency"));
    }

    #[test]
    fn impl_methods_attach_to_their_resolved_self_type() {
        let r = build(&[
            ("crates/gateway/src/state.rs", "pub struct Gateway { pub inner: Mutex<Inner> }\npub struct Inner { pub running: usize }"),
            (
                "crates/gateway/src/server.rs",
                "use crate::state::Gateway;\nimpl Gateway { pub fn serve(&self) -> Stats { todo() } }",
            ),
        ]);
        assert!(r.method("coaxial_gateway::state::Gateway", "serve").is_some());
        let ty = r.field_ty("coaxial_gateway::state::Gateway", "inner").unwrap();
        assert!(ty.mutex);
        assert_eq!(ty.ty.as_deref(), Some("coaxial_gateway::state::Inner"));
    }

    #[test]
    fn statics_resolve_mutex_through_lazylock() {
        let r = build(&[(
            "crates/system/src/server.rs",
            "pub struct Store { pub n: u64 }\nstatic STATE: LazyLock<Mutex<Store>> = LazyLock::new(s);",
        )]);
        let info = r.consts.get("coaxial_system::server::STATE").unwrap();
        assert!(info.mutex);
        assert_eq!(info.ty.as_deref(), Some("coaxial_system::server::Store"));
    }

    #[test]
    fn globs_and_method_returns_resolve() {
        let r = build(&[
            ("crates/sim/src/lib.rs", "pub mod env;\npub struct Rng { pub s: u64 }"),
            ("crates/sim/src/env.rs", "pub fn jobs() -> usize { 1 }"),
            (
                "crates/system/src/config.rs",
                "use coaxial_sim::*;\npub struct Cfg { pub r: Rng }\nimpl Cfg { fn rng(&self) -> Rng { todo() } fn me() -> Self { todo() } }",
            ),
        ]);
        let m = "coaxial_system::config";
        assert_eq!(
            r.resolve_path(m, &["Rng"], RESOLVE_DEPTH),
            Res::Type("coaxial_sim::Rng".to_string())
        );
        let info = r.method("coaxial_system::config::Cfg", "rng").unwrap();
        assert_eq!(info.ret.as_deref(), Some("coaxial_sim::Rng"));
        let me = r.method("coaxial_system::config::Cfg", "me").unwrap();
        assert_eq!(me.ret.as_deref(), Some("coaxial_system::config::Cfg"), "Self maps to owner");
    }
}
