//! The full on-chip memory hierarchy: per-core L1D and L2, a distributed
//! shared non-inclusive LLC, the NoC, and the memory backend.
//!
//! # Access flow (paper Fig. 4)
//!
//! An access walks L1 → L2; on an L2 miss the CALM engine decides between
//! the **serial** path (LLC lookup, then memory on an LLC miss) and the
//! **CALM** path (LLC lookup and memory fetch issued concurrently; the LLC
//! response is always awaited, so a stale memory response for an LLC-hit
//! line is dropped — preserving the paper's coherence rule).
//!
//! # Timing accounting
//!
//! Every L2 miss's latency is decomposed exactly as the paper's Figs. 2b/5:
//! *on-chip* (NoC + LLC, and CALM's wait-for-LLC overhang), *queuing*
//! (controller queues anywhere between L2 and DRAM, including CXL message
//! queues and link contention), *DRAM service*, and *CXL interface* (the
//! fixed port + serialization budget). The components always sum to the
//! measured total.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use coaxial_dram::{MemRequest, MemoryBackend};
use coaxial_sim::{Cycle, Histogram};
use coaxial_telemetry::{
    CounterEvent, MetricsRegistry, MissRecord, NullTelemetry, TelemetrySink, TraceEvent,
};
use serde::Serialize;

use crate::cache::CacheArray;
use crate::calm::{CalmEngine, CalmPolicy, CalmStats};
use crate::mshr::Mshr;
use crate::noc::Mesh;
use crate::prefetch::{self, PrefetchPolicy, PrefetchStats, StrideTable};

/// Identifier handed back for accesses that complete asynchronously.
pub type AccessId = u64;

/// Trace-lane (`pid`) convention for the event tracer: Perfetto renders a
/// separate process group per `pid`, so each component class gets its own
/// base offset (the component instance index is added on top).
pub mod trace_pid {
    /// Core-side view of each L2 miss (one lane for all cores; `tid` = core).
    pub const CORE: u32 = 1;
    /// LLC bank lanes: `LLC_BANK_BASE + bank`.
    pub const LLC_BANK_BASE: u32 = 100;
    /// Memory-channel lanes: `MEM_CHANNEL_BASE + channel`.
    pub const MEM_CHANNEL_BASE: u32 = 200;
    /// Aggregate bandwidth-over-time counter track (Perfetto "C" events).
    pub const MEM_BW: u32 = 300;
    /// Interval-sampling phase lane: one span per detailed measurement
    /// interval of a SMARTS-style sampled run (`tid` = interval index).
    pub const SAMPLING: u32 = 400;
}

/// Outcome of [`Hierarchy::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The access completes at this (future) cycle; no callback will fire.
    Done(Cycle),
    /// The access is memory-bound; completion arrives via
    /// [`Hierarchy::pop_completion`].
    Pending(AccessId),
    /// L2 MSHRs are full: the core must retry next cycle.
    Retry,
}

/// Static configuration of the hierarchy (paper Table III).
#[derive(Debug, Clone, Serialize)]
pub struct HierarchyConfig {
    pub cores: usize,
    pub l1_bytes: u64,
    pub l1_assoc: usize,
    pub l1_latency: Cycle,
    pub l2_bytes: u64,
    pub l2_assoc: usize,
    pub l2_latency: Cycle,
    /// LLC capacity per core (the LLC is banked per core tile).
    pub llc_bytes_per_core: u64,
    pub llc_assoc: usize,
    pub llc_latency: Cycle,
    pub l2_mshrs: usize,
    pub noc_cycles_per_hop: Cycle,
    /// Number of memory-channel tiles on the mesh edges.
    pub mem_channels: usize,
    /// Aggregate peak memory bandwidth in bytes/cycle (CALM_R budget base).
    pub peak_mem_bytes_per_cycle: f64,
    pub calm: CalmPolicy,
    /// CALM_R monitoring epoch, cycles.
    pub calm_epoch: Cycle,
    /// L2 prefetcher (an extension; the paper's configuration is `None`).
    pub prefetch: PrefetchPolicy,
    pub seed: u64,
}

impl HierarchyConfig {
    /// Paper Table III values for a 12-core slice with `mem_channels`
    /// memory channels and the given LLC-per-core capacity.
    pub fn table_iii(
        cores: usize,
        mem_channels: usize,
        llc_mb_per_core: f64,
        peak_mem_gbs: f64,
        calm: CalmPolicy,
    ) -> Self {
        Self {
            cores,
            l1_bytes: 32 * 1024,
            l1_assoc: 8,
            l1_latency: 4,
            l2_bytes: 512 * 1024,
            l2_assoc: 8,
            l2_latency: 8,
            llc_bytes_per_core: coaxial_sim::trunc_u64(llc_mb_per_core * 1024.0 * 1024.0),
            llc_assoc: 16,
            llc_latency: 20,
            l2_mshrs: 16,
            noc_cycles_per_hop: 3,
            mem_channels,
            peak_mem_bytes_per_cycle: coaxial_sim::gbs_to_bytes_per_cycle(peak_mem_gbs),
            calm,
            calm_epoch: crate::calm::CALM_EPOCH,
            prefetch: PrefetchPolicy::None,
            seed: 0xC0A_71A1,
        }
    }
}

/// One in-flight memory-bound transaction (primary L2 miss).
#[derive(Debug)]
struct Txn {
    line: u64,
    core: u32,
    calm: bool,
    /// When the LLC response reaches the requesting L2.
    llc_result_at: Cycle,
    /// When the L2 miss was determined (breakdown origin).
    t_l2_miss: Cycle,
    /// When the hierarchy wanted to enqueue the memory request.
    mem_issue_desired: Cycle,
    /// When the backend actually accepted it.
    mem_enqueued_at: Option<Cycle>,
    /// Memory response breakdown (queue, service, cxl), once received.
    resp_breakdown: Option<(Cycle, Cycle, Cycle)>,
    /// When the memory data reached the core tile (telemetry only: lets
    /// the attribution separate the CALM wait-for-LLC overhang from
    /// backend queueing; `None` when telemetry is disabled).
    mem_arrival: Option<Cycle>,
    /// Bring the line in dirty (a store among the waiters).
    wants_dirty: bool,
    /// Accesses waiting on this transaction.
    waiters: Vec<AccessId>,
    /// CALM transaction whose LLC lookup hit: memory data will be dropped.
    drop_mem: bool,
    /// Memory response still outstanding (keeps zombies alive).
    mem_pending: bool,
    /// Speculative prefetch (no waiters; excluded from latency stats).
    prefetch: bool,
}

/// Aggregate hierarchy statistics over the measurement window.
#[derive(Debug, Clone, Default, Serialize)]
pub struct HierStats {
    /// Primary (non-merged) demand L2 misses.
    pub l2_misses: u64,
    pub llc_hits: u64,
    pub llc_misses: u64,
    /// Demand reads issued to memory (including wasted CALM fetches).
    pub mem_reads: u64,
    /// Writebacks issued to memory.
    pub mem_writes: u64,
    /// CALM fetches whose data was dropped (LLC hit).
    pub wasted_mem_reads: u64,
    /// L2-miss latency component sums, in exact cycles (divide by
    /// `l2_misses` for means). Integer accumulators: the latency-ledger
    /// conservation proof — and lint T02 — require cycle sums to stay
    /// order-independent; conversion to f64 happens at the report boundary.
    pub onchip_cycles: u64,
    pub queue_cycles: u64,
    pub service_cycles: u64,
    pub cxl_cycles: u64,
    /// Distribution of total L2-miss latency.
    pub l2_miss_latency: Histogram,
    /// L1/L2 demand hit ratios at harvest time.
    pub l1_hit_ratio: f64,
    pub l2_hit_ratio: f64,
    pub calm: CalmStats,
    pub prefetch: PrefetchStats,
}

impl HierStats {
    pub fn mean_l2_miss_latency_cycles(&self) -> f64 {
        if self.l2_misses == 0 {
            0.0
        } else {
            (self.onchip_cycles + self.queue_cycles + self.service_cycles + self.cxl_cycles) as f64
                / self.l2_misses as f64
        }
    }

    /// Mean latency components in nanoseconds:
    /// (on-chip, queuing, DRAM service, CXL interface).
    pub fn breakdown_ns(&self) -> (f64, f64, f64, f64) {
        if self.l2_misses == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let n = self.l2_misses as f64;
        (
            coaxial_sim::cycles_f64_to_ns(self.onchip_cycles as f64 / n),
            coaxial_sim::cycles_f64_to_ns(self.queue_cycles as f64 / n),
            coaxial_sim::cycles_f64_to_ns(self.service_cycles as f64 / n),
            coaxial_sim::cycles_f64_to_ns(self.cxl_cycles as f64 / n),
        )
    }

    /// LLC miss ratio among L2 misses.
    pub fn llc_miss_ratio(&self) -> f64 {
        let total = self.llc_hits + self.llc_misses;
        if total == 0 {
            0.0
        } else {
            self.llc_misses as f64 / total as f64
        }
    }

    /// Export the hierarchy counters into a metrics registry under `prefix`
    /// (conventionally `"hier"`).
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.l2_misses"), self.l2_misses);
        reg.set_counter(&format!("{prefix}.llc.hits"), self.llc_hits);
        reg.set_counter(&format!("{prefix}.llc.misses"), self.llc_misses);
        reg.set_counter(&format!("{prefix}.mem.reads"), self.mem_reads);
        reg.set_counter(&format!("{prefix}.mem.writes"), self.mem_writes);
        reg.set_counter(&format!("{prefix}.mem.wasted_reads"), self.wasted_mem_reads);
        reg.set_gauge(&format!("{prefix}.l1.hit_ratio"), self.l1_hit_ratio);
        reg.set_gauge(&format!("{prefix}.l2.hit_ratio"), self.l2_hit_ratio);
        reg.set_gauge(&format!("{prefix}.onchip_cycles"), self.onchip_cycles as f64);
        reg.set_gauge(&format!("{prefix}.queue_cycles"), self.queue_cycles as f64);
        reg.set_gauge(&format!("{prefix}.service_cycles"), self.service_cycles as f64);
        reg.set_gauge(&format!("{prefix}.cxl_cycles"), self.cxl_cycles as f64);
        reg.put_histogram(&format!("{prefix}.l2_miss_latency"), self.l2_miss_latency.clone());
        reg.set_counter(&format!("{prefix}.calm.true_pos"), self.calm.true_pos);
        reg.set_counter(&format!("{prefix}.calm.true_neg"), self.calm.true_neg);
        reg.set_counter(&format!("{prefix}.calm.false_pos"), self.calm.false_pos);
        reg.set_counter(&format!("{prefix}.calm.false_neg"), self.calm.false_neg);
        reg.set_counter(&format!("{prefix}.prefetch.issued"), self.prefetch.issued);
        reg.set_counter(&format!("{prefix}.prefetch.useful"), self.prefetch.useful);
    }
}

/// Event: a transaction's memory request becomes eligible for enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct MemIssue {
    at: Cycle,
    txn: u32,
}

/// Event: a transaction's data is ready to deliver to its waiters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Finish {
    at: Cycle,
    txn: u32,
}

/// Warmed cache-array contents captured after a functional prefill; see
/// [`Hierarchy::export_prefill_state`].
#[derive(Clone)]
pub struct PrefillState {
    l1: Vec<CacheArray>,
    l2: Vec<CacheArray>,
    llc: Vec<CacheArray>,
}

impl PrefillState {
    /// Approximate heap footprint of the warmed arrays, in bytes — the
    /// sizing input for the byte-bounded prefill cache in `coaxial-system`.
    pub fn approx_bytes(&self) -> u64 {
        self.l1.iter().chain(&self.l2).chain(&self.llc).map(CacheArray::approx_heap_bytes).sum()
    }
}

/// Disk-tier codec for warmed prefill state: three level counts followed by
/// each array's [`CacheArray::encode_into`] payload. Decoding validates
/// every array structurally; geometry compatibility with the importing
/// hierarchy is checked by [`Hierarchy::import_prefill_state`] as usual.
impl coaxial_sim::Snapshot for PrefillState {
    fn encode(&self, out: &mut Vec<u8>) {
        for level in [&self.l1, &self.l2, &self.llc] {
            coaxial_sim::checkpoint::codec::put_u64(out, level.len() as u64);
            for arr in level {
                arr.encode_into(out);
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = coaxial_sim::checkpoint::codec::Reader::new(bytes);
        let mut level = || -> Option<Vec<CacheArray>> {
            let n = usize::try_from(r.u64()?).ok()?;
            // Core counts are tiny; cap so a corrupt count cannot allocate.
            if n > 4096 {
                return None;
            }
            (0..n).map(|_| CacheArray::decode_from(&mut r)).collect()
        };
        let l1 = level()?;
        let l2 = level()?;
        let llc = level()?;
        r.done().then_some(Self { l1, l2, llc })
    }
}

/// The hierarchy, generic over the memory backend and the telemetry sink.
///
/// The default sink, [`NullTelemetry`], has `ENABLED = false`: every
/// telemetry stamping site is behind `if T::ENABLED`, so the default
/// monomorphization compiles to exactly the pre-telemetry code (verified by
/// the equivalence test in `coaxial-system` and the `sim_throughput`
/// bench). Pass a `TelemetryRecorder` via
/// [`Hierarchy::with_telemetry`] to capture per-request latency
/// attribution and trace events.
pub struct Hierarchy<B: MemoryBackend, T: TelemetrySink = NullTelemetry> {
    cfg: HierarchyConfig,
    l1: Vec<CacheArray>,
    l2: Vec<CacheArray>,
    llc: Vec<CacheArray>, // one bank per core tile
    mesh: Mesh,
    mshr: Vec<Mshr>,
    calm: CalmEngine,
    backend: B,

    stride_tables: Vec<StrideTable>,
    /// Lines brought in by a prefetch and not yet touched by demand.
    /// Keyed membership only — never iterated (lint D01).
    prefetched_lines: HashSet<u64>,
    pf_stats: PrefetchStats,

    txns: Vec<Option<Txn>>,
    free_txns: Vec<u32>,
    /// Memory request id → transaction (reads only; writes use WRITE_MARK).
    /// Keyed lookup only — never iterated (lint D01).
    req_map: HashMap<u64, u32>,
    next_req_id: u64,
    next_access_id: AccessId,

    issue_events: BinaryHeap<Reverse<MemIssue>>,
    /// Transactions whose MemIssue fired, awaiting backend space (FIFO).
    issue_queue: VecDeque<u32>,
    finish_events: BinaryHeap<Reverse<Finish>>,
    /// Dirty-eviction writebacks awaiting backend space.
    writeback_queue: VecDeque<u64>,
    completed: VecDeque<(u32, AccessId)>,

    stats: HierStats,
    now: Cycle,
    tel: T,

    /// Bandwidth-over-time sampling (telemetry builds only): bytes of
    /// demand reads / writebacks accepted by the backend in the current
    /// epoch, flushed to the tracer as counter events at epoch boundaries.
    bw_epoch_start: Cycle,
    bw_read_bytes: u64,
    bw_write_bytes: u64,
}

/// Bandwidth counter-track epoch (cycles): ~1.7 µs at the 2.4 GHz system
/// clock — fine enough to see warmup ramps and CALM throttling in
/// Perfetto, coarse enough that a full run emits only thousands of samples.
const BW_EPOCH: Cycle = 4096;

impl<B: MemoryBackend> Hierarchy<B> {
    /// A hierarchy with telemetry disabled (the tier-1 fast path).
    pub fn new(cfg: HierarchyConfig, backend: B) -> Self {
        Self::with_telemetry(cfg, backend, NullTelemetry)
    }
}

/// Sentinel in `req_map` values is unnecessary for writes: write request ids
/// are simply absent from the map and their responses are dropped.
impl<B: MemoryBackend, T: TelemetrySink> Hierarchy<B, T> {
    pub fn with_telemetry(cfg: HierarchyConfig, backend: B, tel: T) -> Self {
        assert!(cfg.cores > 0);
        let l1: Vec<_> =
            (0..cfg.cores).map(|_| CacheArray::new(cfg.l1_bytes, cfg.l1_assoc)).collect();
        let l2: Vec<_> =
            (0..cfg.cores).map(|_| CacheArray::new(cfg.l2_bytes, cfg.l2_assoc)).collect();
        let llc: Vec<_> = (0..cfg.cores)
            .map(|_| CacheArray::new(cfg.llc_bytes_per_core, cfg.llc_assoc))
            .collect();
        Self::build(cfg, backend, tel, l1, l2, llc)
    }

    /// Consume this hierarchy at an interval boundary and rebuild it for
    /// the next detailed measurement interval (SMARTS-style sampling).
    ///
    /// The warmed cache arrays — exactly the state the functional prefill
    /// and fast-forward paths maintain, per the [`PrefillState`] contract —
    /// move into the new hierarchy without copying. Everything timing-
    /// related (mesh, MSHRs, CALM engine, stride tables, event heaps,
    /// transaction tables, stats, the clock) restarts fresh at cycle 0 on
    /// the supplied `backend`, so a measurement interval starts from the
    /// same clean timing state a fresh run would, warmed caches aside; the
    /// per-interval detailed warm-up then re-warms that timing state before
    /// measurement begins. The telemetry sink is carried over so interval-
    /// boundary events accumulate in one trace.
    pub fn into_interval(self, backend: B) -> Self {
        let Self { cfg, l1, l2, llc, tel, .. } = self;
        Self::build(cfg, backend, tel, l1, l2, llc)
    }

    /// Shared constructor body: assemble a hierarchy around already-built
    /// cache arrays. Every non-array field starts from scratch here, which
    /// is what makes [`Hierarchy::into_interval`] future-proof — a new
    /// field added to the struct must be initialized in exactly one place.
    fn build(
        cfg: HierarchyConfig,
        backend: B,
        tel: T,
        l1: Vec<CacheArray>,
        l2: Vec<CacheArray>,
        llc: Vec<CacheArray>,
    ) -> Self {
        let mesh = Mesh::new(cfg.cores, cfg.mem_channels, cfg.noc_cycles_per_hop);
        let mshr = (0..cfg.cores).map(|_| Mshr::new(cfg.l2_mshrs)).collect();
        let calm = CalmEngine::with_epoch(
            cfg.calm,
            cfg.peak_mem_bytes_per_cycle,
            cfg.seed,
            cfg.calm_epoch,
        );
        Self {
            l1,
            l2,
            llc,
            mesh,
            mshr,
            calm,
            backend,
            stride_tables: (0..cfg.cores).map(|_| StrideTable::new()).collect(),
            prefetched_lines: HashSet::new(),
            pf_stats: PrefetchStats::default(),
            txns: Vec::new(),
            free_txns: Vec::new(),
            req_map: HashMap::new(),
            next_req_id: 0,
            next_access_id: 0,
            issue_events: BinaryHeap::new(),
            issue_queue: VecDeque::new(),
            finish_events: BinaryHeap::new(),
            writeback_queue: VecDeque::new(),
            completed: VecDeque::new(),
            stats: HierStats::default(),
            now: 0,
            tel,
            bw_epoch_start: 0,
            bw_read_bytes: 0,
            bw_write_bytes: 0,
            cfg,
        }
    }

    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    pub fn telemetry(&self) -> &T {
        &self.tel
    }

    pub fn telemetry_mut(&mut self) -> &mut T {
        &mut self.tel
    }

    /// Tear the hierarchy down, handing back the telemetry sink.
    pub fn into_telemetry(self) -> T {
        self.tel
    }

    pub fn backend(&self) -> &B {
        &self.backend
    }

    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    pub fn calm_stats(&self) -> CalmStats {
        self.calm.stats
    }

    /// LLC bank for a line (address-hashed across core tiles).
    #[inline]
    fn llc_bank(&self, line: u64) -> usize {
        // Mix the bits so strided streams spread over banks.
        let mut x = line;
        x = (x ^ (x >> 17)).wrapping_mul(0xED5A_D4BB_AC4C_1B51);
        coaxial_sim::idx(x % self.cfg.cores as u64)
    }

    /// Memory-controller tile serving a line (matches backend interleave).
    #[inline]
    fn mc_of(&self, line: u64) -> usize {
        coaxial_sim::idx(line % self.cfg.mem_channels as u64)
    }

    fn alloc_txn(&mut self, txn: Txn) -> u32 {
        if let Some(id) = self.free_txns.pop() {
            self.txns[id as usize] = Some(txn);
            id
        } else {
            self.txns.push(Some(txn));
            coaxial_sim::small_u32(self.txns.len() - 1)
        }
    }

    /// Issue an access from `core`. `pc` feeds the MAP-I predictor.
    pub fn access(
        &mut self,
        core: u32,
        line: u64,
        is_write: bool,
        pc: u32,
        now: Cycle,
    ) -> AccessResult {
        let c = core as usize;

        // Merge with an in-flight transaction for this line, if any.
        if let Some(txn_id) = self.mshr[c].lookup(line) {
            let id = self.next_access_id;
            self.next_access_id += 1;
            let txn = self.txns[txn_id as usize].as_mut().expect("live txn");
            if txn.prefetch {
                // A demand access caught an in-flight prefetch: from here
                // on it is an ordinary demand transaction.
                txn.prefetch = false;
                self.pf_stats.useful += 1;
            }
            txn.waiters.push(id);
            txn.wants_dirty |= is_write;
            return AccessResult::Pending(id);
        }

        // Demand touch of a previously prefetched, resident line.
        if self.cfg.prefetch != PrefetchPolicy::None && self.prefetched_lines.remove(&line) {
            self.pf_stats.useful += 1;
        }

        // Back-pressure check up front, with side-effect-free peeks: an
        // access that will need an MSHR but cannot get one must retry
        // WITHOUT perturbing LRU state, hit/miss counters, or the CALM
        // engine (it will be re-presented next cycle).
        if self.mshr[c].is_full()
            && !self.l1[c].peek(line)
            && !self.l2[c].peek(line)
            && !self.llc[self.llc_bank(line)].peek(line)
        {
            return AccessResult::Retry;
        }

        // L1.
        if self.l1[c].lookup(line) {
            if is_write {
                self.l1[c].mark_dirty(line);
            }
            return AccessResult::Done(now + self.cfg.l1_latency);
        }
        let t_l1 = now + self.cfg.l1_latency;

        // L2.
        if self.l2[c].lookup(line) {
            self.fill_l1(c, line, is_write);
            return AccessResult::Done(t_l1 + self.cfg.l2_latency);
        }
        let t_l2_miss = t_l1 + self.cfg.l2_latency;

        // L2 miss: consult the LLC bank (functional) and the CALM engine.
        let bank = self.llc_bank(line);
        let llc_hit = self.llc[bank].lookup(line);
        let do_calm = self.calm.decide(pc, llc_hit, now);
        self.stats.l2_misses += 1;
        if self.cfg.prefetch != PrefetchPolicy::None {
            self.issue_prefetches(core, pc, line, t_l2_miss);
        }

        let noc_to_bank = self.mesh.tile_to_tile(c, bank);
        let llc_result_at = t_l2_miss + noc_to_bank + self.cfg.llc_latency + noc_to_bank;
        let mc = self.mc_of(line);

        if llc_hit {
            self.stats.llc_hits += 1;
            // Serve from the LLC; fill the upper levels now.
            self.fill_l2(c, line, is_write);
            self.fill_l1(c, line, is_write);
            if do_calm {
                // False positive: fetch memory anyway, drop the data.
                let txn_id = self.alloc_txn(Txn {
                    line,
                    core,
                    calm: true,
                    llc_result_at,
                    t_l2_miss,
                    mem_issue_desired: t_l2_miss + self.mesh.tile_to_mc(c, mc),
                    mem_enqueued_at: None,
                    resp_breakdown: None,
                    mem_arrival: None,
                    wants_dirty: false,
                    waiters: Vec::new(),
                    drop_mem: true,
                    mem_pending: true,
                    prefetch: false,
                });
                let at = self.txns[txn_id as usize].as_ref().unwrap().mem_issue_desired;
                self.issue_events.push(Reverse(MemIssue { at, txn: txn_id }));
            }
            // Account the LLC-hit L2 miss as pure on-chip time.
            let latency = llc_result_at - t_l2_miss;
            self.stats.onchip_cycles += latency;
            self.stats.l2_miss_latency.record(latency);
            if T::ENABLED {
                // Conservation: total = 2*noc_to_bank + llc_latency = noc + llc.
                self.tel.on_miss(&MissRecord {
                    core,
                    line,
                    channel: 0,
                    calm: do_calm,
                    llc_hit: true,
                    t_l2_miss,
                    t_done: llc_result_at,
                    noc: 2 * noc_to_bank,
                    llc: self.cfg.llc_latency,
                    issue_wait: 0,
                    dram_queue: 0,
                    dram_service: 0,
                    cxl_link: 0,
                });
                self.tel.on_span(TraceEvent {
                    name: "llc_hit",
                    cat: "cache",
                    pid: trace_pid::LLC_BANK_BASE + coaxial_sim::small_u32(bank),
                    tid: core,
                    start: t_l2_miss,
                    dur: latency,
                    line,
                });
            }
            return AccessResult::Done(llc_result_at);
        }

        // LLC miss: a memory fetch is required. The up-front peek
        // guarantees an MSHR is available here.
        debug_assert!(!self.mshr[c].is_full(), "retry filter must have caught this");
        self.stats.llc_misses += 1;

        let mem_issue_desired = if do_calm {
            // Concurrent path: head straight for the memory controller.
            t_l2_miss + self.mesh.tile_to_mc(c, mc)
        } else {
            // Serial path: LLC lookup first, then bank → MC.
            t_l2_miss + noc_to_bank + self.cfg.llc_latency + self.mesh.tile_to_mc(bank, mc)
        };

        let id = self.next_access_id;
        self.next_access_id += 1;
        let txn_id = self.alloc_txn(Txn {
            line,
            core,
            calm: do_calm,
            llc_result_at,
            t_l2_miss,
            mem_issue_desired,
            mem_enqueued_at: None,
            resp_breakdown: None,
            mem_arrival: None,
            wants_dirty: is_write,
            waiters: vec![id],
            drop_mem: false,
            mem_pending: true,
            prefetch: false,
        });
        self.mshr[c].allocate(line, txn_id).expect("checked not full");
        self.issue_events.push(Reverse(MemIssue { at: mem_issue_desired, txn: txn_id }));
        AccessResult::Pending(id)
    }

    /// Issue speculative fetches for the prefetch candidates of a demand
    /// L2 miss. Prefetches go straight to memory (the LLC was just
    /// peeked), fill the LLC and L2 on return, and never block a core.
    fn issue_prefetches(&mut self, core: u32, pc: u32, line: u64, t_l2_miss: Cycle) {
        let c = core as usize;
        let cands = prefetch::candidates(self.cfg.prefetch, &mut self.stride_tables[c], pc, line);
        for cand in cands {
            // Reserve headroom in the MSHRs for demand misses.
            if self.mshr[c].len() + 4 > self.mshr[c].capacity() {
                self.pf_stats.throttled += 1;
                continue;
            }
            if self.mshr[c].lookup(cand).is_some()
                || self.l2[c].peek(cand)
                || self.llc[self.llc_bank(cand)].peek(cand)
            {
                self.pf_stats.redundant += 1;
                continue;
            }
            let mc = self.mc_of(cand);
            let mem_issue_desired = t_l2_miss + self.mesh.tile_to_mc(c, mc);
            let txn_id = self.alloc_txn(Txn {
                line: cand,
                core,
                calm: false,
                llc_result_at: t_l2_miss,
                t_l2_miss,
                mem_issue_desired,
                mem_enqueued_at: None,
                resp_breakdown: None,
                mem_arrival: None,
                wants_dirty: false,
                waiters: Vec::new(),
                drop_mem: false,
                mem_pending: true,
                prefetch: true,
            });
            self.mshr[c].allocate(cand, txn_id).expect("headroom checked");
            self.issue_events.push(Reverse(MemIssue { at: mem_issue_desired, txn: txn_id }));
            self.pf_stats.issued += 1;
        }
    }

    /// Fill a line into a core's L1, spilling dirty victims into the L2.
    fn fill_l1(&mut self, core: usize, line: u64, dirty: bool) {
        if let Some(ev) = self.l1[core].fill(line, dirty) {
            if ev.dirty {
                // Dirty L1 victim merges into L2 (write-back, on-chip only).
                if let Some(ev2) = self.l2[core].fill(ev.line_addr, true) {
                    if ev2.dirty {
                        self.spill_to_llc(ev2.line_addr);
                    }
                }
            }
        }
    }

    /// Fill a line into a core's L2, spilling dirty victims into the LLC.
    fn fill_l2(&mut self, core: usize, line: u64, dirty: bool) {
        if let Some(ev) = self.l2[core].fill(line, dirty) {
            if ev.dirty {
                self.spill_to_llc(ev.line_addr);
            }
        }
    }

    /// Write a dirty line into its LLC bank; dirty LLC victims go to memory.
    fn spill_to_llc(&mut self, line: u64) {
        let bank = self.llc_bank(line);
        if let Some(ev) = self.llc[bank].fill(line, true) {
            if ev.dirty {
                self.writeback_queue.push_back(ev.line_addr);
            }
        }
    }

    /// Fill the LLC with a clean memory line; dirty victims go to memory.
    fn fill_llc_clean(&mut self, line: u64) {
        let bank = self.llc_bank(line);
        if let Some(ev) = self.llc[bank].fill(line, false) {
            if ev.dirty {
                self.writeback_queue.push_back(ev.line_addr);
            }
        }
    }

    /// Functionally warm the caches with one access (no timing, no memory
    /// traffic). Used before simulation starts so short runs begin at a
    /// realistic steady state — dirty lines resident and ready to spill —
    /// standing in for the paper's 50 M-instruction warmup. Call
    /// [`Hierarchy::finish_prefill`] when done.
    ///
    /// This is the hottest function of a short run by far (the prefill
    /// streams a multiple of the LLC capacity through the arrays), so every
    /// level is probed exactly once: `prefill_touch` merges the presence
    /// check with the dirty-bit update, and the `*_absent` fills skip the
    /// presence scan a failed probe already paid for. State transitions are
    /// identical to the naive peek/mark_dirty/fill sequence.
    pub fn prefill_access(&mut self, core: u32, line: u64, is_write: bool) {
        let c = core as usize;
        if self.l1[c].prefill_touch(line, is_write) {
            return;
        }
        if !self.l2[c].prefill_touch(line, is_write) {
            let bank = self.llc_bank(line);
            if !self.llc[bank].peek(line) {
                // Clean fill of a line absent from the LLC bank.
                if let Some(ev) = self.llc[bank].fill_absent(line, false) {
                    if ev.dirty {
                        self.writeback_queue.push_back(ev.line_addr);
                    }
                }
            }
            // Absent from the L2 (probe above); victims spill as usual.
            if let Some(ev) = self.l2[c].fill_absent(line, is_write) {
                if ev.dirty {
                    self.spill_to_llc(ev.line_addr);
                }
            }
        }
        // Absent from the L1 (first probe).
        if let Some(ev) = self.l1[c].fill_absent(line, is_write) {
            if ev.dirty {
                if let Some(ev2) = self.l2[c].fill(ev.line_addr, true) {
                    if ev2.dirty {
                        self.spill_to_llc(ev2.line_addr);
                    }
                }
            }
        }
    }

    /// Snapshot of the warmed cache arrays after a functional prefill.
    ///
    /// The prefill's result depends only on the access streams and the array
    /// geometry — not on the memory backend or timing configuration — so a
    /// driver sweeping one workload over several memory systems can export
    /// the state once and [`Hierarchy::import_prefill_state`] it into the
    /// siblings instead of re-streaming the working set. Importing produces
    /// exactly the state a fresh prefill would have (clock included), so
    /// simulation results are bit-identical either way.
    pub fn export_prefill_state(&self) -> PrefillState {
        PrefillState { l1: self.l1.clone(), l2: self.l2.clone(), llc: self.llc.clone() }
    }

    /// Restore a snapshot taken by [`Hierarchy::export_prefill_state`] on a
    /// hierarchy with identical array geometry.
    pub fn import_prefill_state(&mut self, state: &PrefillState) {
        assert_eq!(self.l1.len(), state.l1.len(), "prefill state: core count mismatch");
        assert_eq!(
            self.llc.first().map(CacheArray::capacity_bytes),
            state.llc.first().map(CacheArray::capacity_bytes),
            "prefill state: LLC geometry mismatch"
        );
        self.l1.clone_from(&state.l1);
        self.l2.clone_from(&state.l2);
        self.llc.clone_from(&state.llc);
    }

    /// Host-prefetch the tag sets [`Hierarchy::prefill_access`] would probe
    /// for `(core, line)`. Purely a performance hint: issued a few accesses
    /// ahead, it overlaps the host memory misses the probes would otherwise
    /// serialize on. Touches no simulated state.
    #[inline]
    pub fn prefill_prefetch(&self, core: u32, line: u64) {
        let c = core as usize;
        self.l1[c].prefetch_set(line);
        self.l2[c].prefetch_set(line);
        self.llc[self.llc_bank(line)].prefetch_set(line);
    }

    /// Drop the writebacks generated during prefill and clear the lookup
    /// counters it perturbed.
    pub fn finish_prefill(&mut self) {
        self.writeback_queue.clear();
        for c in 0..self.cfg.cores {
            self.l1[c].reset_stats();
            self.l2[c].reset_stats();
            self.llc[c].reset_stats();
        }
    }

    /// Advance one cycle. Call once per cycle *before* the cores issue.
    pub fn tick(&mut self, now: Cycle) {
        self.now = now;

        if T::ENABLED {
            // Flush completed bandwidth epochs. Epochs are absolute (the
            // sample timestamp is the epoch *start*, not `now`), so an
            // event-driven run that skips quiescent cycles emits the same
            // counter samples as a lockstep run — skipped epochs flush in
            // order on the next tick, and quiescent epochs flush as zeros.
            while now >= self.bw_epoch_start + BW_EPOCH {
                let start = self.bw_epoch_start;
                self.tel.on_counter(CounterEvent {
                    name: "mem_read_bytes",
                    cat: "mem",
                    pid: trace_pid::MEM_BW,
                    ts: start,
                    value: self.bw_read_bytes,
                });
                self.tel.on_counter(CounterEvent {
                    name: "mem_write_bytes",
                    cat: "mem",
                    pid: trace_pid::MEM_BW,
                    ts: start,
                    value: self.bw_write_bytes,
                });
                self.bw_read_bytes = 0;
                self.bw_write_bytes = 0;
                self.bw_epoch_start = start + BW_EPOCH;
            }
        }

        // 1. Fire memory-issue events that are due.
        while let Some(&Reverse(ev)) = self.issue_events.peek() {
            if ev.at > now {
                break;
            }
            self.issue_events.pop();
            self.issue_queue.push_back(ev.txn);
        }

        // 2. Drain the issue queue into the backend (demand reads), then
        // writebacks (reads prioritized, as real controllers do).
        while let Some(&txn_id) = self.issue_queue.front() {
            let line = self.txns[txn_id as usize].as_ref().expect("live").line;
            let req_id = self.next_req_id;
            let req = MemRequest::read(req_id, line, now);
            match self.backend.try_enqueue(req) {
                Ok(()) => {
                    self.next_req_id += 1;
                    self.req_map.insert(req_id, txn_id);
                    let txn = self.txns[txn_id as usize].as_mut().expect("live");
                    txn.mem_enqueued_at = Some(now);
                    self.stats.mem_reads += 1;
                    if T::ENABLED {
                        self.bw_read_bytes += 64;
                    }
                    if txn.drop_mem {
                        self.stats.wasted_mem_reads += 1;
                    }
                    self.issue_queue.pop_front();
                }
                Err(_) => break,
            }
        }
        while let Some(&line) = self.writeback_queue.front() {
            let req = MemRequest::write(self.next_req_id, line, now);
            match self.backend.try_enqueue(req) {
                Ok(()) => {
                    self.next_req_id += 1;
                    self.stats.mem_writes += 1;
                    if T::ENABLED {
                        self.bw_write_bytes += 64;
                    }
                    self.writeback_queue.pop_front();
                }
                Err(_) => break,
            }
        }

        // 3. Tick the backend and harvest responses.
        self.backend.tick(now);
        while let Some(resp) = self.backend.pop_response(now) {
            if resp.is_write {
                continue; // writeback ack: nothing waits on it
            }
            let Some(txn_id) = self.req_map.remove(&resp.id) else {
                continue;
            };
            let txn = self.txns[txn_id as usize].as_mut().expect("live txn");
            txn.mem_pending = false;
            if txn.drop_mem {
                // Stale data for an LLC-hit CALM access: drop and free.
                self.txns[txn_id as usize] = None;
                self.free_txns.push(txn_id);
                continue;
            }
            txn.resp_breakdown = Some((resp.queue_cycles, resp.service_cycles, resp.cxl_cycles));
            // Data still crosses the NoC from the MC to the core, and a CALM
            // access must additionally wait for the LLC's (miss) response.
            let (line, core, calm, llc_result_at) =
                (txn.line, txn.core as usize, txn.calm, txn.llc_result_at);
            let mc = self.mc_of(line);
            let arrival = resp.completed_at + self.mesh.tile_to_mc(core, mc);
            if T::ENABLED {
                self.txns[txn_id as usize].as_mut().expect("live txn").mem_arrival = Some(arrival);
            }
            let ready = if calm { arrival.max(llc_result_at) } else { arrival };
            self.finish_events.push(Reverse(Finish { at: ready, txn: txn_id }));
        }

        // 4. Deliver finished transactions.
        while let Some(&Reverse(f)) = self.finish_events.peek() {
            if f.at > now {
                break;
            }
            self.finish_events.pop();
            self.complete_txn(f.txn, f.at);
        }
    }

    /// Finish a memory-bound transaction: fill caches, deliver waiters,
    /// record the latency breakdown.
    fn complete_txn(&mut self, txn_id: u32, at: Cycle) {
        let txn = self.txns[txn_id as usize].take().expect("live txn");
        self.free_txns.push(txn_id);
        let c = txn.core as usize;

        if txn.prefetch {
            // Speculative fill: LLC + L2 only, no waiters, and excluded
            // from the demand latency breakdown.
            self.fill_llc_clean(txn.line);
            self.fill_l2(c, txn.line, false);
            self.mshr[c].release(txn.line);
            self.prefetched_lines.insert(txn.line);
            if self.prefetched_lines.len() > 1 << 20 {
                self.prefetched_lines.clear(); // bound the tracking set
            }
            return;
        }

        // Fills: LLC (clean copy), then L2/L1 (dirty if a store waits).
        self.fill_llc_clean(txn.line);
        self.fill_l2(c, txn.line, txn.wants_dirty);
        self.fill_l1(c, txn.line, txn.wants_dirty);

        self.mshr[c].release(txn.line);
        for w in &txn.waiters {
            self.completed.push_back((txn.core, *w));
        }

        // Latency breakdown (see module docs).
        let (rq, rs, rc) = txn.resp_breakdown.expect("memory response received");
        let enq = txn.mem_enqueued_at.expect("enqueued");
        let total = at - txn.t_l2_miss;
        let queue = rq + (enq - txn.mem_issue_desired);
        let onchip = total.saturating_sub(queue + rs + rc);
        self.stats.onchip_cycles += onchip;
        self.stats.queue_cycles += queue;
        self.stats.service_cycles += rs;
        self.stats.cxl_cycles += rc;
        self.stats.l2_miss_latency.record(total);

        if T::ENABLED {
            // Fine-grained attribution: recompute the deterministic NoC/LLC
            // path components from the mesh (they are not stored in the Txn,
            // keeping the telemetry-off layout untouched):
            //   serial: noc = to-bank + bank→MC + MC→core,  llc = bank hit
            //   CALM:   noc = core→MC + MC→core (no LLC on the memory path)
            // `overlap` is measured directly as completion minus data
            // arrival — the CALM wait-for-LLC overhang, 0 when serial — and
            // the queue component is the backend residency on the
            // *hierarchy's* clock net of service and link (the backend's own
            // `rq` is stamped one cycle earlier, at its last-ticked cycle),
            // so the components sum exactly to the end-to-end latency.
            let mc = self.mc_of(txn.line);
            let core_mc = self.mesh.tile_to_mc(c, mc);
            let (noc, llc) = if txn.calm {
                (2 * core_mc, 0)
            } else {
                let bank = self.llc_bank(txn.line);
                (
                    self.mesh.tile_to_tile(c, bank) + self.mesh.tile_to_mc(bank, mc) + core_mc,
                    self.cfg.llc_latency,
                )
            };
            let overlap = at - txn.mem_arrival.unwrap_or(at);
            let issue_wait = enq - txn.mem_issue_desired;
            let dram_queue = total.saturating_sub(noc + llc + issue_wait + rs + rc + overlap);
            self.tel.on_miss(&MissRecord {
                core: txn.core,
                line: txn.line,
                channel: coaxial_sim::small_u32(mc),
                calm: txn.calm,
                llc_hit: false,
                t_l2_miss: txn.t_l2_miss,
                t_done: at,
                noc,
                llc,
                issue_wait,
                dram_queue,
                dram_service: rs,
                cxl_link: rc,
            });
            self.tel.on_span(TraceEvent {
                name: "l2_miss",
                cat: "mem",
                pid: trace_pid::CORE,
                tid: txn.core,
                start: txn.t_l2_miss,
                dur: total,
                line: txn.line,
            });
            // Backend residency on the channel lane (rq + rs + rc spans
            // enqueue → data completion; the return NoC hop follows).
            self.tel.on_span(TraceEvent {
                name: "mem",
                cat: "mem",
                pid: trace_pid::MEM_CHANNEL_BASE + coaxial_sim::small_u32(mc),
                tid: txn.core,
                start: enq,
                dur: rq + rs + rc,
                line: txn.line,
            });
        }
    }

    /// Pop one completion: `(core, access_id)`.
    pub fn pop_completion(&mut self) -> Option<(u32, AccessId)> {
        self.completed.pop_front()
    }

    /// Earliest future cycle at which ticking the hierarchy could do
    /// observable work, assuming no new accesses are issued and `completed`
    /// has been drained: the earliest pending issue/finish event or backend
    /// activity. Any undrained queue pins the bound to `now + 1`.
    pub fn next_event(&self, now: Cycle) -> Cycle {
        if !self.completed.is_empty()
            || !self.issue_queue.is_empty()
            || !self.writeback_queue.is_empty()
        {
            return now + 1;
        }
        let mut next = self.backend.next_event(now);
        if let Some(&Reverse(ev)) = self.issue_events.peek() {
            next = next.min(ev.at.max(now + 1));
        }
        if let Some(&Reverse(f)) = self.finish_events.peek() {
            next = next.min(f.at.max(now + 1));
        }
        next
    }

    /// Harvest statistics (L1/L2 ratios computed at call time).
    pub fn stats(&self) -> HierStats {
        let mut st = self.stats.clone();
        let (mut h1, mut m1, mut h2, mut m2) = (0u64, 0u64, 0u64, 0u64);
        for c in 0..self.cfg.cores {
            h1 += self.l1[c].hits;
            m1 += self.l1[c].misses;
            h2 += self.l2[c].hits;
            m2 += self.l2[c].misses;
        }
        st.l1_hit_ratio = if h1 + m1 == 0 { 0.0 } else { h1 as f64 / (h1 + m1) as f64 };
        st.l2_hit_ratio = if h2 + m2 == 0 { 0.0 } else { h2 as f64 / (h2 + m2) as f64 };
        st.calm = self.calm.stats;
        st.prefetch = self.pf_stats;
        st
    }

    /// Zero statistics at the end of warmup; cache contents, in-flight
    /// transactions, and backend timing state are preserved.
    pub fn reset_stats(&mut self, now: Cycle) {
        self.stats = HierStats::default();
        for c in 0..self.cfg.cores {
            self.l1[c].reset_stats();
            self.l2[c].reset_stats();
            self.llc[c].reset_stats();
        }
        self.calm.reset_stats();
        self.pf_stats = PrefetchStats::default();
        self.backend.reset_stats(now);
        if T::ENABLED {
            self.tel.on_reset();
        }
    }

    /// Functional check used by tests: is this line present anywhere
    /// on-chip for `core`?
    pub fn probe_on_chip(&self, core: usize, line: u64) -> bool {
        self.l1[core].peek(line)
            || self.l2[core].peek(line)
            || self.llc[self.llc_bank(line)].peek(line)
    }

    /// (valid, dirty) line counts per level summed over cores/banks
    /// (test/debug aid).
    pub fn occupancy(&self) -> [(usize, usize); 3] {
        let sum = |arr: &[CacheArray]| {
            arr.iter().fold((0, 0), |(v, d), a| (v + a.valid_count(), d + a.dirty_count()))
        };
        [sum(&self.l1), sum(&self.l2), sum(&self.llc)]
    }

    /// Number of in-flight memory-bound transactions (test/debug aid).
    pub fn inflight_txns(&self) -> usize {
        self.txns.iter().filter(|t| t.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coaxial_dram::{DramConfig, MultiChannel};

    /// Test driver keeping simulation time monotonic across operations.
    struct Driver {
        h: Hierarchy<MultiChannel>,
        now: Cycle,
    }

    impl Driver {
        fn new(calm: CalmPolicy) -> Self {
            let cfg = HierarchyConfig::table_iii(4, 1, 2.0, 38.4, calm);
            let backend = MultiChannel::new(&DramConfig::ddr5_4800(), 1);
            Self { h: Hierarchy::new(cfg, backend), now: 0 }
        }

        /// Issue an access at the current time, retrying on MSHR pressure.
        fn access(&mut self, core: u32, line: u64, is_write: bool, pc: u32) -> AccessResult {
            loop {
                let r = self.h.access(core, line, is_write, pc, self.now);
                if r == AccessResult::Retry {
                    self.step(1);
                } else {
                    return r;
                }
            }
        }

        fn step(&mut self, cycles: Cycle) {
            for _ in 0..cycles {
                self.now += 1;
                self.h.tick(self.now);
            }
        }

        /// Run until the given pending accesses complete.
        fn settle(&mut self, mut want: Vec<AccessId>, limit: Cycle) {
            let deadline = self.now + limit;
            while self.now < deadline {
                self.step(1);
                while let Some((_, id)) = self.h.pop_completion() {
                    want.retain(|&w| w != id);
                }
                if want.is_empty() {
                    return;
                }
            }
            panic!("accesses did not settle: {want:?}");
        }
    }

    #[test]
    fn l1_hit_after_memory_fill() {
        let mut d = Driver::new(CalmPolicy::Serial);
        let r = d.access(0, 1000, false, 1);
        let AccessResult::Pending(id) = r else { panic!("first touch must miss") };
        d.settle(vec![id], 100_000);
        // Second access is now an L1 hit.
        match d.access(0, 1000, false, 1) {
            AccessResult::Done(at) => assert_eq!(at, d.now + 4),
            other => panic!("expected L1 hit, got {other:?}"),
        }
    }

    #[test]
    fn merged_accesses_all_complete() {
        let mut d = Driver::new(CalmPolicy::Serial);
        let AccessResult::Pending(a) = d.access(0, 77, false, 1) else { panic!() };
        let AccessResult::Pending(b) = d.access(0, 77, false, 1) else { panic!() };
        let AccessResult::Pending(c2) = d.access(0, 77, true, 1) else { panic!() };
        d.settle(vec![a, b, c2], 100_000);
        assert_eq!(d.h.inflight_txns(), 0);
        // The store marked the line dirty in L1.
        assert!(d.h.l1[0].peek_dirty(77));
    }

    #[test]
    fn mshr_full_returns_retry() {
        let mut d = Driver::new(CalmPolicy::Serial);
        let cap = d.h.config().l2_mshrs;
        for i in 0..cap as u64 {
            // Issue without the retry loop so back-pressure is observable.
            let r = d.h.access(0, i * 10_000, false, 1, d.now);
            assert!(matches!(r, AccessResult::Pending(_)), "alloc {i}");
        }
        let r = d.h.access(0, 999_999, false, 1, d.now);
        assert_eq!(r, AccessResult::Retry);
    }

    #[test]
    fn llc_hit_is_served_on_chip() {
        let mut d = Driver::new(CalmPolicy::Serial);
        let AccessResult::Pending(id) = d.access(0, 5, false, 1) else { panic!() };
        d.settle(vec![id], 100_000);
        // Evict line 5 from L1/L2 by walking a large distinct region; the
        // LLC (8 MB per core here) retains everything.
        let mut pend = Vec::new();
        for i in 0..20_000u64 {
            if let AccessResult::Pending(p) = d.access(0, 1_000_000 + i, false, 1) {
                pend.push(p);
            }
            if pend.len() >= 12 {
                d.settle(std::mem::take(&mut pend), 1_000_000);
            }
        }
        d.settle(pend, 10_000_000);
        assert!(!d.h.l1[0].peek(5) && !d.h.l2[0].peek(5), "line evicted from core caches");
        let bank = d.h.llc_bank(5);
        assert!(d.h.llc[bank].peek(5), "LLC retains the line");
        // Next access: LLC hit, completes on-chip with deterministic latency.
        let before = d.h.stats().llc_hits;
        match d.access(0, 5, false, 1) {
            AccessResult::Done(at) => assert!(at > d.now),
            other => panic!("expected on-chip completion, got {other:?}"),
        }
        assert_eq!(d.h.stats().llc_hits, before + 1);
    }

    #[test]
    fn calm_ideal_is_never_slower_than_serial() {
        // Same random access pattern through both policies.
        let run = |calm: CalmPolicy| -> f64 {
            let mut d = Driver::new(calm);
            let mut rng = coaxial_sim::SplitMix64::new(7);
            let mut pending = Vec::new();
            for _ in 0..400 {
                let line = rng.next_below(1 << 22);
                if let AccessResult::Pending(id) = d.access(0, line, false, 1) {
                    pending.push(id);
                }
                d.step(30);
            }
            d.settle(pending, 10_000_000);
            d.h.stats().mean_l2_miss_latency_cycles()
        };
        let serial = run(CalmPolicy::Serial);
        let ideal = run(CalmPolicy::Ideal);
        assert!(ideal <= serial + 1.0, "ideal CALM {ideal:.1} must not exceed serial {serial:.1}");
    }

    #[test]
    fn breakdown_sums_match_mean_latency() {
        let mut d = Driver::new(CalmPolicy::CalmR { r: 0.7 });
        let mut pending = Vec::new();
        for i in 0..200u64 {
            if let AccessResult::Pending(id) =
                d.access((i % 4) as u32, i * 997, false, (i % 7) as u32)
            {
                pending.push(id);
            }
            d.step(3);
        }
        d.settle(pending, 10_000_000);
        let st = d.h.stats();
        assert!(st.l2_misses > 0);
        let mean = st.mean_l2_miss_latency_cycles();
        let hist_mean = st.l2_miss_latency.mean();
        assert!(
            (mean - hist_mean).abs() < 2.0,
            "component mean {mean:.1} vs histogram mean {hist_mean:.1}"
        );
    }

    #[test]
    fn dirty_lines_eventually_write_back_to_memory() {
        let mut d = Driver::new(CalmPolicy::Serial);
        let mut pending = Vec::new();
        for i in 0..60_000u64 {
            if let AccessResult::Pending(id) = d.access(0, i, true, 1) {
                pending.push(id);
            }
            if pending.len() >= 12 {
                d.settle(std::mem::take(&mut pending), 1_000_000);
            }
            d.step(1);
        }
        d.settle(pending, 50_000_000);
        let st = d.h.stats();
        assert!(st.mem_writes > 0, "dirty evictions must reach memory");
    }

    #[test]
    fn calm_false_positive_drops_memory_data() {
        let mut d = Driver::new(CalmPolicy::CalmR { r: 0.7 });
        // Load a line (goes to memory, fills LLC/L2/L1).
        let AccessResult::Pending(id) = d.access(0, 42, false, 1) else { panic!() };
        d.settle(vec![id], 100_000);
        // Evict from L1/L2 only: L2 has 1024 sets → stride 1024 lines
        // aliases the same L2 set (and the same L1 set, 64 sets).
        let mut pend = Vec::new();
        for i in 1..=9u64 {
            if let AccessResult::Pending(p) = d.access(0, 42 + i * 1024, false, 2) {
                pend.push(p);
            }
        }
        d.settle(pend, 10_000_000);
        assert!(!d.h.l2[0].peek(42), "line evicted from L2");
        let wasted_before = d.h.stats().wasted_mem_reads;
        // Access again: L2 miss, LLC hit; CALM probability is ~1 (idle).
        let r = d.access(0, 42, false, 3);
        assert!(matches!(r, AccessResult::Done(_)), "LLC hit completes on-chip");
        // Let the wasted fetch drain.
        d.step(200_000);
        let st = d.h.stats();
        assert!(st.wasted_mem_reads > wasted_before, "dropped CALM fetch counted");
        assert_eq!(d.h.inflight_txns(), 0, "zombie freed after response");
    }

    #[test]
    fn reset_stats_clears_counts_but_keeps_contents() {
        let mut d = Driver::new(CalmPolicy::Serial);
        let AccessResult::Pending(id) = d.access(0, 9, false, 1) else { panic!() };
        d.settle(vec![id], 100_000);
        assert!(d.h.stats().l2_misses > 0);
        let now = d.now;
        d.h.reset_stats(now);
        assert_eq!(d.h.stats().l2_misses, 0);
        assert!(d.h.probe_on_chip(0, 9), "contents preserved across reset");
    }

    #[test]
    fn per_core_caches_are_private() {
        let mut d = Driver::new(CalmPolicy::Serial);
        let AccessResult::Pending(id) = d.access(0, 123, false, 1) else { panic!() };
        d.settle(vec![id], 100_000);
        assert!(d.h.l1[0].peek(123));
        assert!(!d.h.l1[1].peek(123), "core 1's L1 must not see core 0's fill");
        // Core 1 hits in the shared LLC, though.
        let bank = d.h.llc_bank(123);
        assert!(d.h.llc[bank].peek(123));
    }
}
