//! Set-associative cache array with LRU replacement.
//!
//! The array tracks tags and dirty bits only — the simulator never models
//! data values. Timing lives in [`crate::hierarchy`].

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    pub line_addr: u64,
    pub dirty: bool,
}

/// Tag value marking an empty way. Line addresses are bounded far below
/// this (a handful of region bits per core), so no real line collides.
const INVALID_TAG: u64 = u64::MAX;

/// One set-associative tag array.
///
/// Stored structure-of-arrays: simulated caches are tens of megabytes of
/// way state probed at random, so every probe is a *host* cache miss per
/// touched line. Packing the tags densely (8 B per way, validity encoded
/// as [`INVALID_TAG`]) makes a 16-way presence scan touch two host lines
/// instead of six; stamps and dirty bits are only touched on hits, fills,
/// and evictions.
#[derive(Debug, Clone)]
pub struct CacheArray {
    /// Way tags, sets × assoc row-major; `INVALID_TAG` = empty way.
    tags: Vec<u64>,
    /// LRU stamps, parallel to `tags`: higher = more recently used.
    stamps: Vec<u64>,
    /// Dirty bits, parallel to `tags`.
    dirty: Vec<bool>,
    assoc: usize,
    set_shift: u32, // unused bits below the set index (0: input is a line addr)
    set_mask: u64,
    clock: u64,
    pub hits: u64,
    pub misses: u64,
}

impl CacheArray {
    /// Build a cache of `capacity_bytes` with 64 B lines.
    ///
    /// `capacity_bytes` must give a power-of-two number of sets.
    pub fn new(capacity_bytes: u64, assoc: usize) -> Self {
        assert!(assoc > 0);
        let lines = capacity_bytes / 64;
        assert!(lines >= assoc as u64, "capacity too small for associativity");
        let sets = lines / assoc as u64;
        assert!(sets.is_power_of_two(), "sets must be a power of two (got {sets})");
        let ways = coaxial_sim::idx(sets * assoc as u64);
        Self {
            tags: vec![INVALID_TAG; ways],
            stamps: vec![0; ways],
            dirty: vec![false; ways],
            assoc,
            set_shift: 0,
            set_mask: sets - 1,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    pub fn num_sets(&self) -> u64 {
        self.set_mask + 1
    }

    /// Approximate heap footprint of this array's tag metadata, in bytes
    /// (used to budget byte-bounded caches of warmed cache state).
    pub fn approx_heap_bytes(&self) -> u64 {
        (self.tags.len() * (2 * std::mem::size_of::<u64>() + std::mem::size_of::<bool>())) as u64
    }

    pub fn capacity_bytes(&self) -> u64 {
        self.tags.len() as u64 * 64
    }

    #[inline]
    fn set_range(&self, line_addr: u64) -> std::ops::Range<usize> {
        let set = coaxial_sim::idx((line_addr >> self.set_shift) & self.set_mask);
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Index of the way holding `line_addr`, if present.
    #[inline]
    fn probe(&self, line_addr: u64) -> Option<usize> {
        debug_assert_ne!(line_addr, INVALID_TAG);
        let r = self.set_range(line_addr);
        self.tags[r.clone()].iter().position(|&t| t == line_addr).map(|p| r.start + p)
    }

    /// Look up a line; updates LRU and hit/miss counters on a demand access.
    #[inline]
    pub fn lookup(&mut self, line_addr: u64) -> bool {
        self.clock += 1;
        if let Some(i) = self.probe(line_addr) {
            self.stamps[i] = self.clock;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Non-destructive presence check (no LRU update, no counters). Used by
    /// the CALM oracle and by coherence assertions in tests.
    #[inline]
    pub fn peek(&self, line_addr: u64) -> bool {
        self.probe(line_addr).is_some()
    }

    /// Whether a present line is dirty.
    pub fn peek_dirty(&self, line_addr: u64) -> bool {
        self.probe(line_addr).is_some_and(|i| self.dirty[i])
    }

    /// Insert (or refresh) a line; returns the victim if a valid line was
    /// displaced. If the line is already present, only LRU/dirty state is
    /// updated and no eviction happens.
    pub fn fill(&mut self, line_addr: u64, dirty: bool) -> Option<Evicted> {
        self.clock += 1;
        // Already present: refresh.
        if let Some(i) = self.probe(line_addr) {
            self.stamps[i] = self.clock;
            self.dirty[i] |= dirty;
            return None;
        }
        self.insert(self.set_range(line_addr), line_addr, dirty)
    }

    /// [`CacheArray::fill`] for a line the caller has already proven absent
    /// (e.g. via [`CacheArray::peek`]): skips the presence scan but matches
    /// `fill`'s state transitions exactly, including the LRU clock advance.
    /// The prefill fast path leans on this to halve its tag-scan work.
    pub fn fill_absent(&mut self, line_addr: u64, dirty: bool) -> Option<Evicted> {
        debug_assert!(!self.peek(line_addr), "fill_absent on a present line");
        self.clock += 1;
        let range = self.set_range(line_addr);
        self.insert(range, line_addr, dirty)
    }

    /// Choose an invalid way or the LRU victim in `range` and install the
    /// line there, stamped with the current clock.
    #[inline]
    fn insert(
        &mut self,
        range: std::ops::Range<usize>,
        line_addr: u64,
        dirty: bool,
    ) -> Option<Evicted> {
        let mut victim = range.start;
        let mut best = u64::MAX;
        for i in range {
            if self.tags[i] == INVALID_TAG {
                victim = i;
                break;
            }
            if self.stamps[i] < best {
                best = self.stamps[i];
                victim = i;
            }
        }
        let evicted = if self.tags[victim] != INVALID_TAG {
            Some(Evicted { line_addr: self.tags[victim], dirty: self.dirty[victim] })
        } else {
            None
        };
        self.tags[victim] = line_addr;
        self.stamps[victim] = self.clock;
        self.dirty[victim] = dirty;
        evicted
    }

    /// Functional-warmup accessor: one scan that answers "present?" and, for
    /// a present line, ORs in `dirty`. Equivalent to `peek` followed by a
    /// conditional `mark_dirty`, with neither LRU nor counter updates —
    /// prefill is functional, not timed.
    #[inline]
    pub fn prefill_touch(&mut self, line_addr: u64, dirty: bool) -> bool {
        if let Some(i) = self.probe(line_addr) {
            self.dirty[i] |= dirty;
            true
        } else {
            false
        }
    }

    /// Mark a present line dirty; returns whether the line was found.
    pub fn mark_dirty(&mut self, line_addr: u64) -> bool {
        if let Some(i) = self.probe(line_addr) {
            self.dirty[i] = true;
            true
        } else {
            false
        }
    }

    /// Remove a line; returns its dirty bit if it was present.
    pub fn invalidate(&mut self, line_addr: u64) -> Option<bool> {
        if let Some(i) = self.probe(line_addr) {
            self.tags[i] = INVALID_TAG;
            Some(self.dirty[i])
        } else {
            None
        }
    }

    /// Demand hit ratio so far.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of valid dirty lines currently resident (debug/test aid).
    pub fn dirty_count(&self) -> usize {
        self.tags.iter().zip(&self.dirty).filter(|(&t, &d)| t != INVALID_TAG && d).count()
    }

    /// Number of valid lines currently resident (debug/test aid).
    pub fn valid_count(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }

    /// Hint the host CPU to pull this line's tag set into its cache. Purely
    /// a performance hint for pipelined probes (the simulated arrays are
    /// tens of megabytes, so a random probe is a host memory miss); touches
    /// no simulated state.
    #[inline]
    pub fn prefetch_set(&self, line_addr: u64) {
        #[cfg(target_arch = "x86_64")]
        {
            let r = self.set_range(line_addr);
            // SAFETY: `set_range` returns indices within `self.tags`, so
            // `as_ptr().add(r.start)` stays in bounds; `_mm_prefetch` is a
            // pure cache hint that never dereferences, so even the
            // `p.add(64)` second-line probe (still inside the allocation:
            // a 16-way set spans 128 bytes of the tag array) cannot fault.
            unsafe {
                use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                let p = self.tags.as_ptr().add(r.start).cast::<i8>();
                _mm_prefetch(p, _MM_HINT_T0);
                if self.assoc > 8 {
                    // A 16-way tag set spans two host lines.
                    _mm_prefetch(p.add(64), _MM_HINT_T0);
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = line_addr;
    }

    /// Reset hit/miss counters (end of warmup) without touching contents.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Append the array's complete state — geometry, LRU clock, counters,
    /// tags, stamps, bit-packed dirty bits — to a checkpoint payload (see
    /// `coaxial_sim::checkpoint`). The inverse is
    /// [`CacheArray::decode_from`]; round-tripping reproduces the array
    /// exactly, so a simulation resumed from a decoded snapshot is
    /// bit-identical to one that kept the original in memory.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use coaxial_sim::checkpoint::codec::{put_u64, put_u64s};
        put_u64(out, self.assoc as u64);
        put_u64(out, u64::from(self.set_shift));
        put_u64(out, self.set_mask);
        put_u64(out, self.clock);
        put_u64(out, self.hits);
        put_u64(out, self.misses);
        put_u64s(out, &self.tags);
        put_u64s(out, &self.stamps);
        let mut packed = vec![0u64; self.dirty.len().div_ceil(64)];
        for (i, &d) in self.dirty.iter().enumerate() {
            if d {
                packed[i / 64] |= 1 << (i % 64);
            }
        }
        put_u64s(out, &packed);
    }

    /// Decode an array encoded by [`CacheArray::encode_into`]. Returns
    /// `None` on any structural inconsistency (bad geometry, mismatched
    /// lengths, non-canonical dirty padding) so corrupt checkpoint files
    /// read as cache misses rather than corrupt simulations.
    pub fn decode_from(r: &mut coaxial_sim::checkpoint::codec::Reader<'_>) -> Option<Self> {
        let assoc = usize::try_from(r.u64()?).ok()?;
        let set_shift = u32::try_from(r.u64()?).ok()?;
        let set_mask = r.u64()?;
        let clock = r.u64()?;
        let hits = r.u64()?;
        let misses = r.u64()?;
        let tags = r.u64s()?;
        let stamps = r.u64s()?;
        let packed = r.u64s()?;
        let sets = set_mask.checked_add(1)?;
        if assoc == 0 || !sets.is_power_of_two() {
            return None;
        }
        let ways = usize::try_from(sets).ok()?.checked_mul(assoc)?;
        if tags.len() != ways || stamps.len() != ways || packed.len() != ways.div_ceil(64) {
            return None;
        }
        // Reject non-zero padding bits: encode packs exactly `ways` bits,
        // so canonical payloads are unique per state.
        if ways % 64 != 0 {
            let last = *packed.last()?;
            if last >> (ways % 64) != 0 {
                return None;
            }
        }
        let dirty = (0..ways).map(|i| packed[i / 64] >> (i % 64) & 1 != 0).collect();
        Some(Self { tags, stamps, dirty, assoc, set_shift, set_mask, clock, hits, misses })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray {
        // 4 sets × 2 ways.
        CacheArray::new(8 * 64, 2)
    }

    #[test]
    fn geometry() {
        let c = CacheArray::new(32 * 1024, 8);
        assert_eq!(c.num_sets(), 64);
        assert_eq!(c.capacity_bytes(), 32 * 1024);
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = small();
        assert!(!c.lookup(5));
        c.fill(5, false);
        assert!(c.lookup(5));
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn peek_does_not_disturb_state() {
        let mut c = small();
        c.fill(5, false);
        let before = (c.hits, c.misses);
        assert!(c.peek(5));
        assert!(!c.peek(6));
        assert_eq!((c.hits, c.misses), before);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Same set: addresses differing in bits above the set index.
        let a = 0u64;
        let b = 4; // 4 sets → stride 4 hits same set
        let d = 8;
        c.fill(a, false);
        c.fill(b, false);
        c.lookup(a); // a is now MRU
        let ev = c.fill(d, false).expect("must evict");
        assert_eq!(ev.line_addr, b, "LRU way is b");
        assert!(c.peek(a) && c.peek(d) && !c.peek(b));
    }

    #[test]
    fn dirty_bit_travels_with_eviction() {
        let mut c = small();
        c.fill(0, false);
        c.mark_dirty(0);
        c.fill(4, false);
        let ev = c.fill(8, false).expect("evicts line 0");
        assert_eq!(ev, Evicted { line_addr: 0, dirty: true });
    }

    #[test]
    fn refill_of_present_line_does_not_evict() {
        let mut c = small();
        c.fill(0, false);
        c.fill(4, false);
        assert!(c.fill(0, true).is_none(), "refresh, not eviction");
        assert!(c.peek_dirty(0), "dirty bit merged in");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.fill(3, true);
        assert_eq!(c.invalidate(3), Some(true));
        assert!(!c.peek(3));
        assert_eq!(c.invalidate(3), None);
    }

    #[test]
    fn mark_dirty_on_absent_line_reports_false() {
        let mut c = small();
        assert!(!c.mark_dirty(77));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = small(); // 8 lines
        for round in 0..4 {
            for a in 0..32u64 {
                let hit = c.lookup(a);
                if round > 0 {
                    assert!(!hit, "LRU must thrash on a 4x working set");
                }
                if !hit {
                    c.fill(a, false);
                }
            }
        }
    }

    #[test]
    fn codec_round_trip_is_exact() {
        let mut c = CacheArray::new(16 * 1024, 8);
        let mut rng = coaxial_sim::SplitMix64::new(5);
        for _ in 0..4000 {
            let a = rng.next_below(1 << 12);
            if !c.lookup(a) {
                c.fill(a, rng.chance(0.3));
            }
        }
        let mut buf = Vec::new();
        c.encode_into(&mut buf);
        let mut r = coaxial_sim::checkpoint::codec::Reader::new(&buf);
        let d = CacheArray::decode_from(&mut r).expect("decodes");
        assert!(r.done());
        // Exactness: re-encoding the decoded array reproduces the bytes,
        // and observable state (occupancy, counters, LRU order) matches.
        let mut buf2 = Vec::new();
        d.encode_into(&mut buf2);
        assert_eq!(buf, buf2);
        assert_eq!((d.hits, d.misses, d.clock), (c.hits, c.misses, c.clock));
        assert_eq!(d.valid_count(), c.valid_count());
        assert_eq!(d.dirty_count(), c.dirty_count());

        // Structural garbage is rejected, not misread.
        let mut bad = buf.clone();
        bad[0] = 0; // assoc = 0
        let mut rb = coaxial_sim::checkpoint::codec::Reader::new(&bad);
        assert!(CacheArray::decode_from(&mut rb).is_none());
    }

    #[test]
    fn working_set_smaller_than_cache_always_hits_after_warmup() {
        let mut c = CacheArray::new(64 * 1024, 8);
        for a in 0..512u64 {
            c.lookup(a);
            c.fill(a, false);
        }
        c.reset_stats();
        for a in 0..512u64 {
            assert!(c.lookup(a));
        }
        assert_eq!(c.misses, 0);
    }
}
