//! Set-associative cache array with LRU replacement.
//!
//! The array tracks tags and dirty bits only — the simulator never models
//! data values. Timing lives in [`crate::hierarchy`].

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    pub line_addr: u64,
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp: higher = more recently used.
    stamp: u64,
}

/// One set-associative tag array.
#[derive(Debug, Clone)]
pub struct CacheArray {
    ways: Vec<Way>, // sets × assoc, row-major
    assoc: usize,
    set_shift: u32, // unused bits below the set index (0: input is a line addr)
    set_mask: u64,
    clock: u64,
    pub hits: u64,
    pub misses: u64,
}

impl CacheArray {
    /// Build a cache of `capacity_bytes` with 64 B lines.
    ///
    /// `capacity_bytes` must give a power-of-two number of sets.
    pub fn new(capacity_bytes: u64, assoc: usize) -> Self {
        assert!(assoc > 0);
        let lines = capacity_bytes / 64;
        assert!(lines >= assoc as u64, "capacity too small for associativity");
        let sets = lines / assoc as u64;
        assert!(sets.is_power_of_two(), "sets must be a power of two (got {sets})");
        Self {
            ways: vec![Way::default(); (sets * assoc as u64) as usize],
            assoc,
            set_shift: 0,
            set_mask: sets - 1,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    pub fn num_sets(&self) -> u64 {
        self.set_mask + 1
    }

    pub fn capacity_bytes(&self) -> u64 {
        self.ways.len() as u64 * 64
    }

    #[inline]
    fn set_range(&self, line_addr: u64) -> std::ops::Range<usize> {
        let set = ((line_addr >> self.set_shift) & self.set_mask) as usize;
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Look up a line; updates LRU and hit/miss counters on a demand access.
    #[inline]
    pub fn lookup(&mut self, line_addr: u64) -> bool {
        self.clock += 1;
        let r = self.set_range(line_addr);
        for w in &mut self.ways[r] {
            if w.valid && w.tag == line_addr {
                w.stamp = self.clock;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Non-destructive presence check (no LRU update, no counters). Used by
    /// the CALM oracle and by coherence assertions in tests.
    #[inline]
    pub fn peek(&self, line_addr: u64) -> bool {
        let r = self.set_range(line_addr);
        self.ways[r].iter().any(|w| w.valid && w.tag == line_addr)
    }

    /// Whether a present line is dirty.
    pub fn peek_dirty(&self, line_addr: u64) -> bool {
        let r = self.set_range(line_addr);
        self.ways[r].iter().any(|w| w.valid && w.tag == line_addr && w.dirty)
    }

    /// Insert (or refresh) a line; returns the victim if a valid line was
    /// displaced. If the line is already present, only LRU/dirty state is
    /// updated and no eviction happens.
    pub fn fill(&mut self, line_addr: u64, dirty: bool) -> Option<Evicted> {
        self.clock += 1;
        let range = self.set_range(line_addr);
        // Already present: refresh.
        for w in &mut self.ways[range.clone()] {
            if w.valid && w.tag == line_addr {
                w.stamp = self.clock;
                w.dirty |= dirty;
                return None;
            }
        }
        // Choose an invalid way or the LRU victim.
        let mut victim = range.start;
        let mut best = u64::MAX;
        for i in range {
            let w = &self.ways[i];
            if !w.valid {
                victim = i;
                break;
            }
            if w.stamp < best {
                best = w.stamp;
                victim = i;
            }
        }
        let w = &mut self.ways[victim];
        let evicted = if w.valid {
            Some(Evicted { line_addr: w.tag, dirty: w.dirty })
        } else {
            None
        };
        *w = Way { tag: line_addr, valid: true, dirty, stamp: self.clock };
        evicted
    }

    /// Mark a present line dirty; returns whether the line was found.
    pub fn mark_dirty(&mut self, line_addr: u64) -> bool {
        let r = self.set_range(line_addr);
        for w in &mut self.ways[r] {
            if w.valid && w.tag == line_addr {
                w.dirty = true;
                return true;
            }
        }
        false
    }

    /// Remove a line; returns its dirty bit if it was present.
    pub fn invalidate(&mut self, line_addr: u64) -> Option<bool> {
        let r = self.set_range(line_addr);
        for w in &mut self.ways[r] {
            if w.valid && w.tag == line_addr {
                w.valid = false;
                return Some(w.dirty);
            }
        }
        None
    }

    /// Demand hit ratio so far.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of valid dirty lines currently resident (debug/test aid).
    pub fn dirty_count(&self) -> usize {
        self.ways.iter().filter(|w| w.valid && w.dirty).count()
    }

    /// Number of valid lines currently resident (debug/test aid).
    pub fn valid_count(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Reset hit/miss counters (end of warmup) without touching contents.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray {
        // 4 sets × 2 ways.
        CacheArray::new(8 * 64, 2)
    }

    #[test]
    fn geometry() {
        let c = CacheArray::new(32 * 1024, 8);
        assert_eq!(c.num_sets(), 64);
        assert_eq!(c.capacity_bytes(), 32 * 1024);
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = small();
        assert!(!c.lookup(5));
        c.fill(5, false);
        assert!(c.lookup(5));
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn peek_does_not_disturb_state() {
        let mut c = small();
        c.fill(5, false);
        let before = (c.hits, c.misses);
        assert!(c.peek(5));
        assert!(!c.peek(6));
        assert_eq!((c.hits, c.misses), before);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Same set: addresses differing in bits above the set index.
        let a = 0u64;
        let b = 4; // 4 sets → stride 4 hits same set
        let d = 8;
        c.fill(a, false);
        c.fill(b, false);
        c.lookup(a); // a is now MRU
        let ev = c.fill(d, false).expect("must evict");
        assert_eq!(ev.line_addr, b, "LRU way is b");
        assert!(c.peek(a) && c.peek(d) && !c.peek(b));
    }

    #[test]
    fn dirty_bit_travels_with_eviction() {
        let mut c = small();
        c.fill(0, false);
        c.mark_dirty(0);
        c.fill(4, false);
        let ev = c.fill(8, false).expect("evicts line 0");
        assert_eq!(ev, Evicted { line_addr: 0, dirty: true });
    }

    #[test]
    fn refill_of_present_line_does_not_evict() {
        let mut c = small();
        c.fill(0, false);
        c.fill(4, false);
        assert!(c.fill(0, true).is_none(), "refresh, not eviction");
        assert!(c.peek_dirty(0), "dirty bit merged in");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.fill(3, true);
        assert_eq!(c.invalidate(3), Some(true));
        assert!(!c.peek(3));
        assert_eq!(c.invalidate(3), None);
    }

    #[test]
    fn mark_dirty_on_absent_line_reports_false() {
        let mut c = small();
        assert!(!c.mark_dirty(77));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = small(); // 8 lines
        for round in 0..4 {
            for a in 0..32u64 {
                let hit = c.lookup(a);
                if round > 0 {
                    assert!(!hit, "LRU must thrash on a 4x working set");
                }
                if !hit {
                    c.fill(a, false);
                }
            }
        }
    }

    #[test]
    fn working_set_smaller_than_cache_always_hits_after_warmup() {
        let mut c = CacheArray::new(64 * 1024, 8);
        for a in 0..512u64 {
            c.lookup(a);
            c.fill(a, false);
        }
        c.reset_stats();
        for a in 0..512u64 {
            assert!(c.lookup(a));
        }
        assert_eq!(c.misses, 0);
    }
}
