//! CALM — Concurrent Access of LLC and Memory (paper §IV-C).
//!
//! On an L2 miss the hierarchy may look up the LLC and memory *in
//! parallel*, removing the LLC (and part of the NoC) from the critical
//! path of LLC-missing accesses. The decision per L2 miss is produced by
//! one of four mechanisms:
//!
//! * [`CalmPolicy::Serial`] — never (baseline serial hierarchy);
//! * [`CalmPolicy::CalmR`] — the paper's bandwidth-regulated mechanism:
//!   CALM with probability `min(1, (R − bw_filtered)/bw_unfiltered)` when
//!   the LLC-filtered bandwidth estimate is below the budget `R`, never
//!   when above;
//! * [`CalmPolicy::MapI`] — the PC-indexed MAP-I predictor of Qureshi &
//!   Loh \[48\]: 3-bit saturating counters trained on LLC hit/miss outcomes;
//! * [`CalmPolicy::Ideal`] — an oracle that CALMs exactly the L2 misses
//!   that will miss in the LLC.
//!
//! A CALM access that hits in the LLC is a **false positive** (wasted
//! memory bandwidth); a non-CALM access that misses is a **false
//! negative** (serialized latency). Fig. 7b reports both.

use coaxial_sim::{Cycle, SplitMix64};
use serde::Serialize;

/// Which CALM mechanism the hierarchy uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum CalmPolicy {
    /// Serial LLC-then-memory access (no CALM).
    Serial,
    /// Bandwidth-regulated CALM with budget `r` as a fraction of peak
    /// memory bandwidth (the paper's default is `r = 0.7`).
    CalmR { r: f64 },
    /// PC-based LLC hit/miss predictor.
    MapI,
    /// Oracle: CALM exactly when the LLC will miss.
    Ideal,
}

impl CalmPolicy {
    /// Short label for reports ("serial", "MAP-I", "CALM-70%", "ideal").
    pub fn label(&self) -> String {
        match self {
            CalmPolicy::Serial => "serial".into(),
            CalmPolicy::CalmR { r } => format!("CALM-{:.0}%", r * 100.0),
            CalmPolicy::MapI => "MAP-I".into(),
            CalmPolicy::Ideal => "ideal".into(),
        }
    }
}

/// Decision-quality counters (Fig. 7b).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct CalmStats {
    /// L2 misses that performed CALM and hit in the LLC (wasted bandwidth).
    pub false_pos: u64,
    /// L2 misses that did not CALM and missed in the LLC (serialized).
    pub false_neg: u64,
    /// CALM + LLC miss (latency saved).
    pub true_pos: u64,
    /// No CALM + LLC hit (correctly served on chip).
    pub true_neg: u64,
}

impl CalmStats {
    pub fn decisions(&self) -> u64 {
        self.false_pos + self.false_neg + self.true_pos + self.true_neg
    }

    /// False positives as a fraction of memory accesses (LLC misses +
    /// wasted CALM fetches) — the paper's Fig. 7b numerator.
    pub fn false_pos_per_mem_access(&self) -> f64 {
        let mem = self.true_pos + self.false_neg + self.false_pos;
        if mem == 0 {
            0.0
        } else {
            self.false_pos as f64 / mem as f64
        }
    }

    /// False negatives as a fraction of all LLC misses.
    pub fn false_neg_per_llc_miss(&self) -> f64 {
        let misses = self.true_pos + self.false_neg;
        if misses == 0 {
            0.0
        } else {
            self.false_neg as f64 / misses as f64
        }
    }
}

/// MAP-I: table of 3-bit saturating counters indexed by a PC hash.
/// Counter ≥ 4 predicts "LLC miss" (do CALM).
#[derive(Debug, Clone)]
struct MapiTable {
    counters: Vec<u8>,
}

const MAPI_ENTRIES: usize = 4096;
const MAPI_MAX: u8 = 7;
const MAPI_THRESHOLD: u8 = 4;

impl MapiTable {
    fn new() -> Self {
        // Initialize weakly toward "miss": bandwidth-rich systems prefer
        // false positives over false negatives (paper §VI-B).
        Self { counters: vec![MAPI_THRESHOLD; MAPI_ENTRIES] }
    }

    #[inline]
    fn index(pc: u32) -> usize {
        // Cheap avalanching hash of the PC; take high product bits so that
        // page-aligned PCs do not collide in one entry.
        let mut x = pc as u64;
        x ^= x >> 16;
        x = x.wrapping_mul(0x45D9_F3B3_335B_369D);
        ((x >> 40) as usize) & (MAPI_ENTRIES - 1)
    }

    #[inline]
    fn predict_miss(&self, pc: u32) -> bool {
        self.counters[Self::index(pc)] >= MAPI_THRESHOLD
    }

    #[inline]
    fn train(&mut self, pc: u32, was_miss: bool) {
        let c = &mut self.counters[Self::index(pc)];
        if was_miss {
            *c = (*c + 1).min(MAPI_MAX);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// Epoch-based global bandwidth monitor for `CALM_R`.
///
/// Tracks, per epoch, the L2-miss byte rate (`bw_unfiltered`) and the
/// LLC-miss byte rate (`bw_filtered`), both normalized to peak memory
/// bandwidth. Decisions in epoch *k* use the rates of epoch *k−1*.
#[derive(Debug, Clone)]
struct BwMonitor {
    epoch_cycles: Cycle,
    epoch_start: Cycle,
    l2_misses_epoch: u64,
    llc_misses_epoch: u64,
    /// Previous epoch's utilization estimates, as fractions of peak.
    bw_unfiltered: f64,
    bw_filtered: f64,
    /// Peak memory bandwidth in bytes per cycle.
    peak_bytes_per_cycle: f64,
}

/// Default CALM_R monitoring epoch (cycles).
pub const CALM_EPOCH: Cycle = 8192;

impl BwMonitor {
    fn new(peak_bytes_per_cycle: f64, epoch_cycles: Cycle) -> Self {
        Self {
            epoch_cycles,
            epoch_start: 0,
            l2_misses_epoch: 0,
            llc_misses_epoch: 0,
            bw_unfiltered: 0.0,
            bw_filtered: 0.0,
            peak_bytes_per_cycle,
        }
    }

    #[inline]
    fn roll(&mut self, now: Cycle) {
        while now >= self.epoch_start + self.epoch_cycles {
            let denom = self.epoch_cycles as f64 * self.peak_bytes_per_cycle;
            self.bw_unfiltered = self.l2_misses_epoch as f64 * 64.0 / denom;
            self.bw_filtered = self.llc_misses_epoch as f64 * 64.0 / denom;
            self.l2_misses_epoch = 0;
            self.llc_misses_epoch = 0;
            self.epoch_start += self.epoch_cycles;
        }
    }

    #[inline]
    fn record_l2_miss(&mut self, now: Cycle) {
        self.roll(now);
        self.l2_misses_epoch += 1;
    }

    #[inline]
    fn record_llc_miss(&mut self, now: Cycle) {
        self.roll(now);
        self.llc_misses_epoch += 1;
    }

    /// Probability that an L2 miss should CALM under budget `r`.
    #[inline]
    fn calm_probability(&self, r: f64) -> f64 {
        if self.bw_filtered >= r {
            return 0.0;
        }
        if self.bw_unfiltered <= 0.0 {
            return 1.0;
        }
        ((r - self.bw_filtered) / self.bw_unfiltered).min(1.0)
    }
}

/// The per-hierarchy CALM decision engine.
#[derive(Debug, Clone)]
pub struct CalmEngine {
    policy: CalmPolicy,
    monitor: BwMonitor,
    mapi: MapiTable,
    rng: SplitMix64,
    pub stats: CalmStats,
}

impl CalmEngine {
    /// `peak_bytes_per_cycle` is the memory system's aggregate peak
    /// bandwidth (used to normalize the CALM_R budget).
    pub fn new(policy: CalmPolicy, peak_bytes_per_cycle: f64, seed: u64) -> Self {
        Self::with_epoch(policy, peak_bytes_per_cycle, seed, CALM_EPOCH)
    }

    /// As [`CalmEngine::new`] with an explicit CALM_R monitoring epoch
    /// (ablation studies; shorter epochs react faster but estimate
    /// bandwidth more noisily).
    pub fn with_epoch(
        policy: CalmPolicy,
        peak_bytes_per_cycle: f64,
        seed: u64,
        epoch_cycles: Cycle,
    ) -> Self {
        assert!(epoch_cycles > 0);
        Self {
            policy,
            monitor: BwMonitor::new(peak_bytes_per_cycle, epoch_cycles),
            mapi: MapiTable::new(),
            rng: SplitMix64::new(seed),
            stats: CalmStats::default(),
        }
    }

    pub fn policy(&self) -> CalmPolicy {
        self.policy
    }

    /// Decide whether this L2 miss performs CALM.
    ///
    /// `llc_would_hit` is the functional LLC outcome, used by the oracle and
    /// for decision-quality accounting; real mechanisms never consult it for
    /// the decision itself.
    pub fn decide(&mut self, pc: u32, llc_would_hit: bool, now: Cycle) -> bool {
        self.monitor.record_l2_miss(now);
        if !llc_would_hit {
            self.monitor.record_llc_miss(now);
        }
        let calm = match self.policy {
            CalmPolicy::Serial => false,
            CalmPolicy::CalmR { r } => {
                let p = self.monitor.calm_probability(r);
                self.rng.chance(p)
            }
            CalmPolicy::MapI => self.mapi.predict_miss(pc),
            CalmPolicy::Ideal => !llc_would_hit,
        };
        if let CalmPolicy::MapI = self.policy {
            self.mapi.train(pc, !llc_would_hit);
        }
        match (calm, llc_would_hit) {
            (true, true) => self.stats.false_pos += 1,
            (true, false) => self.stats.true_pos += 1,
            (false, true) => self.stats.true_neg += 1,
            (false, false) => self.stats.false_neg += 1,
        }
        calm
    }

    /// Clear decision statistics (end of warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CalmStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(policy: CalmPolicy) -> CalmEngine {
        // Peak 16 B/cycle ≈ one DDR5-4800 channel.
        CalmEngine::new(policy, 16.0, 42)
    }

    #[test]
    fn serial_never_calms() {
        let mut e = engine(CalmPolicy::Serial);
        for i in 0..100 {
            assert!(!e.decide(i, i % 2 == 0, i as u64 * 10));
        }
        assert_eq!(e.stats.false_pos + e.stats.true_pos, 0);
    }

    #[test]
    fn ideal_is_always_right() {
        let mut e = engine(CalmPolicy::Ideal);
        for i in 0..1000u32 {
            let hit = i % 3 == 0;
            assert_eq!(e.decide(i, hit, i as u64), !hit);
        }
        assert_eq!(e.stats.false_pos, 0);
        assert_eq!(e.stats.false_neg, 0);
    }

    #[test]
    fn calm_r_throttles_under_high_filtered_bandwidth() {
        let mut e = engine(CalmPolicy::CalmR { r: 0.7 });
        // Flood epoch 0 with LLC misses at > 70% of peak: 8192 cycles × 16
        // B/cycle peak → 2048 line transfers saturate; feed 1800 (≈88%).
        for i in 0..1800u32 {
            e.decide(i, false, (i as u64 * 4) % CALM_EPOCH);
        }
        // Epoch 1 decisions must all refuse CALM.
        let mut calms = 0;
        for i in 0..200u32 {
            if e.decide(i, false, CALM_EPOCH + i as u64) {
                calms += 1;
            }
        }
        assert_eq!(calms, 0, "CALM must stop above the bandwidth budget");
    }

    #[test]
    fn calm_r_allows_calm_when_memory_is_idle() {
        let mut e = engine(CalmPolicy::CalmR { r: 0.7 });
        // Sparse traffic: one L2 miss per epoch, all LLC hits.
        for i in 0..10u32 {
            e.decide(i, true, i as u64 * CALM_EPOCH);
        }
        // Next decisions should CALM with probability ~1.
        let calms = (0..100u32).filter(|&i| e.decide(i, true, 11 * CALM_EPOCH + i as u64)).count();
        assert!(calms > 90, "calms = {calms}");
    }

    #[test]
    fn mapi_learns_per_pc_behaviour() {
        let mut e = engine(CalmPolicy::MapI);
        let hit_pc = 0x1000u32;
        let miss_pc = 0x2000u32;
        // Train: hit_pc always hits, miss_pc always misses.
        for i in 0..50 {
            e.decide(hit_pc, true, i);
            e.decide(miss_pc, false, i);
        }
        // After training, predictions should separate.
        assert!(!e.decide(hit_pc, true, 1000), "trained-hit PC must not CALM");
        assert!(e.decide(miss_pc, false, 1000), "trained-miss PC must CALM");
    }

    #[test]
    fn stats_fraction_helpers() {
        let s = CalmStats { false_pos: 4, false_neg: 11, true_pos: 89, true_neg: 20 };
        // FP per memory access: 4 / (89 + 11 + 4).
        assert!((s.false_pos_per_mem_access() - 4.0 / 104.0).abs() < 1e-12);
        // FN per LLC miss: 11 / (89 + 11).
        assert!((s.false_neg_per_llc_miss() - 0.11).abs() < 1e-12);
        assert_eq!(s.decisions(), 124);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CalmPolicy::CalmR { r: 0.7 }.label(), "CALM-70%");
        assert_eq!(CalmPolicy::Serial.label(), "serial");
        assert_eq!(CalmPolicy::MapI.label(), "MAP-I");
        assert_eq!(CalmPolicy::Ideal.label(), "ideal");
    }
}
