//! Hardware prefetching at the L2 (an *extension* beyond the paper).
//!
//! The paper's thesis is that bandwidth abundance can be traded for
//! latency; CALM is one such trade, prefetching is the obvious second one.
//! A prefetcher converts bandwidth into latency tolerance — so, like CALM,
//! it should be cheap on COAXIAL and risky on the bandwidth-starved
//! baseline. The `ablations` bench target measures exactly that.
//!
//! Two classic designs are provided:
//!
//! * **next-line**: on a demand L2 miss to line X, fetch X+1..X+degree;
//! * **IP-stride**: a PC-indexed table learns per-instruction strides and
//!   issues `degree` prefetches along a confident stride.

use serde::Serialize;

/// Prefetch policy at the L2 (demand-miss triggered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PrefetchPolicy {
    /// No prefetching (the paper's configuration; default).
    None,
    /// Fetch the next `degree` sequential lines.
    NextLine { degree: u32 },
    /// PC-indexed stride detection, `degree` prefetches deep.
    IpStride { degree: u32 },
}

impl PrefetchPolicy {
    pub fn label(&self) -> String {
        match self {
            PrefetchPolicy::None => "none".into(),
            PrefetchPolicy::NextLine { degree } => format!("next-line x{degree}"),
            PrefetchPolicy::IpStride { degree } => format!("ip-stride x{degree}"),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    pc: u32,
    valid: bool,
    last_line: u64,
    stride: i64,
    /// 2-bit confidence; predict at >= 2.
    confidence: u8,
}

/// PC-indexed stride detector (one per core's L2).
#[derive(Debug, Clone)]
pub struct StrideTable {
    entries: Vec<StrideEntry>,
}

const STRIDE_ENTRIES: usize = 256;

impl Default for StrideTable {
    fn default() -> Self {
        Self::new()
    }
}

impl StrideTable {
    pub fn new() -> Self {
        Self { entries: vec![StrideEntry::default(); STRIDE_ENTRIES] }
    }

    #[inline]
    fn index(pc: u32) -> usize {
        // Low bits are distinct enough for PC-indexed tables.
        (pc as usize ^ (pc as usize >> 8)) & (STRIDE_ENTRIES - 1)
    }

    /// Observe a demand access; returns a confident stride if one exists.
    pub fn observe(&mut self, pc: u32, line: u64) -> Option<i64> {
        let e = &mut self.entries[Self::index(pc)];
        if !e.valid || e.pc != pc {
            *e = StrideEntry { pc, valid: true, last_line: line, stride: 0, confidence: 0 };
            return None;
        }
        let new_stride = line as i64 - e.last_line as i64;
        e.last_line = line;
        if new_stride == 0 {
            return None;
        }
        if new_stride == e.stride {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.stride = new_stride;
            e.confidence = 0;
        }
        (e.confidence >= 2).then_some(e.stride)
    }
}

/// Compute the prefetch candidate lines for a demand miss.
pub fn candidates(policy: PrefetchPolicy, table: &mut StrideTable, pc: u32, line: u64) -> Vec<u64> {
    match policy {
        PrefetchPolicy::None => Vec::new(),
        PrefetchPolicy::NextLine { degree } => {
            (1..=degree as u64).map(|d| line.wrapping_add(d)).collect()
        }
        PrefetchPolicy::IpStride { degree } => match table.observe(pc, line) {
            Some(stride) => {
                (1..=degree as i64).map(|d| line.wrapping_add((stride * d) as u64)).collect()
            }
            None => Vec::new(),
        },
    }
}

/// Prefetch effectiveness counters.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct PrefetchStats {
    /// Prefetch fetches issued to memory.
    pub issued: u64,
    /// Prefetched lines later touched by a demand access (incl. merges
    /// with in-flight prefetches).
    pub useful: u64,
    /// Candidates dropped because the line was already on chip/in flight.
    pub redundant: u64,
    /// Candidates dropped due to MSHR pressure.
    pub throttled: u64,
}

impl PrefetchStats {
    /// Fraction of issued prefetches that were ever used.
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.useful as f64 / self.issued as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_generates_sequential_candidates() {
        let mut t = StrideTable::new();
        let c = candidates(PrefetchPolicy::NextLine { degree: 3 }, &mut t, 1, 100);
        assert_eq!(c, vec![101, 102, 103]);
    }

    #[test]
    fn none_generates_nothing() {
        let mut t = StrideTable::new();
        assert!(candidates(PrefetchPolicy::None, &mut t, 1, 100).is_empty());
    }

    #[test]
    fn stride_detector_needs_confidence() {
        let mut t = StrideTable::new();
        let pc = 0x40;
        // First three observations establish the stride.
        assert_eq!(t.observe(pc, 100), None); // allocate
        assert_eq!(t.observe(pc, 104), None); // stride 4, conf 0
        assert_eq!(t.observe(pc, 108), None); // conf 1
        assert_eq!(t.observe(pc, 112), Some(4)); // conf 2: predict
        assert_eq!(t.observe(pc, 116), Some(4));
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut t = StrideTable::new();
        let pc = 0x41;
        for (i, l) in [100u64, 104, 108, 112].iter().enumerate() {
            let r = t.observe(pc, *l);
            assert_eq!(r.is_some(), i >= 3);
        }
        assert_eq!(t.observe(pc, 200), None, "stride break must reset");
        assert_eq!(t.observe(pc, 288), None);
    }

    #[test]
    fn negative_strides_work() {
        let mut t = StrideTable::new();
        let pc = 0x42;
        t.observe(pc, 1000);
        t.observe(pc, 992);
        t.observe(pc, 984);
        assert_eq!(t.observe(pc, 976), Some(-8));
        let c = candidates(PrefetchPolicy::IpStride { degree: 2 }, &mut t, pc, 968);
        assert_eq!(c, vec![960, 952]);
    }

    #[test]
    fn distinct_pcs_do_not_interfere() {
        let mut t = StrideTable::new();
        for i in 0..4 {
            t.observe(0x50, 100 + i * 4);
            t.observe(0x51, 9000 + i * 16);
        }
        assert_eq!(t.observe(0x50, 116), Some(4));
        assert_eq!(t.observe(0x51, 9064), Some(16));
    }

    #[test]
    fn accuracy_math() {
        let s = PrefetchStats { issued: 10, useful: 7, redundant: 3, throttled: 1 };
        assert!((s.accuracy() - 0.7).abs() < 1e-12);
        assert_eq!(PrefetchStats::default().accuracy(), 0.0);
    }
}
