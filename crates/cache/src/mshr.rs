//! Miss Status Holding Registers.
//!
//! Each core's L2 has a bounded MSHR file tracking its outstanding misses.
//! Secondary misses to a line already in flight merge onto the existing
//! entry; a full file back-pressures the core, which (together with the
//! ROB) bounds per-core memory-level parallelism.

use std::collections::HashMap;

/// Error returned when the MSHR file has no free entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrFull;

/// MSHR file mapping in-flight line addresses to an opaque transaction id.
#[derive(Debug, Clone)]
pub struct Mshr {
    /// Keyed lookup only — never iterated (lint D01).
    entries: HashMap<u64, u32>,
    capacity: usize,
    /// High-water mark, for reporting.
    pub peak: usize,
}

impl Mshr {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self { entries: HashMap::with_capacity(capacity), capacity, peak: 0 }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Transaction already in flight for this line, if any.
    #[inline]
    pub fn lookup(&self, line_addr: u64) -> Option<u32> {
        self.entries.get(&line_addr).copied()
    }

    /// Allocate an entry. Fails when full. Panics if the line is already
    /// tracked (callers must merge via [`Mshr::lookup`] first).
    pub fn allocate(&mut self, line_addr: u64, txn: u32) -> Result<(), MshrFull> {
        if self.is_full() {
            return Err(MshrFull);
        }
        let prev = self.entries.insert(line_addr, txn);
        assert!(prev.is_none(), "line {line_addr:#x} already has an MSHR");
        self.peak = self.peak.max(self.entries.len());
        Ok(())
    }

    /// Release the entry for a completed line.
    pub fn release(&mut self, line_addr: u64) {
        let removed = self.entries.remove(&line_addr);
        debug_assert!(removed.is_some(), "releasing untracked line {line_addr:#x}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_lookup_release_cycle() {
        let mut m = Mshr::new(4);
        m.allocate(100, 7).unwrap();
        assert_eq!(m.lookup(100), Some(7));
        assert_eq!(m.lookup(101), None);
        m.release(100);
        assert_eq!(m.lookup(100), None);
        assert!(m.is_empty());
    }

    #[test]
    fn fills_to_capacity_then_rejects() {
        let mut m = Mshr::new(2);
        m.allocate(1, 0).unwrap();
        m.allocate(2, 1).unwrap();
        assert!(m.is_full());
        assert!(m.allocate(3, 2).is_err());
        m.release(1);
        assert!(m.allocate(3, 2).is_ok());
        assert_eq!(m.peak, 2);
    }

    #[test]
    #[should_panic(expected = "already has an MSHR")]
    fn double_allocate_panics() {
        let mut m = Mshr::new(4);
        m.allocate(5, 0).unwrap();
        let _ = m.allocate(5, 1);
    }
}
