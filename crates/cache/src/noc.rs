//! 2D-mesh network-on-chip latency model.
//!
//! Table III: "2D mesh, 3 cycles/hop". Cores and LLC banks are co-located
//! on tiles (one bank per core tile, as in tiled manycore designs); memory
//! controllers sit on the mesh's left and right edges. Latency is
//! XY-routed Manhattan distance times the per-hop cost; link contention is
//! abstracted away (the paper does the same — its on-chip time is dominated
//! by hop count and LLC access latency).

use coaxial_sim::Cycle;

/// Mesh geometry and hop cost.
#[derive(Debug, Clone)]
pub struct Mesh {
    cols: usize,
    rows: usize,
    cycles_per_hop: Cycle,
    /// Edge positions of each memory controller (one per memory channel),
    /// as (col, row) with col == -1 (left edge) or cols (right edge).
    mc_tiles: Vec<(i64, i64)>,
}

impl Mesh {
    /// Build a mesh for `tiles` core/LLC tiles and `mem_channels` edge MCs.
    ///
    /// Tiles are laid out row-major on the smallest near-square grid; MCs
    /// alternate left/right edges, spread over the rows.
    pub fn new(tiles: usize, mem_channels: usize, cycles_per_hop: Cycle) -> Self {
        assert!(tiles > 0 && mem_channels > 0);
        let cols = coaxial_sim::trunc_usize((tiles as f64).sqrt().ceil());
        let rows = tiles.div_ceil(cols);
        let mc_tiles = (0..mem_channels)
            .map(|i| {
                let side = if i % 2 == 0 { -1 } else { cols as i64 };
                let row = ((i / 2) * rows.max(1)) / mem_channels.div_ceil(2).max(1);
                (side, (row % rows) as i64)
            })
            .collect();
        Self { cols, rows, cycles_per_hop, mc_tiles }
    }

    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    #[inline]
    fn tile_pos(&self, tile: usize) -> (i64, i64) {
        ((tile % self.cols) as i64, (tile / self.cols) as i64)
    }

    #[inline]
    fn manhattan(a: (i64, i64), b: (i64, i64)) -> u64 {
        ((a.0 - b.0).abs() + (a.1 - b.1).abs()) as u64
    }

    /// One-way latency between two core/LLC tiles.
    #[inline]
    pub fn tile_to_tile(&self, a: usize, b: usize) -> Cycle {
        Self::manhattan(self.tile_pos(a), self.tile_pos(b)) * self.cycles_per_hop
    }

    /// One-way latency from a tile to a memory controller.
    #[inline]
    pub fn tile_to_mc(&self, tile: usize, mc: usize) -> Cycle {
        let mc = &self.mc_tiles[mc % self.mc_tiles.len()];
        Self::manhattan(self.tile_pos(tile), *mc) * self.cycles_per_hop
    }

    /// Mean tile-to-tile latency (used in reports).
    pub fn mean_tile_latency(&self) -> f64 {
        let n = self.cols * self.rows;
        let mut sum = 0u64;
        for a in 0..n {
            for b in 0..n {
                sum += self.tile_to_tile(a, b);
            }
        }
        sum as f64 / (n * n) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_tiles_fit_a_4x3_mesh() {
        let m = Mesh::new(12, 1, 3);
        assert_eq!(m.dims(), (4, 3));
    }

    #[test]
    fn self_distance_is_zero() {
        let m = Mesh::new(12, 4, 3);
        for t in 0..12 {
            assert_eq!(m.tile_to_tile(t, t), 0);
        }
    }

    #[test]
    fn distance_is_symmetric() {
        let m = Mesh::new(12, 4, 3);
        for a in 0..12 {
            for b in 0..12 {
                assert_eq!(m.tile_to_tile(a, b), m.tile_to_tile(b, a));
            }
        }
    }

    #[test]
    fn corner_to_corner_is_max() {
        let m = Mesh::new(12, 1, 3);
        // (0,0) to (3,2): 5 hops × 3 cycles.
        assert_eq!(m.tile_to_tile(0, 11), 15);
    }

    #[test]
    fn mc_latency_is_positive_from_interior() {
        let m = Mesh::new(12, 4, 3);
        // Tile 5 = (1,1): at least 2 hops to any edge MC.
        for mc in 0..4 {
            assert!(m.tile_to_mc(5, mc) >= 2 * 3);
        }
    }

    #[test]
    fn mcs_spread_across_both_edges() {
        let m = Mesh::new(12, 4, 3);
        // Left-edge MCs are nearer col 0; right-edge MCs nearer col 3.
        let left = m.tile_to_mc(0, 0); // tile (0,0), mc 0 on left
        let right = m.tile_to_mc(0, 1); // mc 1 on right edge
        assert!(left < right, "left {left} vs right {right}");
    }

    #[test]
    fn mean_latency_reasonable_for_4x3() {
        let m = Mesh::new(12, 1, 3);
        let mean = m.mean_tile_latency();
        // Mean Manhattan distance on 4x3 is ~2.2 hops → ~6.7 cycles.
        assert!((4.0..10.0).contains(&mean), "mean = {mean}");
    }
}
