//! Cache hierarchy, NoC, and CALM mechanisms for the COAXIAL reproduction.
//!
//! The hierarchy follows the paper's Table III: per-core 32 KB L1 (4-cycle
//! hit) and 512 KB L2 (8-cycle hit), plus a distributed, shared,
//! non-inclusive LLC (20-cycle bank hit, 16-way) reached over a 2D-mesh NoC
//! at 3 cycles per hop. L2 misses optionally perform **CALM** — Concurrent
//! Access of LLC and Memory (paper §IV-C) — governed by one of the
//! mechanisms in [`calm`]: the bandwidth-regulated `CALM_R`, the PC-based
//! MAP-I predictor, or an oracle.
//!
//! [`hierarchy::Hierarchy`] owns the cache arrays and a
//! [`coaxial_dram::MemoryBackend`] (direct DDR for the baseline, CXL-attached
//! for COAXIAL) and exposes a simple `access … pop_completion` interface that
//! the core model drives.

pub mod cache;
pub mod calm;
pub mod hierarchy;
pub mod mshr;
pub mod noc;
pub mod prefetch;

pub use cache::CacheArray;
pub use calm::{CalmEngine, CalmPolicy, CalmStats};
pub use hierarchy::{AccessId, HierStats, Hierarchy, HierarchyConfig, PrefillState};
pub use mshr::Mshr;
pub use noc::Mesh;
pub use prefetch::{PrefetchPolicy, PrefetchStats};
