//! Property-based tests for the cache structures: the set-associative
//! array is checked against an exact reference model, and the hierarchy's
//! accounting is validated under random access streams.

use std::collections::HashMap;

use proptest::prelude::*;

use coaxial_cache::hierarchy::AccessResult;
use coaxial_cache::{CacheArray, CalmPolicy, Hierarchy, HierarchyConfig};
use coaxial_dram::{DramConfig, MultiChannel};

/// Exact reference model of a set-associative LRU cache.
struct RefCache {
    sets: u64,
    assoc: usize,
    /// Per set: Vec of (line, dirty), most-recently-used LAST.
    contents: HashMap<u64, Vec<(u64, bool)>>,
}

impl RefCache {
    fn new(capacity_bytes: u64, assoc: usize) -> Self {
        Self { sets: capacity_bytes / 64 / assoc as u64, assoc, contents: HashMap::new() }
    }

    fn set_of(&self, line: u64) -> u64 {
        line & (self.sets - 1)
    }

    fn lookup(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let ways = self.contents.entry(set).or_default();
        if let Some(pos) = ways.iter().position(|&(l, _)| l == line) {
            let e = ways.remove(pos);
            ways.push(e);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, line: u64, dirty: bool) -> Option<(u64, bool)> {
        let set = self.set_of(line);
        let assoc = self.assoc;
        let ways = self.contents.entry(set).or_default();
        if let Some(pos) = ways.iter().position(|&(l, _)| l == line) {
            let (l, d) = ways.remove(pos);
            ways.push((l, d || dirty));
            return None;
        }
        let evicted = if ways.len() >= assoc { Some(ways.remove(0)) } else { None };
        ways.push((line, dirty));
        evicted
    }

    fn peek(&self, line: u64) -> bool {
        self.contents
            .get(&self.set_of(line))
            .is_some_and(|ways| ways.iter().any(|&(l, _)| l == line))
    }
}

proptest! {
    /// CacheArray matches the reference LRU model over arbitrary
    /// lookup/fill/dirty sequences, including evicted victims.
    #[test]
    fn cache_array_matches_reference_model(
        ops in proptest::collection::vec((0u8..3, 0u64..256, proptest::bool::ANY), 0..400),
    ) {
        // 16 sets × 4 ways.
        let mut c = CacheArray::new(64 * 64, 4);
        let mut m = RefCache::new(64 * 64, 4);
        for (op, line, dirty) in ops {
            match op {
                0 => prop_assert_eq!(c.lookup(line), m.lookup(line), "lookup({})", line),
                1 => {
                    let got = c.fill(line, dirty).map(|e| (e.line_addr, e.dirty));
                    let want = m.fill(line, dirty);
                    prop_assert_eq!(got, want, "fill({}, {})", line, dirty);
                }
                _ => prop_assert_eq!(c.peek(line), m.peek(line), "peek({})", line),
            }
        }
    }

    /// Invariant: a line filled and never evicted is always found; dirty
    /// bits never appear from nowhere.
    #[test]
    fn no_spurious_dirty_bits(lines in proptest::collection::vec(0u64..64, 1..50)) {
        let mut c = CacheArray::new(64 * 64, 4);
        for &l in &lines {
            if let Some(ev) = c.fill(l, false) {
                prop_assert!(!ev.dirty, "clean fills cannot evict dirty data");
            }
        }
    }
}

fn hierarchy() -> Hierarchy<MultiChannel> {
    let cfg = HierarchyConfig::table_iii(2, 1, 1.0, 38.4, CalmPolicy::CalmR { r: 0.7 });
    Hierarchy::new(cfg, MultiChannel::new(&DramConfig::ddr5_4800(), 1))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Under arbitrary access streams, every pending access completes, the
    /// MSHR pool drains, and after completion the line is on chip.
    #[test]
    fn hierarchy_always_drains(
        accesses in proptest::collection::vec(
            (0u32..2, 0u64..(1 << 18), proptest::bool::ANY), 1..120),
    ) {
        let mut h = hierarchy();
        let mut now = 0u64;
        let mut pending = Vec::new();
        for (core, line, is_write) in &accesses {
            loop {
                match h.access(*core, *line, *is_write, 7, now) {
                    AccessResult::Pending(id) => {
                        pending.push(id);
                        break;
                    }
                    AccessResult::Done(_) => break,
                    AccessResult::Retry => {
                        now += 1;
                        h.tick(now);
                    }
                }
            }
            now += 2;
            h.tick(now);
        }
        let deadline = now + 5_000_000;
        while !pending.is_empty() && now < deadline {
            now += 1;
            h.tick(now);
            while let Some((_, id)) = h.pop_completion() {
                pending.retain(|&p| p != id);
            }
        }
        prop_assert!(pending.is_empty(), "all accesses must complete");
        // Allow zombie CALM fetches to drain, then the txn pool is empty.
        for _ in 0..200_000 {
            now += 1;
            h.tick(now);
            if h.inflight_txns() == 0 {
                break;
            }
        }
        prop_assert_eq!(h.inflight_txns(), 0, "transaction pool must drain");
        // Every touched line is somewhere on chip for its core.
        for (core, line, _) in &accesses {
            prop_assert!(
                h.probe_on_chip(*core as usize, *line),
                "line {line} lost after completion"
            );
        }
    }
}
