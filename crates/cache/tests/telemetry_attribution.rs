//! Conservation and equivalence properties of the latency-attribution
//! telemetry.
//!
//! * **Conservation**: for every recorded request, the per-component cycles
//!   sum *exactly* to the end-to-end L2-miss latency, and the explicit
//!   stamps never exceed the total (the `Overlap` residual is a true
//!   subtraction, not a saturating rescue).
//! * **Equivalence**: running the identical access stream with telemetry on
//!   and off produces identical hierarchy statistics — the recorder only
//!   observes, never perturbs.

use coaxial_cache::{CalmPolicy, Hierarchy, HierarchyConfig};
use coaxial_cxl::{CxlLinkConfig, CxlMemory};
use coaxial_dram::{DramConfig, MemoryBackend, MultiChannel};
use coaxial_sim::Cycle;
use coaxial_telemetry::{Component, TelemetryRecorder, TelemetrySink, COMPONENTS};

fn cfg(calm: CalmPolicy) -> HierarchyConfig {
    HierarchyConfig::table_iii(4, 2, 1.0, 76.8, calm)
}

/// Drive `n` pseudo-random accesses through the hierarchy and settle.
fn drive<B: MemoryBackend, T: TelemetrySink>(h: &mut Hierarchy<B, T>, n: u64, seed: u64) {
    use coaxial_cache::hierarchy::AccessResult;
    let mut rng = coaxial_sim::SplitMix64::new(seed);
    let mut now: Cycle = 0;
    let mut outstanding = 0u64;
    let mut issued = 0u64;
    while issued < n || outstanding > 0 {
        now += 1;
        h.tick(now);
        while h.pop_completion().is_some() {
            outstanding -= 1;
        }
        if issued < n && now.is_multiple_of(3) {
            let core = coaxial_sim::small_u32_u64(rng.next_below(4));
            // Mix of hot lines (LLC hits) and a large cold region.
            let line =
                if rng.next_below(4) == 0 { rng.next_below(512) } else { rng.next_below(1 << 22) };
            let is_write = rng.next_below(4) == 0;
            match h.access(core, line, is_write, (line % 97) as u32, now) {
                AccessResult::Pending(_) => {
                    outstanding += 1;
                    issued += 1;
                }
                AccessResult::Done(_) => issued += 1,
                AccessResult::Retry => {}
            }
        }
        assert!(now < 80_000_000, "run did not settle");
    }
}

fn check_conservation<B: MemoryBackend>(h: Hierarchy<B, TelemetryRecorder>, label: &str) {
    let stats = h.stats();
    let rec = h.into_telemetry();
    assert!(rec.attribution.requests() > 100, "{label}: too few misses recorded");
    assert_eq!(
        rec.attribution.requests(),
        stats.l2_misses,
        "{label}: every primary L2 miss must be attributed"
    );
    assert!(!rec.requests.is_empty(), "{label}: raw records kept");
    for r in &rec.requests {
        let stamped: Cycle =
            r.noc + r.llc + r.issue_wait + r.dram_queue + r.dram_service + r.cxl_link;
        assert!(
            stamped <= r.total(),
            "{label}: stamps exceed total for line {:#x}: {stamped} > {}",
            r.line,
            r.total()
        );
        let sum: Cycle = r.components().iter().sum();
        assert_eq!(sum, r.total(), "{label}: conservation violated for line {:#x}", r.line);
        if !r.calm {
            assert_eq!(r.overlap(), 0, "{label}: serial path must have zero overlap");
        }
        if r.llc_hit {
            assert_eq!(
                r.dram_queue + r.dram_service + r.cxl_link,
                0,
                "{label}: LLC hit carries no memory-path cycles"
            );
        } else {
            assert!(r.dram_service > 0, "{label}: memory fetch must pay DRAM service");
            assert!(r.noc > 0, "{label}: memory fetch must cross the NoC");
        }
    }
    // Aggregate view: component means sum to the total mean.
    let total_mean = rec.attribution.total.mean();
    let comp_sum: f64 = COMPONENTS.iter().map(|&c| rec.attribution.mean_cycles(c)).sum();
    assert!(
        (total_mean - comp_sum).abs() < 1e-6,
        "{label}: component means {comp_sum} != total mean {total_mean}"
    );
}

#[test]
fn conservation_holds_on_ddr_for_all_calm_policies() {
    for calm in [CalmPolicy::Serial, CalmPolicy::Ideal, CalmPolicy::CalmR { r: 0.7 }] {
        let backend = MultiChannel::new(&DramConfig::ddr5_4800(), 2);
        let mut h = Hierarchy::with_telemetry(
            cfg(calm),
            backend,
            TelemetryRecorder::new().keep_requests(1 << 16),
        );
        drive(&mut h, 3_000, 0xA11CE);
        check_conservation(h, &format!("ddr/{calm:?}"));
    }
}

#[test]
fn conservation_holds_on_cxl_and_attributes_link_cycles() {
    let backend = CxlMemory::new(&CxlLinkConfig::x8_symmetric(), &DramConfig::ddr5_4800(), 2);
    let mut h = Hierarchy::with_telemetry(
        HierarchyConfig::table_iii(4, 2, 1.0, 76.8, CalmPolicy::CalmR { r: 0.7 }),
        backend,
        TelemetryRecorder::new().keep_requests(1 << 16),
    );
    drive(&mut h, 3_000, 0xBEEF);
    let cxl_cycles = h.telemetry().attribution.mean_cycles(Component::CxlLink);
    assert!(cxl_cycles > 0.0, "CXL backend must attribute link cycles");
    check_conservation(h, "cxl/calm_r");
}

#[test]
fn telemetry_on_and_off_produce_identical_statistics() {
    let run_stats = |record: bool| {
        let calm = CalmPolicy::CalmR { r: 0.7 };
        let backend = MultiChannel::new(&DramConfig::ddr5_4800(), 2);
        if record {
            let mut h = Hierarchy::with_telemetry(cfg(calm), backend, TelemetryRecorder::new());
            drive(&mut h, 2_000, 7);
            h.stats()
        } else {
            let mut h = Hierarchy::new(cfg(calm), backend);
            drive(&mut h, 2_000, 7);
            h.stats()
        }
    };
    let off = run_stats(false);
    let on = run_stats(true);
    assert_eq!(off.l2_misses, on.l2_misses);
    assert_eq!(off.llc_hits, on.llc_hits);
    assert_eq!(off.llc_misses, on.llc_misses);
    assert_eq!(off.mem_reads, on.mem_reads);
    assert_eq!(off.mem_writes, on.mem_writes);
    assert_eq!(off.onchip_cycles, on.onchip_cycles);
    assert_eq!(off.queue_cycles, on.queue_cycles);
    assert_eq!(off.service_cycles, on.service_cycles);
    assert_eq!(off.cxl_cycles, on.cxl_cycles);
    assert_eq!(off.l2_miss_latency.count(), on.l2_miss_latency.count());
    assert_eq!(off.l2_miss_latency.max(), on.l2_miss_latency.max());
}
