//! Integration tests of the prefetcher extension against the full
//! hierarchy: accuracy on friendly patterns, throttling under pressure,
//! and non-interference guarantees.

use coaxial_cache::hierarchy::AccessResult;
use coaxial_cache::{CalmPolicy, Hierarchy, HierarchyConfig, PrefetchPolicy};
use coaxial_dram::{DramConfig, MultiChannel};

fn hierarchy(prefetch: PrefetchPolicy) -> Hierarchy<MultiChannel> {
    let cfg = HierarchyConfig {
        prefetch,
        ..HierarchyConfig::table_iii(1, 1, 1.0, 38.4, CalmPolicy::Serial)
    };
    Hierarchy::new(cfg, MultiChannel::new(&DramConfig::ddr5_4800(), 1))
}

/// Drive a single-core access pattern to completion; returns total cycles.
fn run(h: &mut Hierarchy<MultiChannel>, lines: &[u64], pc: u32) -> u64 {
    let mut now = 0u64;
    let mut pending = Vec::new();
    for &line in lines {
        loop {
            match h.access(0, line, false, pc, now) {
                AccessResult::Pending(id) => {
                    pending.push(id);
                    break;
                }
                AccessResult::Done(_) => break,
                AccessResult::Retry => {
                    now += 1;
                    h.tick(now);
                }
            }
        }
        // Pace accesses a little so prefetches have a chance to land.
        for _ in 0..20 {
            now += 1;
            h.tick(now);
            while let Some((_, id)) = h.pop_completion() {
                pending.retain(|&p| p != id);
            }
        }
    }
    let deadline = now + 2_000_000;
    while !pending.is_empty() && now < deadline {
        now += 1;
        h.tick(now);
        while let Some((_, id)) = h.pop_completion() {
            pending.retain(|&p| p != id);
        }
    }
    assert!(pending.is_empty(), "accesses must complete");
    now
}

#[test]
fn stride_prefetcher_is_accurate_on_sequential_streams() {
    let mut h = hierarchy(PrefetchPolicy::IpStride { degree: 2 });
    let lines: Vec<u64> = (0..600).map(|i| i * 3).collect(); // stride 3
    run(&mut h, &lines, 0x10);
    let st = h.stats();
    assert!(st.prefetch.issued > 100, "stride detected: {} issued", st.prefetch.issued);
    assert!(
        st.prefetch.accuracy() > 0.7,
        "sequential stride accuracy = {:.2} ({} useful / {} issued)",
        st.prefetch.accuracy(),
        st.prefetch.useful,
        st.prefetch.issued
    );
}

#[test]
fn prefetcher_stays_quiet_on_random_pointer_chases() {
    let mut h = hierarchy(PrefetchPolicy::IpStride { degree: 4 });
    let mut rng = coaxial_sim::SplitMix64::new(3);
    let lines: Vec<u64> = (0..600).map(|_| rng.next_below(1 << 24)).collect();
    run(&mut h, &lines, 0x20);
    let st = h.stats();
    // No stable stride exists, so the confidence filter should mostly hold
    // its fire.
    assert!(
        st.prefetch.issued < 100,
        "random pattern must not trigger stride prefetches: {}",
        st.prefetch.issued
    );
}

#[test]
fn next_line_helps_latency_on_streams() {
    let lines: Vec<u64> = (0..600).collect();
    let mut off = hierarchy(PrefetchPolicy::None);
    let t_off = run(&mut off, &lines, 0x30);
    let mut on = hierarchy(PrefetchPolicy::NextLine { degree: 2 });
    let t_on = run(&mut on, &lines, 0x30);
    // The paced driver absorbs most of the latency, so the win is small —
    // but prefetching must never cost more than noise on a pure stream.
    assert!(t_on <= t_off + t_off / 20, "next-line must not slow a pure stream: {t_on} vs {t_off}");
    let st = on.stats();
    assert!(st.prefetch.useful > 100, "stream prefetches get used: {}", st.prefetch.useful);
}

#[test]
fn prefetches_never_starve_demand_mshrs() {
    // Aggressive degree + dense misses: the reservation must keep demand
    // accesses from being locked out indefinitely.
    let mut h = hierarchy(PrefetchPolicy::NextLine { degree: 8 });
    let mut rng = coaxial_sim::SplitMix64::new(9);
    let lines: Vec<u64> = (0..400).map(|_| rng.next_below(1 << 22)).collect();
    run(&mut h, &lines, 0x40); // would hang without the reservation
    let st = h.stats();
    assert!(st.prefetch.throttled > 0, "pressure must be visible as throttling");
}

#[test]
fn serial_and_prefetch_runs_agree_on_cache_contents_for_used_lines() {
    // Whatever the prefetcher does, every demanded line ends up on chip.
    let lines: Vec<u64> = (0..300).map(|i| i * 7).collect();
    let mut h = hierarchy(PrefetchPolicy::IpStride { degree: 4 });
    run(&mut h, &lines, 0x50);
    for &l in &lines {
        assert!(h.probe_on_chip(0, l), "demanded line {l} missing");
    }
}

#[test]
fn prefetch_stats_reset_with_the_window() {
    let mut h = hierarchy(PrefetchPolicy::NextLine { degree: 2 });
    let lines: Vec<u64> = (0..200).collect();
    let now = run(&mut h, &lines, 0x60);
    assert!(h.stats().prefetch.issued > 0);
    h.reset_stats(now);
    assert_eq!(h.stats().prefetch.issued, 0);
}
