//! Pointer-chasing tree walks (masstree-style key-value store).
//!
//! Masstree's access pattern is a B-tree/trie descent: each lookup touches
//! a root (hot, cache-resident), a few interior nodes (warm), and a leaf
//! (cold, effectively random), with every step *dependent* on the previous
//! load — the canonical low-MLP pattern. A fraction of operations are
//! updates that dirty the leaf.

use coaxial_cpu::{TraceOp, TraceSource};
use coaxial_sim::SplitMix64;
use serde::Serialize;

use crate::core_base;

/// Shape of the tree workload.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TreeParams {
    /// Tree depth (levels walked per lookup, root inclusive).
    pub depth: u32,
    /// Total leaf lines (the cold footprint).
    pub leaf_lines: u64,
    /// Lines per interior level `k` = `interior_base << k` (level 0 = root).
    pub interior_base: u64,
    /// Mean non-memory instructions between node touches (key compares).
    pub mean_gap: f64,
    /// Fraction of lookups that are updates (dirty the leaf).
    pub update_frac: f64,
}

/// Infinite masstree-style trace.
pub struct TreeTrace {
    p: TreeParams,
    rng: SplitMix64,
    base: u64,
    /// Level within the current lookup (0 = about to touch root).
    level: u32,
    /// Whether the current lookup is an update.
    updating: bool,
}

impl TreeTrace {
    pub fn new(p: TreeParams, core: u32, seed: u64) -> Self {
        assert!(p.depth >= 2, "a tree walk needs at least root + leaf");
        let rng = SplitMix64::new(seed ^ ((core as u64) << 44) ^ 0x7EE5);
        Self { p, rng, base: core_base(core), level: 0, updating: false }
    }

    /// Line offsets of the levels: root at 0, level k spans
    /// `interior_base << k` lines starting after the previous levels,
    /// leaves last.
    fn level_span(&self, level: u32) -> (u64, u64) {
        if level + 1 == self.p.depth {
            // Leaf level.
            let mut start = 0;
            for l in 0..level {
                start += self.p.interior_base << l;
            }
            (start, self.p.leaf_lines)
        } else {
            let mut start = 0;
            for l in 0..level {
                start += self.p.interior_base << l;
            }
            (start, self.p.interior_base << level)
        }
    }
}

impl TreeTrace {
    /// The walk step after the gap draw: `(line, is_store, level)`.
    fn next_body(&mut self) -> (u64, bool, u32) {
        let level = self.level;
        let (start, span) = self.level_span(level);
        let line = self.base + start + self.rng.next_below(span);
        let is_leaf = level + 1 == self.p.depth;

        if level == 0 {
            self.updating = self.rng.chance(self.p.update_frac);
        }
        self.level = if is_leaf { 0 } else { level + 1 };
        (line, is_leaf && self.updating, level)
    }
}

impl TraceSource for TreeTrace {
    fn next_op(&mut self) -> TraceOp {
        let gap = coaxial_sim::trunc_u32(self.rng.next_exp(self.p.mean_gap).round());
        let (line, is_store, level) = self.next_body();
        if is_store {
            // The leaf update is a store dependent on the walk.
            let mut op = TraceOp::store(gap, line, 0x200 + level);
            op.depends_on_last_load = true;
            op
        } else {
            let op = TraceOp::load(gap, line, 0x200 + level);
            // Every step after the root consumes the previous node pointer.
            if level > 0 {
                op.dependent()
            } else {
                op
            }
        }
    }

    fn next_access(&mut self) -> (u64, bool) {
        let _ = self.rng.next_u64(); // the draw the gap sample would consume
        let (line, is_store, _) = self.next_body();
        (line, is_store)
    }

    fn save_state(&self) -> Option<Vec<u64>> {
        Some(vec![
            crate::snapshot_tag::TREE,
            self.rng.state(),
            u64::from(self.level),
            u64::from(self.updating),
        ])
    }

    fn restore_state(&mut self, state: &[u64]) -> bool {
        let [family, rng, level, updating] = *state else { return false };
        if family != crate::snapshot_tag::TREE || level >= u64::from(self.p.depth) || updating > 1 {
            return false;
        }
        let Ok(level) = u32::try_from(level) else { return false };
        self.rng = SplitMix64::from_state(rng);
        self.level = level;
        self.updating = updating != 0;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coaxial_cpu::MemKind;

    fn params() -> TreeParams {
        TreeParams {
            depth: 6,
            leaf_lines: 1 << 22,
            interior_base: 1 << 6,
            mean_gap: 12.0,
            update_frac: 0.1,
        }
    }

    #[test]
    fn walk_depth_cycles() {
        let mut t = TreeTrace::new(params(), 0, 1);
        // The first op of each lookup (root) is non-dependent; each lookup
        // emits exactly `depth` ops.
        let ops: Vec<TraceOp> = (0..60).map(|_| t.next_op()).collect();
        for (i, op) in ops.iter().enumerate() {
            if i % 6 == 0 {
                assert!(!op.depends_on_last_load, "root touch at {i} must be independent");
            } else {
                assert!(op.depends_on_last_load, "interior/leaf at {i} must chase");
            }
        }
    }

    #[test]
    fn root_is_hot_leaves_are_cold() {
        let mut t = TreeTrace::new(params(), 0, 2);
        let ops: Vec<TraceOp> = (0..6_000).map(|_| t.next_op()).collect();
        let region_mask = (1u64 << crate::CORE_REGION_BITS) - 1;
        let roots: Vec<u64> = ops.iter().step_by(6).map(|o| o.line_addr & region_mask).collect();
        let leaves: Vec<u64> =
            ops.iter().skip(5).step_by(6).map(|o| o.line_addr & region_mask).collect();
        let max_root = roots.iter().max().unwrap();
        let min_leaf = leaves.iter().min().unwrap();
        assert!(max_root < min_leaf, "root region below leaf region");
        // Leaves are spread over a large range.
        let leaf_span = leaves.iter().max().unwrap() - min_leaf;
        assert!(leaf_span > 1 << 20, "leaf span = {leaf_span}");
    }

    #[test]
    fn updates_dirty_leaves_only() {
        let mut t = TreeTrace::new(params(), 0, 3);
        for i in 0..12_000 {
            let op = t.next_op();
            if op.kind == MemKind::Store {
                assert_eq!(i % 6, 5, "stores only at leaf level");
            }
        }
    }

    #[test]
    fn update_fraction_converges() {
        let mut t = TreeTrace::new(params(), 0, 4);
        let n = 60_000;
        let stores = (0..n).filter(|_| t.next_op().kind == MemKind::Store).count();
        let per_lookup = stores as f64 / (n as f64 / 6.0);
        assert!((per_lookup - 0.1).abs() < 0.02, "update fraction = {per_lookup}");
    }

    #[test]
    fn snapshot_resumes_mid_stream() {
        let mut a = TreeTrace::new(params(), 1, 29);
        for _ in 0..100 {
            let _ = a.next_access();
        }
        let snap = a.save_state().expect("tree supports snapshots");
        let mut b = TreeTrace::new(params(), 1, 29);
        assert!(b.restore_state(&snap));
        for i in 0..300 {
            if i % 2 == 0 {
                assert_eq!(a.next_op(), b.next_op());
            } else {
                assert_eq!(a.next_access(), b.next_access());
            }
        }
        let mut bad = snap.clone();
        bad[2] = u64::from(params().depth); // level out of range
        assert!(!b.restore_state(&bad), "out-of-range level rejected");
    }

    #[test]
    #[should_panic(expected = "root + leaf")]
    fn shallow_tree_panics() {
        let mut p = params();
        p.depth = 1;
        let _ = TreeTrace::new(p, 0, 0);
    }
}
