//! Rate-controlled random memory traffic (paper Fig. 2a).
//!
//! Generates Poisson request arrivals at a target utilization of one
//! DDR5-4800 channel, with uniformly random addresses and a configurable
//! read:write mix — the methodology the paper uses to produce its
//! load-latency curve ("we control the load with random memory accesses of
//! configurable arrival rate").

use coaxial_dram::config::LINE_BYTES;
use coaxial_dram::MemRequest;
use coaxial_sim::{Cycle, SplitMix64};

/// Poisson arrival process of random line requests.
pub struct PoissonTraffic {
    rng: SplitMix64,
    /// Mean cycles between arrivals.
    mean_interarrival: f64,
    /// Next arrival time (fractional cycles carried to avoid drift).
    next_arrival: f64,
    /// Address space size in lines.
    footprint_lines: u64,
    /// Probability a request is a write.
    write_frac: f64,
    next_id: u64,
}

impl PoissonTraffic {
    /// Traffic targeting `utilization` (0–1] of `peak_gbs` GB/s.
    pub fn new(utilization: f64, peak_gbs: f64, write_frac: f64, seed: u64) -> Self {
        assert!(utilization > 0.0 && utilization <= 1.0);
        assert!((0.0..=1.0).contains(&write_frac));
        let bytes_per_cycle = coaxial_sim::gbs_to_bytes_per_cycle(peak_gbs) * utilization;
        let mean_interarrival = LINE_BYTES as f64 / bytes_per_cycle;
        Self {
            rng: SplitMix64::new(seed ^ 0x7AF1C),
            mean_interarrival,
            next_arrival: 0.0,
            footprint_lines: 1 << 26, // 4 GB: effectively random rows
            write_frac,
            next_id: 0,
        }
    }

    /// Mean cycles between arrivals (for tests / reporting).
    pub fn mean_interarrival(&self) -> f64 {
        self.mean_interarrival
    }

    /// All requests arriving at or before `now`. Call once per cycle.
    pub fn arrivals(&mut self, now: Cycle) -> Vec<MemRequest> {
        let mut out = Vec::new();
        while self.next_arrival <= now as f64 {
            let line = self.rng.next_below(self.footprint_lines);
            let id = self.next_id;
            self.next_id += 1;
            let req = if self.rng.chance(self.write_frac) {
                MemRequest::write(id, line, now)
            } else {
                MemRequest::read(id, line, now)
            };
            out.push(req);
            self.next_arrival += self.rng.next_exp(self.mean_interarrival);
        }
        out
    }

    /// Total requests generated so far.
    pub fn generated(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_rate_matches_target_utilization() {
        // 50% of 38.4 GB/s = 19.2 GB/s = 8 B/cycle = 1 line per 8 cycles.
        let mut t = PoissonTraffic::new(0.5, 38.4, 0.33, 1);
        assert!((t.mean_interarrival() - 8.0).abs() < 0.01);
        let horizon = 100_000u64;
        let mut n = 0u64;
        for now in 0..horizon {
            n += t.arrivals(now).len() as u64;
        }
        let per_cycle = n as f64 / horizon as f64;
        assert!((per_cycle - 0.125).abs() < 0.005, "rate = {per_cycle}");
    }

    #[test]
    fn write_fraction_respected() {
        let mut t = PoissonTraffic::new(0.8, 38.4, 0.25, 2);
        let mut reads = 0u64;
        let mut writes = 0u64;
        for now in 0..200_000 {
            for r in t.arrivals(now) {
                if r.is_write {
                    writes += 1;
                } else {
                    reads += 1;
                }
            }
        }
        let frac = writes as f64 / (reads + writes) as f64;
        assert!((frac - 0.25).abs() < 0.01, "write fraction = {frac}");
    }

    #[test]
    fn request_ids_are_unique_and_dense() {
        let mut t = PoissonTraffic::new(0.9, 38.4, 0.5, 3);
        let mut ids = Vec::new();
        for now in 0..10_000 {
            for r in t.arrivals(now) {
                ids.push(r.id);
            }
        }
        let n = ids.len() as u64;
        assert_eq!(ids, (0..n).collect::<Vec<_>>());
        assert_eq!(t.generated(), n);
    }

    #[test]
    #[should_panic]
    fn zero_utilization_rejected() {
        let _ = PoissonTraffic::new(0.0, 38.4, 0.0, 0);
    }
}
