//! Parameter-driven synthetic traces (SPEC, PARSEC, STREAM, kmeans).

use coaxial_cpu::{MemKind, TraceOp, TraceSource};
use coaxial_sim::SplitMix64;
use serde::Serialize;

use crate::core_base;

/// Statistical description of one workload's memory behaviour.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SyntheticParams {
    /// Mean non-memory instructions between memory operations.
    pub mean_gap: f64,
    /// Working-set size in 64 B lines (per core).
    pub footprint_lines: u64,
    /// Probability that an access continues a sequential run.
    pub spatial: f64,
    /// Probability that an access targets the hot region.
    pub hot_frac: f64,
    /// Hot-region size in lines (should fit on chip for locality to help).
    pub hot_lines: u64,
    /// Fraction of memory operations that are stores.
    pub write_frac: f64,
    /// Fraction of loads that depend on the previous load.
    pub pointer_chase: f64,
    /// Probability per op of toggling into/out of a burst phase; bursts
    /// compress gaps to ~0 and quiet phases stretch them, preserving the
    /// mean but adding the inter-arrival variance that drives tail queuing.
    pub burstiness: f64,
}

impl SyntheticParams {
    /// Sanity-check parameter ranges.
    pub fn validate(&self) {
        assert!(self.mean_gap >= 0.0);
        assert!(self.footprint_lines > 0);
        for p in [self.spatial, self.hot_frac, self.write_frac, self.pointer_chase, self.burstiness]
        {
            assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        }
        assert!(self.hot_lines > 0);
    }
}

/// Phase of the burst modulator.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Steady,
    Burst(u32),
    Quiet(u32),
}

/// Infinite trace stream realizing [`SyntheticParams`].
pub struct SyntheticTrace {
    p: SyntheticParams,
    rng: SplitMix64,
    base: u64,
    /// Sequential cursor within the footprint.
    cursor: u64,
    phase: Phase,
    /// Distinct PCs per behaviour class so MAP-I has something to learn.
    pc_seq: u32,
}

const BURST_LEN: u32 = 48;
const QUIET_LEN: u32 = 48;

impl SyntheticTrace {
    pub fn new(p: SyntheticParams, core: u32, seed: u64) -> Self {
        p.validate();
        let mut rng = SplitMix64::new(seed ^ ((core as u64) << 48) ^ 0x5EED);
        let cursor = rng.next_below(p.footprint_lines);
        Self { p, rng, base: core_base(core), cursor, phase: Phase::Steady, pc_seq: 0 }
    }

    /// Advance the burst phase machine (one Bernoulli draw in Steady) and
    /// return the phase's mean gap.
    fn advance_phase(&mut self) -> f64 {
        self.phase = match self.phase {
            Phase::Steady => {
                if self.rng.chance(self.p.burstiness) {
                    Phase::Burst(BURST_LEN)
                } else {
                    Phase::Steady
                }
            }
            Phase::Burst(0) => Phase::Quiet(QUIET_LEN),
            Phase::Burst(n) => Phase::Burst(n - 1),
            Phase::Quiet(0) => Phase::Steady,
            Phase::Quiet(n) => Phase::Quiet(n - 1),
        };
        match self.phase {
            Phase::Steady => self.p.mean_gap,
            Phase::Burst(_) => self.p.mean_gap * 0.1,
            Phase::Quiet(_) => self.p.mean_gap * 1.9,
        }
    }

    fn gap(&mut self) -> u32 {
        let mean = self.advance_phase();
        coaxial_sim::trunc_u32(self.rng.next_exp(mean).round())
    }

    fn address(&mut self) -> u64 {
        let line = if self.rng.chance(self.p.hot_frac) {
            // Hot region at the start of the footprint.
            self.rng.next_below(self.p.hot_lines)
        } else if self.rng.chance(self.p.spatial) {
            // cursor < footprint_lines always holds, so the wrap is a
            // compare instead of a (slow, hot-path) integer modulo.
            self.cursor += 1;
            if self.cursor == self.p.footprint_lines {
                self.cursor = 0;
            }
            self.cursor
        } else {
            self.cursor = self.rng.next_below(self.p.footprint_lines);
            self.cursor
        };
        self.base + line
    }
}

impl TraceSource for SyntheticTrace {
    fn next_op(&mut self) -> TraceOp {
        let gap = self.gap();
        let line_addr = self.address();
        let is_store = self.rng.chance(self.p.write_frac);
        let depends = !is_store && self.rng.chance(self.p.pointer_chase);
        // A small rotating set of PCs, partitioned by behaviour: stores,
        // chasing loads, and plain loads get distinct PC ranges.
        self.pc_seq = (self.pc_seq + 1) & 0x3F;
        let pc = if is_store {
            0x1000 + self.pc_seq
        } else if depends {
            0x2000 + self.pc_seq
        } else {
            0x3000 + self.pc_seq
        };
        TraceOp {
            nonmem_before: gap,
            kind: if is_store { MemKind::Store } else { MemKind::Load },
            line_addr,
            pc,
            depends_on_last_load: depends,
        }
    }

    fn next_access(&mut self) -> (u64, bool) {
        // Same draw sequence as next_op, minus the ln/round on the gap.
        let _ = self.advance_phase();
        let _ = self.rng.next_u64(); // the draw next_exp would consume
        let line_addr = self.address();
        let is_store = self.rng.chance(self.p.write_frac);
        if !is_store {
            let _ = self.rng.chance(self.p.pointer_chase);
        }
        self.pc_seq = (self.pc_seq + 1) & 0x3F;
        (line_addr, is_store)
    }

    fn save_state(&self) -> Option<Vec<u64>> {
        let (tag, n) = match self.phase {
            Phase::Steady => (0u64, 0u32),
            Phase::Burst(n) => (1, n),
            Phase::Quiet(n) => (2, n),
        };
        Some(vec![
            crate::snapshot_tag::SYNTHETIC,
            self.rng.state(),
            self.cursor,
            tag,
            u64::from(n),
            u64::from(self.pc_seq),
        ])
    }

    fn restore_state(&mut self, state: &[u64]) -> bool {
        let [family, rng, cursor, tag, n, pc_seq] = *state else { return false };
        if family != crate::snapshot_tag::SYNTHETIC || cursor >= self.p.footprint_lines {
            return false;
        }
        let (Ok(n), Ok(pc_seq)) = (u32::try_from(n), u32::try_from(pc_seq)) else {
            return false;
        };
        self.phase = match tag {
            0 => Phase::Steady,
            1 => Phase::Burst(n),
            2 => Phase::Quiet(n),
            _ => return false,
        };
        self.rng = SplitMix64::from_state(rng);
        self.cursor = cursor;
        self.pc_seq = pc_seq;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SyntheticParams {
        SyntheticParams {
            mean_gap: 20.0,
            footprint_lines: 1 << 20,
            spatial: 0.5,
            hot_frac: 0.2,
            hot_lines: 1 << 10,
            write_frac: 0.3,
            pointer_chase: 0.1,
            burstiness: 0.02,
        }
    }

    #[test]
    fn addresses_stay_in_core_region() {
        let mut t = SyntheticTrace::new(params(), 3, 1);
        for _ in 0..10_000 {
            let op = t.next_op();
            assert_eq!(op.line_addr >> crate::CORE_REGION_BITS, 3);
            assert!((op.line_addr & ((1 << crate::CORE_REGION_BITS) - 1)) < 1 << 20);
        }
    }

    #[test]
    fn mean_gap_converges() {
        let mut t = SyntheticTrace::new(params(), 0, 2);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| t.next_op().nonmem_before as f64).sum();
        let mean = total / n as f64;
        assert!((mean - 20.0).abs() < 2.0, "mean gap = {mean}");
    }

    #[test]
    fn write_fraction_converges() {
        let mut t = SyntheticTrace::new(params(), 0, 3);
        let n = 50_000;
        let stores = (0..n).filter(|_| t.next_op().kind == MemKind::Store).count();
        let frac = stores as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "store fraction = {frac}");
    }

    #[test]
    fn hot_region_concentrates_accesses() {
        let mut t = SyntheticTrace::new(params(), 0, 4);
        let n = 50_000;
        let hot = (0..n)
            .filter(|_| {
                let op = t.next_op();
                (op.line_addr & ((1 << crate::CORE_REGION_BITS) - 1)) < (1 << 10)
            })
            .count();
        let frac = hot as f64 / n as f64;
        // hot_frac plus incidental cold hits in [0, 2^10).
        assert!(frac > 0.18, "hot fraction = {frac}");
    }

    #[test]
    fn different_cores_see_different_streams() {
        let mut a = SyntheticTrace::new(params(), 0, 9);
        let mut b = SyntheticTrace::new(params(), 1, 9);
        let same = (0..100)
            .filter(|_| {
                let (x, y) = (a.next_op(), b.next_op());
                x.line_addr & 0x3FFFF == y.line_addr & 0x3FFFF
            })
            .count();
        assert!(same < 20, "streams should decorrelate, {same} collisions");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SyntheticTrace::new(params(), 0, 11);
        let mut b = SyntheticTrace::new(params(), 0, 11);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn snapshot_resumes_mid_stream() {
        let mut a = SyntheticTrace::new(params(), 2, 19);
        for _ in 0..777 {
            let _ = a.next_access();
        }
        let snap = a.save_state().expect("synthetic supports snapshots");
        // Fresh generator, same constructor args, restored cursors: the
        // continuation must match op-for-op (both next_op and next_access).
        let mut b = SyntheticTrace::new(params(), 2, 19);
        assert!(b.restore_state(&snap));
        for i in 0..500 {
            if i % 3 == 0 {
                assert_eq!(a.next_op(), b.next_op());
            } else {
                assert_eq!(a.next_access(), b.next_access());
            }
        }
        assert!(!b.restore_state(&snap[1..]), "wrong shape rejected");
        let mut alien = snap.clone();
        alien[0] = crate::snapshot_tag::TREE;
        assert!(!b.restore_state(&alien), "wrong family rejected");
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn invalid_probability_panics() {
        let mut p = params();
        p.spatial = 1.5;
        p.validate();
    }
}
