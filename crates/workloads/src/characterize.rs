//! Workload characterization: measure a generator's statistical profile
//! directly from its op stream (no simulation). Used to calibrate the
//! registry against Table IV and by the `coaxial profile` CLI command.

use std::collections::HashSet;

use coaxial_cpu::{MemKind, TraceSource};
use serde::Serialize;

use crate::registry::Workload;

/// Empirical profile of a trace stream.
#[derive(Debug, Clone, Serialize)]
pub struct TraceProfile {
    pub workload: String,
    /// Ops sampled.
    pub ops: u64,
    /// Instructions represented (ops + gaps).
    pub instructions: u64,
    /// Memory operations per kilo-instruction.
    pub density_per_ki: f64,
    /// Fraction of memory ops that are stores.
    pub write_frac: f64,
    /// Fraction of ops that depend on the previous load.
    pub dependent_frac: f64,
    /// Fraction of ops whose line is exactly the previous line + 1.
    pub sequential_frac: f64,
    /// Distinct lines touched in the sample.
    pub unique_lines: u64,
    /// Fraction of ops that re-touch a line already seen in the sample
    /// (a proxy for temporal locality).
    pub reuse_frac: f64,
}

/// Sample `n` ops from a workload's generator and profile them.
pub fn characterize(w: &Workload, core: u32, seed: u64, n: u64) -> TraceProfile {
    assert!(n > 0);
    let mut t = w.trace(core, seed);
    let mut instructions = 0u64;
    let mut stores = 0u64;
    let mut dependent = 0u64;
    let mut sequential = 0u64;
    let mut reuse = 0u64;
    let mut seen: HashSet<u64> = HashSet::new();
    let mut prev_line: Option<u64> = None;
    for _ in 0..n {
        let op = t.next_op();
        instructions += op.instructions();
        if op.kind == MemKind::Store {
            stores += 1;
        }
        if op.depends_on_last_load {
            dependent += 1;
        }
        if prev_line == Some(op.line_addr.wrapping_sub(1)) {
            sequential += 1;
        }
        prev_line = Some(op.line_addr);
        if !seen.insert(op.line_addr) {
            reuse += 1;
        }
    }
    TraceProfile {
        workload: w.name.to_string(),
        ops: n,
        instructions,
        density_per_ki: n as f64 * 1000.0 / instructions as f64,
        write_frac: stores as f64 / n as f64,
        dependent_frac: dependent as f64 / n as f64,
        sequential_frac: sequential as f64 / n as f64,
        unique_lines: seen.len() as u64,
        reuse_frac: reuse as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(name: &str) -> TraceProfile {
        characterize(Workload::by_name(name).unwrap(), 0, 42, 50_000)
    }

    #[test]
    fn stream_is_sequential_and_independent() {
        let p = profile("stream-copy");
        assert!(p.sequential_frac > 0.8, "streaming: seq = {}", p.sequential_frac);
        assert_eq!(p.dependent_frac, 0.0, "STREAM has no pointer chasing");
        assert!((p.write_frac - 0.5).abs() < 0.05, "copy is 1:1 ld:st");
    }

    #[test]
    fn masstree_chases_pointers() {
        let p = profile("masstree");
        // 5 of every 6 tree-walk steps depend on the previous load.
        assert!(p.dependent_frac > 0.7, "dep = {}", p.dependent_frac);
        assert!(p.sequential_frac < 0.1, "tree walks are not sequential");
    }

    #[test]
    fn density_tracks_registry_estimate() {
        // `density_per_ki()` is declared from the mean gap alone; graph
        // generators add gap-1 scatter stores on top, so allow a wider
        // band there.
        for (name, tol) in [("lbm", 0.15), ("pop2", 0.15), ("PageRank", 0.30), ("kmeans", 0.15)] {
            let w = Workload::by_name(name).unwrap();
            let p = characterize(w, 0, 7, 50_000);
            let expected = w.density_per_ki();
            let rel = (p.density_per_ki - expected).abs() / expected;
            assert!(rel < tol, "{name}: measured {} vs declared {expected}", p.density_per_ki);
        }
    }

    #[test]
    fn hot_workloads_reuse_lines() {
        let hot = profile("pop2"); // 88% hot-region accesses
        let cold = profile("stream-add"); // pure streaming
        assert!(
            hot.reuse_frac > cold.reuse_frac + 0.3,
            "pop2 reuse {} must far exceed stream {}",
            hot.reuse_frac,
            cold.reuse_frac
        );
    }

    #[test]
    fn mpki_intensity_ordering_is_visible_in_profiles() {
        // High-MPKI workloads touch more unique lines per instruction.
        let lbm = profile("lbm");
        let pop2 = profile("pop2");
        let lbm_rate = lbm.unique_lines as f64 / lbm.instructions as f64;
        let pop2_rate = pop2.unique_lines as f64 / pop2.instructions as f64;
        assert!(lbm_rate > 5.0 * pop2_rate, "lbm {lbm_rate} vs pop2 {pop2_rate}");
    }
}
