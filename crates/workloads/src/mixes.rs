//! Random workload mixes (paper Fig. 6).
//!
//! Each mix assigns 12 workloads, sampled uniformly at random from the 36,
//! one to each core of the simulated 12-core slice.

use coaxial_sim::SplitMix64;

use crate::registry::Workload;

/// Number of mixes evaluated in the paper.
pub const PAPER_MIX_COUNT: usize = 10;

/// Sample one mix of `cores` workloads, deterministic per `mix_id`.
pub fn mix(mix_id: u64, cores: usize) -> Vec<&'static Workload> {
    let all = Workload::all();
    let mut rng = SplitMix64::new(0x4D31_5800_u64 ^ mix_id.wrapping_mul(0x9E37_79B9));
    (0..cores).map(|_| &all[coaxial_sim::idx(rng.next_below(all.len() as u64))]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_have_requested_size() {
        assert_eq!(mix(0, 12).len(), 12);
        assert_eq!(mix(3, 4).len(), 4);
    }

    #[test]
    fn mixes_are_deterministic() {
        let a: Vec<&str> = mix(5, 12).iter().map(|w| w.name).collect();
        let b: Vec<&str> = mix(5, 12).iter().map(|w| w.name).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_mixes_differ() {
        let a: Vec<&str> = mix(0, 12).iter().map(|w| w.name).collect();
        let b: Vec<&str> = mix(1, 12).iter().map(|w| w.name).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn mixes_draw_from_multiple_suites() {
        // Across the 10 paper mixes, at least 20 distinct workloads appear.
        let mut seen = std::collections::HashSet::new();
        for m in 0..PAPER_MIX_COUNT as u64 {
            for w in mix(m, 12) {
                seen.insert(w.name);
            }
        }
        assert!(seen.len() >= 20, "only {} distinct workloads drawn", seen.len());
    }
}
