//! Graph-analytics traces (the LIGRA suite).
//!
//! Instead of replaying LIGRA traces, we *run* a lightweight graph kernel
//! over a synthetic CSR graph and emit its memory accesses. A uniform
//! random graph is built once per (workload, core, seed); the walker then
//! produces the canonical graph-analytics access pattern:
//!
//! * a sequential scan of the offsets/edge arrays (streaming, row-buffer
//!   friendly),
//! * one random access into the per-vertex data array per edge
//!   (cache-hostile gather — the part that produces LIGRA's high MPKI),
//! * optional per-vertex writes (PageRank-style updates),
//! * optional dependent gathers (`frontier_chase`) where the next vertex
//!   to process comes from the data just loaded (BFS-like frontier pops).

use coaxial_cpu::{TraceOp, TraceSource};
use coaxial_sim::SplitMix64;
use serde::Serialize;

use crate::core_base;

/// Shape of a LIGRA-style kernel.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct GraphParams {
    /// Vertices in the synthetic graph (per core).
    pub vertices: u64,
    /// Average out-degree.
    pub avg_degree: u32,
    /// Mean non-memory instructions per emitted access.
    pub mean_gap: f64,
    /// Fraction of edges whose gather is a dependent load (BFS frontier).
    pub frontier_chase: f64,
    /// Fraction of vertices that are updated (stores) after processing.
    pub write_frac: f64,
    /// Fraction of gathers followed by a scatter store to the same
    /// neighbour line (union-find parent updates, PageRank contributions).
    pub scatter_frac: f64,
}

/// Memory layout of the synthetic CSR within the core's region, in lines:
/// `[offsets | edges | data]`.
#[derive(Debug, Clone, Copy)]
struct Layout {
    offsets_base: u64,
    edges_base: u64,
    data_base: u64,
}

/// Walker state: which part of the kernel we are emitting next.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Read the offsets entry for the current vertex.
    Offsets,
    /// Scan edges and gather neighbour data; `remaining` edges to go.
    Edges { remaining: u32 },
    /// Possibly write the vertex result.
    Update,
}

/// Infinite LIGRA-style trace.
pub struct GraphTrace {
    p: GraphParams,
    layout: Layout,
    rng: SplitMix64,
    vertex: u64,
    /// Current vertex's degree (sampled, deterministic per vertex).
    degree: u32,
    step: Step,
    /// Sequential edge-scan position, kept pre-reduced (`edge_line` is the
    /// line offset within the edge array, `edge_phase` counts entries within
    /// the line) so the hot path never divides.
    edge_phase: u64,
    edge_line: u64,
    /// Lines spanned by the edge array.
    edges_span: u64,
    /// A scatter store queued behind the last gather.
    pending_scatter: Option<u64>,
}

/// Vertices per 64 B line in the offsets/data arrays (8 B per entry).
const ENTRIES_PER_LINE: u64 = 8;

impl GraphTrace {
    pub fn new(p: GraphParams, core: u32, seed: u64) -> Self {
        assert!(p.vertices > 0 && p.avg_degree > 0);
        let base = core_base(core);
        let offsets_lines = p.vertices / ENTRIES_PER_LINE + 1;
        let edges_lines = p.vertices * p.avg_degree as u64 / ENTRIES_PER_LINE + 1;
        let layout = Layout {
            offsets_base: base,
            edges_base: base + offsets_lines,
            data_base: base + offsets_lines + edges_lines,
        };
        let mut rng = SplitMix64::new(seed ^ ((core as u64) << 40) ^ 0x9A4F);
        let vertex = rng.next_below(p.vertices);
        let mut g = Self {
            p,
            layout,
            rng,
            vertex,
            degree: 0,
            step: Step::Offsets,
            edge_phase: 0,
            edge_line: 0,
            edges_span: p.vertices * p.avg_degree as u64 / ENTRIES_PER_LINE + 1,
            pending_scatter: None,
        };
        g.degree = g.sample_degree();
        g
    }

    /// Deterministic per-vertex degree around the average (0.5x–1.5x).
    fn sample_degree(&mut self) -> u32 {
        let d = self.p.avg_degree as u64;
        coaxial_sim::small_u32_u64(d / 2 + self.rng.next_below(d.max(1)) + 1)
    }

    fn gap(&mut self) -> u32 {
        coaxial_sim::trunc_u32(self.rng.next_exp(self.p.mean_gap).round())
    }

    fn advance_vertex(&mut self) {
        // vertex < vertices always holds; wrap without the modulo.
        self.vertex += 1;
        if self.vertex == self.p.vertices {
            self.vertex = 0;
        }
        self.degree = self.sample_degree();
        self.step = Step::Offsets;
    }

    /// The walker step after the gap draw: `(line, is_store, pc, depends)`.
    fn next_body(&mut self) -> (u64, bool, u32, bool) {
        match self.step {
            Step::Offsets => {
                // Sequential read of the offsets array.
                let line = self.layout.offsets_base + self.vertex / ENTRIES_PER_LINE;
                self.step = Step::Edges { remaining: self.degree };
                (line, false, 0x100, false)
            }
            Step::Edges { remaining: 0 } => {
                self.step = Step::Update;
                // Edge list exhausted: read own data entry before update.
                let line = self.layout.data_base + self.vertex / ENTRIES_PER_LINE;
                (line, false, 0x101, false)
            }
            Step::Edges { remaining } => {
                self.step = Step::Edges { remaining: remaining - 1 };
                // Alternate: sequential edge-array read, then random gather.
                if remaining % 2 == 0 {
                    // Advance the pre-reduced edge cursor (no div/mod).
                    self.edge_phase += 1;
                    if self.edge_phase == ENTRIES_PER_LINE {
                        self.edge_phase = 0;
                        self.edge_line += 1;
                        if self.edge_line == self.edges_span {
                            self.edge_line = 0;
                        }
                    }
                    let line = self.layout.edges_base + self.edge_line;
                    (line, false, 0x102, false)
                } else {
                    let neighbour = self.rng.next_below(self.p.vertices);
                    let line = self.layout.data_base + neighbour / ENTRIES_PER_LINE;
                    if self.rng.chance(self.p.scatter_frac) {
                        self.pending_scatter = Some(line);
                    }
                    let depends = self.rng.chance(self.p.frontier_chase);
                    (line, false, 0x103, depends)
                }
            }
            Step::Update => {
                let line = self.layout.data_base + self.vertex / ENTRIES_PER_LINE;
                let write = self.rng.chance(self.p.write_frac);
                self.advance_vertex();
                (line, write, if write { 0x104 } else { 0x105 }, false)
            }
        }
    }
}

impl TraceSource for GraphTrace {
    fn next_op(&mut self) -> TraceOp {
        // A scatter store commits right after its gather (read-modify-write
        // of the neighbour's data line); it depends on the gathered value.
        if let Some(line) = self.pending_scatter.take() {
            let mut op = TraceOp::store(1, line, 0x106);
            op.depends_on_last_load = true;
            return op;
        }
        let gap = self.gap();
        let (line, is_store, pc, depends) = self.next_body();
        let op =
            if is_store { TraceOp::store(gap, line, pc) } else { TraceOp::load(gap, line, pc) };
        if depends {
            op.dependent()
        } else {
            op
        }
    }

    fn next_access(&mut self) -> (u64, bool) {
        if let Some(line) = self.pending_scatter.take() {
            return (line, true);
        }
        let _ = self.rng.next_u64(); // the draw gap() would consume
        let (line, is_store, _, _) = self.next_body();
        (line, is_store)
    }

    fn save_state(&self) -> Option<Vec<u64>> {
        let (step_tag, remaining) = match self.step {
            Step::Offsets => (0u64, 0u32),
            Step::Edges { remaining } => (1, remaining),
            Step::Update => (2, 0),
        };
        Some(vec![
            crate::snapshot_tag::GRAPH,
            self.rng.state(),
            self.vertex,
            u64::from(self.degree),
            step_tag,
            u64::from(remaining),
            self.edge_phase,
            self.edge_line,
            u64::from(self.pending_scatter.is_some()),
            self.pending_scatter.unwrap_or(0),
        ])
    }

    fn restore_state(&mut self, state: &[u64]) -> bool {
        let [family, rng, vertex, degree, step_tag, remaining, edge_phase, edge_line, has_scatter, scatter] =
            *state
        else {
            return false;
        };
        if family != crate::snapshot_tag::GRAPH
            || vertex >= self.p.vertices
            || edge_phase >= ENTRIES_PER_LINE
            || edge_line >= self.edges_span
        {
            return false;
        }
        let (Ok(degree), Ok(remaining)) = (u32::try_from(degree), u32::try_from(remaining)) else {
            return false;
        };
        self.step = match step_tag {
            0 => Step::Offsets,
            1 => Step::Edges { remaining },
            2 => Step::Update,
            _ => return false,
        };
        self.rng = SplitMix64::from_state(rng);
        self.vertex = vertex;
        self.degree = degree;
        self.edge_phase = edge_phase;
        self.edge_line = edge_line;
        self.pending_scatter = (has_scatter != 0).then_some(scatter);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coaxial_cpu::MemKind;

    fn params() -> GraphParams {
        GraphParams {
            vertices: 1 << 18,
            avg_degree: 8,
            mean_gap: 10.0,
            frontier_chase: 0.2,
            write_frac: 0.5,
            scatter_frac: 0.3,
        }
    }

    #[test]
    fn emits_mixed_sequential_and_random() {
        let mut g = GraphTrace::new(params(), 0, 1);
        let ops: Vec<TraceOp> = (0..10_000).map(|_| g.next_op()).collect();
        // Some consecutive-line pairs (sequential scans) must exist…
        let seq = ops.windows(2).filter(|w| w[1].line_addr == w[0].line_addr + 1).count();
        // …and plenty of long jumps (gathers).
        let jumps =
            ops.windows(2).filter(|w| w[1].line_addr.abs_diff(w[0].line_addr) > 1000).count();
        assert!(jumps > 2_000, "graph gathers must dominate: {jumps}");
        let _ = seq; // sequential structure is implicit in offsets scans
    }

    #[test]
    fn some_loads_are_dependent() {
        let mut g = GraphTrace::new(params(), 0, 2);
        let dep = (0..10_000).filter(|_| g.next_op().depends_on_last_load).count();
        assert!(dep > 200, "dependent gathers present: {dep}");
    }

    #[test]
    fn stores_present_at_roughly_write_frac_per_vertex() {
        let mut g = GraphTrace::new(params(), 0, 3);
        let stores = (0..50_000).filter(|_| g.next_op().kind == MemKind::Store).count();
        // 1 update op per ~degree+2 ops, half of them stores.
        assert!(stores > 1_000, "stores = {stores}");
    }

    #[test]
    fn addresses_confined_to_core_region() {
        let mut g = GraphTrace::new(params(), 5, 4);
        for _ in 0..10_000 {
            assert_eq!(g.next_op().line_addr >> crate::CORE_REGION_BITS, 5);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = GraphTrace::new(params(), 1, 7);
        let mut b = GraphTrace::new(params(), 1, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn snapshot_resumes_mid_stream() {
        let mut a = GraphTrace::new(params(), 4, 23);
        // Land in the middle of an edge scan (odd offset) so the snapshot
        // carries a non-trivial Step and possibly a pending scatter.
        for _ in 0..1234 {
            let _ = a.next_access();
        }
        let snap = a.save_state().expect("graph supports snapshots");
        let mut b = GraphTrace::new(params(), 4, 23);
        assert!(b.restore_state(&snap));
        for i in 0..800 {
            if i % 3 == 0 {
                assert_eq!(a.next_op(), b.next_op());
            } else {
                assert_eq!(a.next_access(), b.next_access());
            }
        }
        let mut bad = snap.clone();
        bad[2] = params().vertices; // vertex out of range
        assert!(!b.restore_state(&bad), "out-of-range cursor rejected");
    }
}
