//! Workload generators standing in for the paper's trace suite.
//!
//! The paper drives ChampSim with dynamic execution traces of 36 workloads
//! (SPEC-speed 2017, LIGRA graph analytics, STREAM, PARSEC, masstree,
//! kmeans). Those traces are not redistributable, so this crate generates
//! *statistically equivalent* instruction streams (see DESIGN.md §2):
//! every workload is characterized by its memory-op density, footprint,
//! spatial locality, pointer-chase fraction, write fraction, and
//! burstiness — the properties that determine all of the paper's results
//! (MPKI, bandwidth demand, R:W ratio, and MLP).
//!
//! Three generator families cover the suite:
//!
//! * [`synthetic::SyntheticTrace`] — parameter-driven streams (SPEC,
//!   PARSEC, STREAM, kmeans);
//! * [`graph::GraphTrace`] — walks over a real synthetic CSR graph
//!   (LIGRA workloads): sequential edge-array scans interleaved with
//!   random per-neighbor data accesses;
//! * [`tree::TreeTrace`] — dependent pointer-chasing walks over a tree
//!   (masstree).
//!
//! [`registry::Workload`] names all 36 workloads with the paper's Table IV
//! reference points recorded alongside; [`mixes`] reproduces the Fig. 6
//! random 12-workload mixes; [`traffic::PoissonTraffic`] is the
//! rate-controlled random load used for the Fig. 2a load-latency curve.

// No unsafe anywhere in this crate (lint U01 audit); keep it that way.
#![forbid(unsafe_code)]

pub mod characterize;
pub mod graph;
pub mod mixes;
pub mod registry;
pub mod synthetic;
pub mod traffic;
pub mod tree;

pub use characterize::{characterize, TraceProfile};
pub use registry::{Suite, Workload};
pub use synthetic::SyntheticParams;
pub use traffic::PoissonTraffic;

/// Each core works in its own 2^34-line (1 TB) address region, modelling
/// the paper's multi-programmed setup (the same workload on every core,
/// separate address spaces).
pub const CORE_REGION_BITS: u32 = 34;

/// Base line address of a core's private region.
#[inline]
pub fn core_base(core: u32) -> u64 {
    (core as u64) << CORE_REGION_BITS
}

/// Family discriminants leading every generator cursor snapshot
/// (`TraceSource::save_state`), so a snapshot restored onto the wrong
/// generator family is rejected instead of silently misinterpreted.
pub mod snapshot_tag {
    pub const SYNTHETIC: u64 = 1;
    pub const GRAPH: u64 = 2;
    pub const TREE: u64 = 3;
}
