//! The 36 evaluated workloads (paper Table IV), with the paper's measured
//! baseline IPC and LLC MPKI recorded as calibration reference points.
//!
//! Parameters were chosen so that each workload's *class* is faithful:
//! memory-op density tracks the paper's MPKI, write fractions track its
//! R:W analysis (Fig. 9), pointer-chase fractions reflect known workload
//! behaviour (mcf/omnetpp/canneal/masstree chase pointers; STREAM does
//! not), and STREAM/lbm are bursty, bandwidth-saturating streams.
//! Absolute IPC need not match the paper (different core model); the
//! *relationships* — who is bandwidth-bound, who is latency-bound, who is
//! cache-resident — are what the experiments depend on.

use std::sync::OnceLock;

use coaxial_cpu::TraceSource;
use serde::Serialize;

use crate::graph::{GraphParams, GraphTrace};
use crate::synthetic::{SyntheticParams, SyntheticTrace};
use crate::tree::{TreeParams, TreeTrace};

/// Benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Suite {
    Spec,
    Ligra,
    Stream,
    Parsec,
    Kvs,
}

/// Generator family + parameters.
#[derive(Debug, Clone, Copy)]
enum Kind {
    Synthetic(SyntheticParams),
    Graph(GraphParams),
    Tree(TreeParams),
}

/// One named workload.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    pub name: &'static str,
    pub suite: Suite,
    /// Paper Table IV baseline IPC (reference, not a target to match).
    pub paper_ipc: f64,
    /// Paper Table IV baseline LLC MPKI.
    pub paper_mpki: u32,
    kind: Kind,
}

/// Mean gap for a density of `d` memory ops per kilo-instruction.
const fn gap(d: f64) -> f64 {
    1000.0 / d - 1.0
}

/// Convenience constructor for SPEC/PARSEC-style parameter sets.
#[allow(clippy::too_many_arguments)]
const fn synth(
    name: &'static str,
    suite: Suite,
    ipc: f64,
    mpki: u32,
    density: f64,
    footprint_lines: u64,
    spatial: f64,
    hot_frac: f64,
    hot_lines: u64,
    write_frac: f64,
    pointer_chase: f64,
    burstiness: f64,
) -> Workload {
    Workload {
        name,
        suite,
        paper_ipc: ipc,
        paper_mpki: mpki,
        kind: Kind::Synthetic(SyntheticParams {
            mean_gap: gap(density),
            footprint_lines,
            spatial,
            hot_frac,
            hot_lines,
            write_frac,
            pointer_chase,
            burstiness,
        }),
    }
}

#[allow(clippy::too_many_arguments)]
const fn ligra(
    name: &'static str,
    ipc: f64,
    mpki: u32,
    vertices: u64,
    avg_degree: u32,
    mean_gap: f64,
    frontier_chase: f64,
    write_frac: f64,
    scatter_frac: f64,
) -> Workload {
    Workload {
        name,
        suite: Suite::Ligra,
        paper_ipc: ipc,
        paper_mpki: mpki,
        kind: Kind::Graph(GraphParams {
            vertices,
            avg_degree,
            mean_gap,
            frontier_chase,
            write_frac,
            scatter_frac,
        }),
    }
}

const MB128: u64 = 1 << 21; // lines
const MB64: u64 = 1 << 20;
const MB32: u64 = 1 << 19;

fn build_all() -> Vec<Workload> {
    use Suite::*;
    vec![
        // ── SPEC-speed 2017 ────────────────────────────────────────────
        synth("lbm", Spec, 0.14, 64, 75.0, MB128, 0.90, 0.10, 1 << 10, 0.35, 0.05, 0.05),
        synth("bwaves", Spec, 0.33, 14, 20.0, MB64, 0.80, 0.25, 1 << 11, 0.25, 0.10, 0.03),
        synth("cactusBSSN", Spec, 0.68, 8, 12.0, MB64, 0.70, 0.30, 1 << 11, 0.20, 0.10, 0.04),
        synth("fotonik3d", Spec, 0.32, 22, 26.0, MB64, 0.85, 0.15, 1 << 10, 0.30, 0.05, 0.03),
        synth("cam4", Spec, 0.87, 6, 10.0, MB32, 0.60, 0.40, 1 << 11, 0.45, 0.10, 0.02),
        synth("wrf", Spec, 0.61, 11, 14.0, MB64, 0.75, 0.20, 1 << 11, 0.30, 0.10, 0.02),
        synth("mcf", Spec, 0.79, 13, 22.0, MB128, 0.20, 0.40, 1 << 12, 0.15, 0.45, 0.02),
        synth("roms", Spec, 0.77, 6, 9.0, MB64, 0.80, 0.35, 1 << 11, 0.30, 0.05, 0.02),
        synth("pop2", Spec, 1.50, 3, 25.0, MB32, 0.60, 0.88, 1 << 12, 0.25, 0.05, 0.01),
        synth("omnetpp", Spec, 0.50, 10, 18.0, MB32, 0.30, 0.45, 1 << 12, 0.25, 0.30, 0.02),
        synth("xalancbmk", Spec, 0.50, 12, 20.0, 32 << 10, 0.40, 0.45, 1 << 11, 0.20, 0.20, 0.02),
        synth("gcc", Spec, 0.27, 19, 30.0, MB32, 0.25, 0.35, 1 << 11, 0.20, 0.65, 0.01),
        // ── LIGRA graph analytics ──────────────────────────────────────
        ligra("PageRank", 0.36, 40, 1 << 21, 12, 10.0, 0.10, 0.80, 0.45),
        ligra("PageRankDelta", 0.30, 27, 1 << 20, 10, 16.0, 0.10, 0.60, 0.40),
        ligra("Components", 0.36, 48, 1 << 21, 14, 8.5, 0.10, 0.50, 0.40),
        ligra("Comp-shortcut", 0.34, 48, 1 << 21, 14, 8.5, 0.15, 0.50, 0.40),
        ligra("BC", 0.33, 34, 1 << 21, 10, 12.0, 0.15, 0.40, 0.30),
        ligra("Radii", 0.41, 33, 1 << 21, 10, 12.5, 0.10, 0.40, 0.30),
        ligra("CF", 0.80, 12, 1 << 18, 16, 18.0, 0.05, 0.50, 0.30),
        ligra("BFSCC", 0.65, 17, 1 << 20, 8, 24.0, 0.25, 0.30, 0.20),
        ligra("BellmanFord", 0.82, 9, 1 << 19, 10, 40.0, 0.10, 0.40, 0.30),
        ligra("BFS", 0.66, 15, 1 << 20, 8, 28.0, 0.30, 0.30, 0.15),
        ligra("BFS-Bitvector", 0.84, 15, 1 << 20, 8, 28.0, 0.20, 0.20, 0.15),
        ligra("Triangle", 0.61, 21, 1 << 20, 12, 20.0, 0.05, 0.10, 0.05),
        ligra("MIS", 0.50, 25, 1 << 20, 12, 17.0, 0.15, 0.40, 0.30),
        // ── STREAM kernels ─────────────────────────────────────────────
        synth("stream-copy", Stream, 0.17, 58, 60.0, MB128, 0.98, 0.02, 64, 0.50, 0.0, 0.02),
        synth("stream-scale", Stream, 0.21, 48, 50.0, MB128, 0.98, 0.02, 64, 0.50, 0.0, 0.02),
        synth("stream-add", Stream, 0.16, 69, 71.0, MB128, 0.98, 0.02, 64, 0.33, 0.0, 0.02),
        synth("stream-triad", Stream, 0.18, 59, 61.0, MB128, 0.98, 0.02, 64, 0.33, 0.0, 0.02),
        // ── PARSEC ─────────────────────────────────────────────────────
        synth("fluidanimate", Parsec, 0.73, 7, 11.0, MB64, 0.70, 0.35, 1 << 11, 0.30, 0.10, 0.02),
        synth("facesim", Parsec, 0.74, 6, 9.0, MB64, 0.75, 0.30, 1 << 11, 0.30, 0.05, 0.02),
        synth("raytrace", Parsec, 1.10, 5, 8.0, MB32, 0.40, 0.45, 1 << 12, 0.10, 0.20, 0.01),
        synth("streamcluster", Parsec, 0.95, 14, 16.0, MB64, 0.90, 0.12, 1 << 10, 0.05, 0.0, 0.02),
        synth("canneal", Parsec, 0.61, 7, 11.0, MB64, 0.20, 0.40, 1 << 12, 0.15, 0.30, 0.02),
        // ── KVS & data analytics ───────────────────────────────────────
        Workload {
            name: "masstree",
            suite: Kvs,
            paper_ipc: 0.37,
            paper_mpki: 21,
            kind: Kind::Tree(TreeParams {
                depth: 6,
                leaf_lines: 1 << 22,
                interior_base: 64,
                mean_gap: 7.0,
                update_frac: 0.15,
            }),
        },
        synth("kmeans", Kvs, 0.50, 36, 55.0, MB128, 0.95, 0.30, 1 << 10, 0.06, 0.0, 0.02),
    ]
}

static ALL: OnceLock<Vec<Workload>> = OnceLock::new();

impl Workload {
    /// All 36 workloads, in the paper's Table IV order (by suite).
    pub fn all() -> &'static [Workload] {
        ALL.get_or_init(build_all)
    }

    /// Look up a workload by its (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<&'static Workload> {
        Self::all().iter().find(|w| w.name.eq_ignore_ascii_case(name))
    }

    /// Workloads belonging to one suite.
    pub fn suite(suite: Suite) -> impl Iterator<Item = &'static Workload> {
        Self::all().iter().filter(move |w| w.suite == suite)
    }

    /// Build the trace stream for one core. Distinct `(core, seed)` pairs
    /// give decorrelated but deterministic streams. The box is `Send` so
    /// drivers can park partially-consumed generators in shared caches.
    pub fn trace(&self, core: u32, seed: u64) -> Box<dyn TraceSource + Send> {
        match self.kind {
            Kind::Synthetic(p) => Box::new(SyntheticTrace::new(p, core, seed)),
            Kind::Graph(p) => Box::new(GraphTrace::new(p, core, seed)),
            Kind::Tree(p) => Box::new(TreeTrace::new(p, core, seed)),
        }
    }

    /// Approximate memory-operation density (ops per kilo-instruction) —
    /// used by reports, not by the generators themselves.
    pub fn density_per_ki(&self) -> f64 {
        match self.kind {
            Kind::Synthetic(p) => 1000.0 / (p.mean_gap + 1.0),
            Kind::Graph(p) => 1000.0 / (p.mean_gap + 1.0),
            Kind::Tree(p) => 1000.0 / (p.mean_gap + 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_36_workloads() {
        assert_eq!(Workload::all().len(), 36);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Workload::all().iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 36);
    }

    #[test]
    fn suite_counts_match_the_paper() {
        assert_eq!(Workload::suite(Suite::Spec).count(), 12);
        assert_eq!(Workload::suite(Suite::Ligra).count(), 13);
        assert_eq!(Workload::suite(Suite::Stream).count(), 4);
        assert_eq!(Workload::suite(Suite::Parsec).count(), 5);
        assert_eq!(Workload::suite(Suite::Kvs).count(), 2);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(Workload::by_name("LBM").is_some());
        assert!(Workload::by_name("Stream-Copy").is_some());
        assert!(Workload::by_name("nonexistent").is_none());
    }

    #[test]
    fn every_workload_yields_a_trace() {
        for w in Workload::all() {
            let mut t = w.trace(0, 42);
            for _ in 0..100 {
                let op = t.next_op();
                assert!(op.instructions() >= 1);
            }
        }
    }

    #[test]
    fn densities_track_paper_mpki_ordering_loosely() {
        // Highest-MPKI workload should be denser than the lowest-MPKI one.
        let lbm = Workload::by_name("lbm").unwrap();
        let pop2 = Workload::by_name("pop2").unwrap();
        assert!(lbm.density_per_ki() > pop2.density_per_ki());
    }

    #[test]
    fn paper_reference_points_recorded() {
        let lbm = Workload::by_name("lbm").unwrap();
        assert_eq!(lbm.paper_mpki, 64);
        assert!((lbm.paper_ipc - 0.14).abs() < 1e-9);
    }
}
