//! Compressed instruction-trace format.
//!
//! A workload is an infinite stream of [`TraceOp`]s. Each op stands for
//! `nonmem_before` ordinary instructions followed by one memory
//! instruction. This is the same information content ChampSim traces carry
//! after decoding, minus registers — dependencies are summarized by the
//! `depends_on_last_load` bit (true for pointer-chasing loads, which is
//! the dependency pattern that matters for MLP).

use serde::Serialize;

/// Memory operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MemKind {
    Load,
    Store,
}

/// One compressed trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceOp {
    /// Non-memory instructions preceding this memory operation.
    pub nonmem_before: u32,
    pub kind: MemKind,
    /// 64 B line address (byte address >> 6).
    pub line_addr: u64,
    /// Program counter of the memory instruction (feeds MAP-I).
    pub pc: u32,
    /// This operation consumes the most recent prior load's result and
    /// cannot issue before it completes (pointer chasing).
    pub depends_on_last_load: bool,
}

impl TraceOp {
    /// Instructions this record accounts for (the gap plus the op itself).
    pub fn instructions(&self) -> u64 {
        self.nonmem_before as u64 + 1
    }

    pub fn load(gap: u32, line_addr: u64, pc: u32) -> Self {
        Self { nonmem_before: gap, kind: MemKind::Load, line_addr, pc, depends_on_last_load: false }
    }

    pub fn store(gap: u32, line_addr: u64, pc: u32) -> Self {
        Self {
            nonmem_before: gap,
            kind: MemKind::Store,
            line_addr,
            pc,
            depends_on_last_load: false,
        }
    }

    pub fn dependent(mut self) -> Self {
        self.depends_on_last_load = true;
        self
    }
}

/// An infinite source of trace records (one per core).
pub trait TraceSource {
    fn next_op(&mut self) -> TraceOp;

    /// The next op reduced to `(line address, is-store)`, advancing the
    /// generator state exactly as [`TraceSource::next_op`] would.
    ///
    /// The functional cache prefill discards everything except the address
    /// and the store bit, so generators whose gap sampling is expensive
    /// (exponential inter-arrival draws go through `ln`/`round`) override
    /// this to consume the same random draws while skipping that math. An
    /// override MUST leave the generator in the state `next_op` would have
    /// — the two are interchangeable call-for-call.
    fn next_access(&mut self) -> (u64, bool) {
        let op = self.next_op();
        (op.line_addr, op.kind == MemKind::Store)
    }

    /// Snapshot the generator's mutable cursor state for checkpointing.
    ///
    /// The contract: a fresh generator built from the same constructor
    /// arguments, fed this snapshot through [`TraceSource::restore_state`],
    /// produces the identical continuation of the stream. Only *cursors*
    /// (RNG state, position counters, phase tags) belong in the snapshot —
    /// immutable structure (layouts, parameters) is rebuilt by the
    /// constructor. `None` (the default) means the source does not support
    /// checkpointing and callers must regenerate from the start, which is
    /// equivalent because every source is deterministic.
    fn save_state(&self) -> Option<Vec<u64>> {
        None
    }

    /// Restore a cursor snapshot produced by [`TraceSource::save_state`]
    /// on a freshly constructed generator with the same arguments.
    /// Returns `false` (the default) when unsupported or when the snapshot
    /// shape does not match; the generator is then unchanged and the
    /// caller falls back to regenerating from the start.
    fn restore_state(&mut self, state: &[u64]) -> bool {
        let _ = state;
        false
    }
}

/// Advance a trace source functionally by at least `instructions`
/// instructions, feeding each memory access to `sink` as
/// `(line address, is-store)`. No timing model is involved — this is the
/// fast-forward half of SMARTS-style interval sampling, driving the same
/// functional cache path the prefill machinery uses.
///
/// Returns the number of instructions actually consumed. The count can
/// overshoot `instructions` by up to one op's `nonmem_before` gap because
/// trace records are consumed whole; callers needing exact accounting use
/// the return value. `instructions == 0` consumes nothing.
pub fn functional_advance(
    src: &mut dyn TraceSource,
    instructions: u64,
    mut sink: impl FnMut(u64, bool),
) -> u64 {
    let mut done = 0u64;
    while done < instructions {
        let op = src.next_op();
        done += op.instructions();
        sink(op.line_addr, op.kind == MemKind::Store);
    }
    done
}

/// A trace that replays a fixed vector of records forever. Mostly useful
/// in tests and microbenchmarks.
#[derive(Debug, Clone)]
pub struct VecTrace {
    ops: Vec<TraceOp>,
    pos: usize,
}

impl VecTrace {
    pub fn new(ops: Vec<TraceOp>) -> Self {
        assert!(!ops.is_empty(), "trace must contain at least one op");
        Self { ops, pos: 0 }
    }
}

impl TraceSource for VecTrace {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_op(&mut self) -> TraceOp {
        (**self).next_op()
    }

    fn next_access(&mut self) -> (u64, bool) {
        (**self).next_access()
    }

    fn save_state(&self) -> Option<Vec<u64>> {
        (**self).save_state()
    }

    fn restore_state(&mut self, state: &[u64]) -> bool {
        (**self).restore_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_accounting() {
        let op = TraceOp::load(9, 100, 1);
        assert_eq!(op.instructions(), 10);
        assert_eq!(TraceOp::store(0, 5, 2).instructions(), 1);
    }

    #[test]
    fn vec_trace_wraps_around() {
        let mut t = VecTrace::new(vec![TraceOp::load(0, 1, 1), TraceOp::load(0, 2, 1)]);
        assert_eq!(t.next_op().line_addr, 1);
        assert_eq!(t.next_op().line_addr, 2);
        assert_eq!(t.next_op().line_addr, 1);
    }

    #[test]
    fn dependent_flag_builder() {
        let op = TraceOp::load(3, 7, 9).dependent();
        assert!(op.depends_on_last_load);
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_vec_trace_panics() {
        let _ = VecTrace::new(vec![]);
    }
}
