//! Trace-driven out-of-order core model.
//!
//! This crate is the reproduction's ChampSim-equivalent core (paper Table
//! III: 12 OoO cores, 2.4 GHz, 4-wide, 256-entry ROB). The model captures
//! exactly the aspects of an OoO core that the paper's results depend on:
//!
//! * a 4-wide in-order front end and in-order retire,
//! * a 256-entry ROB that bounds memory-level parallelism,
//! * loads that block retirement until data returns,
//! * stores that retire through a store buffer (their cache fill proceeds
//!   in the background, later producing dirty writebacks),
//! * explicit load→load dependencies from the trace (pointer chasing),
//!   which serialize misses and starve MLP.
//!
//! The trace format ([`trace::TraceOp`]) is a compressed instruction
//! stream: each record carries the number of non-memory instructions that
//! precede a memory operation, plus the operation itself.

// No unsafe anywhere in this crate (lint U01 audit); keep it that way.
#![forbid(unsafe_code)]

pub mod core;
pub mod trace;
pub mod tracefile;

pub use crate::core::{Core, CoreParams};
pub use trace::{functional_advance, MemKind, TraceOp, TraceSource, VecTrace};
pub use tracefile::FileTrace;
