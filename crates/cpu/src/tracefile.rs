//! Binary trace files: capture a generator's output once, replay it many
//! times (like ChampSim's trace files, minus the xz).
//!
//! Format: a 16-byte header (`magic "CXTR"`, version, record count) followed
//! by fixed 17-byte little-endian records:
//!
//! ```text
//! u32 nonmem_before | u32 pc | u64 line_addr | u8 flags (bit0 store, bit1 dep)
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::trace::{MemKind, TraceOp, TraceSource};

const MAGIC: &[u8; 4] = b"CXTR";
const VERSION: u32 = 1;
const RECORD_BYTES: usize = 17;

/// Write `ops` to a trace file at `path`.
pub fn write_trace(path: &Path, ops: &[TraceOp]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(ops.len() as u64).to_le_bytes())?;
    for op in ops {
        w.write_all(&op.nonmem_before.to_le_bytes())?;
        w.write_all(&op.pc.to_le_bytes())?;
        w.write_all(&op.line_addr.to_le_bytes())?;
        let mut flags = 0u8;
        if op.kind == MemKind::Store {
            flags |= 1;
        }
        if op.depends_on_last_load {
            flags |= 2;
        }
        w.write_all(&[flags])?;
    }
    w.flush()
}

/// Capture `count` ops from any source into a trace file.
pub fn capture(path: &Path, source: &mut dyn TraceSource, count: usize) -> io::Result<()> {
    let ops: Vec<TraceOp> = (0..count).map(|_| source.next_op()).collect();
    write_trace(path, &ops)
}

/// Read a whole trace file into memory.
pub fn read_trace(path: &Path) -> io::Result<Vec<TraceOp>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut header = [0u8; 16];
    r.read_exact(&mut header)?;
    if &header[0..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a CXTR trace file"));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let count = coaxial_sim::idx(u64::from_le_bytes(header[8..16].try_into().unwrap()));
    let mut ops = Vec::with_capacity(count);
    let mut rec = [0u8; RECORD_BYTES];
    for _ in 0..count {
        r.read_exact(&mut rec)?;
        let flags = rec[16];
        ops.push(TraceOp {
            nonmem_before: u32::from_le_bytes(rec[0..4].try_into().unwrap()),
            pc: u32::from_le_bytes(rec[4..8].try_into().unwrap()),
            line_addr: u64::from_le_bytes(rec[8..16].try_into().unwrap()),
            kind: if flags & 1 != 0 { MemKind::Store } else { MemKind::Load },
            depends_on_last_load: flags & 2 != 0,
        });
    }
    Ok(ops)
}

/// A [`TraceSource`] replaying a trace file (looping forever, like every
/// other source in this project).
pub struct FileTrace {
    ops: Vec<TraceOp>,
    pos: usize,
}

impl FileTrace {
    pub fn open(path: &Path) -> io::Result<Self> {
        let ops = read_trace(path)?;
        if ops.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty trace"));
        }
        Ok(Self { ops, pos: 0 })
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl TraceSource for FileTrace {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("coaxial-trace-test-{name}-{}", std::process::id()));
        p
    }

    fn sample_ops() -> Vec<TraceOp> {
        vec![
            TraceOp::load(3, 0xDEAD_BEEF, 0x40),
            TraceOp::store(0, 0xCAFE, 0x44),
            TraceOp::load(100, u64::MAX >> 1, 0x48).dependent(),
        ]
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let path = temp("roundtrip");
        let ops = sample_ops();
        write_trace(&path, &ops).unwrap();
        let back = read_trace(&path).unwrap();
        assert_eq!(back, ops);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_trace_loops() {
        let path = temp("loop");
        write_trace(&path, &sample_ops()).unwrap();
        let mut t = FileTrace::open(&path).unwrap();
        assert_eq!(t.len(), 3);
        let first = t.next_op();
        t.next_op();
        t.next_op();
        assert_eq!(t.next_op(), first, "wraps around");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn capture_records_from_a_live_source() {
        let path = temp("capture");
        let mut src = crate::trace::VecTrace::new(sample_ops());
        capture(&path, &mut src, 7).unwrap();
        let back = read_trace(&path).unwrap();
        assert_eq!(back.len(), 7);
        assert_eq!(back[0], sample_ops()[0]);
        assert_eq!(back[3], sample_ops()[0], "capture follows the looping source");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage_files() {
        let path = temp("garbage");
        std::fs::write(&path, b"not a trace at all").unwrap();
        assert!(read_trace(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_version() {
        let path = temp("version");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = read_trace(&path).unwrap_err();
        assert!(err.to_string().contains("version"));
        std::fs::remove_file(&path).ok();
    }
}
