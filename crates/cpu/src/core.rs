//! The out-of-order core: dispatch, issue, and in-order retire against a
//! bounded ROB.
//!
//! The core is driven by the system loop:
//!
//! ```text
//! loop {
//!     hierarchy.tick(now);
//!     while let Some((core, id)) = hierarchy.pop_completion() {
//!         cores[core].on_memory_complete(id);
//!     }
//!     for core in &mut cores { core.tick(now, &mut hierarchy); }
//!     now += 1;
//! }
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use coaxial_cache::hierarchy::AccessResult;
use coaxial_cache::{AccessId, Hierarchy};
use coaxial_dram::MemoryBackend;
use coaxial_sim::Cycle;
use coaxial_telemetry::TelemetrySink;
use serde::Serialize;

use crate::trace::{MemKind, TraceSource};

/// Microarchitectural parameters (paper Table III defaults).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CoreParams {
    /// Front-end / retire width, instructions per cycle.
    pub width: u32,
    /// Reorder-buffer capacity, instructions.
    pub rob_size: u32,
    /// Memory operations that may issue to the L1 per cycle.
    pub issue_width: u32,
    /// How deep into the waiting-op window the issue logic looks.
    pub issue_window: usize,
}

impl Default for CoreParams {
    fn default() -> Self {
        Self { width: 4, rob_size: 256, issue_width: 2, issue_window: 16 }
    }
}

/// One ROB entry: either a batch of ordinary instructions (which complete
/// at dispatch) or a single memory instruction.
#[derive(Debug)]
enum Entry {
    NonMem { remaining: u32 },
    Mem { done: bool },
}

/// A memory op waiting to issue.
#[derive(Debug, Clone, Copy)]
struct WaitingOp {
    /// Sequence number of this op's ROB entry.
    seq: u64,
    line: u64,
    pc: u32,
    is_store: bool,
    /// Entry seq of the load this op depends on, if any.
    dep: Option<u64>,
}

/// The core.
pub struct Core {
    id: u32,
    params: CoreParams,
    trace: Box<dyn TraceSource>,

    rob: VecDeque<Entry>,
    /// Sequence number of the ROB head entry.
    head_seq: u64,
    /// Instructions currently occupying the ROB.
    rob_instrs: u32,
    /// Seq of the most recently dispatched load (dependency target).
    last_load_seq: Option<u64>,
    /// Trace op currently being dispatched (gap partially consumed).
    staged: Option<(u32, crate::trace::TraceOp)>,

    waiting: VecDeque<WaitingOp>,
    /// Deterministic-latency completions (cache hits) scheduled ahead.
    scheduled: BinaryHeap<Reverse<(Cycle, u64)>>,
    /// Outstanding hierarchy accesses → entry seq.
    /// Keyed lookup only — never iterated (lint D01).
    outstanding: HashMap<AccessId, u64>,

    /// Retired instructions since the last stats reset.
    pub retired: u64,
    /// Cycles observed since the last stats reset.
    pub cycles: Cycle,
    /// Loads issued / stores issued (traffic accounting).
    pub loads_issued: u64,
    pub stores_issued: u64,
    /// Cycles where retirement was completely blocked by a pending load.
    pub stall_cycles: u64,
    /// Sum of ROB occupancy (instructions) over every observed cycle;
    /// divide by `cycles` for mean occupancy. Saturation here is the
    /// paper's signature of CXL-latency-bound cores (ROB fills, MLP caps).
    pub rob_occupancy_cum: u64,
    /// Cycles where the issue stage moved nothing despite having waiting
    /// memory ops (dependence- or back-pressure-bound).
    pub issue_stall_cycles: u64,
}

impl Core {
    pub fn new(id: u32, params: CoreParams, trace: Box<dyn TraceSource>) -> Self {
        Self {
            id,
            params,
            trace,
            rob: VecDeque::new(),
            head_seq: 0,
            rob_instrs: 0,
            last_load_seq: None,
            staged: None,
            waiting: VecDeque::new(),
            scheduled: BinaryHeap::new(),
            outstanding: HashMap::new(),
            retired: 0,
            cycles: 0,
            loads_issued: 0,
            stores_issued: 0,
            stall_cycles: 0,
            rob_occupancy_cum: 0,
            issue_stall_cycles: 0,
        }
    }

    pub fn id(&self) -> u32 {
        self.id
    }

    /// IPC over the current measurement window.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Zero the measurement counters (end of warmup).
    pub fn reset_stats(&mut self) {
        self.retired = 0;
        self.cycles = 0;
        self.loads_issued = 0;
        self.stores_issued = 0;
        self.stall_cycles = 0;
        self.rob_occupancy_cum = 0;
        self.issue_stall_cycles = 0;
    }

    /// Consume the core and hand back its trace source so the workload
    /// stream can continue past this measurement interval (SMARTS-style
    /// interval sampling: the next fast-forward span picks up exactly where
    /// the detailed core stopped fetching).
    ///
    /// Any in-flight pipeline contents (ROB entries, a partially dispatched
    /// `staged` op, waiting/outstanding accesses) are deliberately dropped —
    /// the sampling driver re-warms pipeline state at the start of the next
    /// detailed interval, and dropping is deterministic, so sampled runs
    /// stay byte-identical for a given seed.
    pub fn into_trace(self) -> Box<dyn TraceSource> {
        self.trace
    }

    /// Is the entry with `seq` complete (or already retired)?
    #[inline]
    fn entry_done(&self, seq: u64) -> bool {
        if seq < self.head_seq {
            return true;
        }
        match self.rob.get(coaxial_sim::idx(seq - self.head_seq)) {
            Some(Entry::Mem { done, .. }) => *done,
            Some(Entry::NonMem { .. }) | None => true,
        }
    }

    #[inline]
    fn mark_done(&mut self, seq: u64) {
        if seq < self.head_seq {
            return; // already retired (e.g. a store)
        }
        if let Some(Entry::Mem { done, .. }) =
            self.rob.get_mut(coaxial_sim::idx(seq - self.head_seq))
        {
            *done = true;
        }
    }

    /// Notification from the hierarchy that a pending access finished.
    pub fn on_memory_complete(&mut self, access: AccessId) {
        if let Some(seq) = self.outstanding.remove(&access) {
            self.mark_done(seq);
        }
    }

    /// Advance one cycle against the shared hierarchy.
    pub fn tick<B: MemoryBackend, T: TelemetrySink>(
        &mut self,
        now: Cycle,
        hierarchy: &mut Hierarchy<B, T>,
    ) {
        self.cycles += 1;

        // 0. Deterministic-latency completions that are due.
        while let Some(&Reverse((at, seq))) = self.scheduled.peek() {
            if at > now {
                break;
            }
            self.scheduled.pop();
            self.mark_done(seq);
        }

        // 1. Retire up to `width` instructions in order.
        let mut budget = self.params.width;
        let mut blocked_by_mem = false;
        while budget > 0 {
            match self.rob.front_mut() {
                Some(Entry::NonMem { remaining }) => {
                    let k = budget.min(*remaining);
                    *remaining -= k;
                    budget -= k;
                    self.retired += k as u64;
                    self.rob_instrs -= k;
                    if *remaining == 0 {
                        self.rob.pop_front();
                        self.head_seq += 1;
                    }
                }
                Some(Entry::Mem { done: true, .. }) => {
                    self.rob.pop_front();
                    self.head_seq += 1;
                    self.rob_instrs -= 1;
                    self.retired += 1;
                    budget -= 1;
                }
                Some(Entry::Mem { done: false, .. }) => {
                    blocked_by_mem = true;
                    break;
                }
                None => break,
            }
        }
        if blocked_by_mem && budget == self.params.width {
            self.stall_cycles += 1;
        }

        // 2. Dispatch up to `width` instructions into the ROB.
        let mut budget = self.params.width;
        while budget > 0 && self.rob_instrs < self.params.rob_size {
            let (gap_left, op) = match self.staged.take() {
                Some(s) => s,
                None => {
                    let op = self.trace.next_op();
                    (op.nonmem_before, op)
                }
            };
            if gap_left > 0 {
                let k = gap_left.min(budget).min(self.params.rob_size - self.rob_instrs);
                // Merge with a NonMem tail entry when it is also the head
                // (merging deeper entries would desynchronize head_seq
                // arithmetic), keeping the ROB deque short for long gaps.
                let tail_is_lone_nonmem =
                    self.rob.len() == 1 && matches!(self.rob.back(), Some(Entry::NonMem { .. }));
                if tail_is_lone_nonmem {
                    if let Some(Entry::NonMem { remaining }) = self.rob.back_mut() {
                        *remaining += k;
                    }
                } else {
                    self.rob.push_back(Entry::NonMem { remaining: k });
                }
                self.rob_instrs += k;
                budget -= k;
                if gap_left > k {
                    self.staged = Some((gap_left - k, op));
                    continue;
                }
                self.staged = Some((0, op));
                continue;
            }
            // Dispatch the memory op itself.
            let seq = self.head_seq + self.rob.len() as u64;
            let is_store = op.kind == MemKind::Store;
            let dep = if op.depends_on_last_load { self.last_load_seq } else { None };
            self.rob.push_back(Entry::Mem { done: false });
            self.rob_instrs += 1;
            budget -= 1;
            self.waiting.push_back(WaitingOp { seq, line: op.line_addr, pc: op.pc, is_store, dep });
            if !is_store {
                self.last_load_seq = Some(seq);
            }
        }

        // 3. Issue ready memory ops (out of order, within the window).
        let mut issued = 0;
        let mut i = 0;
        while issued < self.params.issue_width
            && i < self.waiting.len().min(self.params.issue_window)
        {
            let op = self.waiting[i];
            let ready = op.dep.is_none_or(|d| self.entry_done(d));
            if !ready {
                i += 1;
                continue;
            }
            match hierarchy.access(self.id, op.line, op.is_store, op.pc, now) {
                AccessResult::Done(at) => {
                    self.scheduled.push(Reverse((at, op.seq)));
                    self.note_issue(op);
                    self.waiting.remove(i);
                    issued += 1;
                }
                AccessResult::Pending(id) => {
                    // Stores retire via the store buffer (note_issue marks
                    // them done); their background fill completion is mapped
                    // to a sentinel seq that mark_done ignores.
                    let seq = if op.is_store { u64::MAX } else { op.seq };
                    self.outstanding.insert(id, seq);
                    self.note_issue(op);
                    self.waiting.remove(i);
                    issued += 1;
                }
                AccessResult::Retry => break, // back-pressure: stop issuing
            }
        }
        if issued == 0 && !self.waiting.is_empty() {
            self.issue_stall_cycles += 1;
        }

        // 4. Occupancy accounting, sampled at end-of-tick state.
        self.rob_occupancy_cum += u64::from(self.rob_instrs);
    }

    fn note_issue(&mut self, op: WaitingOp) {
        if op.is_store {
            self.stores_issued += 1;
        } else {
            self.loads_issued += 1;
        }
        if op.is_store {
            // A store's ROB entry completes immediately when it issues
            // (store-buffer semantics).
            self.mark_done(op.seq);
        }
    }

    /// If the core is fully blocked — ROB head is an unfinished memory op,
    /// the ROB is full (no dispatch possible), and no waiting op within the
    /// issue window is ready — return the earliest cycle something could
    /// change *from the core's own state* (its next scheduled cache-hit
    /// completion; `Cycle::MAX` if none). Returns `None` when the core could
    /// retire, dispatch, or issue on the next cycle.
    ///
    /// The bound is **exact**, not conservative: while blocked, the core's
    /// state can change only when a due entry pops off `scheduled` (which
    /// happens first at exactly the returned cycle — the ROB-head wakeup
    /// time the event engine parks the core on) or when the hierarchy
    /// delivers a completion via [`Core::on_memory_complete`] (which the
    /// engine observes directly and uses to wake the core early). Blocked
    /// means no issues, so `scheduled` cannot gain entries and the bound
    /// cannot move. The engine debug-asserts this contract: a core woken at
    /// its own bound must change its [`Core::progress_fingerprint`] on the
    /// wake-up tick.
    ///
    /// While blocked, a tick touches only the stall/occupancy counters
    /// (`cycles`, `stall_cycles`, `rob_occupancy_cum`, and — when ops are
    /// waiting — `issue_stall_cycles`), which is exactly what
    /// [`Core::fast_forward`] replays; the pair is what lets both run-loop
    /// engines skip quiescent cycles with bit-identical statistics.
    pub fn next_event(&self) -> Option<Cycle> {
        match self.rob.front() {
            Some(Entry::Mem { done: false }) => {}
            _ => return None, // retirable head or empty ROB
        }
        if self.rob_instrs < self.params.rob_size {
            return None; // dispatch would make progress
        }
        let window = self.waiting.len().min(self.params.issue_window);
        for op in self.waiting.iter().take(window) {
            if op.dep.is_none_or(|d| self.entry_done(d)) {
                return None; // a ready op would issue
            }
        }
        Some(self.scheduled.peek().map_or(Cycle::MAX, |&Reverse((at, _))| at))
    }

    /// Account `skipped` fully-blocked cycles (see [`Core::next_event`]).
    /// Exact replay of the skipped ticks: a fully-blocked tick touches
    /// nothing but the stall/occupancy counters — the ROB is full and
    /// constant, nothing issues, and `waiting` cannot change.
    pub fn fast_forward(&mut self, skipped: u64) {
        self.cycles += skipped;
        self.stall_cycles += skipped;
        self.rob_occupancy_cum += skipped * u64::from(self.rob_instrs);
        if !self.waiting.is_empty() {
            self.issue_stall_cycles += skipped;
        }
    }

    /// Cheap state fingerprint for the engines' stale-bound assertion: any
    /// tick that does more than pure stall accounting (`cycles += 1;
    /// stall_cycles += 1`) changes at least one of these fields. The event
    /// engine asserts (in debug builds) that a core woken at its own
    /// [`Core::next_event`] bound changes its fingerprint on the wake-up
    /// tick — a stale (too-early) bound would otherwise silently degrade
    /// skipping into useless one-cycle hops with no functional symptom.
    pub fn progress_fingerprint(&self) -> (u64, u64, u32, usize, usize, usize) {
        (
            self.retired,
            self.head_seq,
            self.rob_instrs,
            self.waiting.len(),
            self.scheduled.len(),
            self.outstanding.len(),
        )
    }

    /// Outstanding memory accesses (test/debug aid).
    pub fn inflight(&self) -> usize {
        self.outstanding.len()
    }

    /// Instructions currently in the ROB (test/debug aid).
    pub fn rob_occupancy(&self) -> u32 {
        self.rob_instrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceOp, VecTrace};
    use coaxial_cache::{CalmPolicy, HierarchyConfig};
    use coaxial_dram::{DramConfig, MultiChannel};

    fn hierarchy() -> Hierarchy<MultiChannel> {
        let cfg = HierarchyConfig::table_iii(1, 1, 2.0, 38.4, CalmPolicy::Serial);
        Hierarchy::new(cfg, MultiChannel::new(&DramConfig::ddr5_4800(), 1))
    }

    fn run(core: &mut Core, h: &mut Hierarchy<MultiChannel>, target: u64, limit: Cycle) -> Cycle {
        for now in 0..limit {
            h.tick(now);
            while let Some((_, id)) = h.pop_completion() {
                core.on_memory_complete(id);
            }
            core.tick(now, h);
            if core.retired >= target {
                return now;
            }
        }
        panic!("core did not retire {target} instructions in {limit} cycles");
    }

    #[test]
    fn pure_compute_retires_at_full_width() {
        // One load per 4000 instructions, always L1-hot after the first.
        let trace = VecTrace::new(vec![TraceOp::load(3999, 1, 1)]);
        let mut core = Core::new(0, CoreParams::default(), Box::new(trace));
        let mut h = hierarchy();
        let cycles = run(&mut core, &mut h, 40_000, 200_000);
        let ipc = 40_000.0 / cycles as f64;
        assert!(ipc > 3.0, "compute-bound IPC = {ipc:.2} (want ≈ 4)");
    }

    #[test]
    fn dependent_loads_serialize() {
        // Pointer-chase: every load depends on the previous one, and each
        // touches a new line (cold misses to DRAM).
        let ops: Vec<TraceOp> =
            (0..512).map(|i| TraceOp::load(0, i * 1009, 3).dependent()).collect();
        let dep_trace = VecTrace::new(ops.clone());
        let indep_ops: Vec<TraceOp> =
            (0..512).map(|i| TraceOp::load(0, i * 1009 + 500_000, 3)).collect();
        let indep_trace = VecTrace::new(indep_ops);

        let mut c1 = Core::new(0, CoreParams::default(), Box::new(dep_trace));
        let mut h1 = hierarchy();
        let t_dep = run(&mut c1, &mut h1, 400, 10_000_000);

        let mut c2 = Core::new(0, CoreParams::default(), Box::new(indep_trace));
        let mut h2 = hierarchy();
        let t_indep = run(&mut c2, &mut h2, 400, 10_000_000);

        assert!(
            t_dep > t_indep * 3,
            "dependent loads ({t_dep} cycles) must be far slower than independent ({t_indep})"
        );
    }

    #[test]
    fn rob_bounds_mlp() {
        // Independent cold loads: the ROB (256) and MSHRs (16) cap how many
        // can be outstanding; occupancy must never exceed the ROB size.
        let ops: Vec<TraceOp> = (0..4096).map(|i| TraceOp::load(0, i * 4093, 1)).collect();
        let mut core = Core::new(0, CoreParams::default(), Box::new(VecTrace::new(ops)));
        let mut h = hierarchy();
        for now in 0..50_000 {
            h.tick(now);
            while let Some((_, id)) = h.pop_completion() {
                core.on_memory_complete(id);
            }
            core.tick(now, &mut h);
            assert!(core.rob_occupancy() <= 256);
        }
        assert!(core.retired > 0);
    }

    #[test]
    fn stores_do_not_block_retirement() {
        // A stream of cold stores: store-buffer semantics let the core
        // retire far faster than the memory latency would allow.
        let ops: Vec<TraceOp> = (0..2048).map(|i| TraceOp::store(3, i * 997, 2)).collect();
        let mut core = Core::new(0, CoreParams::default(), Box::new(VecTrace::new(ops)));
        let mut h = hierarchy();
        let cycles = run(&mut core, &mut h, 4_000, 1_000_000);
        let ipc = 4_000.0 / cycles as f64;
        // Each cold store still occupies an MSHR for its line fetch, so the
        // stream is bandwidth-bound — but retirement itself never waits the
        // full memory latency. With ~150-cycle misses and 16 MSHRs, a
        // blocking-store core would land near 4/150 ≈ 0.03 IPC.
        assert!(ipc > 0.2, "store-bound IPC = {ipc:.2}, stores must not stall retire");
        assert!(core.stores_issued > 900, "stores issued: {}", core.stores_issued);
    }

    #[test]
    fn ipc_is_deterministic() {
        let mk = || {
            let ops: Vec<TraceOp> = (0..256).map(|i| TraceOp::load(7, i * 131, 1)).collect();
            Core::new(0, CoreParams::default(), Box::new(VecTrace::new(ops)))
        };
        let mut a = mk();
        let mut ha = hierarchy();
        let ta = run(&mut a, &mut ha, 5_000, 10_000_000);
        let mut b = mk();
        let mut hb = hierarchy();
        let tb = run(&mut b, &mut hb, 5_000, 10_000_000);
        assert_eq!(ta, tb, "identical configs must produce identical timing");
    }

    #[test]
    fn reset_stats_zeroes_window() {
        let trace = VecTrace::new(vec![TraceOp::load(99, 1, 1)]);
        let mut core = Core::new(0, CoreParams::default(), Box::new(trace));
        let mut h = hierarchy();
        run(&mut core, &mut h, 1_000, 100_000);
        core.reset_stats();
        assert_eq!(core.retired, 0);
        assert_eq!(core.cycles, 0);
        assert_eq!(core.ipc(), 0.0);
    }
}
