//! Property-based tests for the core model: progress, bounds, and
//! determinism under arbitrary traces.

use proptest::prelude::*;

use coaxial_cache::{CalmPolicy, Hierarchy, HierarchyConfig};
use coaxial_cpu::{Core, CoreParams, MemKind, TraceOp, VecTrace};
use coaxial_dram::{DramConfig, MultiChannel};

fn arb_trace() -> impl Strategy<Value = Vec<TraceOp>> {
    proptest::collection::vec(
        (0u32..64, 0u64..(1 << 20), proptest::bool::ANY, proptest::bool::ANY, 0u32..64),
        1..64,
    )
    .prop_map(|ops| {
        ops.into_iter()
            .map(|(gap, line, is_store, dep, pc)| TraceOp {
                nonmem_before: gap,
                kind: if is_store { MemKind::Store } else { MemKind::Load },
                line_addr: line,
                pc,
                // Stores never chase in our generators; keep that shape.
                depends_on_last_load: dep && !is_store,
            })
            .collect()
    })
}

fn run_core(ops: Vec<TraceOp>, target: u64, limit: u64) -> (u64, u64) {
    let mut core = Core::new(0, CoreParams::default(), Box::new(VecTrace::new(ops)));
    let cfg = HierarchyConfig::table_iii(1, 1, 1.0, 38.4, CalmPolicy::Serial);
    let mut h = Hierarchy::new(cfg, MultiChannel::new(&DramConfig::ddr5_4800(), 1));
    for now in 0..limit {
        h.tick(now);
        while let Some((_, id)) = h.pop_completion() {
            core.on_memory_complete(id);
        }
        core.tick(now, &mut h);
        assert!(core.rob_occupancy() <= 256, "ROB bound violated");
        if core.retired >= target {
            return (core.retired, now);
        }
    }
    (core.retired, limit)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Any trace makes forward progress and respects the 4-wide retire
    /// bound (IPC ≤ 4).
    #[test]
    fn any_trace_progresses_within_width(ops in arb_trace()) {
        let (retired, cycles) = run_core(ops, 5_000, 5_000_000);
        prop_assert!(retired >= 5_000, "must reach the target, got {retired}");
        let ipc = retired as f64 / cycles.max(1) as f64;
        prop_assert!(ipc <= 4.0 + 1e-9, "ipc {ipc} exceeds the machine width");
    }

    /// Identical traces produce identical timing (determinism through the
    /// entire core + hierarchy + DRAM stack).
    #[test]
    fn identical_traces_time_identically(ops in arb_trace()) {
        let a = run_core(ops.clone(), 3_000, 5_000_000);
        let b = run_core(ops, 3_000, 5_000_000);
        prop_assert_eq!(a, b);
    }

    /// Adding dependencies can only slow a trace down (monotonicity of the
    /// dependence model).
    #[test]
    fn dependencies_never_speed_things_up(ops in arb_trace()) {
        let independent: Vec<TraceOp> = ops
            .iter()
            .map(|o| TraceOp { depends_on_last_load: false, ..*o })
            .collect();
        let dependent: Vec<TraceOp> = ops
            .iter()
            .map(|o| TraceOp {
                depends_on_last_load: o.kind == MemKind::Load,
                ..*o
            })
            .collect();
        let (_, t_indep) = run_core(independent, 3_000, 10_000_000);
        let (_, t_dep) = run_core(dependent, 3_000, 10_000_000);
        // Allow tiny scheduling noise; dependence must not help.
        prop_assert!(
            t_dep + 50 >= t_indep,
            "dependent {t_dep} finished before independent {t_indep}"
        );
    }
}
