//! Time unit conversions — the telemetry crate's blessed clock home.
//!
//! This crate sits *below* `coaxial-sim` in the dependency graph, so it
//! cannot use `coaxial_sim::time`; the 2.4 GHz relationship is mirrored
//! here instead (same constant, same caveat as the `Cycle` alias in
//! `lib.rs`). Everything in this crate that crosses the cycles→ns
//! boundary must route through these helpers — `coaxial-lint` rule Q02
//! flags any hand-rolled conversion outside a `time.rs`.

use crate::Cycle;

/// Duration of one system clock cycle in nanoseconds (2.4 GHz clock).
/// Mirrors `coaxial_sim::NS_PER_CYCLE`.
pub const NS_PER_CYCLE: f64 = 1.0 / 2.4;

/// Convert a cycle count into nanoseconds.
#[inline]
pub fn cycles_to_ns(cycles: Cycle) -> f64 {
    cycles as f64 * NS_PER_CYCLE
}

/// Convert an already-fractional cycle quantity (a histogram mean) into
/// nanoseconds.
#[inline]
pub fn cycles_f64_to_ns(frac_cycles: f64) -> f64 {
    frac_cycles * NS_PER_CYCLE
}

/// Convert a cycle timestamp into microseconds (Chrome trace `ts`/`dur`
/// fields are µs).
#[inline]
pub fn cycles_to_us(cycles: Cycle) -> f64 {
    cycles as f64 * NS_PER_CYCLE / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_the_sim_clock() {
        assert_eq!(cycles_to_ns(1), NS_PER_CYCLE);
        assert_eq!(cycles_to_ns(2400), 1000.0);
        assert_eq!(cycles_to_us(2_400_000), 1000.0);
        assert_eq!(cycles_f64_to_ns(2.4), 1.0);
    }
}
