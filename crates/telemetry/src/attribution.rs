//! Per-request latency attribution.
//!
//! Every primary L2 miss travels through a fixed set of component
//! boundaries: the NoC, the LLC bank, the MSHR→controller issue stage, the
//! memory-controller queues, DRAM service, and (on COAXIAL systems) the CXL
//! link. The hierarchy stamps a [`MissRecord`] with the cycles spent in
//! each, and [`LatencyAttribution`] folds records into per-component and
//! per-channel histograms so a run can emit a paper-style breakdown
//! (Figs. 2b/5: unloaded vs. queuing vs. service).
//!
//! **Conservation contract:** [`MissRecord::components`] sums *exactly* to
//! the end-to-end L2-miss latency ([`MissRecord::total`]) for every
//! request. Whatever the explicit stamps do not cover is attributed to
//! [`Component::Overlap`] — on the CALM concurrent path this is the
//! wait-for-LLC overhang; on serial paths it is zero. The property is
//! enforced by tests in `coaxial-cache` and `coaxial-system`.

use serde::Serialize;

use crate::stats::Histogram;
use crate::Cycle;

/// A latency component of one L2 miss, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Component {
    /// Mesh traversals: L2 → LLC bank, bank → memory controller, and the
    /// data return crossing back to the core tile.
    Noc,
    /// LLC bank access latency (serial and LLC-hit paths; the CALM
    /// concurrent path does not pay it before memory issue).
    Llc,
    /// Cycles a ready memory request waited for backend queue space
    /// (hierarchy issue queue back-pressure).
    IssueWait,
    /// Cycles queued inside the memory backend before the first DRAM
    /// command (includes CXL message queues and link contention).
    DramQueue,
    /// First DRAM command to data completion.
    DramService,
    /// Fixed CXL interface adder (ports + serialization); 0 on direct DDR.
    CxlLink,
    /// Residual wait not covered by the stamps above — the CALM path's
    /// wait-for-LLC overhang. Zero on serial paths by construction.
    Overlap,
}

/// All components in display order.
pub const COMPONENTS: [Component; 7] = [
    Component::Noc,
    Component::Llc,
    Component::IssueWait,
    Component::DramQueue,
    Component::DramService,
    Component::CxlLink,
    Component::Overlap,
];

impl Component {
    /// Stable short label (used as metric path segment and table column).
    pub fn label(self) -> &'static str {
        match self {
            Component::Noc => "noc",
            Component::Llc => "llc",
            Component::IssueWait => "issue_wait",
            Component::DramQueue => "dram_queue",
            Component::DramService => "dram_service",
            Component::CxlLink => "cxl_link",
            Component::Overlap => "overlap",
        }
    }

    /// Which of the paper's four coarse categories this folds into
    /// (on-chip / queuing / DRAM service / CXL interface).
    pub fn paper_category(self) -> &'static str {
        match self {
            Component::Noc | Component::Llc | Component::Overlap => "on-chip",
            Component::IssueWait | Component::DramQueue => "queuing",
            Component::DramService => "service",
            Component::CxlLink => "cxl",
        }
    }
}

/// The completed timestamp ledger of one primary L2 miss.
///
/// Stamped by the cache hierarchy at completion time; all durations are in
/// system cycles. `t_l2_miss` is the breakdown origin (the cycle the L2
/// miss was determined), matching the paper's L2-miss latency definition.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MissRecord {
    pub core: u32,
    pub line: u64,
    /// Memory-channel index serving the line (0 on LLC hits).
    pub channel: u32,
    /// Went down the CALM concurrent path.
    pub calm: bool,
    /// Served by an LLC hit (no memory fetch on the critical path).
    pub llc_hit: bool,
    pub t_l2_miss: Cycle,
    pub t_done: Cycle,
    pub noc: Cycle,
    pub llc: Cycle,
    pub issue_wait: Cycle,
    pub dram_queue: Cycle,
    pub dram_service: Cycle,
    pub cxl_link: Cycle,
}

impl MissRecord {
    /// End-to-end L2-miss latency.
    #[inline]
    pub fn total(&self) -> Cycle {
        self.t_done - self.t_l2_miss
    }

    /// Cycles not covered by the explicit stamps (CALM wait-for-LLC
    /// overhang). Saturating only as a defensive measure; the stamping
    /// invariants guarantee the explicit components never exceed the total.
    #[inline]
    pub fn overlap(&self) -> Cycle {
        self.total().saturating_sub(self.stamped_sum())
    }

    #[inline]
    fn stamped_sum(&self) -> Cycle {
        self.noc + self.llc + self.issue_wait + self.dram_queue + self.dram_service + self.cxl_link
    }

    /// Per-component durations in [`COMPONENTS`] order. Sums exactly to
    /// [`MissRecord::total`] (the conservation contract).
    pub fn components(&self) -> [Cycle; COMPONENTS.len()] {
        [
            self.noc,
            self.llc,
            self.issue_wait,
            self.dram_queue,
            self.dram_service,
            self.cxl_link,
            self.overlap(),
        ]
    }
}

/// Per-channel component sums (means are derived at report time).
#[derive(Debug, Clone, Default, Serialize)]
pub struct ChannelBreakdown {
    pub requests: u64,
    pub component_cycles: [u64; COMPONENTS.len()],
}

/// Aggregated latency attribution over a measurement window.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyAttribution {
    /// One latency histogram per component (cycles).
    pub per_component: Vec<Histogram>,
    /// End-to-end L2-miss latency histogram (cycles).
    pub total: Histogram,
    /// Component sums per memory channel (LLC hits land on channel 0's
    /// entry but carry no memory-path cycles).
    pub per_channel: Vec<ChannelBreakdown>,
    pub llc_hits: u64,
    pub calm_requests: u64,
}

impl Default for LatencyAttribution {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyAttribution {
    pub fn new() -> Self {
        Self {
            per_component: (0..COMPONENTS.len()).map(|_| Histogram::new()).collect(),
            total: Histogram::new(),
            per_channel: Vec::new(),
            llc_hits: 0,
            calm_requests: 0,
        }
    }

    /// Fold one completed miss into the aggregates.
    pub fn record(&mut self, rec: &MissRecord) {
        let comps = rec.components();
        for (h, &c) in self.per_component.iter_mut().zip(&comps) {
            h.record(c);
        }
        self.total.record(rec.total());
        let ch = rec.channel as usize;
        if self.per_channel.len() <= ch {
            self.per_channel.resize_with(ch + 1, ChannelBreakdown::default);
        }
        let slot = &mut self.per_channel[ch];
        slot.requests += 1;
        for (s, &c) in slot.component_cycles.iter_mut().zip(&comps) {
            *s += c;
        }
        self.llc_hits += rec.llc_hit as u64;
        self.calm_requests += rec.calm as u64;
    }

    /// Number of recorded misses.
    pub fn requests(&self) -> u64 {
        self.total.count()
    }

    /// Mean cycles attributed to `c`.
    pub fn mean_cycles(&self, c: Component) -> f64 {
        let i = COMPONENTS.iter().position(|&x| x == c).expect("known component");
        // Means over *all* misses (a miss that skipped a component
        // contributes 0), so component means sum to the total mean.
        if self.total.count() == 0 {
            0.0
        } else {
            self.per_component[i].sum() / self.total.count() as f64
        }
    }

    /// (component, mean ns) rows in display order, converted at the
    /// system clock via [`crate::time`].
    pub fn mean_ns_rows(&self) -> Vec<(Component, f64)> {
        COMPONENTS
            .iter()
            .map(|&c| (c, crate::time::cycles_f64_to_ns(self.mean_cycles(c))))
            .collect()
    }

    /// Paper-style coarse means in cycles: (on-chip, queuing, service, cxl).
    pub fn paper_breakdown_cycles(&self) -> (f64, f64, f64, f64) {
        let (mut on, mut q, mut s, mut x) = (0.0, 0.0, 0.0, 0.0);
        for &c in &COMPONENTS {
            let v = self.mean_cycles(c);
            match c.paper_category() {
                "on-chip" => on += v,
                "queuing" => q += v,
                "service" => s += v,
                _ => x += v,
            }
        }
        (on, q, s, x)
    }

    /// Paper-style coarse means in ns: (on-chip, queuing, service, cxl).
    /// Comparable with `HierStats::breakdown_ns` in `coaxial-cache`.
    /// Each component converts before summing, so the accumulation order
    /// matches the per-component rows exactly.
    pub fn paper_breakdown_ns(&self) -> (f64, f64, f64, f64) {
        let (mut on, mut q, mut s, mut x) = (0.0, 0.0, 0.0, 0.0);
        for &c in &COMPONENTS {
            let v = crate::time::cycles_f64_to_ns(self.mean_cycles(c));
            match c.paper_category() {
                "on-chip" => on += v,
                "queuing" => q += v,
                "service" => s += v,
                _ => x += v,
            }
        }
        (on, q, s, x)
    }

    /// Fold another attribution (e.g. another run shard) into this one.
    pub fn merge(&mut self, other: &LatencyAttribution) {
        for (a, b) in self.per_component.iter_mut().zip(&other.per_component) {
            a.merge(b);
        }
        self.total.merge(&other.total);
        if self.per_channel.len() < other.per_channel.len() {
            self.per_channel.resize_with(other.per_channel.len(), ChannelBreakdown::default);
        }
        for (a, b) in self.per_channel.iter_mut().zip(&other.per_channel) {
            a.requests += b.requests;
            for (x, y) in a.component_cycles.iter_mut().zip(&b.component_cycles) {
                *x += y;
            }
        }
        self.llc_hits += other.llc_hits;
        self.calm_requests += other.calm_requests;
    }

    /// Export the aggregates into a metrics registry under `prefix`
    /// (e.g. `telemetry.l2_miss`).
    pub fn export_metrics(&self, reg: &mut crate::registry::MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.requests"), self.requests());
        reg.set_counter(&format!("{prefix}.llc_hits"), self.llc_hits);
        reg.set_counter(&format!("{prefix}.calm_requests"), self.calm_requests);
        reg.put_histogram(&format!("{prefix}.total_cycles"), self.total.clone());
        for (i, &c) in COMPONENTS.iter().enumerate() {
            reg.put_histogram(
                &format!("{prefix}.component.{}_cycles", c.label()),
                self.per_component[i].clone(),
            );
        }
        for (ch, slot) in self.per_channel.iter().enumerate() {
            reg.set_counter(&format!("{prefix}.ch{ch}.requests"), slot.requests);
            for (i, &c) in COMPONENTS.iter().enumerate() {
                reg.set_counter(
                    &format!("{prefix}.ch{ch}.{}_cycles", c.label()),
                    slot.component_cycles[i],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(noc: Cycle, llc: Cycle, q: Cycle, s: Cycle, x: Cycle, overlap: Cycle) -> MissRecord {
        MissRecord {
            core: 0,
            line: 42,
            channel: 1,
            calm: overlap > 0,
            llc_hit: false,
            t_l2_miss: 1000,
            t_done: 1000 + noc + llc + q + s + x + overlap,
            noc,
            llc,
            issue_wait: 0,
            dram_queue: q,
            dram_service: s,
            cxl_link: x,
        }
    }

    #[test]
    fn components_conserve_total() {
        for rec in [
            record(12, 20, 5, 40, 126, 0),
            record(6, 0, 0, 0, 0, 0),
            record(18, 0, 33, 90, 126, 17),
        ] {
            let sum: Cycle = rec.components().iter().sum();
            assert_eq!(sum, rec.total(), "components must sum to total");
        }
    }

    #[test]
    fn component_means_sum_to_total_mean() {
        let mut agg = LatencyAttribution::new();
        agg.record(&record(12, 20, 5, 40, 126, 0));
        agg.record(&record(6, 0, 0, 80, 126, 9));
        let total_mean: f64 = agg.total.mean();
        let comp_sum: f64 = COMPONENTS.iter().map(|&c| agg.mean_cycles(c)).sum();
        assert!((total_mean - comp_sum).abs() < 1e-9, "{total_mean} vs {comp_sum}");
    }

    #[test]
    fn per_channel_sums_track_requests() {
        let mut agg = LatencyAttribution::new();
        agg.record(&record(12, 20, 5, 40, 126, 0));
        agg.record(&record(12, 20, 5, 40, 126, 0));
        assert_eq!(agg.per_channel.len(), 2);
        assert_eq!(agg.per_channel[1].requests, 2);
        assert_eq!(agg.per_channel[0].requests, 0);
        let sum: u64 = agg.per_channel[1].component_cycles.iter().sum();
        assert_eq!(sum, 2 * (12 + 20 + 5 + 40 + 126));
    }

    #[test]
    fn merge_matches_combined_stream() {
        let mut a = LatencyAttribution::new();
        let mut b = LatencyAttribution::new();
        let mut whole = LatencyAttribution::new();
        for i in 0..100u64 {
            let r = record(6 + i % 7, 20, i % 3, 40 + i, 126, 0);
            if i % 2 == 0 {
                a.record(&r);
            } else {
                b.record(&r);
            }
            whole.record(&r);
        }
        a.merge(&b);
        assert_eq!(a.requests(), whole.requests());
        for &c in &COMPONENTS {
            assert!((a.mean_cycles(c) - whole.mean_cycles(c)).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_categories_cover_all_components() {
        let mut agg = LatencyAttribution::new();
        agg.record(&record(12, 20, 5, 40, 126, 11));
        let (on, q, s, x) = agg.paper_breakdown_cycles();
        let total = agg.total.mean();
        assert!((on + q + s + x - total).abs() < 1e-9);
    }
}
