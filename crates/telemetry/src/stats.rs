//! Statistics primitives: running means and latency histograms.
//!
//! The paper reports average latencies broken into components (Figs. 2b, 5)
//! and tail latency (p90, Fig. 2a). [`MeanTracker`] accumulates component
//! means cheaply; [`Histogram`] supports percentile queries with bounded
//! error using logarithmic bucketing.
//!
//! This module is the single implementation in the workspace:
//! `coaxial_sim::stats` re-exports it, and the telemetry pipeline's
//! per-component aggregation builds directly on [`Histogram`].

use serde::Serialize;

/// Accumulates a running sum and count; reports the mean.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MeanTracker {
    sum: f64,
    count: u64,
}

impl MeanTracker {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples, or 0.0 if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Fold another tracker into this one.
    pub fn merge(&mut self, other: &MeanTracker) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Log-bucketed histogram for latency-like positive quantities.
///
/// Buckets have ~2.8 % relative width (32 sub-buckets per octave), so any
/// percentile query is accurate to within ~3 % — far tighter than the
/// run-to-run variation of the simulated system itself.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    max: u64,
}

/// Sub-buckets per power-of-two range.
const SUBBUCKETS_LOG2: u32 = 5;
const SUBBUCKETS: u64 = 1 << SUBBUCKETS_LOG2;

/// Bucket-index narrowing. The telemetry crate sits below `coaxial-sim`
/// (which re-exports this module), so it cannot use `coaxial_sim::narrow`;
/// this is the crate's single reviewed `u64 -> usize` cast, bounded by the
/// bucket-count formula in [`Histogram::bucket_index`].
#[inline]
#[allow(clippy::cast_possible_truncation)]
fn bidx(x: u64) -> usize {
    debug_assert!(x < 64 * SUBBUCKETS);
    x as usize
}

/// Percentile rank truncation: `as`-semantics float-to-integer at the
/// report boundary (never on the record path).
#[inline]
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn ceil_count(x: f64) -> u64 {
    x.ceil().max(1.0) as u64
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            // 64 octaves × 32 sub-buckets covers all of u64.
            buckets: vec![0; bidx(64 * SUBBUCKETS - 1) + 1],
            count: 0,
            sum: 0.0,
            max: 0,
        }
    }

    #[inline]
    fn bucket_index(value: u64) -> usize {
        if value < SUBBUCKETS {
            return bidx(value);
        }
        let octave = 63 - value.leading_zeros() as u64; // >= SUBBUCKETS_LOG2
        let sub = (value >> (octave - SUBBUCKETS_LOG2 as u64)) - SUBBUCKETS;
        bidx((octave - SUBBUCKETS_LOG2 as u64 + 1) * SUBBUCKETS + sub)
    }

    /// Lower edge of the bucket with the given index (used to answer
    /// percentile queries).
    fn bucket_floor(index: usize) -> u64 {
        let index = index as u64;
        if index < SUBBUCKETS {
            return index;
        }
        let octave = index / SUBBUCKETS + SUBBUCKETS_LOG2 as u64 - 1;
        let sub = index % SUBBUCKETS;
        (SUBBUCKETS + sub) << (octave - SUBBUCKETS_LOG2 as u64)
    }

    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as f64;
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of recorded values (exact, not bucketed).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Value at the given percentile (0.0–100.0), within one bucket width.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ceil_count((p / 100.0) * self.count as f64);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_floor(i);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_tracker_basics() {
        let mut m = MeanTracker::new();
        assert_eq!(m.mean(), 0.0);
        m.record(10.0);
        m.record(20.0);
        assert_eq!(m.count(), 2);
        assert!((m.mean() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn mean_tracker_merge() {
        let mut a = MeanTracker::new();
        let mut b = MeanTracker::new();
        a.record(1.0);
        b.record(3.0);
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bucket_roundtrip_is_monotone() {
        let mut prev = 0usize;
        for v in [0u64, 1, 31, 32, 33, 100, 1000, 1 << 20, u64::MAX / 2] {
            let idx = Histogram::bucket_index(v);
            assert!(idx >= prev, "index must be monotone in value");
            prev = idx;
            let floor = Histogram::bucket_floor(idx);
            assert!(floor <= v, "floor {floor} > value {v}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), 15);
        assert_eq!(h.percentile(100.0), 31);
    }

    #[test]
    fn percentile_has_bounded_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (p, exact) in [(50.0, 5000u64), (90.0, 9000), (99.0, 9900)] {
            let got = h.percentile(p) as f64;
            let rel = (got - exact as f64).abs() / exact as f64;
            assert!(rel < 0.04, "p{p}: got {got}, want ~{exact}");
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(90.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..500u64 {
            if v % 2 == 0 {
                a.record(v * 3);
            } else {
                b.record(v * 3);
            }
            whole.record(v * 3);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.percentile(90.0), whole.percentile(90.0));
        assert_eq!(a.max(), whole.max());
    }
}
