//! `coaxial-telemetry` — the observability spine of the COAXIAL simulator.
//!
//! COAXIAL's argument rests on *where* a memory access's cycles go:
//! unloaded link latency vs. queuing at the controllers vs. DRAM service.
//! This crate provides the machinery to answer that question for every
//! simulated request, without costing the common (telemetry-off) path a
//! single instruction:
//!
//! * [`stats`] — running means and log-bucketed latency histograms. This is
//!   the canonical home of [`Histogram`]/[`MeanTracker`]; `coaxial-sim`
//!   re-exports them so the rest of the workspace keeps its import paths.
//! * [`attribution`] — the per-request latency ledger: each L2 miss carries
//!   timestamps stamped at the component boundaries (NoC, LLC, MSHR issue,
//!   controller queue, DRAM service, CXL link) and is folded into
//!   per-component histograms. Components sum *exactly* to the end-to-end
//!   miss latency (conservation is test-enforced).
//! * [`registry`] — a hierarchical metrics registry: counters, gauges, and
//!   histograms registered by dot-separated component path
//!   (`dram.ch0.row_hits`), mergeable and renderable as a table.
//! * [`trace`] — a bounded ring-buffer event tracer with Chrome-trace JSON
//!   export (loadable in `about://tracing` / Perfetto) over a configurable
//!   cycle window.
//! * [`sink`] — the [`TelemetrySink`] trait that model crates are generic
//!   over. [`NullTelemetry`] compiles every stamping site to nothing (the
//!   tier-1 path is bit-identical and within noise of the pre-telemetry
//!   engine); [`TelemetryRecorder`] records everything.
//!
//! This crate sits *below* `coaxial-sim` in the dependency graph (so `sim`
//! can re-export the stats primitives) and therefore defines its own
//! [`Cycle`] alias; it is the same `u64` cycle count as `coaxial_sim::Cycle`.

// No unsafe anywhere in this crate (lint U01 audit); keep it that way.
#![forbid(unsafe_code)]

pub mod attribution;
pub mod registry;
pub mod sink;
pub mod stats;
pub mod time;
pub mod trace;

/// Simulation timestamp / duration in system clock cycles (2.4 GHz).
/// Identical to `coaxial_sim::Cycle`; redeclared here because this crate
/// sits below `coaxial-sim` in the dependency graph.
pub type Cycle = u64;

/// Duration of one system clock cycle in nanoseconds (2.4 GHz clock);
/// lives in [`time`] with the rest of the clock relationship.
pub use time::NS_PER_CYCLE;

pub use attribution::{Component, LatencyAttribution, MissRecord, COMPONENTS};
pub use registry::{MetricValue, MetricsRegistry, SharedCounter, SharedHistogram};
pub use sink::{NullTelemetry, TelemetryRecorder, TelemetrySink};
pub use stats::{Histogram, MeanTracker};
pub use trace::{CounterEvent, EventTracer, TraceEvent};
