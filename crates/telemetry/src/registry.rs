//! Hierarchical metrics registry.
//!
//! Components publish counters, gauges, and histograms under dot-separated
//! paths mirroring the hardware hierarchy (`dram.ch0.row_hits`,
//! `cxl.ch2.link.tx_utilization`, `server.checkpoint.state.mem_hits`). The
//! registry is a *snapshot* container: model crates keep their hot counters
//! in plain struct fields (no indirection on the simulation fast path) and
//! export them here at harvest time, so the registry's cost is zero during
//! simulation and O(metrics) at report time.
//!
//! [`SharedCounter`] covers the one exception: process-wide caches (e.g.
//! the prefill LRU in `coaxial-system`) whose hit/miss counts outlive any
//! single run. They are cheap atomics that snapshot into a registry path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Serialize;

use crate::stats::Histogram;

/// One registered metric value.
#[derive(Debug, Clone, Serialize)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// A snapshot-style metrics registry keyed by hierarchical path.
///
/// Paths are ordinary strings with `.`-separated segments; `BTreeMap`
/// ordering means iteration (and rendering) groups a component's metrics
/// together naturally.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Set (or overwrite) a counter.
    pub fn set_counter(&mut self, path: &str, value: u64) {
        self.metrics.insert(path.to_string(), MetricValue::Counter(value));
    }

    /// Add to a counter, creating it at 0 first if absent. Panics if the
    /// path is already registered as a different kind.
    pub fn add_counter(&mut self, path: &str, delta: u64) {
        match self.metrics.entry(path.to_string()).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(v) => *v += delta,
            other => panic!("metric {path} is not a counter: {other:?}"),
        }
    }

    /// Set (or overwrite) a gauge.
    pub fn set_gauge(&mut self, path: &str, value: f64) {
        self.metrics.insert(path.to_string(), MetricValue::Gauge(value));
    }

    /// Install a histogram snapshot.
    pub fn put_histogram(&mut self, path: &str, hist: Histogram) {
        self.metrics.insert(path.to_string(), MetricValue::Histogram(hist));
    }

    pub fn get(&self, path: &str) -> Option<&MetricValue> {
        self.metrics.get(path)
    }

    /// Counter value at `path`, or `None` if absent / not a counter.
    pub fn counter(&self, path: &str) -> Option<u64> {
        match self.metrics.get(path) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value at `path`, or `None` if absent / not a gauge.
    pub fn gauge(&self, path: &str) -> Option<f64> {
        match self.metrics.get(path) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterate all metrics in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate the metrics under a path prefix (segment-aligned: prefix
    /// `dram.ch1` matches `dram.ch1.reads` but not `dram.ch10.reads`).
    pub fn iter_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a MetricValue)> {
        self.metrics
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.as_str().starts_with(prefix))
            .filter(move |(k, _)| {
                k.len() == prefix.len() || k.as_bytes().get(prefix.len()) == Some(&b'.')
            })
            .map(|(k, v)| (k.as_str(), v))
    }

    /// Fold another registry into this one: counters add, gauges and
    /// histograms overwrite/merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.metrics {
            match (self.metrics.get_mut(k), v) {
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => a.merge(b),
                (Some(slot), v) => *slot = v.clone(),
                (None, v) => {
                    self.metrics.insert(k.clone(), v.clone());
                }
            }
        }
    }

    /// Render as an aligned two-column table (optionally restricted to a
    /// prefix). Histograms print count/mean/p90/max.
    pub fn render(&self, prefix: Option<&str>) -> String {
        let rows: Vec<(&str, String)> = match prefix {
            Some(p) => self.iter_prefix(p).map(|(k, v)| (k, Self::fmt_value(v))).collect(),
            None => self.iter().map(|(k, v)| (k, Self::fmt_value(v))).collect(),
        };
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in rows {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        out
    }

    fn fmt_value(v: &MetricValue) -> String {
        match v {
            MetricValue::Counter(c) => format!("{c}"),
            MetricValue::Gauge(g) => format!("{g:.4}"),
            MetricValue::Histogram(h) => format!(
                "count={} mean={:.1} p90={} max={}",
                h.count(),
                h.mean(),
                h.percentile(90.0),
                h.max()
            ),
        }
    }
}

/// A process-wide atomic counter that can be cloned into static caches and
/// later snapshotted into a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct SharedCounter(Arc<AtomicU64>);

impl SharedCounter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Snapshot the current value into `reg` at `path`.
    pub fn export(&self, reg: &mut MetricsRegistry, path: &str) {
        reg.set_counter(path, self.get());
    }
}

/// A process-wide histogram that many threads record into and that later
/// snapshots into a [`MetricsRegistry`]. The [`SharedCounter`] analogue
/// for distributions: the gateway records per-request latency from its
/// worker threads and exports the histogram at `/metrics` harvest time.
/// Not for simulation fast paths — each `record` takes a mutex.
#[derive(Debug, Clone, Default)]
pub struct SharedHistogram(Arc<Mutex<Histogram>>);

impl SharedHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&self, value: u64) {
        self.0.lock().expect("histogram lock poisoned").record(value);
    }

    /// Clone out the current distribution.
    #[must_use]
    pub fn snapshot(&self) -> Histogram {
        self.0.lock().expect("histogram lock poisoned").clone()
    }

    /// Snapshot the current distribution into `reg` at `path`.
    pub fn export(&self, reg: &mut MetricsRegistry, path: &str) {
        reg.put_histogram(path, self.snapshot());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_read_back() {
        let mut r = MetricsRegistry::new();
        r.add_counter("dram.ch0.row_hits", 10);
        r.add_counter("dram.ch0.row_hits", 5);
        assert_eq!(r.counter("dram.ch0.row_hits"), Some(15));
        assert_eq!(r.counter("missing"), None);
    }

    #[test]
    fn prefix_iteration_is_segment_aligned() {
        let mut r = MetricsRegistry::new();
        r.set_counter("dram.ch1.reads", 1);
        r.set_counter("dram.ch10.reads", 2);
        r.set_counter("dram.ch1.writes", 3);
        r.set_counter("cxl.ch1.reads", 4);
        let keys: Vec<&str> = r.iter_prefix("dram.ch1").map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["dram.ch1.reads", "dram.ch1.writes"]);
    }

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.set_counter("x.n", 2);
        b.set_counter("x.n", 3);
        let mut h1 = Histogram::new();
        h1.record(10);
        let mut h2 = Histogram::new();
        h2.record(30);
        a.put_histogram("x.lat", h1);
        b.put_histogram("x.lat", h2);
        b.set_gauge("x.util", 0.5);
        a.merge(&b);
        assert_eq!(a.counter("x.n"), Some(5));
        assert_eq!(a.gauge("x.util"), Some(0.5));
        match a.get("x.lat") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count(), 2),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn render_aligns_and_orders() {
        let mut r = MetricsRegistry::new();
        r.set_counter("b.second", 2);
        r.set_counter("a.first", 1);
        let s = r.render(None);
        let first = s.lines().next().unwrap();
        assert!(first.starts_with("a.first"), "BTreeMap ordering: {s}");
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn shared_counter_snapshots() {
        let c = SharedCounter::new();
        let c2 = c.clone();
        c.add(7);
        c2.add(3);
        let mut r = MetricsRegistry::new();
        c.export(&mut r, "cache.hits");
        assert_eq!(r.counter("cache.hits"), Some(10));
    }

    #[test]
    fn shared_histogram_merges_across_clones() {
        let h = SharedHistogram::new();
        let h2 = h.clone();
        h.record(10);
        h2.record(30);
        let mut r = MetricsRegistry::new();
        h.export(&mut r, "gw.latency");
        match r.get("gw.latency") {
            Some(MetricValue::Histogram(hist)) => {
                assert_eq!(hist.count(), 2);
                assert_eq!(hist.max(), 30);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let mut r = MetricsRegistry::new();
        r.set_gauge("x", 1.0);
        r.add_counter("x", 1);
    }
}
