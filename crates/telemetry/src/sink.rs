//! The telemetry sink trait and its two implementations.
//!
//! Model crates (the cache hierarchy in particular) are generic over
//! `T: TelemetrySink`. Every stamping site is guarded by the associated
//! `const ENABLED`, so with [`NullTelemetry`] — the default — the compiler
//! sees `if false { ... }` and removes the site entirely: the tier-1
//! simulation path monomorphizes to exactly the pre-telemetry code. The
//! equivalence test in `coaxial-system` and the `sim_throughput` bench
//! hold this contract.
//!
//! [`TelemetryRecorder`] is the "everything on" implementation: latency
//! attribution, the event tracer, and (optionally) a bounded log of raw
//! [`MissRecord`]s for property tests.

use crate::attribution::{LatencyAttribution, MissRecord};
use crate::trace::{CounterEvent, EventTracer, TraceEvent};
use crate::Cycle;

/// Receiver for simulation telemetry.
///
/// Implementations must be cheap to pass by `&mut`; the hierarchy calls
/// these hooks on its hot path, guarded by `Self::ENABLED`.
pub trait TelemetrySink {
    /// Whether this sink observes anything at all. Stamping sites check
    /// this constant before doing *any* work (including computing the
    /// values to stamp), so a `false` here makes telemetry free.
    const ENABLED: bool;

    /// A primary L2 miss completed with a full latency ledger.
    fn on_miss(&mut self, rec: &MissRecord);

    /// A component occupied a time span (for the event trace).
    fn on_span(&mut self, ev: TraceEvent);

    /// A counter sample (quantity-over-time, e.g. bandwidth per epoch).
    /// Default no-op so existing sinks need not care about counters.
    fn on_counter(&mut self, ev: CounterEvent) {
        let _ = ev;
    }

    /// The statistics window restarted (end of warmup). Sinks that
    /// aggregate should drop warmup-era records so attribution covers the
    /// measured window, like every other statistic. The event tracer is
    /// *not* reset: its window is expressed in absolute cycles.
    fn on_reset(&mut self) {}
}

/// The no-op sink: telemetry disabled, zero cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTelemetry;

impl TelemetrySink for NullTelemetry {
    const ENABLED: bool = false;

    #[inline(always)]
    fn on_miss(&mut self, _rec: &MissRecord) {}

    #[inline(always)]
    fn on_span(&mut self, _ev: TraceEvent) {}

    #[inline(always)]
    fn on_counter(&mut self, _ev: CounterEvent) {}
}

/// Full recording sink: aggregates attribution, traces events, and keeps
/// up to `keep_requests` raw records for property tests.
#[derive(Debug, Clone)]
pub struct TelemetryRecorder {
    pub attribution: LatencyAttribution,
    pub tracer: EventTracer,
    /// Raw per-request ledgers (first `keep_requests` misses).
    pub requests: Vec<MissRecord>,
    keep_requests: usize,
}

impl Default for TelemetryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryRecorder {
    /// A recorder with a modest default trace buffer and no raw-record log.
    pub fn new() -> Self {
        Self {
            attribution: LatencyAttribution::new(),
            tracer: EventTracer::new(1 << 16),
            requests: Vec::new(),
            keep_requests: 0,
        }
    }

    /// Restrict the event tracer to `[start, end)` cycles with the given
    /// ring capacity.
    pub fn with_trace_window(mut self, capacity: usize, start: Cycle, end: Cycle) -> Self {
        self.tracer = EventTracer::with_window(capacity, start, end);
        self
    }

    /// Keep the first `n` raw [`MissRecord`]s (for property tests).
    pub fn keep_requests(mut self, n: usize) -> Self {
        self.keep_requests = n;
        self.requests.reserve(n.min(1 << 20));
        self
    }
}

impl TelemetrySink for TelemetryRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn on_miss(&mut self, rec: &MissRecord) {
        self.attribution.record(rec);
        if self.requests.len() < self.keep_requests {
            self.requests.push(*rec);
        }
    }

    #[inline]
    fn on_span(&mut self, ev: TraceEvent) {
        self.tracer.record(ev);
    }

    #[inline]
    fn on_counter(&mut self, ev: CounterEvent) {
        self.tracer.record_counter(ev);
    }

    fn on_reset(&mut self) {
        self.attribution = LatencyAttribution::new();
        self.requests.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss() -> MissRecord {
        MissRecord {
            core: 0,
            line: 7,
            channel: 0,
            calm: false,
            llc_hit: false,
            t_l2_miss: 100,
            t_done: 300,
            noc: 12,
            llc: 20,
            issue_wait: 0,
            dram_queue: 42,
            dram_service: 126,
            cxl_link: 0,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullTelemetry::ENABLED) };
        // And usable as a sink without effect.
        let mut t = NullTelemetry;
        t.on_miss(&miss());
        t.on_span(TraceEvent { name: "x", cat: "mem", pid: 0, tid: 0, start: 0, dur: 1, line: 0 });
    }

    #[test]
    fn recorder_aggregates_and_keeps_requests() {
        let mut r = TelemetryRecorder::new().keep_requests(1);
        r.on_miss(&miss());
        r.on_miss(&miss());
        assert_eq!(r.attribution.requests(), 2);
        assert_eq!(r.requests.len(), 1, "log bounded by keep_requests");
        r.on_span(TraceEvent {
            name: "dram",
            cat: "mem",
            pid: 0,
            tid: 0,
            start: 5,
            dur: 10,
            line: 7,
        });
        assert_eq!(r.tracer.len(), 1);
    }
}
