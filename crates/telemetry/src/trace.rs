//! Bounded ring-buffer event tracer with Chrome-trace JSON export.
//!
//! The tracer records complete ("ph":"X") duration events for memory
//! transactions, plus counter ("ph":"C") samples for quantities-over-time
//! such as memory bandwidth, inside a configurable cycle window, and
//! serialises them in the Chrome trace event format, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `about://tracing`.
//!
//! Capacity is bounded: once `capacity` events are held, the oldest are
//! overwritten (ring-buffer semantics) and `dropped()` counts the
//! casualties, so a long run can never exhaust memory. The export is
//! written by hand — the vendored `serde` is a marker-only stub — against
//! the documented schema, and validated by a mini JSON parser in the tests.

use crate::Cycle;

/// One complete duration event destined for a Chrome trace.
///
/// `pid` maps to the component lane (DRAM channel, LLC bank, ...), `tid`
/// to the sub-lane (core or sub-channel); Perfetto renders each (pid, tid)
/// pair as a separate track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name shown on the slice (e.g. "dram", "llc", "cxl_link").
    pub name: &'static str,
    /// Category tag ("mem", "cache", "cxl").
    pub cat: &'static str,
    /// Process lane (component index).
    pub pid: u32,
    /// Thread lane (core / sub-channel index).
    pub tid: u32,
    /// Start timestamp in cycles.
    pub start: Cycle,
    /// Duration in cycles.
    pub dur: Cycle,
    /// Cache-line address tagged into `args` for cross-referencing.
    pub line: u64,
}

/// One counter sample destined for a Chrome trace ("ph":"C").
///
/// Counter tracks render as area charts in Perfetto — one track per
/// `(pid, name)` — which makes bandwidth-over-time of a checkpoint-restored
/// run visually diffable against a cold run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterEvent {
    /// Counter-track name (e.g. "mem_read_bytes").
    pub name: &'static str,
    /// Category tag ("mem", "cache", "cxl").
    pub cat: &'static str,
    /// Process lane (component index).
    pub pid: u32,
    /// Sample timestamp in cycles (by convention the *start* of the
    /// sampling epoch, so samples are engine-independent).
    pub ts: Cycle,
    /// Sampled value (e.g. bytes transferred during the epoch).
    pub value: u64,
}

/// Bounded ring-buffer of [`TraceEvent`]s and [`CounterEvent`]s over a
/// cycle window.
#[derive(Debug, Clone)]
pub struct EventTracer {
    events: Vec<TraceEvent>,
    /// Next slot to overwrite once the buffer is full.
    head: usize,
    /// Counter samples, a ring of the same capacity as `events`.
    counters: Vec<CounterEvent>,
    counter_head: usize,
    capacity: usize,
    /// Only events starting within [window_start, window_end) are kept.
    window_start: Cycle,
    window_end: Cycle,
    dropped: u64,
}

impl EventTracer {
    /// A tracer holding at most `capacity` events with an unbounded window.
    pub fn new(capacity: usize) -> Self {
        Self::with_window(capacity, 0, Cycle::MAX)
    }

    /// A tracer recording only events that *start* inside
    /// `[window_start, window_end)`.
    pub fn with_window(capacity: usize, window_start: Cycle, window_end: Cycle) -> Self {
        Self {
            events: Vec::with_capacity(capacity.min(4096)),
            head: 0,
            counters: Vec::new(),
            counter_head: 0,
            capacity: capacity.max(1),
            window_start,
            window_end,
            dropped: 0,
        }
    }

    /// Record an event. Outside the window it is discarded silently; once
    /// the ring is full the oldest event is overwritten and counted in
    /// [`EventTracer::dropped`].
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if ev.start < self.window_start || ev.start >= self.window_end {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Record a counter sample. Same window and ring semantics as
    /// [`EventTracer::record`], on a separate ring of equal capacity so a
    /// burst of span events cannot push out the bandwidth timeline (or
    /// vice versa).
    #[inline]
    pub fn record_counter(&mut self, ev: CounterEvent) {
        if ev.ts < self.window_start || ev.ts >= self.window_end {
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.push(ev);
        } else {
            self.counters[self.counter_head] = ev;
            self.counter_head = (self.counter_head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The recording window `[start, end)`.
    pub fn window(&self) -> (Cycle, Cycle) {
        (self.window_start, self.window_end)
    }

    /// Events in chronological order (oldest surviving first).
    pub fn events(&self) -> Vec<&TraceEvent> {
        let (newer, older) = self.events.split_at(self.head);
        older.iter().chain(newer.iter()).collect()
    }

    /// Counter samples in chronological order (oldest surviving first).
    pub fn counter_samples(&self) -> Vec<&CounterEvent> {
        let (newer, older) = self.counters.split_at(self.counter_head);
        older.iter().chain(newer.iter()).collect()
    }

    /// Serialise to Chrome trace event format JSON.
    ///
    /// Timestamps and durations are converted from cycles to microseconds
    /// (the unit the schema mandates) at the 2.4 GHz system clock. The
    /// cache-line address and cycle-domain timestamps are preserved under
    /// `args` for exact cross-referencing with simulator output.
    pub fn export_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (i, ev) in self.events().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ts_us = crate::time::cycles_to_us(ev.start);
            let dur_us = crate::time::cycles_to_us(ev.dur.max(1));
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.4},\"dur\":{:.4},\
                 \"pid\":{},\"tid\":{},\"args\":{{\"line\":{},\"start_cycle\":{},\"dur_cycles\":{}}}}}",
                ev.name, ev.cat, ts_us, dur_us, ev.pid, ev.tid, ev.line, ev.start, ev.dur
            ));
        }
        let mut first = self.events.is_empty();
        for ev in self.counter_samples() {
            if !first {
                out.push(',');
            }
            first = false;
            let ts_us = crate::time::cycles_to_us(ev.ts);
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"C\",\"ts\":{:.4},\"pid\":{},\
                 \"args\":{{\"value\":{},\"cycle\":{}}}}}",
                ev.name, ev.cat, ts_us, ev.pid, ev.value, ev.ts
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: Cycle, dur: Cycle) -> TraceEvent {
        TraceEvent { name: "dram", cat: "mem", pid: 0, tid: 1, start, dur, line: 0xdead }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut t = EventTracer::new(3);
        for i in 0..5 {
            t.record(ev(i * 10, 5));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let starts: Vec<Cycle> = t.events().iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![20, 30, 40]);
    }

    #[test]
    fn window_filters_by_start() {
        let mut t = EventTracer::with_window(16, 100, 200);
        t.record(ev(50, 5)); // before window
        t.record(ev(150, 5)); // inside
        t.record(ev(199, 5)); // inside (start < end)
        t.record(ev(200, 5)); // at end: excluded
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 0);
    }

    /// Minimal JSON parser: enough to validate the exported trace's
    /// structure (balanced syntax, required keys, numeric fields).
    mod mini_json {
        #[derive(Debug, PartialEq)]
        pub enum Value {
            Null,
            Bool(bool),
            Num(f64),
            Str(String),
            Arr(Vec<Value>),
            Obj(Vec<(String, Value)>),
        }

        pub fn parse(s: &str) -> Result<Value, String> {
            let b = s.as_bytes();
            let mut pos = 0usize;
            let v = value(b, &mut pos)?;
            skip_ws(b, &mut pos);
            if pos != b.len() {
                return Err(format!("trailing bytes at {pos}"));
            }
            Ok(v)
        }

        fn skip_ws(b: &[u8], pos: &mut usize) {
            while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
                *pos += 1;
            }
        }

        fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b'{') => obj(b, pos),
                Some(b'[') => arr(b, pos),
                Some(b'"') => Ok(Value::Str(string(b, pos)?)),
                Some(b't') => lit(b, pos, "true", Value::Bool(true)),
                Some(b'f') => lit(b, pos, "false", Value::Bool(false)),
                Some(b'n') => lit(b, pos, "null", Value::Null),
                Some(_) => num(b, pos),
                None => Err("unexpected end".into()),
            }
        }

        fn lit(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
            if b[*pos..].starts_with(word.as_bytes()) {
                *pos += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at {pos}"))
            }
        }

        fn num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at {start}"))
        }

        fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
            *pos += 1; // opening quote
            let mut s = String::new();
            while *pos < b.len() {
                match b[*pos] {
                    b'"' => {
                        *pos += 1;
                        return Ok(s);
                    }
                    b'\\' => {
                        *pos += 2;
                        s.push('?'); // escapes not needed for our schema
                    }
                    c => {
                        s.push(c as char);
                        *pos += 1;
                    }
                }
            }
            Err("unterminated string".into())
        }

        fn arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("bad array at {pos}")),
                }
            }
        }

        fn obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(items));
            }
            loop {
                skip_ws(b, pos);
                let key = string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at {pos}"));
                }
                *pos += 1;
                items.push((key, value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(items));
                    }
                    _ => return Err(format!("bad object at {pos}")),
                }
            }
        }
    }

    #[test]
    fn chrome_export_is_valid_json_with_required_schema() {
        let mut t = EventTracer::new(8);
        t.record(ev(240, 120)); // 100 ns start, 50 ns duration at 2.4 GHz
        t.record(TraceEvent {
            name: "cxl_link",
            cat: "cxl",
            pid: 2,
            tid: 0,
            start: 480,
            dur: 60,
            line: 42,
        });
        let json = t.export_chrome_json();
        let v = mini_json::parse(&json).expect("export must be valid JSON");

        let mini_json::Value::Obj(top) = v else { panic!("top level must be an object") };
        let events = top
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents key required");
        let mini_json::Value::Arr(events) = events else { panic!("traceEvents must be an array") };
        assert_eq!(events.len(), 2);
        for e in events {
            let mini_json::Value::Obj(fields) = e else { panic!("event must be an object") };
            let get = |k: &str| fields.iter().find(|(f, _)| f == k).map(|(_, v)| v);
            assert_eq!(get("ph"), Some(&mini_json::Value::Str("X".into())));
            assert!(matches!(get("ts"), Some(mini_json::Value::Num(_))));
            assert!(matches!(get("dur"), Some(mini_json::Value::Num(_))));
            assert!(matches!(get("pid"), Some(mini_json::Value::Num(_))));
            assert!(matches!(get("tid"), Some(mini_json::Value::Num(_))));
            assert!(matches!(get("name"), Some(mini_json::Value::Str(_))));
        }
        // Cycle→µs conversion: 240 cycles @2.4 GHz = 0.1 µs.
        let mini_json::Value::Obj(fields) = &events[0] else { unreachable!() };
        let ts = fields.iter().find(|(k, _)| k == "ts").map(|(_, v)| v).unwrap();
        let mini_json::Value::Num(ts) = ts else { panic!() };
        assert!((ts - 0.1).abs() < 1e-9, "ts {ts} != 0.1 µs");
    }

    #[test]
    fn empty_trace_exports_empty_array() {
        let t = EventTracer::new(4);
        let json = t.export_chrome_json();
        assert!(json.contains("\"traceEvents\":[]"));
        mini_json::parse(&json).expect("empty export must still be valid JSON");
    }

    fn ctr(ts: Cycle, value: u64) -> CounterEvent {
        CounterEvent { name: "mem_read_bytes", cat: "mem", pid: 300, ts, value }
    }

    #[test]
    fn counter_ring_overwrites_oldest_and_respects_window() {
        let mut t = EventTracer::with_window(3, 100, 300);
        t.record_counter(ctr(50, 1)); // before window: dropped silently
        t.record_counter(ctr(300, 1)); // at end: excluded
        for i in 0..5 {
            t.record_counter(ctr(100 + i * 10, i));
        }
        assert_eq!(t.dropped(), 2, "two overwrites once the counter ring filled");
        let ts: Vec<Cycle> = t.counter_samples().iter().map(|c| c.ts).collect();
        assert_eq!(ts, vec![120, 130, 140]);
        // Span events ride a separate ring: recording one evicts no counter.
        t.record(ev(150, 5));
        assert_eq!(t.counter_samples().len(), 3);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn chrome_export_emits_counter_events() {
        let mut t = EventTracer::new(8);
        t.record(ev(240, 120));
        t.record_counter(ctr(4096, 640));
        let json = t.export_chrome_json();
        let v = mini_json::parse(&json).expect("counter export must be valid JSON");
        let mini_json::Value::Obj(top) = v else { panic!("top level must be an object") };
        let (_, mini_json::Value::Arr(events)) =
            top.iter().find(|(k, _)| k == "traceEvents").expect("traceEvents key required")
        else {
            panic!("traceEvents must be an array")
        };
        assert_eq!(events.len(), 2, "one span + one counter");
        let mini_json::Value::Obj(fields) = &events[1] else { panic!("counter must be an object") };
        let get = |k: &str| fields.iter().find(|(f, _)| f == k).map(|(_, v)| v);
        assert_eq!(get("ph"), Some(&mini_json::Value::Str("C".into())));
        assert_eq!(get("name"), Some(&mini_json::Value::Str("mem_read_bytes".into())));
        assert_eq!(get("pid"), Some(&mini_json::Value::Num(300.0)));
        let Some(mini_json::Value::Obj(args)) = get("args") else { panic!("args required") };
        let arg = |k: &str| args.iter().find(|(f, _)| f == k).map(|(_, v)| v);
        assert_eq!(arg("value"), Some(&mini_json::Value::Num(640.0)));
        assert_eq!(arg("cycle"), Some(&mini_json::Value::Num(4096.0)));
    }

    #[test]
    fn counters_alone_export_without_leading_comma() {
        let mut t = EventTracer::new(4);
        t.record_counter(ctr(0, 7));
        let json = t.export_chrome_json();
        mini_json::parse(&json).expect("counter-only export must be valid JSON");
    }
}
