//! Loopback integration tests: a real gateway on 127.0.0.1 with real
//! TCP clients, covering the acceptance criteria of the serve subsystem:
//!
//! (a) `POST /v1/run` bodies are byte-identical to the CLI's `--json`
//!     serialization of the same configuration, on both engines;
//! (b) N identical concurrent requests execute exactly one simulation
//!     (dedup-join counter reads N−1);
//! (c) queue overflow answers 429 with `Retry-After` and never drops an
//!     accepted job;
//! (d) graceful shutdown drains in-flight work, and `/metrics` exposes
//!     queue depth, cache and dedup counters, and latency histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use coaxial_gateway::http::{client_request, ClientResponse};
use coaxial_gateway::{report_to_json, serve, GatewayConfig, GatewayStats};
use coaxial_system::runner::RunSpec;
use coaxial_system::{EngineKind, SystemConfig};
use coaxial_workloads::Workload;

/// Start a gateway on an ephemeral port; returns the base URL and the
/// handle that yields [`GatewayStats`] after shutdown.
fn start(workers: usize, queue_depth: usize) -> (String, std::thread::JoinHandle<GatewayStats>) {
    let dir = std::env::temp_dir()
        .join(format!("coaxial-gw-test-{}-{workers}-{queue_depth}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let port_file = dir.join("port");
    let cfg = GatewayConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth,
        cache_mb: 8,
        rate_per_sec: 0,
        burst: 8,
        port_file: Some(port_file.clone()),
    };
    let handle = std::thread::spawn(move || serve(cfg).expect("gateway serve"));
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                break text;
            }
        }
        assert!(Instant::now() < deadline, "gateway never wrote its port file");
        std::thread::sleep(Duration::from_millis(10));
    };
    let _ = std::fs::remove_dir_all(&dir);
    (format!("http://{addr}"), handle)
}

fn post(base: &str, path: &str, body: &str) -> ClientResponse {
    client_request("POST", &format!("{base}{path}"), body.as_bytes()).expect("request")
}

fn get(base: &str, path: &str) -> ClientResponse {
    client_request("GET", &format!("{base}{path}"), b"").expect("request")
}

fn shutdown(base: &str, handle: std::thread::JoinHandle<GatewayStats>) -> GatewayStats {
    let resp = post(base, "/shutdown", "");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    handle.join().expect("gateway thread")
}

/// Poll the one-shot status endpoint until the job reports `state`.
/// (`GET /v1/jobs/{id}` without `/status` streams until the job is
/// terminal, which is exactly wrong for observing intermediate states.)
fn wait_for_state(base: &str, id: u64, state: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let resp = get(base, &format!("/v1/jobs/{id}/status"));
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        if resp.body_str().contains(&format!("\"state\":\"{state}\"")) {
            return;
        }
        assert!(Instant::now() < deadline, "job {id} never reached {state}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn served_run_is_byte_identical_to_cli_json_on_both_engines() {
    let (base, handle) = start(2, 16);
    let w = Workload::by_name("mcf").expect("mcf exists");
    for engine in ["event", "lockstep"] {
        let body = format!(
            "{{\"workload\":\"mcf\",\"config\":\"4x\",\"instructions\":4000,\
             \"warmup\":1000,\"engine\":\"{engine}\"}}"
        );
        let resp = post(&base, "/v1/run", &body);
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        // The CLI's `run --json` path is `report_to_json(spec.run()) + "\n"`.
        let kind = if engine == "event" { EngineKind::Event } else { EngineKind::Lockstep };
        let spec =
            RunSpec::homogeneous(SystemConfig::coaxial_4x(), w, 4000, 1000).with_engine(kind);
        let local = report_to_json(&spec.run()) + "\n";
        assert_eq!(
            resp.body_str(),
            local,
            "served body must be byte-identical to the CLI serialization ({engine})"
        );
    }
    let stats = shutdown(&base, handle);
    assert_eq!(stats.jobs_completed, 2);
    assert_eq!(stats.jobs_failed, 0);
}

#[test]
fn identical_concurrent_requests_run_exactly_one_simulation() {
    // One worker, pinned busy by a background job, so the N identical
    // requests all arrive while their shared job is still queued — the
    // join count is deterministic, not a race.
    let (base, handle) = start(1, 16);
    let blocker =
        r#"{"workload":"lbm","config":"2x","instructions":30000,"warmup":2000,"async":true}"#;
    let resp = post(&base, "/v1/run", blocker);
    assert_eq!(resp.status, 202, "{}", resp.body_str());
    wait_for_state(&base, 1, "running");

    const N: u64 = 6;
    let shared = r#"{"workload":"mcf","config":"4x","instructions":3000,"warmup":500}"#;
    let bodies: Vec<String> = {
        let base = &base;
        let done = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..N)
                .map(|_| {
                    let done = Arc::clone(&done);
                    scope.spawn(move || {
                        let resp = post(base, "/v1/run", shared);
                        assert_eq!(resp.status, 200, "{}", resp.body_str());
                        done.fetch_add(1, Ordering::Relaxed);
                        resp.body_str().into_owned()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        })
    };
    assert!(bodies.windows(2).all(|w| w[0] == w[1]), "all joiners get the same body");

    let metrics = get(&base, "/metrics");
    let text = metrics.body_str().into_owned();
    let stats = shutdown(&base, handle);
    // N identical requests → 1 enqueue + (N−1) joins → 2 jobs total
    // (blocker + shared).
    assert_eq!(stats.dedup_joins, N - 1, "metrics:\n{text}");
    assert_eq!(stats.jobs_completed, 2, "exactly one simulation for the N requests");
    assert!(text.contains("gateway.dedup.joins"), "{text}");
}

#[test]
fn queue_overflow_answers_429_and_accepted_jobs_all_finish() {
    // One worker, queue depth 1: job A runs, job B waits in the queue,
    // job C is refused with 429 + Retry-After.
    let (base, handle) = start(1, 1);
    let job_a =
        r#"{"workload":"lbm","config":"2x","instructions":30000,"warmup":2000,"async":true}"#;
    assert_eq!(post(&base, "/v1/run", job_a).status, 202);
    wait_for_state(&base, 1, "running");

    let job_b =
        r#"{"workload":"mcf","config":"ddr","instructions":2000,"warmup":500,"async":true}"#;
    assert_eq!(post(&base, "/v1/run", job_b).status, 202);

    let job_c =
        r#"{"workload":"omnetpp","config":"4x","instructions":2000,"warmup":500,"async":true}"#;
    let refused = post(&base, "/v1/run", job_c);
    assert_eq!(refused.status, 429, "{}", refused.body_str());
    assert!(refused.header("retry-after").is_some(), "429 must carry Retry-After");

    // Both accepted jobs still complete: nothing was dropped. Job 2 is
    // watched through the chunked streaming endpoint (it blocks until
    // the job is terminal and its last ndjson line carries the state).
    wait_for_state(&base, 1, "done");
    let watched = get(&base, "/v1/jobs/2");
    assert_eq!(watched.status, 200);
    assert_eq!(
        watched.header("transfer-encoding").map(str::to_ascii_lowercase).as_deref(),
        Some("chunked"),
        "progress endpoint must stream"
    );
    let last = watched.body_str().lines().last().map(str::to_string).unwrap_or_default();
    assert!(last.contains("\"state\":\"done\""), "{last}");
    let result_b = get(&base, "/v1/jobs/2/result");
    assert_eq!(result_b.status, 200);
    assert!(result_b.body_str().contains("\"config\":\"DDR-baseline\""));

    let stats = shutdown(&base, handle);
    assert_eq!(stats.queue_rejected, 1);
    assert_eq!(stats.jobs_completed, 2);
    assert_eq!(stats.jobs_failed, 0);
}

#[test]
fn shutdown_drains_inflight_work_and_metrics_expose_the_pipeline() {
    let (base, handle) = start(1, 16);
    // Queue work, then immediately request shutdown: the drain must wait
    // for both jobs, and the queued-then-drained job must still answer.
    let j1 = r#"{"workload":"lbm","config":"2x","instructions":20000,"warmup":2000,"async":true}"#;
    let j2 = r#"{"workload":"mcf","config":"4x","instructions":3000,"warmup":500,"async":true}"#;
    assert_eq!(post(&base, "/v1/run", j1).status, 202);
    assert_eq!(post(&base, "/v1/run", j2).status, 202);

    let metrics = get(&base, "/metrics").body_str().into_owned();
    for name in [
        "gateway.queue.depth",
        "gateway.queue.capacity",
        "gateway.queue.rejected",
        "gateway.cache.hits",
        "gateway.cache.misses",
        "gateway.dedup.joins",
        "gateway.requests.total",
        "gateway.request.latency_us",
        "gateway.jobs.running",
        "gateway.shutdown.draining",
    ] {
        assert!(metrics.contains(name), "/metrics must expose {name}:\n{metrics}");
    }

    let stats = shutdown(&base, handle);
    assert_eq!(stats.jobs_completed, 2, "drain must finish queued and running jobs");
    assert_eq!(stats.jobs_failed, 0);
}

#[test]
fn error_paths_and_cache_hits() {
    let (base, handle) = start(1, 16);
    // Structured 400s.
    assert_eq!(post(&base, "/v1/run", r#"{"workload":"nope"}"#).status, 400);
    assert_eq!(post(&base, "/v1/run", "garbage").status, 400);
    assert_eq!(post(&base, "/v1/run", r#"{"workload":"mcf","engine":"warp"}"#).status, 400);
    // Unknown routes and methods.
    assert_eq!(get(&base, "/v1/nope").status, 404);
    assert_eq!(get(&base, "/v1/jobs/99").status, 404);
    assert_eq!(post(&base, "/metrics", "").status, 405);
    assert_eq!(get(&base, "/healthz").body_str(), "ok\n");

    // A repeated request is a cache hit: same body, no second simulation.
    let body = r#"{"workload":"mcf","config":"ddr","instructions":2000,"warmup":500}"#;
    let first = post(&base, "/v1/run", body);
    assert_eq!(first.status, 200);
    let second = post(&base, "/v1/run", body);
    assert_eq!(second.status, 200);
    assert_eq!(first.body_str(), second.body_str());
    let metrics = get(&base, "/metrics").body_str().into_owned();
    let stats = shutdown(&base, handle);
    assert_eq!(stats.jobs_completed, 1, "second request must be served from cache");
    assert!(metrics.contains("gateway.cache.hits"), "{metrics}");

    // Sweep responses are an array with one report per config.
    let (base, handle) = start(2, 16);
    let sweep = r#"{"workload":"mcf","configs":["ddr","4x"],"instructions":2000,"warmup":500}"#;
    let resp = post(&base, "/v1/sweep", sweep);
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let text = resp.body_str();
    assert!(text.starts_with('[') && text.trim_end().ends_with(']'), "{text}");
    assert!(text.contains("\"config\":\"DDR-baseline\""), "{text}");
    assert!(text.contains("\"config\":\"COAXIAL-4x\""), "{text}");
    let stats = shutdown(&base, handle);
    assert_eq!(stats.jobs_completed, 1);
}

/// Parse one counter's value out of the rendered `/metrics` body.
fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| {
            let mut it = l.split_whitespace();
            (it.next() == Some(name)).then(|| it.next().unwrap_or("0").parse().unwrap_or(0))
        })
        .unwrap_or_else(|| panic!("metric {name} missing:\n{metrics}"))
}

#[test]
fn job_table_stays_bounded_under_distinct_request_hammer() {
    // Every request is unique (distinct instruction budget), so each one
    // is a fresh job: without bounded retention the table would grow to
    // N entries and a long-lived gateway would leak.
    let (base, handle) = start(2, 128);
    const N: u64 = 80; // > RETAINED_JOBS (64)
    for i in 0..N {
        let body = format!(
            "{{\"workload\":\"mcf\",\"config\":\"4x\",\"instructions\":{},\"warmup\":100}}",
            500 + i
        );
        let resp = post(&base, "/v1/run", &body);
        assert_eq!(resp.status, 200, "{}", resp.body_str());
    }
    let metrics = get(&base, "/metrics").body_str().into_owned();
    let entries = metric_value(&metrics, "gateway.jobs.entries");
    assert!(entries <= 64, "job table must stay bounded, got {entries}");
    assert_eq!(metric_value(&metrics, "gateway.jobs.admitted"), N);
    let stats = shutdown(&base, handle);
    assert_eq!(stats.jobs_completed, N);
    assert_eq!(stats.jobs_failed, 0);
}

#[test]
fn trace_jobs_expose_perfetto_export() {
    let (base, handle) = start(1, 8);
    let body = r#"{"workload":"mcf","config":"4x","instructions":2000,"warmup":500,"trace":true}"#;
    let resp = post(&base, "/v1/run", body);
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let trace = get(&base, "/v1/jobs/1/trace");
    assert_eq!(trace.status, 200, "{}", trace.body_str());
    assert!(trace.body_str().contains("traceEvents"), "Perfetto/Chrome JSON envelope");
    // The same request without trace=true is a different key (different
    // job), and its trace endpoint answers 404.
    let plain = r#"{"workload":"mcf","config":"4x","instructions":2000,"warmup":500}"#;
    assert_eq!(post(&base, "/v1/run", plain).status, 200);
    assert_eq!(get(&base, "/v1/jobs/2/trace").status, 404);
    shutdown(&base, handle);
}
