//! Minimal HTTP/1.1 on `std::net::TcpStream`: request parsing, fixed and
//! chunked responses, and a tiny client (`coaxial http ...`) so scripts
//! work on hosts without `curl`. Every response is `Connection: close` —
//! one request per connection keeps the server loop trivial and is plenty
//! for a simulation gateway whose requests run for seconds.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on request bodies: a sweep over every workload × config is ~4 KB;
/// anything near this limit is abuse, not simulation.
const MAX_BODY_BYTES: u64 = 1 << 20;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path only (any `?query` is split off and ignored).
    pub path: String,
    /// Header names lowercased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Read one request from the stream (no keep-alive).
    pub fn read_from(stream: &mut BufReader<TcpStream>) -> std::io::Result<Request> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let mut line = String::new();
        stream.read_line(&mut line)?;
        let mut parts = line.split_whitespace();
        let method = parts.next().ok_or_else(|| bad("empty request line"))?.to_string();
        let target = parts.next().ok_or_else(|| bad("missing request target"))?;
        let path = target.split('?').next().unwrap_or(target).to_string();

        let mut headers = Vec::new();
        loop {
            let mut h = String::new();
            stream.read_line(&mut h)?;
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((k, v)) = h.split_once(':') {
                headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
            }
        }

        let len: u64 = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        if len > MAX_BODY_BYTES {
            return Err(bad("request body too large"));
        }
        let mut body = vec![0u8; coaxial_sim::idx(len)];
        stream.read_exact(&mut body)?;
        Ok(Request { method, path, headers, body })
    }
}

/// Write a complete fixed-length response and flush.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n",
        status_text(status),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Streaming response writer (`Transfer-Encoding: chunked`), used by the
/// job-progress endpoint to push newline-delimited JSON as work proceeds.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    pub fn start(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> std::io::Result<Self> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n",
            status_text(status)
        );
        stream.write_all(head.as_bytes())?;
        Ok(Self { stream })
    }

    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        self.stream.write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A client response: status line code, headers (lowercased names), and
/// the body with any chunked transfer coding already decoded.
#[derive(Debug)]
pub struct ClientResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

/// Issue one `METHOD path` request against `host:port` and read the full
/// response. `url` accepts `http://host:port/path` or `host:port/path`.
pub fn client_request(method: &str, url: &str, body: &[u8]) -> std::io::Result<ClientResponse> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg);
    let rest = url.strip_prefix("http://").unwrap_or(url);
    let (host, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    let mut stream = TcpStream::connect(host).map_err(|e| bad(format!("connect {host}: {e}")))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {host}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad status line {status_line:?}")))?;

    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        reader.read_line(&mut h)?;
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }

    let chunked =
        headers.iter().any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        let mut out = Vec::new();
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|e| bad(format!("bad chunk size {size_line:?}: {e}")))?;
            if size == 0 {
                let mut trailer = String::new();
                reader.read_line(&mut trailer)?;
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            out.extend_from_slice(&chunk);
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
        }
        out
    } else {
        let len: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let mut out = vec![0u8; len];
        reader.read_exact(&mut out)?;
        out
    };
    Ok(ClientResponse { status, headers, body })
}
