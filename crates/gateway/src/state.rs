//! Shared gateway state: the job table, bounded queue, in-flight dedup
//! map, completed-result cache, per-client token buckets, and the
//! telemetry snapshot behind `GET /metrics`.
//!
//! Everything mutable lives under one `Mutex<Inner>`; simulations run
//! *outside* the lock, so the critical sections are queue/table edits
//! measured in microseconds. Two condvars signal the two directions:
//! `work_cv` wakes workers when a job is queued (or a drain begins), and
//! `done_cv` wakes blocked HTTP handlers when any job reaches a terminal
//! state.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use coaxial_sim::ByteBoundedLru;
use coaxial_system::runner::RunSpec;
use coaxial_telemetry::{MetricsRegistry, SharedHistogram};

use crate::GatewayConfig;

/// What a queued job executes.
pub enum JobKind {
    Run(Box<RunSpec>),
    Sweep(Vec<RunSpec>),
}

/// Job lifecycle; `Done`/`Failed` are terminal.
#[derive(Clone, PartialEq, Eq)]
pub enum JobStatus {
    Queued,
    Running,
    Done,
    Failed(String),
}

impl JobStatus {
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed(_) => "failed",
        }
    }

    pub fn terminal(&self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed(_))
    }
}

/// One admitted unit of work. Stays in the table after completion so
/// `GET /v1/jobs/{id}` and `/result`/`/trace` keep answering — but only
/// the [`RETAINED_JOBS`] most recent terminal jobs are kept
/// ([`Inner::retire_job`]); older ids answer 404 while their response
/// bodies remain reachable through the result cache.
pub struct Job {
    pub id: u64,
    pub key: u128,
    pub kind: JobKind,
    pub trace_requested: bool,
    pub status: JobStatus,
    /// Completed response body (also inserted into the result cache).
    pub body: Option<Arc<Vec<u8>>>,
    /// Perfetto trace JSON when `trace_requested`.
    pub trace: Option<Arc<Vec<u8>>>,
    /// Completed sub-runs (sweeps tick once per config) — read lock-free
    /// by the streaming progress endpoint while the worker simulates.
    pub progress: Arc<AtomicU64>,
    pub total: u64,
}

/// Client-side admission control: a classic token bucket refilled by
/// wall-clock time. The gateway crate is service plumbing, not simulation
/// model — it is deliberately outside the determinism lint scope, so
/// `Instant` is fine here.
struct TokenBucket {
    tokens: f64,
    last: Instant,
}

/// Rates and burst sizes are human-scale knobs (≪ 2^53), so the u64→f64
/// conversion is exact.
#[allow(clippy::cast_precision_loss)]
fn small_f64(x: u64) -> f64 {
    x as f64
}

impl TokenBucket {
    fn admit(&mut self, rate_per_sec: u64, burst: u64) -> bool {
        let now = Instant::now();
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        let rate: f64 = small_f64(rate_per_sec);
        // A burst of 0 would cap the bucket at 0 tokens and lock the
        // client out permanently; admission needs ≥1 token of headroom.
        self.tokens = (self.tokens + dt * rate).min(small_f64(burst.max(1)));
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Terminal jobs kept in the table for late `GET`s. Beyond this the
/// oldest one is dropped, so a long-lived gateway's job table stays
/// bounded no matter how many runs it has served.
pub const RETAINED_JOBS: usize = 64;

/// Idle per-client limiter buckets tolerated before a sweep; small enough
/// that the sweep (an O(clients) scan under the lock) stays rare on quiet
/// gateways and cheap on busy ones.
const LIMITER_SWEEP_MIN: usize = 8;

/// Mutex-guarded portion of the gateway.
pub struct Inner {
    /// FIFO of queued job ids (bounded by `cfg.queue_depth`).
    pub queue: VecDeque<u64>,
    /// Every admitted job, by id.
    pub jobs: BTreeMap<u64, Job>,
    /// Canonical key → job id for jobs that are queued or running;
    /// identical concurrent requests attach here instead of enqueueing.
    pub inflight: BTreeMap<u128, u64>,
    /// Completed response bodies, byte-bounded.
    pub cache: ByteBoundedLru<u128, Arc<Vec<u8>>>,
    next_id: u64,
    /// Jobs currently executing on workers (not in `queue`).
    pub running: usize,
    limiters: BTreeMap<String, TokenBucket>,
    /// Terminal job ids, oldest first — the eviction order behind
    /// [`RETAINED_JOBS`].
    finished: VecDeque<u64>,
}

impl Inner {
    /// Record a job as terminal and enforce [`RETAINED_JOBS`]: the oldest
    /// retained terminal job is dropped from the table once the bound is
    /// exceeded. Completed bodies stay reachable through the result cache
    /// even after the job row is gone.
    pub fn retire_job(&mut self, id: u64) {
        self.finished.push_back(id);
        while self.finished.len() > RETAINED_JOBS {
            if let Some(old) = self.finished.pop_front() {
                self.jobs.remove(&old);
            }
        }
    }
}

/// Admission verdict for a new run/sweep request.
pub enum Admission {
    /// Served straight from the result cache.
    Cached(Arc<Vec<u8>>),
    /// Attached to an already queued/running identical job.
    Joined(u64),
    /// Newly enqueued.
    Enqueued(u64),
    /// Queue full — `429 Retry-After`.
    QueueFull,
    /// Shutting down — `503`.
    Draining,
}

/// The shared gateway: configuration, guarded state, and counters that
/// are read without the lock (metrics, shutdown flags).
pub struct Gateway {
    pub cfg: GatewayConfig,
    pub inner: Mutex<Inner>,
    /// Workers wait here for queue activity or drain.
    pub work_cv: Condvar,
    /// Blocked request handlers wait here for job completion.
    pub done_cv: Condvar,
    /// Set on SIGTERM / `POST /shutdown`: refuse new work, finish the rest.
    pub draining: AtomicBool,
    /// Set once the drain completes; the accept loop exits.
    pub stopped: AtomicBool,
    pub requests_total: AtomicU64,
    pub rate_limited: AtomicU64,
    pub queue_rejected: AtomicU64,
    pub dedup_joins: AtomicU64,
    pub jobs_completed: AtomicU64,
    pub jobs_failed: AtomicU64,
    /// Idle per-client limiter buckets dropped by the admission sweep.
    pub limiters_evicted: AtomicU64,
    /// End-to-end request latency in microseconds (admission to response
    /// head), across all endpoints.
    pub latency_us: SharedHistogram,
}

impl Gateway {
    #[must_use]
    pub fn new(cfg: GatewayConfig) -> Self {
        let cache = ByteBoundedLru::new(cfg.cache_mb.saturating_mul(1024 * 1024).max(1));
        Self {
            cfg,
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                jobs: BTreeMap::new(),
                inflight: BTreeMap::new(),
                cache,
                next_id: 1,
                running: 0,
                limiters: BTreeMap::new(),
                finished: VecDeque::new(),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            requests_total: AtomicU64::new(0),
            rate_limited: AtomicU64::new(0),
            queue_rejected: AtomicU64::new(0),
            dedup_joins: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            limiters_evicted: AtomicU64::new(0),
            latency_us: SharedHistogram::new(),
        }
    }

    /// Token-bucket admission for one client; `true` means proceed.
    /// Disabled (always true) when `rate_per_sec` is 0.
    pub fn admit_client(&self, client: &str) -> bool {
        if self.cfg.rate_per_sec == 0 {
            return true;
        }
        let mut inner = self.inner.lock().expect("gateway lock poisoned");
        let bucket = inner.limiters.entry(client.to_string()).or_insert_with(|| TokenBucket {
            // Same ≥1 clamp as `TokenBucket::admit`: a fresh client must
            // hold at least one admittable token even at burst 0.
            tokens: small_f64(self.cfg.burst.max(1)),
            last: Instant::now(),
        });
        let ok = bucket.admit(self.cfg.rate_per_sec, self.cfg.burst);
        if !ok {
            self.rate_limited.fetch_add(1, Ordering::Relaxed);
        }
        if inner.limiters.len() > LIMITER_SWEEP_MIN {
            // Evict buckets idle past the full-refill horizon: such a
            // bucket is back at capacity, and a re-inserted bucket starts
            // full, so dropping it cannot change any admission decision.
            // One distinct client per request would otherwise grow the
            // map without bound.
            let now = Instant::now();
            let horizon = small_f64(self.cfg.burst.max(1)) / small_f64(self.cfg.rate_per_sec);
            let before = inner.limiters.len();
            inner.limiters.retain(|_, b| now.duration_since(b.last).as_secs_f64() < horizon);
            let evicted = (before - inner.limiters.len()) as u64;
            if evicted > 0 {
                self.limiters_evicted.fetch_add(evicted, Ordering::Relaxed);
            }
        }
        ok
    }

    /// Route one canonicalized request through cache → dedup → queue.
    pub fn admit(&self, key: u128, kind: JobKind, trace: bool, total: u64) -> Admission {
        let mut inner = self.inner.lock().expect("gateway lock poisoned");
        if let Some(body) = inner.cache.get(&key) {
            return Admission::Cached(Arc::clone(body));
        }
        if let Some(&id) = inner.inflight.get(&key) {
            self.dedup_joins.fetch_add(1, Ordering::Relaxed);
            return Admission::Joined(id);
        }
        if self.draining.load(Ordering::SeqCst) {
            return Admission::Draining;
        }
        if inner.queue.len() >= self.cfg.queue_depth {
            self.queue_rejected.fetch_add(1, Ordering::Relaxed);
            return Admission::QueueFull;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.jobs.insert(
            id,
            Job {
                id,
                key,
                kind,
                trace_requested: trace,
                status: JobStatus::Queued,
                body: None,
                trace: None,
                progress: Arc::new(AtomicU64::new(0)),
                total,
            },
        );
        inner.inflight.insert(key, id);
        inner.queue.push_back(id);
        self.work_cv.notify_one();
        Admission::Enqueued(id)
    }

    /// True once a drain was requested and no work remains.
    pub fn drained(&self, inner: &Inner) -> bool {
        self.draining.load(Ordering::SeqCst) && inner.queue.is_empty() && inner.running == 0
    }

    /// Snapshot every `gateway.*` metric (plus the simulator's prefill
    /// checkpoint counters) into one registry — the `/metrics` body.
    ///
    /// All constant gateway metric paths are registered in this function
    /// so the name space stays greppable in one place.
    #[must_use]
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        {
            let inner = self.inner.lock().expect("gateway lock poisoned");
            reg.set_counter("gateway.queue.depth", inner.queue.len() as u64);
            reg.set_counter("gateway.queue.capacity", self.cfg.queue_depth as u64);
            reg.set_counter("gateway.jobs.running", inner.running as u64);
            reg.set_counter("gateway.jobs.admitted", inner.next_id - 1);
            reg.set_counter("gateway.cache.hits", inner.cache.hits());
            reg.set_counter("gateway.cache.misses", inner.cache.misses());
            reg.set_counter("gateway.cache.evictions", inner.cache.evictions());
            reg.set_counter("gateway.cache.entries", inner.cache.len() as u64);
            reg.set_counter("gateway.cache.bytes", inner.cache.bytes());
            reg.set_counter("gateway.jobs.entries", inner.jobs.len() as u64);
            reg.set_counter("gateway.limiters.entries", inner.limiters.len() as u64);
        }
        reg.set_counter("gateway.limiters.evicted", self.limiters_evicted.load(Ordering::Relaxed));
        reg.set_counter("gateway.queue.rejected", self.queue_rejected.load(Ordering::Relaxed));
        reg.set_counter("gateway.requests.total", self.requests_total.load(Ordering::Relaxed));
        reg.set_counter("gateway.requests.rate_limited", self.rate_limited.load(Ordering::Relaxed));
        reg.set_counter("gateway.dedup.joins", self.dedup_joins.load(Ordering::Relaxed));
        reg.set_counter("gateway.jobs.completed", self.jobs_completed.load(Ordering::Relaxed));
        reg.set_counter("gateway.jobs.failed", self.jobs_failed.load(Ordering::Relaxed));
        reg.set_counter(
            "gateway.shutdown.draining",
            u64::from(self.draining.load(Ordering::SeqCst)),
        );
        self.latency_us.export(&mut reg, "gateway.request.latency_us");
        coaxial_system::server::checkpoint_metrics(&mut reg);
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coaxial_system::SystemConfig;

    fn cfg(queue_depth: usize) -> GatewayConfig {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth,
            cache_mb: 1,
            rate_per_sec: 0,
            burst: 1,
            port_file: None,
        }
    }

    fn run_kind() -> JobKind {
        let w = coaxial_workloads::Workload::by_name("mcf").unwrap();
        JobKind::Run(Box::new(RunSpec::homogeneous(SystemConfig::coaxial_4x(), w, 1000, 100)))
    }

    #[test]
    fn admission_layers_cache_then_dedup_then_queue() {
        let gw = Gateway::new(cfg(1));
        // First request enqueues.
        let Admission::Enqueued(id) = gw.admit(7, run_kind(), false, 1) else {
            panic!("expected enqueue")
        };
        // Identical concurrent request joins the in-flight job.
        let Admission::Joined(joined) = gw.admit(7, run_kind(), false, 1) else {
            panic!("expected join")
        };
        assert_eq!(joined, id);
        assert_eq!(gw.dedup_joins.load(Ordering::Relaxed), 1);
        // A different key overflows the depth-1 queue.
        assert!(matches!(gw.admit(8, run_kind(), false, 1), Admission::QueueFull));
        assert_eq!(gw.queue_rejected.load(Ordering::Relaxed), 1);
        // Completed body is served from cache without touching the queue.
        {
            let mut inner = gw.inner.lock().unwrap();
            let body = Arc::new(b"{}\n".to_vec());
            inner.cache.insert(7, Arc::clone(&body), 3);
            inner.inflight.remove(&7);
            inner.queue.clear();
        }
        assert!(matches!(gw.admit(7, run_kind(), false, 1), Admission::Cached(_)));
        // Draining refuses fresh work but still serves the cache.
        gw.draining.store(true, Ordering::SeqCst);
        assert!(matches!(gw.admit(9, run_kind(), false, 1), Admission::Draining));
        assert!(matches!(gw.admit(7, run_kind(), false, 1), Admission::Cached(_)));
    }

    #[test]
    fn rate_limiter_enforces_burst_then_refills() {
        let mut c = cfg(4);
        c.rate_per_sec = 1000;
        c.burst = 2;
        let gw = Gateway::new(c);
        assert!(gw.admit_client("a"));
        assert!(gw.admit_client("a"));
        // Burst exhausted; at 1000 tokens/sec the bucket cannot refill a
        // full token between these calls on any realistic machine, but
        // retry a few times to stay robust on slow CI.
        let mut denied = false;
        for _ in 0..3 {
            if !gw.admit_client("a") {
                denied = true;
                break;
            }
        }
        assert!(denied, "third immediate request should be rate-limited");
        // Other clients have their own bucket.
        assert!(gw.admit_client("b"));
        // And the bucket refills with time.
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(gw.admit_client("a"));
        assert!(gw.rate_limited.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn zero_burst_still_admits() {
        // Regression: burst 0 capped the bucket at 0 tokens, so every
        // request from every client was rejected forever. The effective
        // burst is clamped to ≥1.
        let mut c = cfg(4);
        c.rate_per_sec = 1000;
        c.burst = 0;
        let gw = Gateway::new(c);
        assert!(gw.admit_client("a"), "first request must pass at burst 0");
        // And the bucket keeps refilling afterwards.
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(gw.admit_client("a"), "refill must still admit at burst 0");
    }

    #[test]
    fn idle_limiters_are_evicted_past_the_refill_horizon() {
        let mut c = cfg(4);
        c.rate_per_sec = 1000; // full-refill horizon = 2/1000 s
        c.burst = 2;
        let gw = Gateway::new(c);
        for i in 0..12 {
            assert!(gw.admit_client(&format!("client-{i}")));
        }
        // All 12 buckets go idle well past the horizon, then one new
        // client's admission triggers the sweep.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(gw.admit_client("fresh"));
        let reg = gw.metrics_registry();
        assert_eq!(reg.counter("gateway.limiters.entries"), Some(1), "only `fresh` survives");
        assert_eq!(reg.counter("gateway.limiters.evicted"), Some(12));
    }

    #[test]
    fn job_table_retention_is_bounded() {
        let gw = Gateway::new(cfg(RETAINED_JOBS + 16));
        let extra = 10u64;
        for i in 0..(RETAINED_JOBS as u64 + extra) {
            let key = u128::from(i) + 100;
            let Admission::Enqueued(id) = gw.admit(key, run_kind(), false, 1) else {
                panic!("expected enqueue")
            };
            // Drive the job to terminal the way worker_loop does.
            let mut inner = gw.inner.lock().unwrap();
            inner.queue.pop_front();
            inner.jobs.get_mut(&id).unwrap().status = JobStatus::Done;
            inner.inflight.remove(&key);
            inner.retire_job(id);
        }
        let inner = gw.inner.lock().unwrap();
        assert_eq!(inner.jobs.len(), RETAINED_JOBS, "table must stay at the retention bound");
        // Oldest ids were dropped, newest retained.
        assert!(!inner.jobs.contains_key(&1));
        assert!(inner.jobs.contains_key(&(RETAINED_JOBS as u64 + extra)));
    }

    #[test]
    fn metrics_registry_exposes_gateway_namespace() {
        let gw = Gateway::new(cfg(2));
        let _ = gw.admit(1, run_kind(), false, 1);
        let reg = gw.metrics_registry();
        assert_eq!(reg.counter("gateway.queue.depth"), Some(1));
        assert_eq!(reg.counter("gateway.queue.capacity"), Some(2));
        assert_eq!(reg.counter("gateway.jobs.admitted"), Some(1));
        assert_eq!(reg.counter("gateway.cache.misses"), Some(1));
        assert_eq!(reg.counter("gateway.shutdown.draining"), Some(0));
        let text = reg.render(Some("gateway"));
        assert!(text.contains("gateway.request.latency_us"), "{text}");
    }
}
