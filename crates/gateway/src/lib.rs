//! `coaxial-gateway` — simulation-as-a-service front end.
//!
//! Turns the simulator into long-running shared infrastructure: a
//! hand-rolled HTTP/1.1 server (`std::net` only — the container is
//! offline, so no tokio/axum/hyper) exposing the simulation driver to
//! concurrent clients. `coaxial serve` is the CLI entry point.
//!
//! # Request path
//!
//! Every `POST /v1/run` / `POST /v1/sweep` body is canonicalized and
//! keyed with the same FNV-1a-128 domain-tagged [`coaxial_sim::KeyHasher`]
//! that keys the prefill checkpoint store, then flows through three
//! layers (see DESIGN.md §5h):
//!
//! 1. **Result cache** — a byte-bounded LRU of completed report bodies;
//!    a repeat request is served without touching the simulator.
//! 2. **In-flight dedup** — identical concurrent requests attach to the
//!    one queued/running job and all receive its result.
//! 3. **Bounded job queue** — FIFO in front of the worker pool; overflow
//!    answers `429` with `Retry-After` instead of queueing unboundedly.
//!
//! Per-client token buckets rate-limit request admission, and shutdown
//! (SIGTERM or `POST /shutdown`) drains accepted work before exiting —
//! accepted jobs are never dropped.
//!
//! # Environment knobs
//!
//! Defaults here; the `coaxial serve` flags override the environment.
//!
//! | Variable                   | Meaning                                      |
//! |----------------------------|----------------------------------------------|
//! | `COAXIAL_GATEWAY_ADDR`     | listen address (default `127.0.0.1:8372`)    |
//! | `COAXIAL_GATEWAY_WORKERS`  | simulation worker threads (default 2)        |
//! | `COAXIAL_GATEWAY_QUEUE`    | job-queue depth before 429 (default 64)      |
//! | `COAXIAL_GATEWAY_CACHE_MB` | result-cache budget in MB (default 32)       |
//! | `COAXIAL_GATEWAY_RATE`     | per-client tokens/second, 0 = off (default 0)|
//! | `COAXIAL_GATEWAY_BURST`    | per-client token-bucket burst (default 8)    |

pub mod http;
pub mod json;
pub mod report;
pub mod request;
pub mod server;
pub mod state;

pub use report::{report_to_json, sampled_report_to_json};
pub use server::{serve, GatewayStats};
pub use state::Gateway;

use coaxial_sim::env::env_u64;

/// Gateway runtime configuration; see the crate docs for the environment
/// table. Flags parsed by `coaxial serve` override [`Self::from_env`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Listen address, `host:port` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Simulation worker threads draining the job queue.
    pub workers: usize,
    /// Queued (not yet running) jobs admitted before answering 429.
    pub queue_depth: usize,
    /// Byte budget of the completed-result cache, in MB.
    pub cache_mb: u64,
    /// Per-client admission rate, tokens/second; 0 disables limiting.
    pub rate_per_sec: u64,
    /// Per-client token-bucket capacity (burst size).
    pub burst: u64,
    /// When set, the bound address is written here after listen() — how
    /// scripts and tests discover an ephemeral port.
    pub port_file: Option<std::path::PathBuf>,
}

impl GatewayConfig {
    pub fn from_env() -> Self {
        Self {
            addr: std::env::var("COAXIAL_GATEWAY_ADDR")
                .unwrap_or_else(|_| "127.0.0.1:8372".to_string()),
            workers: coaxial_sim::idx(env_u64("COAXIAL_GATEWAY_WORKERS", 2).max(1)),
            queue_depth: coaxial_sim::idx(env_u64("COAXIAL_GATEWAY_QUEUE", 64).max(1)),
            cache_mb: env_u64("COAXIAL_GATEWAY_CACHE_MB", 32),
            rate_per_sec: env_u64("COAXIAL_GATEWAY_RATE", 0),
            burst: env_u64("COAXIAL_GATEWAY_BURST", 8).max(1),
            port_file: None,
        }
    }
}
