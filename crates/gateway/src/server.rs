//! The serve loop: listener, worker pool, request routing, and graceful
//! shutdown.
//!
//! One thread accepts connections (non-blocking + short sleep so it can
//! observe the shutdown flags); each connection is handled on its own
//! thread (requests block for seconds on simulations, so a handler
//! thread per connection is the simple and correct shape); `workers`
//! dedicated threads drain the job queue. SIGTERM and `POST /shutdown`
//! both flip [`Gateway::draining`]: admission starts answering 503, the
//! queue drains, and the process exits once no work remains — an
//! accepted job is never dropped.

use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use coaxial_system::runner::RunSpec;
use coaxial_telemetry::TelemetryRecorder;

use crate::http::{respond, ChunkedWriter, Request};
use crate::json::escape;
use crate::report::{report_to_json, reports_to_json};
use crate::request::{parse_run, parse_sweep};
use crate::state::{Admission, Gateway, Job, JobKind, JobStatus};
use crate::GatewayConfig;

/// Flipped by the SIGTERM handler; polled by the accept loop.
static SIGTERM_SEEN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigterm_handler() {
    extern "C" fn on_sigterm(_signum: i32) {
        SIGTERM_SEEN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    // SAFETY: `signal(2)` with a handler that only performs an atomic
    // store is async-signal-safe; no Rust state is touched from the
    // handler and the symbol is provided by libc on every unix target.
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// Final tallies returned by [`serve`] after a graceful shutdown.
#[derive(Debug, Clone, Copy)]
pub struct GatewayStats {
    pub requests_total: u64,
    pub jobs_completed: u64,
    pub jobs_failed: u64,
    pub dedup_joins: u64,
    pub queue_rejected: u64,
}

/// Run the gateway until SIGTERM or `POST /shutdown`, then drain and
/// return the final counters. Blocks the calling thread.
pub fn serve(cfg: GatewayConfig) -> std::io::Result<GatewayStats> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    if let Some(path) = &cfg.port_file {
        // Tmp+rename so a polling reader never sees a half-written line.
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        std::fs::write(&tmp, format!("{local}\n"))?;
        std::fs::rename(&tmp, path)?;
    }
    install_sigterm_handler();
    eprintln!("coaxial-gateway listening on http://{local} ({} workers)", cfg.workers);

    let gw = Arc::new(Gateway::new(cfg));
    std::thread::scope(|scope| {
        for _ in 0..gw.cfg.workers {
            let gw = Arc::clone(&gw);
            scope.spawn(move || worker_loop(&gw));
        }

        let mut handlers: Vec<std::thread::ScopedJoinHandle<'_, ()>> = Vec::new();
        loop {
            if SIGTERM_SEEN.load(Ordering::SeqCst) {
                begin_drain(&gw);
            }
            if gw.stopped.load(Ordering::SeqCst) {
                break;
            }
            // A drain with an empty queue can finish with no further
            // traffic; check here rather than only on request paths.
            if gw.draining.load(Ordering::SeqCst) {
                let inner = gw.inner.lock().expect("gateway lock poisoned");
                if gw.drained(&inner) {
                    drop(inner);
                    gw.stopped.store(true, Ordering::SeqCst);
                    gw.work_cv.notify_all();
                    break;
                }
            }
            match listener.accept() {
                Ok((stream, peer)) => {
                    let gw = Arc::clone(&gw);
                    handlers.retain(|h| !h.is_finished());
                    handlers.push(scope.spawn(move || {
                        handle_connection(&gw, stream, &peer.ip().to_string());
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    eprintln!("gateway: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
        // Workers exit once drained; handler threads finish their
        // (already answered or about-to-be-answered) connections.
        gw.work_cv.notify_all();
    });

    Ok(GatewayStats {
        requests_total: gw.requests_total.load(Ordering::Relaxed),
        jobs_completed: gw.jobs_completed.load(Ordering::Relaxed),
        jobs_failed: gw.jobs_failed.load(Ordering::Relaxed),
        dedup_joins: gw.dedup_joins.load(Ordering::Relaxed),
        queue_rejected: gw.queue_rejected.load(Ordering::Relaxed),
    })
}

/// Enter drain mode (idempotent): stop admitting, let the queue empty.
fn begin_drain(gw: &Gateway) {
    if !gw.draining.swap(true, Ordering::SeqCst) {
        eprintln!("coaxial-gateway: draining ({} queued)", {
            gw.inner.lock().expect("gateway lock poisoned").queue.len()
        });
    }
    gw.work_cv.notify_all();
}

/// One simulation worker: pop, execute outside the lock, publish.
fn worker_loop(gw: &Gateway) {
    loop {
        let (id, kind, trace_requested, progress) = {
            let mut inner = gw.inner.lock().expect("gateway lock poisoned");
            loop {
                if let Some(id) = inner.queue.pop_front() {
                    inner.running += 1;
                    let job = inner.jobs.get_mut(&id).expect("queued job exists");
                    job.status = JobStatus::Running;
                    // Move the specs out for execution; the job keeps its
                    // metadata. `total` etc. stay readable while we run.
                    let kind = std::mem::replace(&mut job.kind, JobKind::Sweep(Vec::new()));
                    break (id, kind, job.trace_requested, Arc::clone(&job.progress));
                }
                if gw.draining.load(Ordering::SeqCst) || gw.stopped.load(Ordering::SeqCst) {
                    return;
                }
                inner = gw.work_cv.wait(inner).expect("gateway lock poisoned");
            }
        };

        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(&kind, trace_requested, &progress)
        }));

        let mut inner = gw.inner.lock().expect("gateway lock poisoned");
        inner.running -= 1;
        let job = inner.jobs.get_mut(&id).expect("running job exists");
        job.kind = kind;
        let key = job.key;
        let mut cache_insert = None;
        match outcome {
            Ok((body, trace)) => {
                let body = Arc::new(body.into_bytes());
                cache_insert = Some((key, Arc::clone(&body), body.len() as u64));
                job.body = Some(body);
                job.trace = trace.map(|t| Arc::new(t.into_bytes()));
                job.status = JobStatus::Done;
                gw.jobs_completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("simulation panicked");
                job.status = JobStatus::Failed(msg.to_string());
                gw.jobs_failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some((key, body, bytes)) = cache_insert {
            inner.cache.insert(key, body, bytes);
        }
        inner.inflight.remove(&key);
        // Bounded retention: keep only the most recent terminal jobs in
        // the table (the body above stays reachable via the cache).
        inner.retire_job(id);
        drop(inner);
        gw.done_cv.notify_all();
    }
}

/// Run the simulation(s) for one job. Returns `(response body, trace)`.
fn execute(kind: &JobKind, trace: bool, progress: &AtomicU64) -> (String, Option<String>) {
    match kind {
        JobKind::Run(spec) => {
            let (report, trace_json) = run_one(spec, trace);
            progress.fetch_add(1, Ordering::Relaxed);
            (report_to_json(&report) + "\n", trace_json)
        }
        JobKind::Sweep(specs) => {
            // Fan out over the run pool; each finished config ticks the
            // progress counter streamed by `GET /v1/jobs/{id}`.
            let reports = coaxial_system::runner::parallel_map(specs, |spec| {
                let (report, _) = run_one(spec, false);
                progress.fetch_add(1, Ordering::Relaxed);
                report
            });
            (reports_to_json(&reports) + "\n", None)
        }
    }
}

/// Execute one [`RunSpec`], optionally capturing a Perfetto trace.
fn run_one(spec: &RunSpec, trace: bool) -> (coaxial_system::RunReport, Option<String>) {
    if trace {
        let rec = TelemetryRecorder::new().with_trace_window(65_536, 0, u64::MAX);
        let (report, rec, _metrics) = spec.simulation().run_with_telemetry(rec);
        (report, Some(rec.tracer.export_chrome_json()))
    } else {
        (spec.run(), None)
    }
}

/// Parse and answer one connection (one request: `Connection: close`).
fn handle_connection(gw: &Gateway, stream: TcpStream, client: &str) {
    let started = Instant::now();
    let mut reader = BufReader::new(stream);
    let req = match Request::read_from(&mut reader) {
        Ok(req) => req,
        Err(_) => return, // client hung up or sent garbage pre-headers
    };
    let mut stream = reader.into_inner();
    gw.requests_total.fetch_add(1, Ordering::Relaxed);
    let _ = route(gw, &mut stream, &req, client);
    let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    gw.latency_us.record(us);
}

fn err_body(msg: &str) -> Vec<u8> {
    format!("{{\"error\":\"{}\"}}\n", escape(msg)).into_bytes()
}

fn route(gw: &Gateway, stream: &mut TcpStream, req: &Request, client: &str) -> std::io::Result<()> {
    const JSON: &str = "application/json";
    const TEXT: &str = "text/plain; charset=utf-8";
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => respond(stream, 200, TEXT, &[], b"ok\n"),
        ("GET", "/metrics") => {
            let text = gw.metrics_registry().render(None);
            respond(stream, 200, TEXT, &[], text.as_bytes())
        }
        ("POST", "/v1/run") => match parse_run(&req.body) {
            Ok(r) => submit(
                gw,
                stream,
                client,
                r.key,
                JobKind::Run(Box::new(r.spec)),
                r.trace,
                1,
                r.background,
            ),
            Err(msg) => respond(stream, 400, JSON, &[], &err_body(&msg)),
        },
        ("POST", "/v1/sweep") => match parse_sweep(&req.body) {
            Ok(s) => {
                let total = s.specs.len() as u64;
                submit(
                    gw,
                    stream,
                    client,
                    s.key,
                    JobKind::Sweep(s.specs),
                    false,
                    total,
                    s.background,
                )
            }
            Err(msg) => respond(stream, 400, JSON, &[], &err_body(&msg)),
        },
        ("POST", "/shutdown") => {
            begin_drain(gw);
            wait_drained(gw);
            respond(stream, 200, JSON, &[], b"{\"status\":\"drained\"}\n")?;
            gw.stopped.store(true, Ordering::SeqCst);
            gw.work_cv.notify_all();
            Ok(())
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => job_endpoint(gw, stream, path),
        (_, "/healthz" | "/metrics" | "/v1/run" | "/v1/sweep" | "/shutdown") => {
            respond(stream, 405, JSON, &[], &err_body("method not allowed"))
        }
        _ => respond(stream, 404, JSON, &[], &err_body("not found")),
    }
}

/// Admission + response for run/sweep submissions.
#[allow(clippy::too_many_arguments)]
fn submit(
    gw: &Gateway,
    stream: &mut TcpStream,
    client: &str,
    key: u128,
    kind: JobKind,
    trace: bool,
    total: u64,
    background: bool,
) -> std::io::Result<()> {
    const JSON: &str = "application/json";
    if !gw.admit_client(client) {
        return respond(
            stream,
            429,
            JSON,
            &[("retry-after", "1")],
            &err_body("rate limit exceeded"),
        );
    }
    let id = match gw.admit(key, kind, trace, total) {
        Admission::Cached(body) => return respond(stream, 200, JSON, &[], &body),
        Admission::QueueFull => {
            return respond(stream, 429, JSON, &[("retry-after", "2")], &err_body("job queue full"))
        }
        Admission::Draining => {
            return respond(stream, 503, JSON, &[], &err_body("gateway is draining"))
        }
        Admission::Joined(id) | Admission::Enqueued(id) => id,
    };
    if background {
        let body = format!("{{\"job\":{id}}}\n");
        return respond(stream, 202, JSON, &[], body.as_bytes());
    }
    // Blocking delivery: wait for the (possibly shared) job to finish.
    let mut inner = gw.inner.lock().expect("gateway lock poisoned");
    let job_key = inner.jobs.get(&id).map(|j| j.key);
    loop {
        let Some(job) = inner.jobs.get(&id) else {
            // The job finished and was retired from the bounded table
            // before this handler woke; its body is still in the cache.
            if let Some(body) = job_key.and_then(|k| inner.cache.get(&k).map(Arc::clone)) {
                drop(inner);
                return respond(stream, 200, JSON, &[], &body);
            }
            drop(inner);
            return respond(stream, 500, JSON, &[], &err_body("job was retired before delivery"));
        };
        match &job.status {
            JobStatus::Done => {
                let body = Arc::clone(job.body.as_ref().expect("done job has a body"));
                drop(inner);
                return respond(stream, 200, JSON, &[], &body);
            }
            JobStatus::Failed(msg) => {
                let body = err_body(msg);
                drop(inner);
                return respond(stream, 500, JSON, &[], &body);
            }
            JobStatus::Queued | JobStatus::Running => {
                inner = gw.done_cv.wait(inner).expect("gateway lock poisoned");
            }
        }
    }
}

/// `GET /v1/jobs/{id}[/result|/trace]`.
fn job_endpoint(gw: &Gateway, stream: &mut TcpStream, path: &str) -> std::io::Result<()> {
    const JSON: &str = "application/json";
    let rest = &path["/v1/jobs/".len()..];
    let (id_text, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return respond(stream, 400, JSON, &[], &err_body("job id must be an integer"));
    };
    match tail {
        None => stream_progress(gw, stream, id),
        Some("status") => {
            let inner = gw.inner.lock().expect("gateway lock poisoned");
            match inner.jobs.get(&id) {
                Some(job) => {
                    let body = format!(
                        "{{\"job\":{id},\"state\":\"{}\",\"done\":{},\"total\":{}}}\n",
                        job.status.name(),
                        job.progress.load(std::sync::atomic::Ordering::Relaxed),
                        job.total
                    );
                    drop(inner);
                    respond(stream, 200, JSON, &[], body.as_bytes())
                }
                None => respond(stream, 404, JSON, &[], &err_body("no such job")),
            }
        }
        Some("result") => {
            let inner = gw.inner.lock().expect("gateway lock poisoned");
            match inner.jobs.get(&id) {
                Some(Job { status: JobStatus::Done, body: Some(body), .. }) => {
                    let body = Arc::clone(body);
                    drop(inner);
                    respond(stream, 200, JSON, &[], &body)
                }
                Some(Job { status: JobStatus::Failed(msg), .. }) => {
                    let body = err_body(msg);
                    drop(inner);
                    respond(stream, 500, JSON, &[], &body)
                }
                Some(_) => respond(stream, 404, JSON, &[], &err_body("job is not finished")),
                None => respond(stream, 404, JSON, &[], &err_body("no such job")),
            }
        }
        Some("trace") => {
            let inner = gw.inner.lock().expect("gateway lock poisoned");
            match inner.jobs.get(&id) {
                Some(Job { trace: Some(trace), .. }) => {
                    let trace = Arc::clone(trace);
                    drop(inner);
                    respond(stream, 200, JSON, &[], &trace)
                }
                Some(_) => respond(
                    stream,
                    404,
                    JSON,
                    &[],
                    &err_body("no trace: job still running or not requested with trace=true"),
                ),
                None => respond(stream, 404, JSON, &[], &err_body("no such job")),
            }
        }
        Some(_) => respond(stream, 404, JSON, &[], &err_body("not found")),
    }
}

/// Stream job progress as chunked newline-delimited JSON until the job
/// reaches a terminal state; the final line carries the status.
fn stream_progress(gw: &Gateway, stream: &mut TcpStream, id: u64) -> std::io::Result<()> {
    {
        let inner = gw.inner.lock().expect("gateway lock poisoned");
        if !inner.jobs.contains_key(&id) {
            drop(inner);
            return respond(stream, 404, "application/json", &[], &err_body("no such job"));
        }
    }
    let mut w = ChunkedWriter::start(stream, 200, "application/x-ndjson")?;
    let mut last_line = String::new();
    loop {
        let (line, terminal) = {
            let inner = gw.inner.lock().expect("gateway lock poisoned");
            let Some(job) = inner.jobs.get(&id) else {
                // Finished and retired from the bounded table between
                // polls; close the stream with a terminal line.
                drop(inner);
                w.chunk(format!("{{\"job\":{id},\"state\":\"retired\"}}\n").as_bytes())?;
                return w.finish();
            };
            let done = job.progress.load(Ordering::Relaxed);
            let line = format!(
                "{{\"job\":{id},\"state\":\"{}\",\"done\":{done},\"total\":{}}}\n",
                job.status.name(),
                job.total
            );
            (line, job.status.terminal())
        };
        if line != last_line {
            w.chunk(line.as_bytes())?;
            last_line = line;
        }
        if terminal {
            return w.finish();
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Block until the queue is empty and no job is running.
fn wait_drained(gw: &Gateway) {
    let mut inner = gw.inner.lock().expect("gateway lock poisoned");
    while !(inner.queue.is_empty() && inner.running == 0) {
        inner = gw.done_cv.wait(inner).expect("gateway lock poisoned");
    }
}
