//! Canonical JSON rendering of a [`RunReport`].
//!
//! This is the single serializer behind both `coaxial run --json` and the
//! gateway's `/v1/run` response, so the two are byte-identical by
//! construction — the loopback integration test and the `check.sh` smoke
//! test both `cmp` the CLI's stdout against the served body.

use std::fmt::Write as _;

use coaxial_system::{RunReport, SampledReport};

use crate::json::{emit_f64, escape};

/// Render one report as a single-line JSON object (no trailing newline;
/// callers terminate the line).
#[must_use]
pub fn report_to_json(r: &RunReport) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    let _ = write!(out, "\"config\":\"{}\"", escape(&r.config_name));
    let _ = write!(
        out,
        ",\"workloads\":[{}]",
        r.workload_names.iter().map(|w| format!("\"{}\"", escape(w))).collect::<Vec<_>>().join(",")
    );
    let _ = write!(out, ",\"ipc\":{}", emit_f64(r.ipc));
    let _ = write!(
        out,
        ",\"per_core_ipc\":[{}]",
        r.per_core_ipc.iter().map(|&v| emit_f64(v)).collect::<Vec<_>>().join(",")
    );
    let _ = write!(out, ",\"mpki\":{}", emit_f64(r.mpki));
    let (on_chip, queue, dram, cxl) = r.breakdown_ns;
    let _ = write!(out, ",\"l2_miss_latency_ns\":{}", emit_f64(r.l2_miss_latency_ns));
    let _ = write!(
        out,
        ",\"breakdown_ns\":{{\"on_chip\":{},\"queue\":{},\"dram\":{},\"cxl\":{}}}",
        emit_f64(on_chip),
        emit_f64(queue),
        emit_f64(dram),
        emit_f64(cxl)
    );
    let _ = write!(out, ",\"read_gbs\":{}", emit_f64(r.read_gbs));
    let _ = write!(out, ",\"write_gbs\":{}", emit_f64(r.write_gbs));
    let _ = write!(out, ",\"bandwidth_gbs\":{}", emit_f64(r.bandwidth_gbs));
    let _ = write!(out, ",\"utilization\":{}", emit_f64(r.utilization));
    let _ = write!(out, ",\"llc_miss_ratio\":{}", emit_f64(r.llc_miss_ratio));
    match r.cxl_link_utilization {
        Some((tx, rx)) => {
            let _ = write!(
                out,
                ",\"cxl_link_utilization\":{{\"tx\":{},\"rx\":{}}}",
                emit_f64(tx),
                emit_f64(rx)
            );
        }
        None => out.push_str(",\"cxl_link_utilization\":null"),
    }
    let _ = write!(
        out,
        ",\"calm\":{{\"decisions\":{},\"false_pos\":{},\"false_neg\":{},\
         \"fp_per_mem_access\":{},\"fn_per_llc_miss\":{}}}",
        r.calm.decisions(),
        r.calm.false_pos,
        r.calm.false_neg,
        emit_f64(r.calm.false_pos_per_mem_access()),
        emit_f64(r.calm.false_neg_per_llc_miss())
    );
    let _ = write!(out, ",\"cycles\":{}", r.cycles);
    let _ = write!(out, ",\"instructions\":{}", r.instructions);
    out.push('}');
    out
}

/// Render a sampled run: the [`report_to_json`] object plus one extra
/// `"sampling"` member carrying the interval-sampling metadata (mean, CI
/// half-width, interval counts, the detail/fast-forward instruction split,
/// and the raw per-interval samples).
#[must_use]
pub fn sampled_report_to_json(r: &SampledReport) -> String {
    let mut out = report_to_json(&r.report);
    out.pop(); // re-open the report object to append the sampling member
    let s = &r.sampling;
    let _ = write!(
        out,
        ",\"sampling\":{{\"intervals_planned\":{},\"intervals_run\":{},\"early_stopped\":{},\
         \"warm_per_interval\":{},\"measure_per_interval\":{},\"horizon_instructions\":{},\
         \"detail_instructions\":{},\"fast_forward_instructions\":{},\"ci_target\":{},\
         \"ipc_mean\":{},\"ipc_ci_half\":{},\"ipc_samples\":[{}]}}",
        s.intervals_planned,
        s.intervals_run,
        s.early_stopped,
        s.warm_per_interval,
        s.measure_per_interval,
        s.horizon_instructions,
        s.detail_instructions,
        s.fast_forward_instructions,
        emit_f64(s.ci_target),
        emit_f64(s.ipc_mean),
        emit_f64(s.ipc_ci_half),
        s.ipc_samples.iter().map(|&v| emit_f64(v)).collect::<Vec<_>>().join(",")
    );
    out.push('}');
    out
}

/// Render a batch of reports (sweep response) as a JSON array.
#[must_use]
pub fn reports_to_json(reports: &[RunReport]) -> String {
    let mut out = String::from("[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&report_to_json(r));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coaxial_system::{SamplingConfig, Simulation, SystemConfig};

    #[test]
    fn report_json_is_valid_and_stable() {
        let w = coaxial_workloads::Workload::by_name("mcf").unwrap();
        let sim =
            Simulation::new(SystemConfig::coaxial_4x(), w).instructions_per_core(2_000).warmup(500);
        let r = sim.run();
        let a = report_to_json(&r);
        // Parseable by our own parser, and deterministic.
        let parsed = crate::json::parse(&a).unwrap();
        let crate::json::Json::Obj(o) = &parsed else { panic!("object") };
        assert_eq!(o["config"].as_str(), Some("COAXIAL-4x"));
        assert!(o.contains_key("ipc") && o.contains_key("cycles"), "{a}");
        let again = Simulation::new(SystemConfig::coaxial_4x(), w)
            .instructions_per_core(2_000)
            .warmup(500)
            .run();
        assert_eq!(a, report_to_json(&again), "same config+budget must serialize identically");
    }

    #[test]
    fn single_interval_ci_serializes_as_null_not_zero() {
        // One measurement interval: the Student-t CI has zero degrees of
        // freedom, so `ci_half_width()` is infinite and the JSON must carry
        // `null` — a literal 0 would claim perfect confidence.
        let w = coaxial_workloads::Workload::by_name("mcf").unwrap();
        let scfg = SamplingConfig { intervals: 1, measure: 1_000, warm: 500, ci_target: 0.0 };
        let sim = Simulation::new(SystemConfig::coaxial_4x(), w);
        let r = sim.run_sampled(&scfg);
        assert_eq!(r.sampling.intervals_run, 1);
        assert!(r.sampling.ipc_ci_half.is_infinite());
        let j = sampled_report_to_json(&r);
        assert!(j.contains("\"ipc_ci_half\":null"), "degenerate CI must be null: {j}");
        crate::json::parse(&j).expect("sampled report stays valid JSON");
    }
}
