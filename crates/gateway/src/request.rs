//! Request validation and canonical keying.
//!
//! A request body is rejected (HTTP 400) on any unknown field, wrong
//! type, unknown workload/config/engine name, or structurally invalid
//! configuration ([`coaxial_system::ConfigError`] — the same message the
//! CLI prints). Accepted requests canonicalize into a [`RunSpec`] plus a
//! domain-tagged FNV-1a-128 key: two bodies that describe the same
//! simulation hash identically regardless of field order or whitespace,
//! which is what the result cache and the in-flight dedup map key on.

use std::collections::BTreeMap;

use coaxial_sim::KeyHasher;
use coaxial_system::runner::RunSpec;
use coaxial_system::server::{DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP};
use coaxial_system::{EngineKind, SystemConfig};
use coaxial_workloads::Workload;

use crate::json::{parse, Json};

/// One validated `POST /v1/run` body.
#[derive(Clone)]
pub struct RunRequest {
    pub spec: RunSpec,
    /// Canonical content key (cache + dedup layers).
    pub key: u128,
    /// Capture a Perfetto trace alongside the report.
    pub trace: bool,
    /// `202 Accepted` + job id instead of blocking for the report.
    pub background: bool,
}

/// One validated `POST /v1/sweep` body: the same workload and budget
/// across several configurations, fanned out over the run pool.
#[derive(Clone)]
pub struct SweepRequest {
    pub specs: Vec<RunSpec>,
    pub key: u128,
    pub background: bool,
}

fn obj(body: &[u8]) -> Result<BTreeMap<String, Json>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    match parse(text)? {
        Json::Obj(o) => Ok(o),
        _ => Err("request body must be a JSON object".to_string()),
    }
}

fn check_fields(o: &BTreeMap<String, Json>, allowed: &[&str]) -> Result<(), String> {
    for key in o.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown field \"{key}\" (allowed: {})", allowed.join(", ")));
        }
    }
    Ok(())
}

fn get_u64(o: &BTreeMap<String, Json>, key: &str, default: u64) -> Result<u64, String> {
    match o.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| format!("\"{key}\" must be a non-negative integer")),
    }
}

fn get_bool(o: &BTreeMap<String, Json>, key: &str) -> Result<bool, String> {
    match o.get(key) {
        None => Ok(false),
        Some(v) => v.as_bool().ok_or_else(|| format!("\"{key}\" must be a boolean")),
    }
}

fn get_engine(o: &BTreeMap<String, Json>) -> Result<Option<EngineKind>, String> {
    match o.get("engine") {
        None => Ok(None),
        // Validated here, by string, so a bad name is a 400 — never a
        // worker-side panic (EngineKind::parse aborts on unknown names).
        Some(v) => match v.as_str() {
            Some("event") => Ok(Some(EngineKind::Event)),
            Some("lockstep") => Ok(Some(EngineKind::Lockstep)),
            _ => Err("\"engine\" must be \"event\" or \"lockstep\"".to_string()),
        },
    }
}

fn workload_by_name(name: &str) -> Result<&'static Workload, String> {
    Workload::by_name(name).ok_or_else(|| format!("unknown workload \"{name}\""))
}

/// Shared scalar options between run and sweep bodies.
struct CommonOpts {
    instructions: u64,
    warmup: u64,
    cores: Option<u64>,
    seed: Option<u64>,
    cxl_ns: Option<f64>,
    engine: Option<EngineKind>,
}

fn common_opts(o: &BTreeMap<String, Json>) -> Result<CommonOpts, String> {
    let cores = match o.get("cores") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or("\"cores\" must be a non-negative integer")?),
    };
    let seed = match o.get("seed") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or("\"seed\" must be a non-negative integer")?),
    };
    let cxl_ns = match o.get("cxl_ns") {
        None => None,
        Some(v) => Some(v.as_f64().ok_or("\"cxl_ns\" must be a number")?),
    };
    Ok(CommonOpts {
        instructions: get_u64(o, "instructions", DEFAULT_INSTRUCTIONS)?,
        warmup: get_u64(o, "warmup", DEFAULT_WARMUP)?,
        cores,
        seed,
        cxl_ns,
        engine: get_engine(o)?,
    })
}

/// Build the configured system exactly as the CLI does: name lookup,
/// active-core override, then CXL latency and seed overrides.
fn build_config(name: &str, opts: &CommonOpts) -> Result<SystemConfig, String> {
    let mut cfg = SystemConfig::by_name(name).map_err(|e| e.to_string())?;
    if let Some(n) = opts.cores {
        cfg = cfg.try_with_active_cores(coaxial_sim::idx(n)).map_err(|e| e.to_string())?;
    }
    if let Some(ns) = opts.cxl_ns {
        cfg = cfg.with_cxl_latency_ns(ns);
    }
    if let Some(seed) = opts.seed {
        cfg = cfg.with_seed(seed);
    }
    Ok(cfg)
}

fn hash_common(h: &mut KeyHasher, workload: &str, config_names: &[&str], opts: &CommonOpts) {
    h.write_str(workload);
    h.write_u64(config_names.len() as u64);
    for name in config_names {
        h.write_str(name);
    }
    h.write_u64(opts.instructions);
    h.write_u64(opts.warmup);
    // Optional fields hash a presence tag first so `cores: 12` and an
    // absent `cores` (identical simulations, different requests) cannot
    // collide with some other field combination.
    h.write_u64(u64::from(opts.cores.is_some()));
    h.write_u64(opts.cores.unwrap_or(0));
    h.write_u64(u64::from(opts.seed.is_some()));
    h.write_u64(opts.seed.unwrap_or(0));
    h.write_u64(u64::from(opts.cxl_ns.is_some()));
    h.write_u64(opts.cxl_ns.unwrap_or(0.0).to_bits());
    h.write_u64(match opts.engine {
        None => 0,
        Some(EngineKind::Event) => 1,
        Some(EngineKind::Lockstep) => 2,
    });
}

/// Parse and validate a `POST /v1/run` body.
pub fn parse_run(body: &[u8]) -> Result<RunRequest, String> {
    let o = obj(body)?;
    check_fields(
        &o,
        &[
            "workload",
            "config",
            "instructions",
            "warmup",
            "cores",
            "seed",
            "cxl_ns",
            "engine",
            "trace",
            "async",
        ],
    )?;
    let workload = o
        .get("workload")
        .and_then(Json::as_str)
        .ok_or("\"workload\" (string) is required")?
        .to_string();
    let w = workload_by_name(&workload)?;
    let config =
        o.get("config").map_or(Ok("4x"), |v| v.as_str().ok_or("\"config\" must be a string"))?;
    let opts = common_opts(&o)?;
    let trace = get_bool(&o, "trace")?;
    let background = get_bool(&o, "async")?;

    let cfg = build_config(config, &opts)?;
    let mut spec = RunSpec::homogeneous(cfg, w, opts.instructions, opts.warmup);
    if let Some(kind) = opts.engine {
        spec = spec.with_engine(kind);
    }

    let mut h = KeyHasher::new("coaxial/gateway/run/v1");
    hash_common(&mut h, w.name, &[config], &opts);
    h.write_u64(u64::from(trace));
    // `async` is delivery, not content: a blocking and a background
    // request for the same simulation share a key (and a job).
    Ok(RunRequest { spec, key: h.finish(), trace, background })
}

/// Parse and validate a `POST /v1/sweep` body.
pub fn parse_sweep(body: &[u8]) -> Result<SweepRequest, String> {
    let o = obj(body)?;
    check_fields(
        &o,
        &[
            "workload",
            "configs",
            "instructions",
            "warmup",
            "cores",
            "seed",
            "cxl_ns",
            "engine",
            "async",
        ],
    )?;
    let workload = o
        .get("workload")
        .and_then(Json::as_str)
        .ok_or("\"workload\" (string) is required")?
        .to_string();
    let w = workload_by_name(&workload)?;
    let configs: Vec<&str> = match o.get("configs") {
        Some(Json::Arr(items)) if !items.is_empty() => items
            .iter()
            .map(|v| v.as_str().ok_or("\"configs\" entries must be strings".to_string()))
            .collect::<Result<_, _>>()?,
        _ => return Err("\"configs\" (non-empty array of config names) is required".to_string()),
    };
    let opts = common_opts(&o)?;
    let background = get_bool(&o, "async")?;

    let mut specs = Vec::with_capacity(configs.len());
    for name in &configs {
        let cfg = build_config(name, &opts)?;
        let mut spec = RunSpec::homogeneous(cfg, w, opts.instructions, opts.warmup);
        if let Some(kind) = opts.engine {
            spec = spec.with_engine(kind);
        }
        specs.push(spec);
    }

    let mut h = KeyHasher::new("coaxial/gateway/sweep/v1");
    hash_common(&mut h, w.name, &configs, &opts);
    Ok(SweepRequest { specs, key: h.finish(), background })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_order_and_whitespace_do_not_change_the_key() {
        let a = parse_run(br#"{"workload":"mcf","config":"4x","instructions":4000}"#).unwrap();
        let b =
            parse_run(b"{ \"instructions\": 4000,\n \"config\": \"4x\", \"workload\": \"mcf\" }")
                .unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.spec.config.name, "COAXIAL-4x");
    }

    #[test]
    fn different_requests_get_different_keys() {
        let base = parse_run(br#"{"workload":"mcf"}"#).unwrap();
        for other in [
            br#"{"workload":"lbm"}"#.as_slice(),
            br#"{"workload":"mcf","config":"ddr"}"#.as_slice(),
            br#"{"workload":"mcf","instructions":999}"#.as_slice(),
            br#"{"workload":"mcf","engine":"lockstep"}"#.as_slice(),
            br#"{"workload":"mcf","trace":true}"#.as_slice(),
            br#"{"workload":"mcf","cores":12}"#.as_slice(),
        ] {
            assert_ne!(base.key, parse_run(other).unwrap().key);
        }
        // Delivery mode is not content.
        let bg = parse_run(br#"{"workload":"mcf","async":true}"#).unwrap();
        assert_eq!(base.key, bg.key);
        assert!(bg.background);
    }

    #[test]
    fn bad_bodies_are_structured_errors() {
        for (body, needle) in [
            (br#"{"workload":"nope"}"#.as_slice(), "unknown workload"),
            (br#"{"workload":"mcf","config":"9x"}"#.as_slice(), "unknown config"),
            (br#"{"workload":"mcf","engine":"warp"}"#.as_slice(), "engine"),
            (br#"{"workload":"mcf","cores":0}"#.as_slice(), "active core"),
            (br#"{"workload":"mcf","cores":13}"#.as_slice(), "active core"),
            (br#"{"workload":"mcf","bogus":1}"#.as_slice(), "unknown field"),
            (br#"{"workload":"mcf","instructions":-5}"#.as_slice(), "integer"),
            (br#"[1,2]"#.as_slice(), "object"),
            (b"not json".as_slice(), "invalid literal"),
        ] {
            let Err(err) = parse_run(body).map(|_| ()) else {
                panic!("{body:?} should be rejected")
            };
            assert!(err.contains(needle), "{body:?} => {err}");
        }
    }

    #[test]
    fn sweep_builds_one_spec_per_config() {
        let s = parse_sweep(
            br#"{"workload":"mcf","configs":["ddr","4x"],"instructions":2000,"warmup":500}"#,
        )
        .unwrap();
        assert_eq!(s.specs.len(), 2);
        assert_eq!(s.specs[0].config.name, "DDR-baseline");
        assert_eq!(s.specs[1].config.name, "COAXIAL-4x");
        assert!(parse_sweep(br#"{"workload":"mcf","configs":[]}"#).is_err());
        assert!(parse_sweep(br#"{"workload":"mcf"}"#).is_err());
    }
}
