//! Hand-rolled JSON: the vendored `serde` is a marker-only stand-in (the
//! container builds offline), so the gateway parses requests and emits
//! responses with its own small RFC 8259 subset — the same approach as
//! `coaxial-lint --format json`, plus a parser for request bodies.
//!
//! Numbers are split at lex time: a literal with no `.`/`e` that fits a
//! `u64` becomes [`Json::Int`], everything else [`Json::Num`]. Request
//! fields like instruction budgets therefore never round-trip through
//! `f64` (no truncating casts, exact u64 range).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Non-negative integer that fits `u64` (no sign, fraction, exponent).
    Int(u64),
    /// Any other number.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object with source-order-independent (sorted) key access.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escape a string per RFC 8259 (same table as `coaxial-lint`'s emitter).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Emit a float deterministically: Rust's shortest round-trip `Display`,
/// with non-finite values mapped to `null` (JSON has no NaN/inf).
pub fn emit_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected '{}' at byte {}", other as char, self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(format!("duplicate key \"{key}\""));
            }
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => return Err(format!("expected ',' or '}}', got '{}'", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                other => return Err(format!("expected ',' or ']', got '{}'", other as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for config
                            // payloads; reject rather than mis-decode.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "surrogate \\u escape".to_string())?,
                            );
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-walk the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        let mut integral = true;
        if self.bytes.get(self.pos) == Some(&b'-') {
            integral = false;
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number \"{text}\": {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"workload":"mcf","instructions":4000,"opts":{"cxl_ns":70.5,"flag":true},"mix":["a","b"],"none":null}"#;
        let v = parse(doc).unwrap();
        let Json::Obj(o) = &v else { panic!("object") };
        assert_eq!(o["workload"].as_str(), Some("mcf"));
        assert_eq!(o["instructions"].as_u64(), Some(4000));
        let Json::Obj(opts) = &o["opts"] else { panic!("object") };
        assert_eq!(opts["cxl_ns"].as_f64(), Some(70.5));
        assert_eq!(opts["flag"].as_bool(), Some(true));
        assert_eq!(o["mix"], Json::Arr(vec![Json::Str("a".into()), Json::Str("b".into())]));
        assert_eq!(o["none"], Json::Null);
    }

    #[test]
    fn integers_stay_exact_and_floats_split_off() {
        let v = parse("[18446744073709551615, 1.5, -3, 2e3]").unwrap();
        assert_eq!(
            v,
            Json::Arr(vec![
                Json::Int(u64::MAX),
                Json::Num(1.5),
                Json::Num(-3.0),
                Json::Num(2000.0)
            ])
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("{\"a\":1,\"a\":2}").is_err(), "duplicate keys are ambiguous");
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{41}"));
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn float_emission_is_shortest_round_trip() {
        assert_eq!(emit_f64(0.1), "0.1");
        assert_eq!(emit_f64(2.0), "2");
        assert_eq!(emit_f64(f64::NAN), "null");
    }
}
