//! Property-based tests for the DDR5 channel model: under arbitrary
//! request streams, every request completes exactly once, data-bus usage
//! never overlaps, and accounting always ties out.

use proptest::prelude::*;

use coaxial_dram::{Channel, DramConfig, MemRequest, MemResponse, MemoryBackend};

/// Drive a channel with a request stream (addresses and R/W flags),
/// enqueueing under back-pressure, until all complete or a generous cycle
/// limit expires.
fn drive(cfg: DramConfig, reqs: &[(u64, bool)]) -> (Channel, Vec<MemResponse>) {
    let mut ch = Channel::new(cfg);
    let mut pending = reqs.iter().enumerate().collect::<std::collections::VecDeque<_>>();
    let mut out = Vec::new();
    for now in 0..10_000_000u64 {
        ch.tick(now);
        while let Some(&(id, &(addr, is_write))) = pending.front() {
            let req = if is_write {
                MemRequest::write(id as u64, addr, now)
            } else {
                MemRequest::read(id as u64, addr, now)
            };
            if ch.try_enqueue(req).is_ok() {
                pending.pop_front();
            } else {
                break;
            }
        }
        while let Some(r) = ch.pop_response(now) {
            out.push(r);
        }
        if out.len() == reqs.len() {
            break;
        }
    }
    (ch, out)
}

fn arb_stream() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..(1 << 20), proptest::bool::ANY), 1..150)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every request completes exactly once, whatever the stream.
    #[test]
    fn all_requests_complete_exactly_once(reqs in arb_stream()) {
        let (_, out) = drive(DramConfig::ddr5_4800(), &reqs);
        prop_assert_eq!(out.len(), reqs.len(), "no request may be lost");
        let mut ids: Vec<u64> = out.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), reqs.len(), "no request may complete twice");
    }

    /// Latency components sum exactly, and completion never precedes issue
    /// by less than the minimum row-hit service time.
    #[test]
    fn latency_accounting_ties_out(reqs in arb_stream()) {
        let cfg = DramConfig::ddr5_4800();
        let min_read = cfg.timings.unloaded_hit();
        let (_, out) = drive(cfg, &reqs);
        for r in &out {
            prop_assert_eq!(
                r.queue_cycles + r.service_cycles,
                r.total_cycles(),
                "queue + service must equal total for direct DDR"
            );
            if !r.is_write {
                prop_assert!(r.total_cycles() >= min_read, "faster than physics: {r:?}");
            }
            prop_assert_eq!(r.cxl_cycles, 0, "no CXL on a direct channel");
        }
    }

    /// Command accounting: every CAS serves exactly one request, ACTs are
    /// bounded by requests (merging rows) and PRE count can exceed ACTs
    /// only via idle precharge.
    #[test]
    fn command_counts_are_consistent(reqs in arb_stream()) {
        let (ch, out) = drive(DramConfig::ddr5_4800(), &reqs);
        let st = ch.stats();
        prop_assert_eq!(st.rd_cas + st.wr_cas, out.len() as u64);
        prop_assert_eq!(
            st.row_hits + st.row_misses,
            out.len() as u64,
            "every CAS is classified as a hit or a miss"
        );
        // Each row miss required at least one ACT on the request's behalf
        // (service flips between the read and write queues, and refresh,
        // can add more — so only a lower bound is provable).
        prop_assert!(st.act >= st.row_misses, "ACTs {} < row misses {}", st.act, st.row_misses);
    }

    /// Data-bus conservation: achieved bandwidth never exceeds the peak.
    #[test]
    fn bandwidth_never_exceeds_peak(reqs in arb_stream()) {
        let (ch, _) = drive(DramConfig::ddr5_4800(), &reqs);
        let st = ch.stats();
        prop_assert!(st.bus_utilization <= 1.0 + 1e-9, "util = {}", st.bus_utilization);
        prop_assert!(st.bandwidth_gbs() <= ch.config().peak_bandwidth_gbs() * 1.01);
    }

    /// Determinism: the same stream produces identical completions.
    #[test]
    fn channel_is_deterministic(reqs in arb_stream()) {
        let (_, a) = drive(DramConfig::ddr5_4800(), &reqs);
        let (_, b) = drive(DramConfig::ddr5_4800(), &reqs);
        prop_assert_eq!(a, b);
    }
}
