//! Double-entry verification: record every command the FR-FCFS scheduler
//! issues under assorted traffic, and re-validate the stream with the
//! independent JEDEC auditor. A scheduler bug that issues an illegal
//! command fails these tests even if it never corrupts a result.

use coaxial_dram::audit::{audit, CmdKind};
use coaxial_dram::config::PagePolicy;
use coaxial_dram::{Channel, DramConfig, MemRequest, MemoryBackend};
use coaxial_sim::SplitMix64;

fn logged_config() -> DramConfig {
    DramConfig { log_commands: true, ..DramConfig::ddr5_4800() }
}

/// Drive a channel with a generated stream; return per-sub-channel logs.
fn run_and_log(
    mut cfg: DramConfig,
    policy: PagePolicy,
    n: usize,
    mut gen: impl FnMut(u64, &mut SplitMix64) -> (u64, bool),
) -> Vec<Vec<coaxial_dram::audit::CmdRecord>> {
    cfg.page_policy = policy;
    let banks = cfg.banks_per_subchannel();
    let timings = cfg.timings.clone();
    let mut ch = Channel::new(cfg);
    let mut rng = SplitMix64::new(0xA0D17);
    let mut issued = 0u64;
    let mut done = 0usize;
    for now in 0..20_000_000u64 {
        ch.tick(now);
        while coaxial_sim::idx(issued) < n {
            let (addr, is_write) = gen(issued, &mut rng);
            let req = if is_write {
                MemRequest::write(issued, addr, now)
            } else {
                MemRequest::read(issued, addr, now)
            };
            if ch.try_enqueue(req).is_err() {
                break;
            }
            issued += 1;
        }
        while ch.pop_response(now).is_some() {
            done += 1;
        }
        if done == n {
            break;
        }
    }
    assert_eq!(done, n, "traffic must complete");
    let logs = ch.take_command_logs();
    for log in &logs {
        let violations = audit(&timings, log, banks);
        assert!(
            violations.is_empty(),
            "scheduler issued illegal commands: {:#?} (showing up to 5 of {})",
            &violations[..violations.len().min(5)],
            violations.len()
        );
    }
    logs
}

#[test]
fn random_mixed_traffic_is_jedec_legal() {
    let logs = run_and_log(logged_config(), PagePolicy::OpenAdaptive, 2_000, |_, rng| {
        (rng.next_below(1 << 22), rng.chance(0.3))
    });
    let total: usize = logs.iter().map(|l| l.len()).sum();
    assert!(total >= 2_000, "every request needs at least a CAS, got {total}");
}

#[test]
fn sequential_stream_is_jedec_legal_and_row_hit_heavy() {
    let logs = run_and_log(logged_config(), PagePolicy::OpenAdaptive, 2_000, |i, _| (i, false));
    // Sequential streams should need far fewer ACTs than CASes.
    let (mut acts, mut cases) = (0, 0);
    for log in &logs {
        for r in log {
            match r.kind {
                CmdKind::Act => acts += 1,
                CmdKind::Rd | CmdKind::Wr => cases += 1,
                _ => {}
            }
        }
    }
    assert!(acts * 4 < cases, "streaming: {acts} ACTs vs {cases} CASes");
}

#[test]
fn same_bank_thrash_is_jedec_legal() {
    let cfg = logged_config();
    let stride = cfg.lines_per_row() * cfg.banks_per_subchannel() as u64 * 2;
    run_and_log(cfg, PagePolicy::OpenAdaptive, 1_000, move |i, _| ((i % 4) * stride, false));
}

#[test]
fn write_heavy_traffic_is_jedec_legal() {
    run_and_log(logged_config(), PagePolicy::OpenAdaptive, 1_500, |_, rng| {
        (rng.next_below(1 << 20), rng.chance(0.7))
    });
}

#[test]
fn closed_page_policy_is_jedec_legal() {
    run_and_log(logged_config(), PagePolicy::Closed, 1_500, |_, rng| {
        (rng.next_below(1 << 20), rng.chance(0.3))
    });
}

#[test]
fn open_page_policy_is_jedec_legal() {
    run_and_log(logged_config(), PagePolicy::Open, 1_500, |_, rng| {
        (rng.next_below(1 << 20), rng.chance(0.3))
    });
}

#[test]
fn traffic_spanning_many_refreshes_is_jedec_legal() {
    // Slow trickle so the run crosses several tREFI periods.
    let cfg = logged_config();
    let t_refi = cfg.timings.t_refi;
    let banks = cfg.banks_per_subchannel();
    let timings = cfg.timings.clone();
    let mut ch = Channel::new(cfg);
    let mut rng = SplitMix64::new(7);
    let mut next_issue = 0u64;
    let mut id = 0u64;
    let horizon = t_refi * 6;
    for now in 0..horizon {
        ch.tick(now);
        if now >= next_issue {
            let req = MemRequest::read(id, rng.next_below(1 << 20), now);
            if ch.try_enqueue(req).is_ok() {
                id += 1;
                next_issue = now + 500;
            }
        }
        while ch.pop_response(now).is_some() {}
    }
    let logs = ch.take_command_logs();
    let mut refs = 0;
    for log in &logs {
        refs += log.iter().filter(|r| r.kind == CmdKind::RefAb).count();
        let violations = audit(&timings, log, banks);
        assert!(violations.is_empty(), "{violations:#?}");
    }
    assert!(refs >= 8, "expected several refreshes across {horizon} cycles, saw {refs}");
}

#[test]
fn fine_grained_bank_interleave_is_jedec_legal_but_row_hostile() {
    use coaxial_dram::config::AddressMapping;
    // Sequential stream under both mappings: the default keeps row
    // locality; the fine-grained interleave trades it for bank spread.
    let seq = |mapping: AddressMapping| {
        let cfg = logged_config().with_address_mapping(mapping);
        let banks = cfg.banks_per_subchannel();
        let timings = cfg.timings.clone();
        let mut ch = Channel::new(cfg);
        let mut issued = 0u64;
        let mut done = 0usize;
        for now in 0..10_000_000u64 {
            ch.tick(now);
            while issued < 2_000 {
                if ch.try_enqueue(MemRequest::read(issued, issued, now)).is_err() {
                    break;
                }
                issued += 1;
            }
            while ch.pop_response(now).is_some() {
                done += 1;
            }
            if done == 2_000 {
                break;
            }
        }
        assert_eq!(done, 2_000);
        let logs = ch.take_command_logs();
        for log in &logs {
            let v = audit(&timings, log, banks);
            assert!(v.is_empty(), "{mapping:?}: {v:#?}");
        }
        logs
    };
    // Bank spread: distinct banks among the first 24 activations. A pure
    // sequential sweep keeps row locality under BOTH mappings (every bank
    // stays within one row), so the observable difference is how quickly
    // the stream fans out across banks.
    let spread = |logs: Vec<Vec<coaxial_dram::audit::CmdRecord>>| {
        let mut banks = std::collections::HashSet::new();
        for r in logs.iter().flatten().filter(|r| r.kind == CmdKind::Act).take(24) {
            banks.insert(r.bank);
        }
        banks.len()
    };
    let d = spread(seq(AddressMapping::RowBankColumn));
    let f = spread(seq(AddressMapping::RowColumnBank));
    assert!(f >= d, "fine-grained interleave must fan out at least as widely: {f} vs {d} banks");
    assert!(f >= 8, "fine-grained mapping should touch many banks early: {f}");
}
