//! Independent JEDEC timing auditor.
//!
//! The FR-FCFS scheduler enforces timing constraints *while scheduling*;
//! this module re-validates a recorded command stream *after the fact*
//! with a completely separate implementation of the DDR5 rules. Any
//! scheduler bug that issues an illegal command shows up as an audit
//! violation — double-entry bookkeeping for the most safety-critical part
//! of the model. Enable logging with
//! [`DramConfig::log_commands`](crate::DramConfig) and fetch the stream
//! with [`SubChannel::take_command_log`](crate::subchannel::SubChannel).

use coaxial_sim::Cycle;
use serde::Serialize;

use crate::config::DramTimings;

/// A DRAM command kind, as recorded by the sub-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CmdKind {
    Act,
    Pre,
    Rd,
    Wr,
    RefAb,
}

/// One recorded command.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CmdRecord {
    pub cycle: Cycle,
    pub kind: CmdKind,
    /// Bank index within the sub-channel (ignored for RefAb).
    pub bank: usize,
    pub bank_group: usize,
    /// Row for Act; the open row for Rd/Wr (0 for Pre/RefAb).
    pub row: u64,
}

/// A detected timing violation.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    pub at: Cycle,
    pub rule: &'static str,
    pub detail: String,
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
    last_act: Option<Cycle>,
    last_pre: Option<Cycle>,
    last_rd: Option<Cycle>,
    last_wr: Option<Cycle>,
}

/// Validate a command stream against the timing parameters. Returns every
/// violation found (empty = legal stream).
pub fn audit(t: &DramTimings, log: &[CmdRecord], num_banks: usize) -> Vec<Violation> {
    let mut v = Vec::new();
    let mut banks = vec![BankState::default(); num_banks];
    let mut last_act_global: Option<(Cycle, usize)> = None;
    let mut last_cas: Option<(Cycle, usize, bool)> = None; // (cycle, bg, is_write)
    let mut refresh_busy_until: Cycle = 0;

    let mut fail = |at: Cycle, rule: &'static str, detail: String| {
        v.push(Violation { at, rule, detail });
    };

    for r in log {
        let now = r.cycle;
        if r.kind != CmdKind::RefAb && now < refresh_busy_until {
            fail(
                now,
                "tRFC",
                format!("{:?} during refresh (busy until {refresh_busy_until})", r.kind),
            );
        }
        match r.kind {
            CmdKind::Act => {
                let b = &banks[r.bank];
                if b.open_row.is_some() {
                    fail(now, "ACT-on-open", format!("bank {} already open", r.bank));
                }
                if let Some(pre) = b.last_pre {
                    if now < pre + t.t_rp {
                        fail(now, "tRP", format!("ACT {} < PRE {pre} + {}", now, t.t_rp));
                    }
                }
                if let Some(act) = b.last_act {
                    if now < act + t.t_rc {
                        fail(now, "tRC", format!("ACT {} < ACT {act} + {}", now, t.t_rc));
                    }
                }
                if let Some((at, bg)) = last_act_global {
                    let gap = if bg == r.bank_group { t.t_rrd_l } else { t.t_rrd_s };
                    if now < at + gap {
                        fail(now, "tRRD", format!("ACT {} < ACT {at} + {gap}", now));
                    }
                }
                last_act_global = Some((now, r.bank_group));
                let b = &mut banks[r.bank];
                b.open_row = Some(r.row);
                b.last_act = Some(now);
            }
            CmdKind::Pre => {
                let b = &banks[r.bank];
                if b.open_row.is_none() {
                    fail(now, "PRE-on-closed", format!("bank {} already closed", r.bank));
                }
                if let Some(act) = b.last_act {
                    if now < act + t.t_ras {
                        fail(now, "tRAS", format!("PRE {} < ACT {act} + {}", now, t.t_ras));
                    }
                }
                if let Some(rd) = b.last_rd {
                    if now < rd + t.t_rtp {
                        fail(now, "tRTP", format!("PRE {} < RD {rd} + {}", now, t.t_rtp));
                    }
                }
                if let Some(wr) = b.last_wr {
                    let min = wr + t.cwl + t.t_burst + t.t_wr;
                    if now < min {
                        fail(now, "tWR", format!("PRE {} < WR {wr} write-recovery end {min}", now));
                    }
                }
                let b = &mut banks[r.bank];
                b.open_row = None;
                b.last_pre = Some(now);
            }
            CmdKind::Rd | CmdKind::Wr => {
                let is_write = r.kind == CmdKind::Wr;
                let b = &banks[r.bank];
                match b.open_row {
                    None => fail(now, "CAS-on-closed", format!("bank {} closed", r.bank)),
                    Some(open) if open != r.row => fail(
                        now,
                        "CAS-wrong-row",
                        format!("bank {}: open {open}, CAS {}", r.bank, r.row),
                    ),
                    _ => {}
                }
                if let Some(act) = b.last_act {
                    if now < act + t.t_rcd {
                        fail(now, "tRCD", format!("CAS {} < ACT {act} + {}", now, t.t_rcd));
                    }
                }
                if let Some((at, bg, was_write)) = last_cas {
                    let ccd = if bg == r.bank_group { t.t_ccd_l } else { t.t_ccd_s };
                    if now < at + ccd {
                        fail(now, "tCCD", format!("CAS {} < CAS {at} + {ccd}", now));
                    }
                    if was_write && !is_write {
                        let wtr = if bg == r.bank_group { t.t_wtr_l } else { t.t_wtr_s };
                        let min = at + t.cwl + t.t_burst + wtr;
                        if now < min {
                            fail(now, "tWTR", format!("RD {} < WR {at} turnaround end {min}", now));
                        }
                    }
                    // Data-bus occupancy: a burst may not start before the
                    // previous one ends (plus a turnaround bubble when the
                    // direction reverses).
                    let my_start = now + if is_write { t.cwl } else { t.cl };
                    let their_end = at + if was_write { t.cwl } else { t.cl } + t.t_burst;
                    if was_write == is_write {
                        if my_start < their_end {
                            fail(
                                now,
                                "bus-overlap",
                                format!("burst at {my_start} overlaps {their_end}"),
                            );
                        }
                    } else if my_start < their_end + t.t_turnaround {
                        fail(
                            now,
                            "bus-turnaround",
                            format!("burst at {my_start} within turnaround of {their_end}"),
                        );
                    }
                }
                last_cas = Some((now, r.bank_group, is_write));
                let b = &mut banks[r.bank];
                if is_write {
                    b.last_wr = Some(now);
                } else {
                    b.last_rd = Some(now);
                }
            }
            CmdKind::RefAb => {
                for (i, b) in banks.iter().enumerate() {
                    if b.open_row.is_some() {
                        fail(now, "REF-on-open", format!("bank {i} open during REFab"));
                    }
                }
                refresh_busy_until = now + t.t_rfc;
                for b in banks.iter_mut() {
                    b.last_pre = Some(now + t.t_rfc - t.t_rp); // banks usable at +tRFC
                }
            }
        }
    }

    // tFAW as a pure sliding-window post-pass.
    let acts: Vec<Cycle> = log.iter().filter(|r| r.kind == CmdKind::Act).map(|r| r.cycle).collect();
    for w in acts.windows(5) {
        if w[4] < w[0] + t.t_faw {
            v.push(Violation {
                at: w[4],
                rule: "tFAW",
                detail: format!("5th ACT at {} within tFAW of ACT at {}", w[4], w[0]),
            });
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTimings {
        DramTimings::ddr5_4800()
    }

    fn act(cycle: Cycle, bank: usize, row: u64) -> CmdRecord {
        CmdRecord { cycle, kind: CmdKind::Act, bank, bank_group: bank / 4, row }
    }

    fn rd(cycle: Cycle, bank: usize, row: u64) -> CmdRecord {
        CmdRecord { cycle, kind: CmdKind::Rd, bank, bank_group: bank / 4, row }
    }

    fn pre(cycle: Cycle, bank: usize) -> CmdRecord {
        CmdRecord { cycle, kind: CmdKind::Pre, bank, bank_group: bank / 4, row: 0 }
    }

    #[test]
    fn legal_sequence_passes() {
        let t = t();
        let log =
            vec![act(0, 0, 5), rd(t.t_rcd, 0, 5), pre(t.t_ras, 0), act(t.t_ras + t.t_rp, 0, 6)];
        assert!(audit(&t, &log, 32).is_empty());
    }

    #[test]
    fn early_cas_is_flagged() {
        let t = t();
        let log = vec![act(0, 0, 5), rd(t.t_rcd - 1, 0, 5)];
        let v = audit(&t, &log, 32);
        assert!(v.iter().any(|x| x.rule == "tRCD"), "{v:?}");
    }

    #[test]
    fn early_precharge_is_flagged() {
        let t = t();
        let log = vec![act(0, 0, 5), pre(t.t_ras - 1, 0)];
        let v = audit(&t, &log, 32);
        assert!(v.iter().any(|x| x.rule == "tRAS"), "{v:?}");
    }

    #[test]
    fn wrong_row_cas_is_flagged() {
        let t = t();
        let log = vec![act(0, 0, 5), rd(t.t_rcd, 0, 7)];
        let v = audit(&t, &log, 32);
        assert!(v.iter().any(|x| x.rule == "CAS-wrong-row"), "{v:?}");
    }

    #[test]
    fn faw_burst_is_flagged() {
        // With DDR5-4800, 4 × tRRD_S exactly equals tFAW, so the stream is
        // legal; tighten tFAW to expose the window check.
        let mut t = t();
        t.t_faw = 4 * t.t_rrd_s + 8;
        let log: Vec<CmdRecord> =
            (0..5).map(|i| act(i * t.t_rrd_s, coaxial_sim::idx(i) * 4 % 32, 1)).collect();
        let v = audit(&t, &log, 32);
        assert!(v.iter().any(|x| x.rule == "tFAW"), "{v:?}");
        // And the stock DDR5 stream at exactly 4 × tRRD_S is legal.
        let t2 = super::tests::t();
        let v2 = audit(&t2, &log, 32);
        assert!(!v2.iter().any(|x| x.rule == "tFAW"), "{v2:?}");
    }

    #[test]
    fn act_on_open_bank_is_flagged() {
        let t = t();
        let log = vec![act(0, 0, 5), act(t.t_rc, 0, 6)];
        let v = audit(&t, &log, 32);
        assert!(v.iter().any(|x| x.rule == "ACT-on-open"), "{v:?}");
    }
}
