//! Memory request/response types shared by the DRAM and CXL models.

use coaxial_sim::Cycle;
use serde::Serialize;

/// Opaque request identifier assigned by the requester (cache hierarchy or
/// traffic generator); responses carry it back.
pub type ReqId = u64;

/// A 64 B line read or write presented to a memory backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MemRequest {
    pub id: ReqId,
    /// Line address (byte address >> 6).
    pub line_addr: u64,
    pub is_write: bool,
    /// Cycle at which the requester handed the request to the backend.
    pub issued_at: Cycle,
}

impl MemRequest {
    pub fn read(id: ReqId, line_addr: u64, issued_at: Cycle) -> Self {
        Self { id, line_addr, is_write: false, issued_at }
    }

    pub fn write(id: ReqId, line_addr: u64, issued_at: Cycle) -> Self {
        Self { id, line_addr, is_write: true, issued_at }
    }
}

/// Completion record for a [`MemRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MemResponse {
    pub id: ReqId,
    pub line_addr: u64,
    pub is_write: bool,
    /// Cycle the request entered the backend (copied from the request).
    pub issued_at: Cycle,
    /// Cycle the data transfer finished.
    pub completed_at: Cycle,
    /// Cycles spent waiting in controller queues before the first DRAM
    /// command was issued on the request's behalf.
    pub queue_cycles: Cycle,
    /// Cycles from first DRAM command to data completion (the "DRAM access
    /// time" component of the paper's latency breakdowns).
    pub service_cycles: Cycle,
    /// Extra cycles added by a CXL interface (0 for direct DDR attach).
    pub cxl_cycles: Cycle,
}

impl MemResponse {
    /// End-to-end latency observed by the requester.
    pub fn total_cycles(&self) -> Cycle {
        self.completed_at - self.issued_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        let r = MemRequest::read(1, 100, 5);
        assert!(!r.is_write);
        let w = MemRequest::write(2, 200, 6);
        assert!(w.is_write);
    }

    #[test]
    fn total_latency_is_completion_minus_issue() {
        let resp = MemResponse {
            id: 1,
            line_addr: 0,
            is_write: false,
            issued_at: 100,
            completed_at: 250,
            queue_cycles: 60,
            service_cycles: 90,
            cxl_cycles: 0,
        };
        assert_eq!(resp.total_cycles(), 150);
        assert_eq!(resp.queue_cycles + resp.service_cycles, 150);
    }
}
