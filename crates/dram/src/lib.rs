//! Cycle-level DDR5 memory channel model.
//!
//! This crate is the reproduction's substitute for DRAMsim3 (see DESIGN.md
//! §2). It models a DDR5-4800 channel as two independent 32-bit
//! sub-channels (per JEDEC JESD79-5 and the paper's Table III), each with
//! one rank of 32 banks in 8 bank groups, an FR-FCFS scheduler with separate
//! read and write queues, write-drain watermarks, per-bank row-buffer state,
//! all first-order timing constraints (tRCD/tRP/tRAS/tRC, tCCD_L/S,
//! tRRD_L/S, tFAW, tWR, tRTP, tWTR, bus turnaround) and all-bank refresh
//! (tREFI/tRFC). Energy is accounted per command in the style of DRAMsim3's
//! power model.
//!
//! The load-latency behaviour of this model — the exponential growth of
//! queuing delay with bandwidth utilization — is what drives every result
//! in the paper (Fig. 2a), so the scheduler and timing machinery are the
//! most carefully tested part of the reproduction.

// No unsafe anywhere in this crate (lint U01 audit); keep it that way.
#![forbid(unsafe_code)]

pub mod audit;
pub mod bank;
pub mod channel;
pub mod config;
pub mod multi;
pub mod power;
pub mod request;
pub mod subchannel;

pub use channel::{Channel, ChannelStats};
pub use config::{DramConfig, DramTimings};
pub use multi::MultiChannel;
pub use power::{DramEnergy, DramPowerParams};
pub use request::{MemRequest, MemResponse, ReqId};

use coaxial_sim::Cycle;

/// Anything that can stand at the far end of the cache hierarchy: a directly
/// attached DDR channel group (the baseline) or a set of CXL-attached
/// Type-3 devices (COAXIAL). The system crate drives this interface.
pub trait MemoryBackend {
    /// Try to accept a request; `Err` returns it on back-pressure.
    fn try_enqueue(&mut self, req: MemRequest) -> Result<(), MemRequest>;

    /// Advance one system clock cycle.
    fn tick(&mut self, now: Cycle);

    /// Pop one request completed by `now`, if any.
    fn pop_response(&mut self, now: Cycle) -> Option<MemResponse>;

    /// Number of independent DDR channels behind this backend (used for
    /// bandwidth-utilization reporting).
    fn ddr_channel_count(&self) -> usize;

    /// Aggregated DDR statistics over the current measurement window.
    fn ddr_stats(&self) -> ChannelStats;

    /// Zero all statistics and start a new measurement window at `now`
    /// (called at the end of warmup).
    fn reset_stats(&mut self, now: Cycle);

    /// Aggregate peak DDR bandwidth behind this backend, GB/s.
    fn peak_bandwidth_gbs(&self) -> f64;

    /// Mean (TX, RX) serial-link utilization, if this backend has serial
    /// links (CXL); `None` for direct DDR attach.
    fn link_utilization(&self) -> Option<(f64, f64)> {
        None
    }

    /// Earliest future cycle at which this backend could do observable work
    /// (pop a completion, hit a refresh deadline, move a queued request, ...),
    /// given no new requests arrive. A lower bound: ticking the backend on
    /// every cycle in `(now, next_event(now))` must be a no-op. Backends that
    /// cannot prove quiescence return `now + 1` (never skip).
    fn next_event(&self, _now: Cycle) -> Cycle {
        _now + 1
    }

    /// Export backend-specific metrics (per-channel counters, link
    /// utilizations, ...) into `reg` under `prefix`. Called off the hot
    /// path, at harvest time only. Default: nothing.
    fn export_metrics(&self, _reg: &mut coaxial_telemetry::MetricsRegistry, _prefix: &str) {}
}

impl<T: MemoryBackend + ?Sized> MemoryBackend for Box<T> {
    fn try_enqueue(&mut self, req: MemRequest) -> Result<(), MemRequest> {
        (**self).try_enqueue(req)
    }
    fn tick(&mut self, now: Cycle) {
        (**self).tick(now)
    }
    fn pop_response(&mut self, now: Cycle) -> Option<MemResponse> {
        (**self).pop_response(now)
    }
    fn ddr_channel_count(&self) -> usize {
        (**self).ddr_channel_count()
    }
    fn ddr_stats(&self) -> ChannelStats {
        (**self).ddr_stats()
    }
    fn reset_stats(&mut self, now: Cycle) {
        (**self).reset_stats(now)
    }
    fn peak_bandwidth_gbs(&self) -> f64 {
        (**self).peak_bandwidth_gbs()
    }
    fn link_utilization(&self) -> Option<(f64, f64)> {
        (**self).link_utilization()
    }
    fn next_event(&self, now: Cycle) -> Cycle {
        (**self).next_event(now)
    }
    fn export_metrics(&self, reg: &mut coaxial_telemetry::MetricsRegistry, prefix: &str) {
        (**self).export_metrics(reg, prefix)
    }
}
