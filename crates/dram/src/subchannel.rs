//! FR-FCFS scheduler for one 32-bit DDR5 sub-channel.
//!
//! The scheduler owns per-bank state, separate read/write queues with
//! write-drain hysteresis, channel-level CAS/ACT spacing constraints
//! (tCCD_L/S, tRRD_L/S, tFAW, write-to-read and read-to-write turnaround),
//! explicit data-bus occupancy, and all-bank refresh. One command may issue
//! per cycle.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use coaxial_sim::{Cycle, MeanTracker};

use crate::audit::{CmdKind, CmdRecord};
use crate::bank::Bank;
use crate::config::{AddressMapping, DramConfig, PagePolicy};
use crate::request::{MemRequest, MemResponse};

/// Physical coordinates of a line within a sub-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedAddr {
    pub bank_group: usize,
    pub bank: usize, // global bank index within the sub-channel
    pub row: u64,
}

/// Heap entry ordering completed responses by (data-end cycle, sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Completion {
    done: Cycle,
    seq: u64,
    resp: MemResponse,
}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.done, self.seq).cmp(&(other.done, other.seq))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone)]
struct Entry {
    req: MemRequest,
    addr: DecodedAddr,
    /// Cycle the sub-channel accepted the request.
    enqueued_at: Cycle,
    /// First DRAM command issued on this request's behalf.
    first_cmd: Option<Cycle>,
    /// Whether this request needed its own ACT (row-buffer miss).
    had_act: bool,
}

/// Aggregate command/energy counters for one sub-channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommandCounts {
    pub act: u64,
    pub pre: u64,
    pub rd: u64,
    pub wr: u64,
    pub refab: u64,
}

/// One 32-bit DDR5 sub-channel with its own rank of banks.
pub struct SubChannel {
    cfg: DramConfig,
    banks: Vec<Bank>,
    read_q: VecDeque<Entry>,
    write_q: VecDeque<Entry>,
    draining_writes: bool,

    // Channel-level command spacing state.
    last_cas_at: Option<(Cycle, usize)>, // (cycle, bank_group)
    last_read_cas: Option<Cycle>,
    last_write_cas: Option<(Cycle, usize)>, // (cycle, bank_group)
    last_act: Option<(Cycle, usize)>,
    act_window: VecDeque<Cycle>, // last 4 ACTs, for tFAW
    bus_free_at: Cycle,
    bus_dir_write: bool,

    // Refresh state.
    refresh_due: Cycle,
    refresh_pending: bool,
    refreshing_until: Cycle,
    last_pre_at: Cycle,

    // Completions ordered by data-end time.
    completions: BinaryHeap<Reverse<Completion>>,
    completion_seq: u64,

    pub counts: CommandCounts,
    /// Data-bus busy cycles (for utilization).
    pub bus_busy: u64,
    pub queue_delay: MeanTracker,
    pub service_time: MeanTracker,
    /// Issued-command log (only when `cfg.log_commands`).
    cmd_log: Vec<CmdRecord>,
    /// Cached no-op horizon: ticks strictly before this cycle are provably
    /// no-ops (the [`Self::next_event`] bound, memoized after a tick that
    /// did nothing). Enqueue — the only external mutation that can create
    /// work — lowers it to the new entry's own readiness threshold.
    idle_until: Cycle,
}

impl SubChannel {
    pub fn new(cfg: DramConfig) -> Self {
        let nbanks = cfg.banks_per_subchannel();
        Self {
            banks: (0..nbanks).map(|_| Bank::new()).collect(),
            read_q: VecDeque::with_capacity(cfg.read_queue_depth),
            write_q: VecDeque::with_capacity(cfg.write_queue_depth),
            draining_writes: false,
            last_cas_at: None,
            last_read_cas: None,
            last_write_cas: None,
            last_act: None,
            act_window: VecDeque::with_capacity(4),
            bus_free_at: 0,
            bus_dir_write: false,
            refresh_due: cfg.timings.t_refi,
            refresh_pending: false,
            refreshing_until: 0,
            last_pre_at: 0,
            completions: BinaryHeap::new(),
            completion_seq: 0,
            counts: CommandCounts::default(),
            bus_busy: 0,
            queue_delay: MeanTracker::new(),
            service_time: MeanTracker::new(),
            cmd_log: Vec::new(),
            idle_until: 0,
            cfg,
        }
    }

    #[inline]
    fn log_cmd(&mut self, cycle: Cycle, kind: CmdKind, bank: usize, row: u64) {
        if self.cfg.log_commands {
            self.cmd_log.push(CmdRecord {
                cycle,
                kind,
                bank,
                bank_group: bank / self.cfg.banks_per_group,
                row,
            });
        }
    }

    /// Drain the recorded command log (see [`crate::audit`]).
    pub fn take_command_log(&mut self) -> Vec<CmdRecord> {
        std::mem::take(&mut self.cmd_log)
    }

    /// Decode a sub-channel-local line address into bank/row coordinates
    /// according to the configured [`AddressMapping`].
    pub fn decode(&self, local_line: u64) -> DecodedAddr {
        let col_bits = self.cfg.lines_per_row().trailing_zeros();
        let bg_bits = (self.cfg.bank_groups as u64).trailing_zeros();
        let ba_bits = (self.cfg.banks_per_group as u64).trailing_zeros();
        let (bank_group, bank_in_group, row) = match self.cfg.address_mapping {
            // row | bank | bank-group | column: streams get row hits, then
            // hop to the next bank group.
            AddressMapping::RowBankColumn => {
                let mut a = local_line >> col_bits;
                let bg = coaxial_sim::idx(a & ((1 << bg_bits) - 1));
                a >>= bg_bits;
                let ba = coaxial_sim::idx(a & ((1 << ba_bits) - 1));
                a >>= ba_bits;
                (bg, ba, a % self.cfg.rows)
            }
            // row | column | bank | bank-group: consecutive lines alternate
            // banks before advancing the column.
            AddressMapping::RowColumnBank => {
                let mut a = local_line;
                let bg = coaxial_sim::idx(a & ((1 << bg_bits) - 1));
                a >>= bg_bits;
                let ba = coaxial_sim::idx(a & ((1 << ba_bits) - 1));
                a >>= ba_bits;
                a >>= col_bits;
                (bg, ba, a % self.cfg.rows)
            }
        };
        DecodedAddr { bank_group, bank: bank_group * self.cfg.banks_per_group + bank_in_group, row }
    }

    pub fn read_q_len(&self) -> usize {
        self.read_q.len()
    }

    pub fn write_q_len(&self) -> usize {
        self.write_q.len()
    }

    /// Whether a request of the given direction would be accepted now.
    pub fn can_accept(&self, is_write: bool) -> bool {
        if is_write {
            self.write_q.len() < self.cfg.write_queue_depth
        } else {
            self.read_q.len() < self.cfg.read_queue_depth
        }
    }

    /// Accept a request into the appropriate queue.
    pub fn enqueue(&mut self, req: MemRequest, now: Cycle) -> Result<(), MemRequest> {
        if !self.can_accept(req.is_write) {
            return Err(req);
        }
        let addr = self.decode(req.line_addr);
        let entry = Entry { req, addr, enqueued_at: now, first_cmd: None, had_act: false };
        // The new request may become schedulable before the cached no-op
        // horizon: lower the horizon to the entry's own readiness threshold
        // (O(1); a full `next_event` recompute here would dominate the
        // scheduler cost under load). Only lowering keeps the bound sound.
        if self.idle_until > now + 1 {
            self.idle_until = self.idle_until.min(self.entry_ready_at(&entry).max(now + 1));
        }
        if req.is_write {
            self.write_q.push_back(entry);
        } else {
            self.read_q.push_back(entry);
        }
        Ok(())
    }

    /// Pop a response whose data transfer has finished by `now`.
    pub fn pop_response(&mut self, now: Cycle) -> Option<MemResponse> {
        if let Some(&Reverse(c)) = self.completions.peek() {
            if c.done <= now {
                self.completions.pop();
                return Some(c.resp);
            }
        }
        None
    }

    /// Advance one cycle: handle refresh, pick a command, issue it.
    ///
    /// A do-nothing tick with *empty queues* memoizes [`Self::next_event`]
    /// as an idle horizon, so an idle sub-channel stops paying the
    /// per-cycle refresh checks and precharge-policy bank sweep until the
    /// next refresh deadline, speculative PRE, or enqueue. With work
    /// queued the horizon is not maintained: the bound is conservative
    /// there (FR-FCFS claiming, drain-direction selection), and measuring
    /// showed recomputing it after each no-op tick costs more than the
    /// skipped scans save. [`Self::enqueue`] lowers the horizon; all other
    /// state evolution is driven by `tick` itself, so the cache cannot go
    /// stale.
    pub fn tick(&mut self, now: Cycle) {
        if now < self.idle_until {
            return; // provably a no-op (see next_event contract)
        }
        if !self.tick_inner(now) && self.read_q.is_empty() && self.write_q.is_empty() {
            self.idle_until = self.next_event(now);
        }
    }

    /// One cycle of real scheduler work. Returns whether any command
    /// issued or refresh state advanced (false = provable no-op).
    fn tick_inner(&mut self, now: Cycle) -> bool {
        if self.refreshing_until > now {
            return false; // rank busy with REFab
        }
        if self.refresh_pending {
            self.progress_refresh(now);
            return true;
        }
        if now >= self.refresh_due {
            self.refresh_pending = true;
            self.progress_refresh(now);
            return true;
        }

        // Write-drain hysteresis: writes are forced out above the high
        // watermark and drained down to the low watermark in a batch, which
        // amortizes bus turnarounds; reads otherwise have priority.
        if self.write_q.len() >= self.cfg.write_drain_hi {
            self.draining_writes = true;
        } else if self.write_q.len() <= self.cfg.write_drain_lo {
            self.draining_writes = false;
        }
        let serve_writes =
            self.draining_writes || (self.read_q.is_empty() && !self.write_q.is_empty());

        if self.try_issue_cas(serve_writes, now) {
            return true;
        }
        if self.try_issue_act_or_pre(serve_writes, now) {
            return true;
        }
        // Precharge policy:
        // * OpenAdaptive — with nothing queued, close a stale open row so
        //   the next access pays tRCD+CL instead of a full row conflict;
        // * Closed — close rows as soon as legal, regardless of queues;
        // * Open — never close speculatively.
        // One command per cycle in any case.
        let close_now = match self.cfg.page_policy {
            PagePolicy::Open => false,
            PagePolicy::OpenAdaptive => self.read_q.is_empty() && self.write_q.is_empty(),
            PagePolicy::Closed => true,
        };
        if close_now {
            let t = self.cfg.timings.clone();
            // Never close a row that a visible queued request still wants.
            let wanted = |bank: usize, row: u64| {
                self.read_q
                    .iter()
                    .chain(self.write_q.iter())
                    .take(2 * self.cfg.sched_window)
                    .any(|e| e.addr.bank == bank && e.addr.row == row)
            };
            let victim = self.banks.iter().enumerate().find_map(|(i, b)| match b.open_row {
                Some(row) if b.can_precharge(now) && !wanted(i, row) => Some(i),
                _ => None,
            });
            if let Some(i) = victim {
                self.banks[i].precharge(now, &t);
                self.log_cmd(now, CmdKind::Pre, i, 0);
                self.counts.pre += 1;
                self.last_pre_at = now;
                return true;
            }
        }
        false
    }

    /// During refresh-pending: precharge open banks, then issue REFab.
    fn progress_refresh(&mut self, now: Cycle) {
        let t = self.cfg.timings.clone();
        // Close one open bank per cycle (single command bus).
        if let Some(i) = self.banks.iter().position(|b| b.open_row.is_some()) {
            if self.banks[i].can_precharge(now) {
                self.banks[i].precharge(now, &t);
                self.counts.pre += 1;
                self.last_pre_at = now;
                self.log_cmd(now, CmdKind::Pre, i, 0);
            }
            return;
        }
        // All banks closed; REFab needs tRP after the last PRE.
        if now >= self.last_pre_at + t.t_rp {
            self.refreshing_until = now + t.t_rfc;
            for b in &mut self.banks {
                b.refresh_close(self.refreshing_until);
            }
            self.counts.refab += 1;
            self.log_cmd(now, CmdKind::RefAb, 0, 0);
            self.refresh_due += t.t_refi;
            self.refresh_pending = false;
        }
    }

    /// Earliest cycle at which the *channel-level* CAS constraints allow a
    /// CAS for `bank_group`/`is_write`. All constraints are thresholds
    /// against fixed timestamps, so this is exact while no command issues.
    fn cas_legal_at(&self, bank_group: usize, is_write: bool) -> Cycle {
        let t = &self.cfg.timings;
        let mut at: Cycle = 0;
        // CAS-to-CAS spacing.
        if let Some((c, bg)) = self.last_cas_at {
            at = at.max(c + if bg == bank_group { t.t_ccd_l } else { t.t_ccd_s });
        }
        if is_write {
            // Read-to-write turnaround: the write burst must start after the
            // read burst clears the bus plus a turnaround bubble.
            if let Some(rd_at) = self.last_read_cas {
                at = at.max((rd_at + t.cl + t.t_burst + t.t_turnaround).saturating_sub(t.cwl));
            }
        } else if let Some((wr_at, wr_bg)) = self.last_write_cas {
            // Write-to-read: tWTR measured from end of write data.
            let wtr = if wr_bg == bank_group { t.t_wtr_l } else { t.t_wtr_s };
            at = at.max(wr_at + t.cwl + t.t_burst + wtr);
        }
        // Data bus occupancy (safety net; the spacing rules above normally
        // guarantee this): data_start = now + CL/CWL must not precede the
        // bus becoming free (plus a turnaround on direction change).
        let lat = if is_write { t.cwl } else { t.cl };
        let need = if self.bus_dir_write != is_write {
            self.bus_free_at + t.t_turnaround
        } else {
            self.bus_free_at
        };
        at.max(need.saturating_sub(lat))
    }

    /// Channel-level legality of a CAS at `now` for `bank_group`/`is_write`.
    fn cas_legal(&self, bank_group: usize, is_write: bool, now: Cycle) -> bool {
        now >= self.cas_legal_at(bank_group, is_write)
    }

    /// FR-FCFS first pass: issue a CAS for the oldest row-hit in the chosen
    /// queue. Returns true if a command issued.
    fn try_issue_cas(&mut self, serve_writes: bool, now: Cycle) -> bool {
        let t = self.cfg.timings.clone();
        let q = if serve_writes { &self.write_q } else { &self.read_q };
        let mut chosen = None;
        for (i, e) in q.iter().take(self.cfg.sched_window).enumerate() {
            let bank = &self.banks[e.addr.bank];
            if bank.can_cas(e.addr.row, now)
                && self.cas_legal(e.addr.bank_group, e.req.is_write, now)
            {
                chosen = Some(i);
                break;
            }
        }
        let Some(i) = chosen else { return false };
        let mut e = if serve_writes {
            self.write_q.remove(i).expect("index valid")
        } else {
            self.read_q.remove(i).expect("index valid")
        };
        let is_write = e.req.is_write;
        self.banks[e.addr.bank].cas(is_write, now, &t);
        self.log_cmd(
            now,
            if is_write { CmdKind::Wr } else { CmdKind::Rd },
            e.addr.bank,
            e.addr.row,
        );
        if e.first_cmd.is_none() {
            e.first_cmd = Some(now);
        }
        if e.had_act {
            self.banks[e.addr.bank].row_misses += 1;
        } else {
            self.banks[e.addr.bank].row_hits += 1;
        }
        // Bus + channel bookkeeping.
        let data_start = now + if is_write { t.cwl } else { t.cl };
        let data_end = data_start + t.t_burst;
        self.bus_free_at = data_end;
        self.bus_dir_write = is_write;
        self.bus_busy += t.t_burst;
        self.last_cas_at = Some((now, e.addr.bank_group));
        if is_write {
            self.last_write_cas = Some((now, e.addr.bank_group));
            self.counts.wr += 1;
        } else {
            self.last_read_cas = Some(now);
            self.counts.rd += 1;
        }
        // Build the completion record.
        let first = e.first_cmd.expect("set above");
        let queue_cycles = first.saturating_sub(e.enqueued_at);
        let service_cycles = data_end - first;
        self.queue_delay.record(queue_cycles as f64);
        self.service_time.record(service_cycles as f64);
        let resp = MemResponse {
            id: e.req.id,
            line_addr: e.req.line_addr,
            is_write,
            issued_at: e.req.issued_at,
            completed_at: data_end,
            queue_cycles,
            service_cycles,
            cxl_cycles: 0,
        };
        let seq = self.completion_seq;
        self.completion_seq += 1;
        self.completions.push(Reverse(Completion { done: data_end, seq, resp }));
        true
    }

    /// FR-FCFS second pass: issue an ACT (closed bank) or PRE (row conflict)
    /// for the oldest request that needs one. Banks already claimed by an
    /// older queued request are not re-opened/closed for a younger one, which
    /// prevents row thrashing.
    fn try_issue_act_or_pre(&mut self, serve_writes: bool, now: Cycle) -> bool {
        let t = self.cfg.timings.clone();
        let mut claimed: u64 = 0; // bitmask over ≤64 banks
        enum Cmd {
            Act(usize, u64),
            Pre(usize),
        }
        let mut cmd = None;
        {
            let q = if serve_writes { &self.write_q } else { &self.read_q };
            for (i, e) in q.iter().take(self.cfg.sched_window).enumerate() {
                let mask = 1u64 << e.addr.bank;
                if claimed & mask != 0 {
                    continue;
                }
                claimed |= mask;
                let bank = &self.banks[e.addr.bank];
                match bank.open_row {
                    Some(r) if r == e.addr.row => continue, // CAS pass handles it
                    Some(_) => {
                        if bank.can_precharge(now) {
                            cmd = Some((i, Cmd::Pre(e.addr.bank)));
                            break;
                        }
                    }
                    None => {
                        if bank.can_activate(now) && self.act_legal(e.addr.bank_group, now) {
                            cmd = Some((i, Cmd::Act(e.addr.bank, e.addr.row)));
                            break;
                        }
                    }
                }
            }
        }
        let Some((i, cmd)) = cmd else { return false };
        let q = if serve_writes { &mut self.write_q } else { &mut self.read_q };
        let e = &mut q[i];
        if e.first_cmd.is_none() {
            e.first_cmd = Some(now);
        }
        match cmd {
            Cmd::Act(bank, row) => {
                e.had_act = true;
                self.banks[bank].activate(row, now, &t);
                self.log_cmd(now, CmdKind::Act, bank, row);
                self.counts.act += 1;
                self.last_act = Some((now, self.banks_bg(bank)));
                if self.act_window.len() == 4 {
                    self.act_window.pop_front();
                }
                self.act_window.push_back(now);
            }
            Cmd::Pre(bank) => {
                self.banks[bank].row_conflicts += 1;
                self.banks[bank].precharge(now, &t);
                self.log_cmd(now, CmdKind::Pre, bank, 0);
                self.counts.pre += 1;
                self.last_pre_at = now;
            }
        }
        true
    }

    fn banks_bg(&self, bank: usize) -> usize {
        bank / self.cfg.banks_per_group
    }

    /// Earliest cycle at which rank-level ACT constraints (tRRD, tFAW)
    /// allow an ACT for `bank_group`.
    fn act_legal_at(&self, bank_group: usize) -> Cycle {
        let t = &self.cfg.timings;
        let mut at: Cycle = 0;
        if let Some((c, bg)) = self.last_act {
            at = at.max(c + if bg == bank_group { t.t_rrd_l } else { t.t_rrd_s });
        }
        if self.act_window.len() == 4 {
            at = at.max(self.act_window[0] + t.t_faw);
        }
        at
    }

    /// Rank-level ACT legality: tRRD and tFAW.
    fn act_legal(&self, bank_group: usize, now: Cycle) -> bool {
        now >= self.act_legal_at(bank_group)
    }

    /// Earliest cycle the next command on `e`'s behalf could become legal:
    /// CAS for a row hit, PRE for a row conflict, ACT for a closed bank —
    /// each gated by its bank timer and the channel/rank spacing rules.
    fn entry_ready_at(&self, e: &Entry) -> Cycle {
        let bank = &self.banks[e.addr.bank];
        match bank.open_row {
            Some(r) if r == e.addr.row => {
                bank.earliest_cas().max(self.cas_legal_at(e.addr.bank_group, e.req.is_write))
            }
            Some(_) => bank.earliest_pre(),
            None => bank.earliest_act().max(self.act_legal_at(e.addr.bank_group)),
        }
    }

    /// Earliest future cycle at which ticking this sub-channel could do
    /// observable work, assuming no new requests arrive and all completions
    /// due by `now` have been popped.
    ///
    /// This is a *lower bound*: ticking on every cycle in
    /// `(now, next_event(now))` is provably a no-op. While no command
    /// issues, every legality predicate in the scheduler is a threshold
    /// check against a fixed timestamp (bank timers, tCCD/tRRD/tFAW
    /// trackers, bus occupancy, refresh deadlines), so the earliest of
    /// those thresholds bounds the first cycle anything can happen. The
    /// bound is deliberately conservative where the FR-FCFS pick order
    /// matters (claimed banks, read/write drain selection): it may name a
    /// cycle where nothing issues after all, which only ends a skip early.
    pub fn next_event(&self, now: Cycle) -> Cycle {
        let mut next = Cycle::MAX;
        if let Some(&Reverse(c)) = self.completions.peek() {
            next = next.min(c.done);
        }
        if self.refreshing_until > now {
            // Rank blocked in REFab: nothing issues before it completes.
            return next.min(self.refreshing_until).max(now + 1);
        }
        if self.refresh_pending {
            // Mid-refresh precharge sequence: one PRE per cycle to the first
            // open bank (gated on its tRAS/tWR timer), then REFab tRP after
            // the last PRE.
            let at = match self.banks.iter().find(|b| b.open_row.is_some()) {
                Some(b) => b.earliest_pre(),
                None => self.last_pre_at + self.cfg.timings.t_rp,
            };
            return next.min(at).max(now + 1);
        }
        next = next.min(self.refresh_due);

        let queued = !self.read_q.is_empty() || !self.write_q.is_empty();
        if queued {
            // Earliest cycle any scheduled command could become legal for an
            // entry in the FR-FCFS window. Scanning both queues regardless
            // of the drain state only under-estimates (safe).
            for e in self
                .read_q
                .iter()
                .take(self.cfg.sched_window)
                .chain(self.write_q.iter().take(self.cfg.sched_window))
            {
                next = next.min(self.entry_ready_at(e));
            }
        }
        // Speculative precharge: Closed policy closes stale rows even with
        // queued work; OpenAdaptive only when both queues are idle.
        let may_close = match self.cfg.page_policy {
            PagePolicy::Open => false,
            PagePolicy::OpenAdaptive => !queued,
            PagePolicy::Closed => true,
        };
        if may_close {
            for b in &self.banks {
                if b.open_row.is_some() {
                    next = next.min(b.earliest_pre());
                }
            }
        }
        next.max(now + 1)
    }

    /// Zero all statistics (end of warmup). Timing state is untouched.
    pub fn reset_stats(&mut self) {
        self.counts = CommandCounts::default();
        self.bus_busy = 0;
        self.queue_delay = MeanTracker::new();
        self.service_time = MeanTracker::new();
        for b in &mut self.banks {
            b.row_hits = 0;
            b.row_misses = 0;
            b.row_conflicts = 0;
        }
    }

    /// Total row-buffer outcomes across banks: (hits, misses, conflicts).
    pub fn row_outcomes(&self) -> (u64, u64, u64) {
        self.banks
            .iter()
            .fold((0, 0, 0), |(h, m, c), b| (h + b.row_hits, m + b.row_misses, c + b.row_conflicts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn sub() -> SubChannel {
        SubChannel::new(DramConfig::ddr5_4800())
    }

    /// Drive the sub-channel until `n` responses are collected or `limit`
    /// cycles elapse.
    fn run_until(sc: &mut SubChannel, n: usize, limit: Cycle) -> Vec<MemResponse> {
        let mut out = Vec::new();
        for now in 0..limit {
            sc.tick(now);
            while let Some(r) = sc.pop_response(now) {
                out.push(r);
            }
            if out.len() >= n {
                break;
            }
        }
        out
    }

    #[test]
    fn single_read_completes_with_closed_bank_latency() {
        let mut sc = sub();
        sc.enqueue(MemRequest::read(1, 0, 0), 0).unwrap();
        let resps = run_until(&mut sc, 1, 10_000);
        assert_eq!(resps.len(), 1);
        let t = DramConfig::ddr5_4800().timings;
        // ACT at 0, CAS at tRCD, data end at tRCD+CL+burst.
        assert_eq!(resps[0].completed_at, t.t_rcd + t.cl + t.t_burst);
        assert_eq!(resps[0].queue_cycles, 0);
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut sc = sub();
        // Two reads to the same row: the second should be a row hit.
        sc.enqueue(MemRequest::read(1, 0, 0), 0).unwrap();
        sc.enqueue(MemRequest::read(2, 1, 0), 0).unwrap();
        let resps = run_until(&mut sc, 2, 10_000);
        assert_eq!(resps.len(), 2);
        let (hits, misses, _) = sc.row_outcomes();
        assert_eq!(hits, 1);
        assert_eq!(misses, 1);
        let gap = resps[1].completed_at - resps[0].completed_at;
        // Row-hit CAS issues tCCD_L after the first — far less than tRC.
        assert!(gap <= DramConfig::ddr5_4800().timings.t_ccd_l + 2, "gap={gap}");
    }

    #[test]
    fn row_conflict_requires_precharge() {
        let mut sc = sub();
        let lines_per_row = DramConfig::ddr5_4800().lines_per_row();
        let banks = DramConfig::ddr5_4800().banks_per_subchannel() as u64;
        // Same bank, different rows: addr stride of one full bank rotation.
        let stride = lines_per_row * banks;
        sc.enqueue(MemRequest::read(1, 0, 0), 0).unwrap();
        sc.enqueue(MemRequest::read(2, stride, 0), 0).unwrap();
        let resps = run_until(&mut sc, 2, 10_000);
        assert_eq!(resps.len(), 2);
        let (_, _, conflicts) = sc.row_outcomes();
        assert_eq!(conflicts, 1);
        let t = DramConfig::ddr5_4800().timings;
        // Second access must wait ≥ tRAS+tRP from the first ACT.
        assert!(resps[1].completed_at >= t.t_ras + t.t_rp + t.t_rcd + t.cl);
    }

    #[test]
    fn back_pressure_when_queue_full() {
        let mut sc = sub();
        let depth = DramConfig::ddr5_4800().read_queue_depth;
        for i in 0..depth {
            sc.enqueue(MemRequest::read(i as u64, i as u64 * 1000, 0), 0).unwrap();
        }
        assert!(sc.enqueue(MemRequest::read(999, 0, 0), 0).is_err());
    }

    #[test]
    fn writes_eventually_drain() {
        let mut sc = sub();
        for i in 0..40u64 {
            sc.enqueue(MemRequest::write(i, i * 64, 0), 0).unwrap();
        }
        let resps = run_until(&mut sc, 40, 100_000);
        assert_eq!(resps.len(), 40);
        assert_eq!(sc.counts.wr, 40);
    }

    #[test]
    fn reads_prioritized_over_writes_below_watermark() {
        let mut sc = sub();
        // A few writes (below drain threshold), then a read.
        for i in 0..4u64 {
            sc.enqueue(MemRequest::write(i, i * 64, 0), 0).unwrap();
        }
        sc.enqueue(MemRequest::read(100, 64 * 1024, 0), 0).unwrap();
        let resps = run_until(&mut sc, 1, 10_000);
        assert!(!resps[0].is_write, "read must complete first");
    }

    #[test]
    fn refresh_blocks_the_rank() {
        let mut sc = sub();
        let t = DramConfig::ddr5_4800().timings;
        // Run quietly past the first refresh interval.
        for now in 0..t.t_refi + t.t_rfc + 10 {
            sc.tick(now);
        }
        assert_eq!(sc.counts.refab, 1);
        // A read right after refresh still completes.
        let start = t.t_refi + t.t_rfc + 10;
        sc.enqueue(MemRequest::read(1, 0, start), start).unwrap();
        let mut got = false;
        for now in start..start + 10_000 {
            sc.tick(now);
            if sc.pop_response(now).is_some() {
                got = true;
                break;
            }
        }
        assert!(got);
    }

    #[test]
    fn distinct_banks_overlap_service() {
        let mut sc = sub();
        let lines_per_row = DramConfig::ddr5_4800().lines_per_row();
        // 8 reads to 8 different bank groups (stride = one row of lines).
        for i in 0..8u64 {
            sc.enqueue(MemRequest::read(i, i * lines_per_row, 0), 0).unwrap();
        }
        let resps = run_until(&mut sc, 8, 100_000);
        assert_eq!(resps.len(), 8);
        let t = DramConfig::ddr5_4800().timings;
        let last = resps.iter().map(|r| r.completed_at).max().unwrap();
        // Bank-parallel service: far faster than 8 serialized row cycles.
        assert!(last < 8 * t.unloaded_closed(), "last completion at {last}");
    }
}
