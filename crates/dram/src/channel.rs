//! A full DDR5 channel: two independent sub-channels plus channel-level
//! statistics. Implements [`crate::MemoryBackend`] for direct DDR attach
//! (the paper's baseline system).

use coaxial_sim::{Cycle, Histogram, MeanTracker};
use serde::Serialize;

use crate::config::{DramConfig, LINE_BYTES};
use crate::request::{MemRequest, MemResponse};
use crate::subchannel::SubChannel;
use crate::MemoryBackend;

/// Aggregated channel statistics, harvested after a run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ChannelStats {
    pub reads: u64,
    pub writes: u64,
    pub read_bytes: u64,
    pub write_bytes: u64,
    /// Mean cycles spent queued before the first DRAM command.
    pub mean_queue_cycles: f64,
    /// Mean cycles from first DRAM command to data completion.
    pub mean_service_cycles: f64,
    /// Data-bus utilization in [0, 1] over the observed window.
    pub bus_utilization: f64,
    pub row_hits: u64,
    pub row_misses: u64,
    pub row_conflicts: u64,
    /// ACT/PRE/RD/WR/REF command counts (for the energy model).
    pub act: u64,
    pub pre: u64,
    pub rd_cas: u64,
    pub wr_cas: u64,
    pub refab: u64,
    /// Observation window in cycles.
    pub elapsed_cycles: Cycle,
}

impl ChannelStats {
    /// Achieved bandwidth in GB/s over the window.
    pub fn bandwidth_gbs(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            return 0.0;
        }
        let ns = coaxial_sim::cycles_to_ns(self.elapsed_cycles);
        (self.read_bytes + self.write_bytes) as f64 / ns
    }

    /// Export the channel counters into a metrics registry under `prefix`
    /// (e.g. `dram.ch0`).
    pub fn export_metrics(&self, reg: &mut coaxial_telemetry::MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.reads"), self.reads);
        reg.set_counter(&format!("{prefix}.writes"), self.writes);
        reg.set_counter(&format!("{prefix}.read_bytes"), self.read_bytes);
        reg.set_counter(&format!("{prefix}.write_bytes"), self.write_bytes);
        reg.set_counter(&format!("{prefix}.row.hits"), self.row_hits);
        reg.set_counter(&format!("{prefix}.row.misses"), self.row_misses);
        reg.set_counter(&format!("{prefix}.row.conflicts"), self.row_conflicts);
        reg.set_counter(&format!("{prefix}.cmd.act"), self.act);
        reg.set_counter(&format!("{prefix}.cmd.pre"), self.pre);
        reg.set_counter(&format!("{prefix}.cmd.rd_cas"), self.rd_cas);
        reg.set_counter(&format!("{prefix}.cmd.wr_cas"), self.wr_cas);
        reg.set_counter(&format!("{prefix}.cmd.refab"), self.refab);
        reg.set_gauge(&format!("{prefix}.mean_queue_cycles"), self.mean_queue_cycles);
        reg.set_gauge(&format!("{prefix}.mean_service_cycles"), self.mean_service_cycles);
        reg.set_gauge(&format!("{prefix}.bus_utilization"), self.bus_utilization);
        reg.set_gauge(&format!("{prefix}.bandwidth_gbs"), self.bandwidth_gbs());
    }

    /// Fold stats from another channel (used to aggregate multi-channel
    /// backends; elapsed is taken as the max).
    pub fn merge(&mut self, other: &ChannelStats) {
        let total_a = (self.reads + self.writes) as f64;
        let total_b = (other.reads + other.writes) as f64;
        let total = total_a + total_b;
        if total > 0.0 {
            self.mean_queue_cycles =
                (self.mean_queue_cycles * total_a + other.mean_queue_cycles * total_b) / total;
            self.mean_service_cycles =
                (self.mean_service_cycles * total_a + other.mean_service_cycles * total_b) / total;
        }
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.act += other.act;
        self.pre += other.pre;
        self.rd_cas += other.rd_cas;
        self.wr_cas += other.wr_cas;
        self.refab += other.refab;
        self.bus_utilization = (self.bus_utilization + other.bus_utilization) / 2.0;
        self.elapsed_cycles = self.elapsed_cycles.max(other.elapsed_cycles);
    }
}

/// One DDR5 channel (the unit the paper provisions per 12 cores in the
/// baseline, or per CXL Type-3 device in COAXIAL).
pub struct Channel {
    cfg: DramConfig,
    subs: Vec<SubChannel>,
    now: Cycle,
    window_start: Cycle,
    /// End-to-end (enqueue → data) *read* latency distribution; used by
    /// Fig. 2a. Writes are posted (the requester never waits), so their
    /// drain-policy-driven completion times are excluded.
    pub latency_hist: Histogram,
    pub read_latency: MeanTracker,
    reads: u64,
    writes: u64,
}

impl Channel {
    pub fn new(cfg: DramConfig) -> Self {
        let subs = (0..cfg.subchannels).map(|_| SubChannel::new(cfg.clone())).collect();
        Self {
            subs,
            now: 0,
            window_start: 0,
            latency_hist: Histogram::new(),
            read_latency: MeanTracker::new(),
            reads: 0,
            writes: 0,
            cfg,
        }
    }

    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Map a channel-local line address onto a sub-channel and its local
    /// line address. Lines interleave across sub-channels.
    #[inline]
    fn route(&self, line_addr: u64) -> (usize, u64) {
        let n = self.subs.len() as u64;
        (coaxial_sim::idx(line_addr % n), line_addr / n)
    }

    /// Whether the target sub-channel queue has room for this request.
    pub fn can_accept(&self, line_addr: u64, is_write: bool) -> bool {
        let (s, _) = self.route(line_addr);
        self.subs[s].can_accept(is_write)
    }

    /// Sum of read-queue occupancy (for load-aware reporting).
    pub fn read_queue_len(&self) -> usize {
        self.subs.iter().map(|s| s.read_q_len()).sum()
    }

    pub fn write_queue_len(&self) -> usize {
        self.subs.iter().map(|s| s.write_q_len()).sum()
    }

    /// Drain the command logs of all sub-channels (requires
    /// `cfg.log_commands`; see [`crate::audit`]). Returns one log per
    /// sub-channel, each in issue order.
    pub fn take_command_logs(&mut self) -> Vec<Vec<crate::audit::CmdRecord>> {
        self.subs.iter_mut().map(|s| s.take_command_log()).collect()
    }

    /// Harvest aggregated statistics.
    pub fn stats(&self) -> ChannelStats {
        let mut st = ChannelStats {
            reads: self.reads,
            writes: self.writes,
            read_bytes: self.reads * LINE_BYTES,
            write_bytes: self.writes * LINE_BYTES,
            elapsed_cycles: self.now.saturating_sub(self.window_start),
            ..Default::default()
        };
        let mut q = MeanTracker::new();
        let mut sv = MeanTracker::new();
        let mut busy = 0u64;
        for s in &self.subs {
            q.merge(&s.queue_delay);
            sv.merge(&s.service_time);
            busy += s.bus_busy;
            let (h, m, c) = s.row_outcomes();
            st.row_hits += h;
            st.row_misses += m;
            st.row_conflicts += c;
            st.act += s.counts.act;
            st.pre += s.counts.pre;
            st.rd_cas += s.counts.rd;
            st.wr_cas += s.counts.wr;
            st.refab += s.counts.refab;
        }
        st.mean_queue_cycles = q.mean();
        st.mean_service_cycles = sv.mean();
        let elapsed = self.now.saturating_sub(self.window_start);
        if elapsed > 0 {
            st.bus_utilization = busy as f64 / (elapsed as f64 * self.subs.len() as f64);
        }
        st
    }

    /// Zero all statistics and restart the measurement window at `now`.
    pub fn reset_stats(&mut self, now: Cycle) {
        self.window_start = now;
        self.reads = 0;
        self.writes = 0;
        self.latency_hist = Histogram::new();
        self.read_latency = MeanTracker::new();
        for s in &mut self.subs {
            s.reset_stats();
        }
    }
}

impl MemoryBackend for Channel {
    fn export_metrics(&self, reg: &mut coaxial_telemetry::MetricsRegistry, prefix: &str) {
        self.stats().export_metrics(reg, prefix)
    }

    fn try_enqueue(&mut self, req: MemRequest) -> Result<(), MemRequest> {
        let (s, local) = self.route(req.line_addr);
        let mut local_req = req;
        local_req.line_addr = local;
        match self.subs[s].enqueue(local_req, self.now) {
            Ok(()) => Ok(()),
            Err(mut r) => {
                r.line_addr = req.line_addr; // restore global address
                Err(r)
            }
        }
    }

    fn tick(&mut self, now: Cycle) {
        self.now = now;
        for s in &mut self.subs {
            s.tick(now);
        }
    }

    fn pop_response(&mut self, now: Cycle) -> Option<MemResponse> {
        for (i, s) in self.subs.iter_mut().enumerate() {
            if let Some(mut r) = s.pop_response(now) {
                // Restore the channel-local line address.
                r.line_addr = r.line_addr * self.subs.len() as u64 + i as u64;
                // Traffic is counted at completion so that achieved
                // bandwidth over any window is bounded by the bus capacity
                // (counting at enqueue lets queue bursts exceed peak over
                // short windows).
                if r.is_write {
                    self.writes += 1;
                } else {
                    self.reads += 1;
                    let total = r.total_cycles();
                    self.latency_hist.record(total);
                    self.read_latency.record(total as f64);
                }
                return Some(r);
            }
        }
        None
    }

    fn ddr_channel_count(&self) -> usize {
        1
    }

    fn ddr_stats(&self) -> ChannelStats {
        self.stats()
    }

    fn reset_stats(&mut self, now: Cycle) {
        Channel::reset_stats(self, now);
    }

    fn peak_bandwidth_gbs(&self) -> f64 {
        self.cfg.peak_bandwidth_gbs()
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        self.subs.iter().map(|s| s.next_event(now)).min().unwrap_or(now + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(ch: &mut Channel, reqs: Vec<MemRequest>, limit: Cycle) -> Vec<MemResponse> {
        let total = reqs.len();
        let mut pending: std::collections::VecDeque<_> = reqs.into();
        let mut out = Vec::new();
        for now in 0..limit {
            ch.tick(now);
            while let Some(r) = pending.front() {
                if r.issued_at > now {
                    break;
                }
                let r = *r;
                match ch.try_enqueue(r) {
                    Ok(()) => {
                        pending.pop_front();
                    }
                    Err(_) => break,
                }
            }
            while let Some(r) = ch.pop_response(now) {
                out.push(r);
            }
            if out.len() == total {
                break;
            }
        }
        out
    }

    #[test]
    fn lines_interleave_across_subchannels() {
        let ch = Channel::new(DramConfig::ddr5_4800());
        assert_eq!(ch.route(0).0, 0);
        assert_eq!(ch.route(1).0, 1);
        assert_eq!(ch.route(2), (0, 1));
    }

    #[test]
    fn responses_restore_global_addresses() {
        let mut ch = Channel::new(DramConfig::ddr5_4800());
        let reqs = (0..8u64).map(|i| MemRequest::read(i, i * 7 + 3, 0)).collect();
        let resps = drive(&mut ch, reqs, 100_000);
        assert_eq!(resps.len(), 8);
        let mut addrs: Vec<u64> = resps.iter().map(|r| r.line_addr).collect();
        addrs.sort_unstable();
        let want: Vec<u64> = (0..8).map(|i| i * 7 + 3).collect();
        let mut want = want;
        want.sort_unstable();
        assert_eq!(addrs, want);
    }

    #[test]
    fn all_requests_complete_exactly_once() {
        let mut ch = Channel::new(DramConfig::ddr5_4800());
        let reqs: Vec<_> = (0..200u64)
            .map(|i| {
                if i % 3 == 0 {
                    MemRequest::write(i, i * 131, 0)
                } else {
                    MemRequest::read(i, i * 131, 0)
                }
            })
            .collect();
        let resps = drive(&mut ch, reqs, 1_000_000);
        assert_eq!(resps.len(), 200);
        let mut ids: Vec<u64> = resps.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200, "every id exactly once");
    }

    #[test]
    fn sequential_stream_mostly_row_hits() {
        let mut ch = Channel::new(DramConfig::ddr5_4800());
        let reqs: Vec<_> = (0..512u64).map(|i| MemRequest::read(i, i, 0)).collect();
        let resps = drive(&mut ch, reqs, 1_000_000);
        assert_eq!(resps.len(), 512);
        let st = ch.stats();
        let hit_rate = st.row_hits as f64 / (st.row_hits + st.row_misses + st.row_conflicts) as f64;
        assert!(hit_rate > 0.8, "sequential hit rate = {hit_rate}");
    }

    #[test]
    fn achieved_bandwidth_approaches_peak_under_saturation() {
        let mut ch = Channel::new(DramConfig::ddr5_4800());
        // Saturating sequential read stream.
        let reqs: Vec<_> = (0..4096u64).map(|i| MemRequest::read(i, i, 0)).collect();
        let resps = drive(&mut ch, reqs, 2_000_000);
        assert_eq!(resps.len(), 4096);
        let st = ch.stats();
        let bw = st.bandwidth_gbs();
        let peak = ch.config().peak_bandwidth_gbs();
        assert!(bw > 0.7 * peak, "bw {bw} GB/s vs peak {peak}");
        assert!(bw <= peak * 1.01, "bw {bw} cannot exceed peak {peak}");
    }

    #[test]
    fn stats_merge_weights_by_count() {
        let mut a = ChannelStats {
            reads: 10,
            mean_queue_cycles: 100.0,
            mean_service_cycles: 50.0,
            ..Default::default()
        };
        let b = ChannelStats {
            reads: 30,
            mean_queue_cycles: 20.0,
            mean_service_cycles: 50.0,
            ..Default::default()
        };
        a.merge(&b);
        assert!((a.mean_queue_cycles - 40.0).abs() < 1e-9);
        assert_eq!(a.reads, 40);
    }
}
