//! Multiple directly-attached DDR channels behind one [`MemoryBackend`]
//! interface — the paper's DDR-based baseline (and its core-utilization
//! sensitivity variants) use this. Lines interleave across channels.

use coaxial_sim::Cycle;

use crate::channel::{Channel, ChannelStats};
use crate::config::DramConfig;
use crate::request::{MemRequest, MemResponse};
use crate::MemoryBackend;

/// A group of direct DDR channels with line-granularity interleaving.
pub struct MultiChannel {
    channels: Vec<Channel>,
}

impl MultiChannel {
    pub fn new(cfg: &DramConfig, channels: usize) -> Self {
        assert!(channels > 0);
        Self { channels: (0..channels).map(|_| Channel::new(cfg.clone())).collect() }
    }

    #[inline]
    fn route(&self, line_addr: u64) -> (usize, u64) {
        let n = self.channels.len() as u64;
        (coaxial_sim::idx(line_addr % n), line_addr / n)
    }

    /// Aggregated stats across channels.
    pub fn stats(&self) -> ChannelStats {
        let mut it = self.channels.iter();
        let mut st = it.next().expect("≥1 channel").stats();
        for c in it {
            st.merge(&c.stats());
        }
        st
    }

    /// Per-channel access for fine-grained inspection.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Peak combined bandwidth in GB/s.
    pub fn peak_bandwidth_gbs(&self) -> f64 {
        self.channels[0].config().peak_bandwidth_gbs() * self.channels.len() as f64
    }

    /// Export per-channel and aggregate metrics under `prefix`
    /// (`{prefix}.ch{i}.*` plus `{prefix}.total.*`).
    pub fn export_metrics(&self, reg: &mut coaxial_telemetry::MetricsRegistry, prefix: &str) {
        for (i, c) in self.channels.iter().enumerate() {
            c.stats().export_metrics(reg, &format!("{prefix}.ch{i}"));
        }
        self.stats().export_metrics(reg, &format!("{prefix}.total"));
    }
}

impl MemoryBackend for MultiChannel {
    fn try_enqueue(&mut self, req: MemRequest) -> Result<(), MemRequest> {
        let (c, local) = self.route(req.line_addr);
        let mut local_req = req;
        local_req.line_addr = local;
        self.channels[c].try_enqueue(local_req).map_err(|mut r| {
            r.line_addr = req.line_addr;
            r
        })
    }

    fn tick(&mut self, now: Cycle) {
        for c in &mut self.channels {
            c.tick(now);
        }
    }

    fn pop_response(&mut self, now: Cycle) -> Option<MemResponse> {
        let n = self.channels.len() as u64;
        for (i, c) in self.channels.iter_mut().enumerate() {
            if let Some(mut r) = c.pop_response(now) {
                r.line_addr = r.line_addr * n + i as u64;
                return Some(r);
            }
        }
        None
    }

    fn ddr_channel_count(&self) -> usize {
        self.channels.len()
    }

    fn ddr_stats(&self) -> ChannelStats {
        self.stats()
    }

    fn reset_stats(&mut self, now: Cycle) {
        for c in &mut self.channels {
            c.reset_stats(now);
        }
    }

    fn peak_bandwidth_gbs(&self) -> f64 {
        self.peak_bandwidth_gbs()
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        self.channels.iter().map(|c| MemoryBackend::next_event(c, now)).min().unwrap_or(now + 1)
    }

    fn export_metrics(&self, reg: &mut coaxial_telemetry::MetricsRegistry, prefix: &str) {
        MultiChannel::export_metrics(self, reg, prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_spread_across_channels() {
        let mut m = MultiChannel::new(&DramConfig::ddr5_4800(), 4);
        for i in 0..64u64 {
            m.try_enqueue(MemRequest::read(i, i, 0)).unwrap();
        }
        let mut done = 0;
        for now in 0..1_000_000 {
            m.tick(now);
            while m.pop_response(now).is_some() {
                done += 1;
            }
            if done == 64 {
                break;
            }
        }
        assert_eq!(done, 64);
        for c in m.channels() {
            let st = c.stats();
            assert_eq!(st.reads, 16, "even interleave");
        }
    }

    #[test]
    fn addresses_round_trip() {
        let mut m = MultiChannel::new(&DramConfig::ddr5_4800(), 3);
        let addrs = [5u64, 17, 33, 100, 101, 102];
        for (i, &a) in addrs.iter().enumerate() {
            m.try_enqueue(MemRequest::read(i as u64, a, 0)).unwrap();
        }
        let mut got = Vec::new();
        for now in 0..1_000_000 {
            m.tick(now);
            while let Some(r) = m.pop_response(now) {
                got.push(r.line_addr);
            }
            if got.len() == addrs.len() {
                break;
            }
        }
        got.sort_unstable();
        let mut want = addrs.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
