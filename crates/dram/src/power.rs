//! DRAMsim3-style energy accounting for DDR5 RDIMMs.
//!
//! The paper's Table V models memory power with DRAMsim3's power model and a
//! 32 GB DDR5-4800 RDIMM per channel. We use per-command energies derived
//! from Micron DDR5 IDD specifications at the same granularity DRAMsim3
//! uses: ACT+PRE pair energy, per-CAS read/write energy (including I/O),
//! refresh energy, and background (static) power per DIMM.

use serde::Serialize;

use crate::channel::ChannelStats;

/// Per-command energy / background power parameters for one RDIMM.
#[derive(Debug, Clone, Serialize)]
pub struct DramPowerParams {
    /// Energy per ACT+PRE pair, nanojoules.
    pub e_act_pre_nj: f64,
    /// Energy per read CAS (64 B, incl. I/O), nanojoules.
    pub e_rd_nj: f64,
    /// Energy per write CAS (64 B, incl. ODT), nanojoules.
    pub e_wr_nj: f64,
    /// Energy per all-bank refresh, nanojoules.
    pub e_ref_nj: f64,
    /// Background (idle + peripheral) power for the whole DIMM, watts.
    pub background_w: f64,
}

impl DramPowerParams {
    /// 32 GB DDR5-4800 RDIMM (2 ranks of x4 16 Gb dies), values in the range
    /// published for Micron DDR5 and used by DRAMsim3 configs.
    pub fn rdimm_32gb_ddr5_4800() -> Self {
        Self {
            e_act_pre_nj: 8.0,
            e_rd_nj: 15.0,
            e_wr_nj: 16.0,
            e_ref_nj: 1400.0,
            background_w: 4.0,
        }
    }
}

/// Energy totals for one channel over an observation window.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DramEnergy {
    pub act_pre_nj: f64,
    pub rd_nj: f64,
    pub wr_nj: f64,
    pub ref_nj: f64,
    pub background_nj: f64,
    pub window_ns: f64,
}

impl DramEnergy {
    /// Compute energy for a channel's command counts over its window.
    pub fn from_stats(stats: &ChannelStats, p: &DramPowerParams) -> Self {
        let window_ns = coaxial_sim::cycles_to_ns(stats.elapsed_cycles);
        Self {
            act_pre_nj: stats.act as f64 * p.e_act_pre_nj,
            rd_nj: stats.rd_cas as f64 * p.e_rd_nj,
            wr_nj: stats.wr_cas as f64 * p.e_wr_nj,
            ref_nj: stats.refab as f64 * p.e_ref_nj,
            background_nj: p.background_w * window_ns, // 1 W × 1 ns = 1 nJ
            window_ns,
        }
    }

    pub fn total_nj(&self) -> f64 {
        self.act_pre_nj + self.rd_nj + self.wr_nj + self.ref_nj + self.background_nj
    }

    /// Average power over the window, watts.
    pub fn average_power_w(&self) -> f64 {
        if self.window_ns == 0.0 {
            0.0
        } else {
            self.total_nj() / self.window_ns
        }
    }
}

/// Convenience: average DIMM power for a channel given its stats.
pub fn dimm_power_w(stats: &ChannelStats, params: &DramPowerParams) -> f64 {
    DramEnergy::from_stats(stats, params).average_power_w()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coaxial_sim::Cycle;

    fn stats(rd: u64, wr: u64, act: u64, cycles: Cycle) -> ChannelStats {
        ChannelStats {
            rd_cas: rd,
            wr_cas: wr,
            act,
            pre: act,
            elapsed_cycles: cycles,
            ..Default::default()
        }
    }

    #[test]
    fn idle_dimm_draws_background_power() {
        let p = DramPowerParams::rdimm_32gb_ddr5_4800();
        let e = DramEnergy::from_stats(&stats(0, 0, 0, 2_400_000), &p);
        let w = e.average_power_w();
        assert!((w - p.background_w).abs() < 1e-9, "idle power = {w} W");
    }

    #[test]
    fn active_dimm_draws_more_than_idle() {
        let p = DramPowerParams::rdimm_32gb_ddr5_4800();
        // 1 ms window, heavily loaded: ~60% bus utilization.
        let cycles = 2_400_000;
        let accesses = 180_000; // 64 B each ≈ 11.5 GB/s
        let busy = DramEnergy::from_stats(&stats(accesses, accesses / 3, accesses / 4, cycles), &p);
        let idle = DramEnergy::from_stats(&stats(0, 0, 0, cycles), &p);
        assert!(busy.average_power_w() > idle.average_power_w() * 1.5);
        // A loaded DDR5 RDIMM lands in the handful-of-watts range.
        let w = busy.average_power_w();
        assert!((5.0..20.0).contains(&w), "loaded DIMM power = {w} W");
    }

    #[test]
    fn energy_scales_linearly_with_commands() {
        let p = DramPowerParams::rdimm_32gb_ddr5_4800();
        let e1 = DramEnergy::from_stats(&stats(100, 50, 30, 1000), &p);
        let e2 = DramEnergy::from_stats(&stats(200, 100, 60, 1000), &p);
        let dyn1 = e1.total_nj() - e1.background_nj;
        let dyn2 = e2.total_nj() - e2.background_nj;
        assert!((dyn2 - 2.0 * dyn1).abs() < 1e-9);
    }
}
