//! Per-bank row-buffer state machine.
//!
//! Each bank tracks its open row and the earliest cycles at which the next
//! ACT, CAS, or PRE command may legally target it. The sub-channel
//! scheduler consults these to implement FR-FCFS.

use crate::config::DramTimings;
use coaxial_sim::Cycle;

/// One DRAM bank.
#[derive(Debug, Clone)]
pub struct Bank {
    /// Currently open row, if any.
    pub open_row: Option<u64>,
    /// Cycle of the most recent ACT (for tRAS / tRC).
    act_at: Cycle,
    /// Earliest cycle a CAS may issue (tRCD after ACT).
    earliest_cas: Cycle,
    /// Earliest cycle a PRE may issue (tRAS, tRTP, write recovery).
    earliest_pre: Cycle,
    /// Earliest cycle an ACT may issue (tRP after PRE, tRC after ACT).
    earliest_act: Cycle,
    /// Row-buffer statistics.
    pub row_hits: u64,
    pub row_misses: u64,
    pub row_conflicts: u64,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    pub fn new() -> Self {
        Self {
            open_row: None,
            act_at: 0,
            earliest_cas: 0,
            earliest_pre: 0,
            earliest_act: 0,
            row_hits: 0,
            row_misses: 0,
            row_conflicts: 0,
        }
    }

    /// Can an ACT to this (closed) bank issue at `now`?
    #[inline]
    pub fn can_activate(&self, now: Cycle) -> bool {
        self.open_row.is_none() && now >= self.earliest_act
    }

    /// Can a CAS to `row` issue at `now` (row must already be open)?
    #[inline]
    pub fn can_cas(&self, row: u64, now: Cycle) -> bool {
        self.open_row == Some(row) && now >= self.earliest_cas
    }

    /// Can a PRE issue at `now` (a row must be open)?
    #[inline]
    pub fn can_precharge(&self, now: Cycle) -> bool {
        self.open_row.is_some() && now >= self.earliest_pre
    }

    /// Issue ACT for `row` at `now`. Caller must have checked
    /// [`Bank::can_activate`] and rank-level tRRD/tFAW constraints.
    pub fn activate(&mut self, row: u64, now: Cycle, t: &DramTimings) {
        debug_assert!(self.can_activate(now), "illegal ACT at {now}");
        self.open_row = Some(row);
        self.act_at = now;
        self.earliest_cas = now + t.t_rcd;
        self.earliest_pre = now + t.t_ras;
        self.earliest_act = now + t.t_rc;
    }

    /// Issue a READ or WRITE CAS at `now`. Caller must have checked
    /// [`Bank::can_cas`] and channel-level tCCD/bus constraints.
    pub fn cas(&mut self, is_write: bool, now: Cycle, t: &DramTimings) {
        debug_assert!(now >= self.earliest_cas, "illegal CAS at {now}");
        debug_assert!(self.open_row.is_some());
        let data_end = if is_write { now + t.cwl + t.t_burst } else { now + t.cl + t.t_burst };
        // PRE must respect tRAS (already folded into earliest_pre), read-to-
        // precharge (tRTP from CAS), and write recovery (tWR from data end).
        let pre_after = if is_write { data_end + t.t_wr } else { now + t.t_rtp };
        self.earliest_pre = self.earliest_pre.max(pre_after);
        // Back-to-back CAS spacing to the *same bank* is at least tCCD_L;
        // the channel enforces the cross-bank-group variant.
        self.earliest_cas = now + t.t_ccd_l;
    }

    /// Issue PRE at `now`. Caller must have checked [`Bank::can_precharge`].
    pub fn precharge(&mut self, now: Cycle, t: &DramTimings) {
        debug_assert!(self.can_precharge(now), "illegal PRE at {now}");
        self.open_row = None;
        self.earliest_act = self.earliest_act.max(now + t.t_rp);
    }

    /// Force-close the bank for refresh; bank usable again at `ready`.
    pub fn refresh_close(&mut self, ready: Cycle) {
        self.open_row = None;
        self.earliest_act = self.earliest_act.max(ready);
    }

    /// Earliest cycle at which a CAS may issue (row must already match).
    pub fn earliest_cas(&self) -> Cycle {
        self.earliest_cas
    }

    /// Earliest cycle at which a PRE may issue.
    pub fn earliest_pre(&self) -> Cycle {
        self.earliest_pre
    }

    /// Earliest cycle at which an ACT may issue.
    pub fn earliest_act(&self) -> Cycle {
        self.earliest_act
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTimings {
        DramTimings::ddr5_4800()
    }

    #[test]
    fn fresh_bank_is_closed_and_activatable() {
        let b = Bank::new();
        assert!(b.can_activate(0));
        assert!(!b.can_precharge(0));
        assert!(!b.can_cas(0, 0));
    }

    #[test]
    fn act_then_cas_respects_trcd() {
        let t = t();
        let mut b = Bank::new();
        b.activate(7, 100, &t);
        assert!(!b.can_cas(7, 100 + t.t_rcd - 1));
        assert!(b.can_cas(7, 100 + t.t_rcd));
        // Wrong row never CAS-able.
        assert!(!b.can_cas(8, 100 + t.t_rcd));
    }

    #[test]
    fn precharge_respects_tras() {
        let t = t();
        let mut b = Bank::new();
        b.activate(1, 50, &t);
        assert!(!b.can_precharge(50 + t.t_ras - 1));
        assert!(b.can_precharge(50 + t.t_ras));
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let t = t();
        let mut b = Bank::new();
        b.activate(1, 0, &t);
        let cas_at = t.t_rcd;
        b.cas(true, cas_at, &t);
        let expected = cas_at + t.cwl + t.t_burst + t.t_wr;
        assert!(!b.can_precharge(expected - 1));
        assert!(b.can_precharge(expected));
    }

    #[test]
    fn act_after_pre_respects_trp_and_trc() {
        let t = t();
        let mut b = Bank::new();
        b.activate(1, 0, &t);
        let pre_at = t.t_ras;
        b.precharge(pre_at, &t);
        assert!(!b.can_activate(pre_at + t.t_rp - 1));
        assert!(b.can_activate(pre_at + t.t_rp));
        // tRAS + tRP == tRC, so tRC is simultaneously satisfied.
        assert_eq!(pre_at + t.t_rp, t.t_rc);
    }

    #[test]
    fn refresh_close_blocks_activation() {
        let t = t();
        let mut b = Bank::new();
        b.activate(3, 0, &t);
        b.refresh_close(5000);
        assert!(b.open_row.is_none());
        assert!(!b.can_activate(4999));
        assert!(b.can_activate(5000));
    }
}
