//! DDR5 device geometry and timing parameters.
//!
//! All timings are expressed in memory clocks. DDR5-4800 runs a 2400 MHz
//! command clock but transfers data on a 2.4 GHz I/O clock; because the
//! whole simulator ticks at 2.4 GHz (see `coaxial-sim::time`) we quote
//! every parameter in 2.4 GHz cycles (0.41667 ns each). Values follow the
//! Micron DDR5-4800 (CL40) datasheet the paper cites \[40\], \[41\].

use coaxial_sim::Cycle;
use serde::Serialize;

/// Cache-line (and DRAM access) granularity in bytes.
pub const LINE_BYTES: u64 = 64;

/// Physical address-mapping scheme: where the bank bits sit relative to
/// the column bits decides whether sequential traffic exploits row
/// buffers (bank bits above the column) or spreads across banks at line
/// granularity (bank bits below the column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AddressMapping {
    /// `row | bank | bank-group | column` (default): sequential lines walk
    /// a whole row buffer, then move to the next bank group.
    RowBankColumn,
    /// `row | column | bank | bank-group`: sequential lines round-robin
    /// across all banks first — maximum bank parallelism, minimum row
    /// locality (good for random, bad for streams).
    RowColumnBank,
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PagePolicy {
    /// Keep rows open; close them only when the controller idles
    /// (open-adaptive — the default, and what the main results use).
    OpenAdaptive,
    /// Keep rows open indefinitely (classic open-page).
    Open,
    /// Close the row as soon as its access completes (closed-page):
    /// uniform tRCD+CL latency, no row hits, no conflicts.
    Closed,
}

/// Timing parameters for one DDR5 sub-channel, in 2.4 GHz clocks.
#[derive(Debug, Clone, Serialize)]
pub struct DramTimings {
    /// CAS latency (READ command to first data).
    pub cl: Cycle,
    /// CAS write latency (WRITE command to first data).
    pub cwl: Cycle,
    /// ACT to internal READ/WRITE delay.
    pub t_rcd: Cycle,
    /// PRE to ACT delay (row precharge).
    pub t_rp: Cycle,
    /// ACT to PRE minimum (row active time).
    pub t_ras: Cycle,
    /// ACT to ACT, same bank (= tRAS + tRP).
    pub t_rc: Cycle,
    /// CAS-to-CAS, same bank group.
    pub t_ccd_l: Cycle,
    /// CAS-to-CAS, different bank group.
    pub t_ccd_s: Cycle,
    /// ACT to ACT, same bank group.
    pub t_rrd_l: Cycle,
    /// ACT to ACT, different bank group.
    pub t_rrd_s: Cycle,
    /// Four-activate window.
    pub t_faw: Cycle,
    /// Write recovery (last write data to PRE).
    pub t_wr: Cycle,
    /// READ to PRE delay.
    pub t_rtp: Cycle,
    /// Write-to-read turnaround, same bank group.
    pub t_wtr_l: Cycle,
    /// Write-to-read turnaround, different bank group.
    pub t_wtr_s: Cycle,
    /// Data burst duration for one 64 B line on a 32-bit sub-channel
    /// (BL16 = 16 beats = 8 I/O-clock cycles).
    pub t_burst: Cycle,
    /// Extra bus idle cycles when the data bus reverses direction.
    pub t_turnaround: Cycle,
    /// Average periodic refresh interval (per rank, all-bank).
    pub t_refi: Cycle,
    /// Refresh cycle time (rank busy per REFab).
    pub t_rfc: Cycle,
}

/// One scaled timing, rounded to the nearest 2.4 GHz clock and floored at
/// 1 cycle (a zero timing would let commands overlap unphysically).
fn scale_cycle(c: Cycle, factor: f64) -> Cycle {
    coaxial_sim::narrow::trunc_u64((c as f64 * factor).round()).max(1)
}

impl DramTimings {
    /// DDR5-4800, CL40 speed grade (JESD79-5 / Micron datasheet values,
    /// rounded to 0.41667 ns clocks).
    pub fn ddr5_4800() -> Self {
        Self {
            cl: 40,      // 16.67 ns
            cwl: 38,     // 15.83 ns
            t_rcd: 40,   // 16.67 ns
            t_rp: 40,    // 16.67 ns
            t_ras: 77,   // 32 ns
            t_rc: 117,   // 48.67 ns
            t_ccd_l: 12, // 5 ns
            t_ccd_s: 8,  // burst length
            t_rrd_l: 12, // 5 ns
            t_rrd_s: 8,
            t_faw: 32,   // 13.33 ns
            t_wr: 72,    // 30 ns
            t_rtp: 18,   // 7.5 ns
            t_wtr_l: 24, // 10 ns
            t_wtr_s: 6,  // 2.5 ns
            t_burst: 8,  // 64 B over 32-bit bus at 2 beats/clock
            t_turnaround: 2,
            t_refi: 9360, // 3.9 µs
            t_rfc: 708,   // 295 ns (16 Gb die, JESD79-5 tRFC1)
        }
    }

    /// Every timing parameter multiplied by `factor` (sensitivity sweeps:
    /// "how much do the headline numbers depend on the exact speed
    /// grade?"). Data-transfer and turnaround cycles scale with the rest.
    /// `t_rc` is rebuilt from the scaled `t_ras`/`t_rp` so the JEDEC
    /// identity `tRC = tRAS + tRP` survives rounding.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "timing scale factor must be positive");
        let s = |c: Cycle| scale_cycle(c, factor);
        Self {
            cl: s(self.cl),
            cwl: s(self.cwl),
            t_rcd: s(self.t_rcd),
            t_rp: s(self.t_rp),
            t_ras: s(self.t_ras),
            t_rc: s(self.t_ras) + s(self.t_rp),
            t_ccd_l: s(self.t_ccd_l),
            t_ccd_s: s(self.t_ccd_s),
            t_rrd_l: s(self.t_rrd_l),
            t_rrd_s: s(self.t_rrd_s),
            t_faw: s(self.t_faw),
            t_wr: s(self.t_wr),
            t_rtp: s(self.t_rtp),
            t_wtr_l: s(self.t_wtr_l),
            t_wtr_s: s(self.t_wtr_s),
            t_burst: s(self.t_burst),
            t_turnaround: s(self.t_turnaround),
            t_refi: s(self.t_refi),
            t_rfc: s(self.t_rfc),
        }
    }

    /// Unloaded row-buffer-hit read latency (READ → last data beat).
    pub fn unloaded_hit(&self) -> Cycle {
        self.cl + self.t_burst
    }

    /// Unloaded row-miss (closed bank) read latency (ACT → last data beat).
    pub fn unloaded_closed(&self) -> Cycle {
        self.t_rcd + self.cl + self.t_burst
    }

    /// Unloaded row-conflict read latency (PRE → ACT → READ → data).
    pub fn unloaded_conflict(&self) -> Cycle {
        self.t_rp + self.t_rcd + self.cl + self.t_burst
    }
}

/// Geometry and controller provisioning for one DDR channel.
#[derive(Debug, Clone, Serialize)]
pub struct DramConfig {
    pub timings: DramTimings,
    /// Independent 32-bit sub-channels per DDR5 channel.
    pub subchannels: usize,
    /// Ranks per sub-channel.
    pub ranks: usize,
    /// Bank groups per rank.
    pub bank_groups: usize,
    /// Banks per bank group.
    pub banks_per_group: usize,
    /// Rows per bank (sets row-buffer locality granularity).
    pub rows: u64,
    /// Row buffer (page) size in bytes.
    pub row_bytes: u64,
    /// Read queue depth per sub-channel.
    pub read_queue_depth: usize,
    /// Write queue depth per sub-channel.
    pub write_queue_depth: usize,
    /// Start draining writes when the write queue reaches this occupancy.
    pub write_drain_hi: usize,
    /// Stop draining when it falls to this occupancy.
    pub write_drain_lo: usize,
    /// FR-FCFS scheduling window: how many queue entries each scheduling
    /// pass may consider (real controllers have bounded pickers).
    pub sched_window: usize,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// Physical address-mapping scheme.
    pub address_mapping: AddressMapping,
    /// Record every issued command for post-hoc auditing
    /// (see [`crate::audit`]). Off by default: it allocates per command.
    pub log_commands: bool,
}

impl DramConfig {
    /// The paper's Table III memory configuration: DDR5-4800, 2 sub-channels
    /// per channel, 1 rank per sub-channel, 32 banks per rank.
    pub fn ddr5_4800() -> Self {
        Self {
            timings: DramTimings::ddr5_4800(),
            subchannels: 2,
            ranks: 1,
            bank_groups: 8,
            banks_per_group: 4,
            rows: 65536,
            row_bytes: 1024, // 1 KB page per 32-bit sub-channel (x4 devices)
            read_queue_depth: 48,
            write_queue_depth: 48,
            write_drain_hi: 32,
            write_drain_lo: 8,
            sched_window: 16,
            page_policy: PagePolicy::OpenAdaptive,
            address_mapping: AddressMapping::RowBankColumn,
            log_commands: false,
        }
    }

    /// Same geometry with a different address mapping (ablation studies).
    pub fn with_address_mapping(mut self, mapping: AddressMapping) -> Self {
        self.address_mapping = mapping;
        self
    }

    /// Same geometry with a different page policy (ablation studies).
    pub fn with_page_policy(mut self, policy: PagePolicy) -> Self {
        self.page_policy = policy;
        self
    }

    /// Same geometry with a different FR-FCFS window (ablation studies).
    pub fn with_sched_window(mut self, window: usize) -> Self {
        assert!(window >= 1);
        self.sched_window = window;
        self
    }

    /// Same geometry with every timing parameter scaled by `factor`
    /// (speed-grade sensitivity sweeps; see [`DramTimings::scaled`]).
    pub fn with_timing_scale(mut self, factor: f64) -> Self {
        self.timings = self.timings.scaled(factor);
        self
    }

    /// Total banks per sub-channel (across ranks).
    pub fn banks_per_subchannel(&self) -> usize {
        self.ranks * self.bank_groups * self.banks_per_group
    }

    /// Cache lines per row buffer.
    pub fn lines_per_row(&self) -> u64 {
        self.row_bytes / LINE_BYTES
    }

    /// Peak data bandwidth of the full channel in GB/s
    /// (both sub-channels; counts read+write combined, as DDR datasheets do).
    pub fn peak_bandwidth_gbs(&self) -> f64 {
        // Each sub-channel moves 64 B per t_burst cycles at 2.4 GHz.
        let per_sub = LINE_BYTES as f64 / coaxial_sim::cycles_to_ns(self.timings.t_burst);
        per_sub * self.subchannels as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr5_4800_peak_bandwidth_is_38_4_gbs() {
        let cfg = DramConfig::ddr5_4800();
        let bw = cfg.peak_bandwidth_gbs();
        assert!((bw - 38.4).abs() < 0.1, "peak bw = {bw} GB/s");
    }

    #[test]
    fn unloaded_latencies_are_ordered() {
        let t = DramTimings::ddr5_4800();
        assert!(t.unloaded_hit() < t.unloaded_closed());
        assert!(t.unloaded_closed() < t.unloaded_conflict());
        // Paper quotes ~40 ns unloaded DRAM access; closed-bank read is
        // 88 cycles = 36.7 ns, conflict is 128 cycles = 53.3 ns.
        let ns = coaxial_sim::cycles_to_ns(t.unloaded_closed());
        assert!((30.0..45.0).contains(&ns), "closed-bank read = {ns} ns");
    }

    #[test]
    fn geometry_matches_table_iii() {
        let cfg = DramConfig::ddr5_4800();
        assert_eq!(cfg.subchannels, 2);
        assert_eq!(cfg.banks_per_subchannel(), 32);
        assert_eq!(cfg.lines_per_row(), 16);
    }

    #[test]
    fn trc_is_tras_plus_trp() {
        let t = DramTimings::ddr5_4800();
        assert_eq!(t.t_rc, t.t_ras + t.t_rp);
    }

    #[test]
    fn scaled_timings_preserve_trc_identity_and_floor() {
        let t = DramTimings::ddr5_4800().scaled(1.5);
        assert_eq!(t.cl, 60);
        assert_eq!(t.t_rc, t.t_ras + t.t_rp, "JEDEC identity survives rounding");
        // Extreme down-scaling floors every timing at one cycle instead of
        // producing unphysical zero-cycle commands.
        let tiny = DramTimings::ddr5_4800().scaled(0.001);
        assert!(tiny.t_turnaround >= 1 && tiny.t_burst >= 1);
        assert_eq!(tiny.t_rc, tiny.t_ras + tiny.t_rp);
        // Unit scale is an exact no-op.
        let same = DramTimings::ddr5_4800().scaled(1.0);
        assert_eq!(same.t_rfc, DramTimings::ddr5_4800().t_rfc);
    }
}
