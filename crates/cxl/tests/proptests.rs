//! Property-based tests for the CXL link and Type-3 device models.

use proptest::prelude::*;

use coaxial_cxl::{CxlChannel, CxlLinkConfig, CxlMemory};
use coaxial_dram::{DramConfig, MemRequest, MemResponse, MemoryBackend};

fn arb_stream() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..(1 << 20), proptest::bool::ANY), 1..100)
}

fn drive_channel(cfg: CxlLinkConfig, reqs: &[(u64, bool)]) -> Vec<MemResponse> {
    let mut ch = CxlChannel::new(cfg, &DramConfig::ddr5_4800());
    let mut pending: std::collections::VecDeque<_> = reqs.iter().enumerate().collect();
    let mut out = Vec::new();
    for now in 0..20_000_000u64 {
        ch.tick(now);
        while let Some(&(id, &(addr, is_write))) = pending.front() {
            let req = if is_write {
                MemRequest::write(id as u64, addr, now)
            } else {
                MemRequest::read(id as u64, addr, now)
            };
            if ch.try_enqueue(req).is_ok() {
                pending.pop_front();
            } else {
                break;
            }
        }
        while let Some(r) = ch.pop_response() {
            out.push(r);
        }
        if out.len() == reqs.len() {
            break;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Conservation through both link configurations: every request
    /// completes exactly once with its address intact.
    #[test]
    fn link_conserves_requests(reqs in arb_stream(), asym in proptest::bool::ANY) {
        let cfg = if asym { CxlLinkConfig::x8_asymmetric() } else { CxlLinkConfig::x8_symmetric() };
        let out = drive_channel(cfg, &reqs);
        prop_assert_eq!(out.len(), reqs.len());
        let mut got: Vec<(u64, u64)> = out.iter().map(|r| (r.id, r.line_addr)).collect();
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> =
            reqs.iter().enumerate().map(|(i, &(a, _))| (i as u64, a)).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Every response is at least as slow as the unloaded CXL+DRAM floor,
    /// and the breakdown always sums to the total.
    #[test]
    fn latency_floor_and_breakdown(reqs in arb_stream()) {
        let link = CxlLinkConfig::x8_symmetric();
        let dram = DramConfig::ddr5_4800();
        let read_floor = link.unloaded_read_adder() + dram.timings.unloaded_hit();
        let out = drive_channel(link, &reqs);
        for r in &out {
            prop_assert_eq!(
                r.queue_cycles + r.service_cycles + r.cxl_cycles,
                r.total_cycles()
            );
            if !r.is_write {
                prop_assert!(
                    r.total_cycles() >= read_floor,
                    "read faster than the unloaded floor: {r:?}"
                );
            }
        }
    }

    /// Multi-channel interleaving conserves requests and addresses.
    #[test]
    fn memory_interleave_conserves(reqs in arb_stream(), channels in 1usize..5) {
        let mut m =
            CxlMemory::new(&CxlLinkConfig::x8_symmetric(), &DramConfig::ddr5_4800(), channels);
        let mut pending: std::collections::VecDeque<_> = reqs.iter().enumerate().collect();
        let mut got = Vec::new();
        for now in 0..20_000_000u64 {
            m.tick(now);
            while let Some(&(id, &(addr, is_write))) = pending.front() {
                let req = if is_write {
                    MemRequest::write(id as u64, addr, now)
                } else {
                    MemRequest::read(id as u64, addr, now)
                };
                if m.try_enqueue(req).is_ok() {
                    pending.pop_front();
                } else {
                    break;
                }
            }
            while let Some(r) = m.pop_response(now) {
                got.push((r.id, r.line_addr));
            }
            if got.len() == reqs.len() {
                break;
            }
        }
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> =
            reqs.iter().enumerate().map(|(i, &(a, _))| (i as u64, a)).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
